#!/usr/bin/env python
"""Offline docstring lint for the repro package.

Walks ``src/repro/`` with :mod:`ast` (no imports, no third-party deps) and
fails if any public module or public class is missing a docstring.  Public
means the module/class name (and every package segment on its path) does
not start with an underscore — the ``_reference`` modules, for example,
are internal and exempt, though in practice they are documented too.

Run from the repository root (CI does)::

    python tools/lint_docstrings.py

Exit status 0 when clean; 1 with a ``path:line: message`` listing
otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _is_public_module(path: Path) -> bool:
    rel = path.relative_to(SRC)
    parts = list(rel.parts[:-1]) + [rel.stem]
    return not any(p.startswith("_") and p != "__init__" for p in parts)


def check_file(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    problems: list[str] = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{path}:1: public module is missing a docstring")
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name.startswith("_"):
            continue
        if ast.get_docstring(node) is None:
            problems.append(
                f"{path}:{node.lineno}: public class {node.name!r} "
                "is missing a docstring"
            )
    return problems


def main() -> int:
    if not SRC.is_dir():
        print(f"source tree not found: {SRC}", file=sys.stderr)
        return 2
    files = sorted(p for p in SRC.rglob("*.py") if _is_public_module(p))
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    if problems:
        print("\n".join(problems))
        print(f"\n{len(problems)} docstring problem(s) in {len(files)} files")
        return 1
    print(f"docstring lint: {len(files)} public modules clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
