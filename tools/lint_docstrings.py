#!/usr/bin/env python
"""Offline docstring and docs-consistency lint for the repro package.

Two passes, both pure :mod:`ast`/text — no imports, no third-party deps:

1. **Docstrings** — walks ``src/repro/`` and fails if any public module
   or public class is missing a docstring.  Public means the
   module/class name (and every package segment on its path) does not
   start with an underscore — the ``_reference`` modules, for example,
   are internal and exempt, though in practice they are documented too.
2. **Docs consistency** — the documentation may not drift from the
   code:

   * every ``repro`` CLI subcommand (read from the ``add_parser`` calls
     in ``src/repro/cli.py``) must be mentioned in README.md or a file
     under ``docs/``;
   * every knob-mapping domain (read from ``register_knob_mapping``
     call sites, resolving module-level string constants) must be
     mentioned there too;
   * every relative intra-repo link in the top-level ``*.md`` files and
     ``docs/*.md`` must resolve to an existing file.

Run from the repository root (CI does)::

    python tools/lint_docstrings.py

Exit status 0 when clean; 1 with a ``path:line: message`` listing
otherwise.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"


def _is_public_module(path: Path) -> bool:
    rel = path.relative_to(SRC)
    parts = list(rel.parts[:-1]) + [rel.stem]
    return not any(p.startswith("_") and p != "__init__" for p in parts)


def check_file(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    problems: list[str] = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{path}:1: public module is missing a docstring")
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name.startswith("_"):
            continue
        if ast.get_docstring(node) is None:
            problems.append(
                f"{path}:{node.lineno}: public class {node.name!r} "
                "is missing a docstring"
            )
    return problems


# ----------------------------------------------------------------------
# Docs-consistency pass
# ----------------------------------------------------------------------

def cli_subcommands() -> list[tuple[str, int]]:
    """(name, line) of every ``sub.add_parser("<name>", ...)`` in cli.py."""
    tree = ast.parse((SRC / "cli.py").read_text(), filename="cli.py")
    found = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_parser"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            found.append((node.args[0].value, node.lineno))
    return found


def knob_domains() -> list[tuple[str, Path, int]]:
    """(domain, file, line) for every ``register_knob_mapping`` call site.

    The ``domain`` argument may be a string literal, a module-level
    string constant (``NETPRIV_KNOB_DOMAIN = "netpriv"``), or absent —
    the registry's default domain is ``"energy"``.
    """
    sites: list[tuple[str, Path, int]] = []
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text()
        if "register_knob_mapping" not in text:
            continue
        tree = ast.parse(text, filename=str(path))
        constants: dict[str, str] = {
            target.id: node.value.value
            for node in tree.body
            if isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
            for target in node.targets
            if isinstance(target, ast.Name)
        }
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and (
                    (isinstance(node.func, ast.Name)
                     and node.func.id == "register_knob_mapping")
                    or (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "register_knob_mapping")
                )
            ):
                continue
            domain_node = None
            for kw in node.keywords:
                if kw.arg == "domain":
                    domain_node = kw.value
            if domain_node is None and len(node.args) >= 3:
                domain_node = node.args[2]
            if domain_node is None:
                domain = "energy"
            elif isinstance(domain_node, ast.Constant) and isinstance(
                domain_node.value, str
            ):
                domain = domain_node.value
            elif isinstance(domain_node, ast.Name) and domain_node.id in constants:
                domain = constants[domain_node.id]
            else:
                continue  # dynamic domain — nothing checkable offline
            sites.append((domain, path, node.lineno))
    return sites


def doc_files() -> list[Path]:
    return sorted(ROOT.glob("*.md")) + sorted((ROOT / "docs").glob("*.md"))


_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_docs_consistency() -> list[str]:
    problems: list[str] = []
    docs = doc_files()
    corpus = "\n".join(p.read_text() for p in docs)

    for name, line in cli_subcommands():
        if name not in corpus:
            problems.append(
                f"{SRC / 'cli.py'}:{line}: CLI subcommand {name!r} is not "
                "mentioned in README.md or docs/"
            )
    seen: set[str] = set()
    for domain, path, line in knob_domains():
        if domain in seen:
            continue
        seen.add(domain)
        if domain not in corpus:
            problems.append(
                f"{path}:{line}: knob domain {domain!r} is not mentioned "
                "in README.md or docs/"
            )

    for doc in docs:
        for i, text_line in enumerate(doc.read_text().splitlines(), start=1):
            for target in _LINK.findall(text_line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                if not (doc.parent / rel).exists():
                    problems.append(
                        f"{doc}:{i}: broken link {target!r} "
                        f"({doc.parent / rel} does not exist)"
                    )
    return problems


def main() -> int:
    if not SRC.is_dir():
        print(f"source tree not found: {SRC}", file=sys.stderr)
        return 2
    files = sorted(p for p in SRC.rglob("*.py") if _is_public_module(p))
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    problems.extend(check_docs_consistency())
    if problems:
        print("\n".join(problems))
        print(f"\n{len(problems)} lint problem(s) in {len(files)} files")
        return 1
    n_docs = len(doc_files())
    print(
        f"docstring lint: {len(files)} public modules clean; "
        f"docs consistency: {len(cli_subcommands())} subcommands, "
        f"{len({d for d, _, _ in knob_domains()})} knob domains, "
        f"{n_docs} doc files clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
