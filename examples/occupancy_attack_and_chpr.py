#!/usr/bin/env python3
"""The Fig. 6 story end-to-end: occupancy attack, then CHPr.

Simulates a two-worker household with an electric water heater, shows how
well the NIOM attack reads the family's schedule off the smart meter, then
re-controls the *same* water heater (same hot-water demand, same tank)
with CHPr and shows the attack collapse to random guessing — at nearly
zero energy cost, because the tank stores heat it had to deliver anyway.

Usage::

    python examples/occupancy_attack_and_chpr.py
"""

import numpy as np

from repro.attacks import ThresholdNIOM, score_occupancy_attack
from repro.datasets import fig6_dataset
from repro.defenses import apply_chpr
from repro.timeseries import SECONDS_PER_DAY


def ascii_day(trace, occupancy, day: int, width: int = 72) -> None:
    """Print a one-line ASCII sketch of a day's power with occupancy marks."""
    t0 = day * SECONDS_PER_DAY
    power = trace.slice_time(t0, t0 + SECONDS_PER_DAY)
    occ = occupancy.slice_time(t0, t0 + SECONDS_PER_DAY)
    bins = np.array_split(power.values, width)
    occ_bins = np.array_split(occ.values, width)
    peak = max(trace.max(), 1.0)
    levels = " .:-=+*#%@"
    line = "".join(
        levels[min(int(len(levels) * (b.mean() / peak) * 3), len(levels) - 1)]
        for b in bins
    )
    marks = "".join("^" if o.mean() > 0.5 else " " for o in occ_bins)
    print(f"    power     |{line}|")
    print(f"    occupied  |{marks}|")


def main() -> None:
    print("Simulating the Fig. 6 home: two workers, 50-gal electric heater...")
    sim = fig6_dataset(n_days=7)
    heater_kwh = sim.appliance_traces["water_heater"].energy_kwh()
    print(f"  hot water demand: {sim.hot_water_draws.sum() / 7:.0f} L/day, "
          f"heater energy {heater_kwh:.1f} kWh/week")

    detector = ThresholdNIOM(window_s=3600.0, night_prior=True)
    before = score_occupancy_attack(
        detector.detect(sim.metered).occupancy, sim.occupancy
    )
    print(f"\nAttack on the original week: MCC {before['mcc']:.3f} "
          f"(paper's original: 0.44)")
    print("  A weekday, original meter (caret = someone home):")
    ascii_day(sim.metered, sim.occupancy, day=1)

    print("\nApplying CHPr (same tank, same hot-water demand)...")
    outcome = apply_chpr(sim, rng=2027)
    after = score_occupancy_attack(
        detector.detect(outcome.visible).occupancy, sim.occupancy
    )
    print(f"  attack on the CHPr week: MCC {after['mcc']:.3f} "
          f"(paper's CHPr: 0.045 — random prediction is 0.0)")
    print(f"  extra energy: {outcome.extra_energy_kwh:+.1f} kWh/week "
          f"({outcome.extra_energy_kwh / heater_kwh:+.0%} of heater energy)")
    print(f"  hot-water comfort violations: "
          f"{outcome.comfort_violation_fraction:.2%} of samples")
    print("  The same weekday, CHPr meter:")
    ascii_day(outcome.visible, sim.occupancy, day=1)

    reduction = before["mcc"] / max(abs(after["mcc"]), 1e-3)
    print(f"\nAttack degraded {reduction:.0f}x. The heater's thermal tank is "
          "doing the masking for free.")


if __name__ == "__main__":
    main()
