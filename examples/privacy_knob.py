#!/usr/bin/env python3
"""The user-controllable privacy knob (Sec. III-E).

The paper's closing proposal: users should hold "an abstract 'knob' ...
adjusted to tradeoff the loss of privacy ... with the value or utility
offered by the service".  This example sweeps the knob over a simulated
home and prints the frontier it traces, alongside the discrete defenses
it interpolates between.

Usage::

    python examples/privacy_knob.py
"""

import numpy as np

from repro.core import PrivacyKnob, sweep_knob
from repro.home import home_b, simulate_home


def bar(value: float, scale: float, width: int = 28) -> str:
    filled = int(np.clip(value / scale, 0.0, 1.0) * width)
    return "#" * filled + "." * (width - filled)


def main() -> None:
    print("Simulating a week of Home-B...")
    sim = simulate_home(home_b(), n_days=7, rng=13)

    knob = PrivacyKnob()
    settings = np.linspace(0.0, 1.0, 6)
    print("Sweeping the privacy knob (this runs the full attack ensemble "
          "at every setting)...\n")
    points = sweep_knob(knob, sim.metered, sim.occupancy, settings, rng=14)

    print(f"{'knob':>6s}  {'attack MCC':>10s}  {'privacy':28s}  "
          f"{'utility':>7s}  {'utility bar':28s}  stages")
    for setting, point in zip(settings, points):
        mcc = point.privacy.worst_case_mcc
        utility = point.utility.composite()
        stages = [type(d).__name__ for d in knob.defenses_for(float(setting))]
        privacy_level = 1.0 - np.clip(mcc, 0.0, 1.0)
        print(f"{setting:6.2f}  {mcc:10.3f}  {bar(privacy_level, 1.0)}  "
              f"{utility:7.2f}  {bar(utility, 1.0)}  {', '.join(stages) or '(pass-through)'}")

    print("\nTurning the knob right buys privacy (attack MCC falls) and")
    print("spends utility (billing/planning analytics degrade) — a single")
    print("continuous control over the tradeoff the paper's discrete")
    print("defenses each fix at one point.")


if __name__ == "__main__":
    main()
