#!/usr/bin/env python3
"""Sec. IV end-to-end: an untrusted IoT fleet on a trusted LAN.

Simulates a 24-device home network, then demonstrates:

1. the fingerprinting attack — device types identified from traffic
   patterns alone;
2. the passive privacy attack — occupancy read off encrypted traffic
   timing;
3. a compromise — a camera joins a DDoS botnet (the Mirai scenario the
   paper cites);
4. the smart-gateway defense — least-privilege blocking plus automatic
   quarantine of the compromised camera.

Usage::

    python examples/network_gateway.py
"""

from repro.attacks import score_occupancy_attack
from repro.netpriv import (
    Compromise,
    CompromiseKind,
    DeviceFingerprinter,
    LanConfig,
    SmartGateway,
    device_window_features,
    inject_compromise,
    occupancy_from_traffic,
    simulate_lan,
)
from repro.timeseries import SECONDS_PER_DAY

TRAIN_S = 2 * SECONDS_PER_DAY


def main() -> None:
    print("Simulating a 4-day home LAN...")
    lan = simulate_lan(LanConfig(), n_days=4, rng=11)
    print(f"  {len(lan.devices)} devices, {len(lan.log):,} flows")

    print("\n[attack 1] Fingerprinting device types from flow features...")
    train = device_window_features(lan.log.in_window(0, TRAIN_S), TRAIN_S)
    fingerprinter = DeviceFingerprinter(rng=0).fit(train, lan.devices)
    full = device_window_features(lan.log, lan.duration_s)
    hits = 0
    for device in lan.devices:
        guess = fingerprinter.predict_device(full[device.device_id][48:])
        hits += guess == device.device_type.value
    print(f"  identified {hits}/{len(lan.devices)} devices' types "
          "from traffic patterns alone")

    print("\n[attack 2] Reading occupancy off encrypted traffic timing...")
    occupancy = occupancy_from_traffic(lan.log, lan.devices, lan.duration_s)
    scores = score_occupancy_attack(occupancy, lan.occupancy)
    print(f"  occupancy inference: accuracy {scores['accuracy']:.0%}, "
          f"MCC {scores['mcc']:.2f} — no payloads were inspected")

    print("\n[compromise] camera-1 joins a DDoS botnet on day 3...")
    compromise = Compromise("camera-1", CompromiseKind.DDOS, start_s=2.5 * SECONDS_PER_DAY)
    attacked = inject_compromise(
        lan.log, compromise, lan.duration_s,
        [d.device_id for d in lan.devices], rng=3,
    )

    print("\n[defense] Smart gateway: learn baselines, enforce least privilege...")
    gateway = SmartGateway()
    device_types = {d.device_id: d.device_type.value for d in lan.devices}
    gateway.learn_baselines(
        lan.log.in_window(0, TRAIN_S), TRAIN_S, device_types=device_types
    )
    passed, report = gateway.enforce(attacked, lan.duration_s)
    if report.detected("camera-1"):
        delay_h = report.detection_delay_s("camera-1", compromise.start_s) / 3600.0
        print(f"  camera-1 quarantined {delay_h:.1f} h after compromise")
    dropped = len(attacked) - len(passed) - report.blocked_lateral
    print(f"  flows allowed {report.allowed:,}, "
          f"lateral blocked {report.blocked_lateral}, "
          f"quarantine-dropped {dropped:,}")
    false_positives = [d for d in report.quarantined_devices if d != "camera-1"]
    print(f"  false quarantines: {false_positives or 'none'}")

    print("\nThe gateway needed no payload inspection and no vendor")
    print("cooperation — exactly the 'smart gateway router' the paper")
    print("proposes. (Passive monitoring by a compromised device remains")
    print("invisible; least-privilege isolation is the only remedy.)")


if __name__ == "__main__":
    main()
