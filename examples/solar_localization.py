#!/usr/bin/env python3
"""Locate an "anonymous" solar home from its generation trace.

The Sec. II-B scenario: a utility or vendor releases a solar generation
trace with names and geo-coordinates stripped (as the DOE Voluntary Code
of Conduct permits).  This example shows why that anonymization fails:

* SunSpot recovers the location from sunrise/sunset geometry in the
  1-minute data;
* Weatherman recovers it from the weather signature in 1-hour data,
  using only a public weather-station database;
* SunDance shows that even publishing only *net* meter data does not
  help — generation can be separated back out first.

Usage::

    python examples/solar_localization.py
"""

import numpy as np

from repro.solar import (
    LatLon,
    SolarSite,
    SunSpot,
    WeatherField,
    Weatherman,
    WeatherStationDB,
    simulate_generation,
)

SECRET_LOCATION = LatLon(39.74, -104.99)  # the home the data belongs to


def main() -> None:
    print("A homeowner near Denver uploads a year of PV data 'anonymously'...")
    weather = WeatherField()
    site = SolarSite("anonymous", SECRET_LOCATION)
    generation = simulate_generation(site, 365, 60.0, weather, rng=7)
    print(f"  trace: {len(generation):,} one-minute samples, "
          f"{generation.energy_kwh():.0f} kWh/year — no coordinates attached")

    print("\nSunSpot (solar signature, 1-minute data)...")
    sunspot_result = SunSpot().localize(generation)
    print(f"  estimate ({sunspot_result.estimate.lat:.2f}, "
          f"{sunspot_result.estimate.lon:.2f}) — "
          f"{sunspot_result.error_km(SECRET_LOCATION):.1f} km from the home")

    print("\nWeatherman (weather signature, 1-HOUR data + public stations)...")
    stations = WeatherStationDB(weather)
    print(f"  correlating against {len(stations)} public weather stations...")
    hourly = generation.resample(3600.0)
    weatherman_result = Weatherman(stations).localize(hourly)
    print(f"  estimate ({weatherman_result.estimate.lat:.2f}, "
          f"{weatherman_result.estimate.lon:.2f}) — "
          f"{weatherman_result.error_km(SECRET_LOCATION):.1f} km from the home")

    print("\nStripping the geo-tag did not anonymize the data: the location")
    print("is embedded in the physics of the trace itself (the paper's")
    print("Fig. 5 argument). Combine with satellite rooftop-array detection")
    print("and the specific house is identified.")


if __name__ == "__main__":
    main()
