#!/usr/bin/env python3
"""Quickstart: simulate a home, attack its meter data, defend it.

Runs in under a minute and touches the three layers of the library:

1. simulate a smart home (appliances + occupants + smart meter);
2. run the NIOM occupancy attack on the metered data the utility sees;
3. apply defenses and watch the attack collapse.

Usage::

    python examples/quickstart.py
"""

from repro.attacks import ThresholdNIOM, score_occupancy_attack
from repro.core import run_pipeline
from repro.home import home_b, simulate_home


def main() -> None:
    print("Simulating Fig. 1's Home-B for one week (1-minute smart meter)...")
    sim = simulate_home(home_b(), n_days=7, rng=42)
    print(f"  mean load {sim.metered.mean():.0f} W, "
          f"peak {sim.metered.max() / 1000:.1f} kW, "
          f"energy {sim.metered.energy_kwh():.1f} kWh")
    print(f"  ground-truth occupancy: home {sim.occupancy.fraction_true():.0%} "
          "of the time")

    print("\nAttacking the metered trace with NIOM (no ground truth used)...")
    detector = ThresholdNIOM(window_s=3600.0, night_prior=True)
    detected = detector.detect(sim.metered)
    scores = score_occupancy_attack(detected.occupancy, sim.occupancy)
    print(f"  occupancy detection accuracy {scores['accuracy']:.0%}, "
          f"MCC {scores['mcc']:.2f} "
          "(paper: 70-90% accuracy across homes)")

    print("\nSweeping every registered defense through the pipeline...")
    result = run_pipeline(sim, rng=0)
    print(f"  {'defense':14s} {'attack MCC':>10s} {'utility':>8s} {'extra kWh':>10s}")
    base = result.baseline
    print(f"  {'(none)':14s} {base.privacy.worst_case_mcc:10.3f} "
          f"{base.utility.composite():8.2f} {0.0:10.1f}")
    for name, point in sorted(result.defenses.items()):
        print(f"  {name:14s} {point.privacy.worst_case_mcc:10.3f} "
              f"{point.utility.composite():8.2f} {point.extra_energy_kwh:10.1f}")

    print("\nEach defense sits at a different point of the privacy/utility/")
    print("cost tradeoff — the observation that motivates the paper's")
    print("user-controllable privacy knob (see examples/privacy_knob.py).")


if __name__ == "__main__":
    main()
