"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import load_trace_csv


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "nill" in out
        assert "threshold-15m" in out

    def test_simulate_writes_csv(self, tmp_path, capsys):
        out_path = tmp_path / "trace.csv"
        assert main(["simulate", "--home", "home-a", "--days", "1",
                     "--seed", "3", "--out", str(out_path)]) == 0
        trace = load_trace_csv(out_path)
        assert len(trace) == 1440
        assert trace.period_s == pytest.approx(60.0)

    def test_simulate_deterministic(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        main(["simulate", "--days", "1", "--seed", "9", "--out", str(a)])
        main(["simulate", "--days", "1", "--seed", "9", "--out", str(b)])
        assert np.allclose(load_trace_csv(a).values, load_trace_csv(b).values)

    def test_attack_reports_ensemble(self, capsys):
        assert main(["attack", "--home", "home-a", "--days", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "worst case" in out
        assert "threshold-15m" in out

    def test_defend_reports_tradeoff(self, capsys):
        assert main(["defend", "dp-laplace", "--home", "home-a",
                     "--days", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "attack mcc" in out
        assert "utility" in out

    def test_knob_sweep(self, capsys):
        assert main(["knob", "--days", "4", "--seed", "2", "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 4  # header + 3 settings

    def test_unknown_defense_raises(self):
        with pytest.raises(Exception):
            main(["defend", "no-such-defense", "--days", "4"])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
