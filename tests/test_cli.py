"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import load_trace_csv


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "nill" in out
        assert "threshold-15m" in out

    def test_simulate_writes_csv(self, tmp_path, capsys):
        out_path = tmp_path / "trace.csv"
        assert main(["simulate", "--home", "home-a", "--days", "1",
                     "--seed", "3", "--out", str(out_path)]) == 0
        trace = load_trace_csv(out_path)
        assert len(trace) == 1440
        assert trace.period_s == pytest.approx(60.0)

    def test_simulate_deterministic(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        main(["simulate", "--days", "1", "--seed", "9", "--out", str(a)])
        main(["simulate", "--days", "1", "--seed", "9", "--out", str(b)])
        assert np.allclose(load_trace_csv(a).values, load_trace_csv(b).values)

    def test_attack_reports_ensemble(self, capsys):
        assert main(["attack", "--home", "home-a", "--days", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "worst case" in out
        assert "threshold-15m" in out

    def test_defend_reports_tradeoff(self, capsys):
        assert main(["defend", "dp-laplace", "--home", "home-a",
                     "--days", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "attack mcc" in out
        assert "utility" in out

    def test_knob_sweep(self, capsys):
        assert main(["knob", "--days", "4", "--seed", "2", "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 4  # header + 3 settings

    def test_knob_reports_all_columns(self, capsys):
        assert main(["knob", "--days", "2", "--seed", "5", "--steps", "2"]) == 0
        header, first, *_ = capsys.readouterr().out.splitlines()
        for column in ("knob", "attack_mcc", "utility", "extra_kwh"):
            assert column in header
        # one numeric row per setting, starting at the open dial
        assert float(first.split()[0]) == 0.0

    def test_knob_deterministic(self, capsys):
        assert main(["knob", "--days", "2", "--seed", "3", "--steps", "2"]) == 0
        first = capsys.readouterr().out
        assert main(["knob", "--days", "2", "--seed", "3", "--steps", "2"]) == 0
        assert capsys.readouterr().out == first

    def test_info_lists_knob_mappings(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "knob mappings" in out
        assert "name@setting" in out

    def test_unknown_defense_raises(self):
        with pytest.raises(Exception):
            main(["defend", "no-such-defense", "--days", "4"])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


SWEEP_ARGS = [
    "sweep", "--defenses", "nill,smoothing", "--settings", "0,1",
    "--homes", "2", "--days", "1", "--mix", "home-a,home-b",
]


class TestSweepCLI:
    def test_inline_grid_runs(self, capsys):
        assert main(SWEEP_ARGS) == 0
        out = capsys.readouterr().out
        assert "shard 1/1 runs 4/4 cells" in out
        assert "nill" in out and "smoothing" in out
        assert "ran 8/8 home jobs" in out

    def test_grid_file_runs(self, tmp_path, capsys):
        grid = tmp_path / "grid.toml"
        grid.write_text(
            'defenses = ["nill"]\nsettings = [0.0, 1.0]\n'
            'n_homes = 2\ndays = 1\nmix = ["home-a"]\n'
        )
        assert main(["sweep", "--grid", str(grid)]) == 0
        assert "2/2 cells" in capsys.readouterr().out

    def test_csv_json_round_trip(self, tmp_path, capsys):
        from repro.fleet import FrontierReport

        csv_path = tmp_path / "frontier.csv"
        json_path = tmp_path / "frontier.json"
        assert main(SWEEP_ARGS + ["--csv", str(csv_path),
                                  "--json", str(json_path)]) == 0
        report = FrontierReport.from_json(json_path)
        assert len(report.points) == 4
        lines = csv_path.read_text().splitlines()
        assert tuple(lines[0].split(",")) == FrontierReport.CSV_HEADER
        assert len(lines) == 1 + len(report.points)
        # CSV rows carry the same means the JSON round-tripped
        for line, point in zip(lines[1:], report.points):
            cells = line.split(",")
            assert cells[0] == point.defense
            assert float(cells[5]) == pytest.approx(point.mcc.mean)

    def test_telemetry_output(self, tmp_path, capsys):
        tel = tmp_path / "tel.json"
        assert main(SWEEP_ARGS + ["--telemetry", str(tel)]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        import json

        doc = json.loads(tel.read_text())
        assert "stage.job" in doc["timers"]

    def test_shard_validation(self, capsys):
        for bad in ("0/2", "3/2", "x/y", "2"):
            assert main(SWEEP_ARGS + ["--shard", bad]) == 2
            assert "shard" in capsys.readouterr().err

    def test_shards_split_cells(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(SWEEP_ARGS + ["--shard", "1/2", "--cache-dir", cache]) == 0
        assert "shard 1/2 runs 2/4 cells" in capsys.readouterr().out
        # the other shard plus the cache completes the grid
        assert main(SWEEP_ARGS + ["--cache-dir", cache]) == 0
        assert "ran 4/8 home jobs (4 cached)" in capsys.readouterr().out

    def test_bad_grid_file_exits_2(self, tmp_path, capsys):
        grid = tmp_path / "grid.toml"
        grid.write_text('defenses = ["nill"]\nsettings = [0.5]\nfrobs = 1\n')
        assert main(["sweep", "--grid", str(grid)]) == 2
        assert "unknown grid keys" in capsys.readouterr().err

    def test_missing_grid_source_exits_2(self, capsys):
        assert main(["sweep"]) == 2
        assert "--grid FILE or --defenses" in capsys.readouterr().err

    def test_grid_and_inline_flags_conflict(self, tmp_path, capsys):
        grid = tmp_path / "grid.toml"
        grid.write_text('defenses = ["nill"]\nsettings = [0.5]\n')
        assert main(["sweep", "--grid", str(grid),
                     "--defenses", "nill"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_unmapped_defense_exits_2(self, capsys):
        assert main(["sweep", "--defenses", "no-such", "--homes", "1"]) == 2
        assert "no knob mapping" in capsys.readouterr().err

    def test_bad_setting_exits_2(self, capsys):
        assert main(["sweep", "--defenses", "nill", "--settings", "0,2",
                     "--homes", "1"]) == 2
        assert "outside" in capsys.readouterr().err

    def test_check_monotone_passes_on_sane_grid(self, capsys):
        assert main(SWEEP_ARGS + ["--check-monotone"]) == 0
        assert "frontier monotonicity: ok" in capsys.readouterr().out
