"""Edge-case and failure-injection tests across packages."""

import numpy as np
import pytest

from repro.defenses.dp import laplace_noise
from repro.home import (
    DrawConfig,
    MeterConfig,
    OccupancyConfig,
    SmartMeter,
    generate_draws,
    simulate_occupancy,
)
from repro.solar import LatLon, WeatherField, WeatherStationDB
from repro.timeseries import (
    PowerTrace,
    constant,
    detect_edges,
    pair_edges,
    steady_states,
)


class TestEdgeDetectionEdgeCases:
    def test_pair_edges_respects_max_gap(self):
        values = [0.0] * 5 + [1000.0] * 200 + [0.0] * 5
        trace = PowerTrace(np.asarray(values), 60.0)
        edges = detect_edges(trace, min_delta_w=500.0)
        assert pair_edges(edges, tolerance_w=100.0, max_gap_s=60.0) == []
        assert len(pair_edges(edges, tolerance_w=100.0, max_gap_s=60.0 * 500)) == 1

    def test_steady_states_min_duration_filters(self):
        values = [100.0] * 20 + [900.0] * 2 + [100.0] * 20
        trace = PowerTrace(np.asarray(values), 60.0)
        states = steady_states(trace, min_delta_w=300.0, min_duration_samples=5)
        assert all(s.duration_s >= 5 * 60.0 for s in states)

    def test_detect_edges_invalid_params(self):
        trace = constant(1.0, 10, 60.0)
        with pytest.raises(ValueError):
            detect_edges(trace, min_delta_w=0.0)
        with pytest.raises(ValueError):
            detect_edges(trace, min_delta_w=10.0, settle_samples=0)

    def test_monotone_ramp_has_no_pairs(self):
        # a slow ramp: every edge is rising, nothing to pair
        values = np.arange(0.0, 5000.0, 100.0)
        trace = PowerTrace(values, 60.0)
        edges = detect_edges(trace, min_delta_w=50.0)
        assert pair_edges(edges) == []


class TestMeterFailureInjection:
    def test_dropout_carries_forward(self):
        rng_trace = np.random.default_rng(0).uniform(0, 1000, 5000)
        trace = PowerTrace(rng_trace, 60.0)
        meter = SmartMeter(MeterConfig(noise_std_w=0.0, quantum_w=0.0,
                                       dropout_probability=0.3))
        observed = meter.observe(trace, rng=1)
        repeats = np.sum(observed.values[1:] == observed.values[:-1])
        assert repeats > 1000  # many carried-forward samples

    def test_full_dropout_invalid(self):
        with pytest.raises(ValueError):
            MeterConfig(dropout_probability=1.0)

    def test_zero_noise_zero_quantum_is_exact(self):
        trace = constant(123.456, 100, 60.0)
        meter = SmartMeter(MeterConfig(noise_std_w=0.0, quantum_w=0.0))
        observed = meter.observe(trace, rng=2)
        assert np.allclose(observed.values, 123.456)


class TestDrawsAndOccupancyEdgeCases:
    def test_draw_config_appliance_draws(self):
        occ = simulate_occupancy(OccupancyConfig(), 10, 60.0, rng=0)
        few = generate_draws(occ, np.random.default_rng(1),
                             DrawConfig(appliance_draws_per_day=0.0))
        many = generate_draws(occ, np.random.default_rng(1),
                              DrawConfig(appliance_draws_per_day=5.0))
        assert many.sum() > few.sum()

    def test_single_day_occupancy(self):
        occ = simulate_occupancy(OccupancyConfig(), 1, 60.0, rng=5)
        assert len(occ) == 1440

    def test_occupancy_invalid_period(self):
        with pytest.raises(ValueError):
            simulate_occupancy(OccupancyConfig(), 1, 7.0, rng=0)


class TestDPNoiseEdgeCases:
    def test_zero_scale_is_zero(self):
        rng = np.random.default_rng(0)
        assert np.all(laplace_noise(0.0, 10, rng) == 0.0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            laplace_noise(-1.0, 10, np.random.default_rng(0))

    def test_scale_controls_spread(self):
        rng = np.random.default_rng(1)
        small = laplace_noise(10.0, 5000, rng)
        large = laplace_noise(1000.0, 5000, rng)
        assert large.std() > 10 * small.std()


class TestWeatherDBEdgeCases:
    def test_station_readings_match_field(self):
        field = WeatherField()
        db = WeatherStationDB(field, (40.0, 41.0), (-100.0, -99.0), 1.0)
        station = db.stations[0]
        times = np.arange(0, 86400, 3600.0)
        assert np.array_equal(
            db.readings(station, times), field.cloud_cover(station.location, times)
        )

    def test_cloud_at_interpolates_anywhere(self):
        field = WeatherField()
        db = WeatherStationDB(field, (40.0, 41.0), (-100.0, -99.0), 1.0)
        times = np.arange(0, 86400, 3600.0)
        off_grid = LatLon(40.37, -99.61)
        values = db.cloud_at(off_grid, times)
        assert np.all((values >= 0.0) & (values <= 1.0))

    def test_invalid_spacing_rejected(self):
        with pytest.raises(ValueError):
            WeatherStationDB(WeatherField(), spacing_deg=0.0)
