"""Tests for the NILM family: PowerPlay, FHMM, Hart."""

import numpy as np
import pytest

from repro.attacks import (
    FHMMConfig,
    FHMMDisaggregator,
    HartDisaggregator,
    LoadKind,
    LoadSignature,
    PowerPlayTracker,
    align_truth_to_meter,
    disaggregation_error,
    fig2_signatures,
)
from repro.home import FIG2_DEVICES, fig2_home, simulate_home
from repro.home.household import HomeConfig
from repro.home.presets import _fridge, _freezer, _hrv, _toaster
from repro.timeseries import PowerTrace, SECONDS_PER_DAY, constant


@pytest.fixture(scope="module")
def fig2_sim():
    return simulate_home(fig2_home(), 14, rng=7)


@pytest.fixture(scope="module")
def mini_sim():
    config = HomeConfig(name="mini", appliances=(_fridge(), _freezer(), _hrv()))
    return simulate_home(config, 7, rng=3)


class TestErrorMetric:
    def test_perfect_tracking_is_zero(self):
        truth = constant(100.0, 100, 60.0)
        assert disaggregation_error(truth, truth) == 0.0

    def test_always_zero_estimate_is_one(self):
        truth = constant(100.0, 100, 60.0)
        zero = truth.with_values(np.zeros(100))
        assert disaggregation_error(zero, truth) == pytest.approx(1.0)

    def test_unused_device_rejected(self):
        zero = constant(0.0, 10, 60.0)
        with pytest.raises(ValueError):
            disaggregation_error(zero, zero)

    def test_period_mismatch_rejected(self):
        with pytest.raises(ValueError):
            disaggregation_error(constant(1.0, 10, 60.0), constant(1.0, 10, 120.0))


class TestLoadSignature:
    def test_magnitude_matching(self):
        sig = LoadSignature("x", LoadKind.RESISTIVE, 1000.0, power_tolerance=0.1)
        assert sig.matches_magnitude(1050.0)
        assert sig.matches_magnitude(-950.0)
        assert not sig.matches_magnitude(1200.0)

    def test_compound_includes_motor(self):
        sig = LoadSignature(
            "dryer", LoadKind.COMPOUND, 4800.0, motor_power_w=300.0, power_tolerance=0.1
        )
        assert sig.matches_magnitude(5100.0)
        assert not sig.matches_magnitude(4000.0)

    def test_cyclic_requires_period(self):
        with pytest.raises(ValueError):
            LoadSignature("f", LoadKind.CYCLIC, 150.0)

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            LoadSignature("x", LoadKind.RESISTIVE, 100.0, power_tolerance=1.5)


class TestPowerPlay:
    def test_tracks_cyclic_loads_in_mini_home(self, mini_sim):
        tracker = PowerPlayTracker(fig2_signatures())
        result = tracker.track(mini_sim.metered)
        for device in ("fridge", "freezer"):
            truth = align_truth_to_meter(
                mini_sim.appliance_traces[device], mini_sim.metered
            )
            assert disaggregation_error(result.appliance(device), truth) < 0.45

    def test_fig2_home_errors_reasonable(self, fig2_sim):
        tracker = PowerPlayTracker(fig2_signatures())
        result = tracker.track(fig2_sim.metered)
        for device in FIG2_DEVICES:
            truth = align_truth_to_meter(
                fig2_sim.appliance_traces[device], fig2_sim.metered
            )
            error = disaggregation_error(result.appliance(device), truth)
            assert error < 0.8, f"{device}: {error}"

    def test_big_loads_tracked_best(self, fig2_sim):
        tracker = PowerPlayTracker(fig2_signatures())
        result = tracker.track(fig2_sim.metered)
        errors = {}
        for device in FIG2_DEVICES:
            truth = align_truth_to_meter(
                fig2_sim.appliance_traces[device], fig2_sim.metered
            )
            errors[device] = disaggregation_error(result.appliance(device), truth)
        assert errors["dryer"] < errors["freezer"]
        assert errors["toaster"] < errors["freezer"]

    def test_estimates_never_negative(self, fig2_sim):
        result = PowerPlayTracker(fig2_signatures()).track(fig2_sim.metered)
        for trace in result.estimates.values():
            assert trace.min() >= 0.0

    def test_duplicate_signatures_rejected(self):
        sig = fig2_signatures()[0]
        with pytest.raises(ValueError):
            PowerPlayTracker([sig, sig])

    def test_unknown_appliance_raises(self, fig2_sim):
        result = PowerPlayTracker(fig2_signatures()).track(fig2_sim.metered)
        with pytest.raises(KeyError):
            result.appliance("spaceship")


class TestFHMM:
    @pytest.fixture(scope="class")
    def trained(self, fig2_sim):
        train = {
            d: fig2_sim.appliance_traces[d].slice_time(0, 7 * SECONDS_PER_DAY)
            for d in FIG2_DEVICES
        }
        model = FHMMDisaggregator(
            FHMMConfig(states_per_appliance={"dryer": 3}), rng=0
        ).fit(train)
        test_meter = fig2_sim.metered.slice_time(
            7 * SECONDS_PER_DAY, 14 * SECONDS_PER_DAY
        )
        return model, model.disaggregate(test_meter), test_meter

    def test_all_devices_estimated(self, trained):
        _, result, _ = trained
        assert set(result.estimates) == set(FIG2_DEVICES)

    def test_small_loads_struggle_more_than_powerplay(self, fig2_sim, trained):
        """The Fig. 2 shape: model-driven beats learned FHMM on small loads."""
        _, fhmm_result, test_meter = trained
        pp_result = PowerPlayTracker(fig2_signatures()).track(fig2_sim.metered)
        wins = 0
        for device in ("toaster", "fridge", "freezer", "hrv"):
            truth_full = align_truth_to_meter(
                fig2_sim.appliance_traces[device], fig2_sim.metered
            )
            pp_err = disaggregation_error(pp_result.appliance(device), truth_full)
            truth_test = align_truth_to_meter(
                fig2_sim.appliance_traces[device].slice_time(
                    7 * SECONDS_PER_DAY, 14 * SECONDS_PER_DAY
                ),
                test_meter,
            )
            fhmm_err = disaggregation_error(fhmm_result.appliance(device), truth_test)
            if pp_err < fhmm_err:
                wins += 1
        assert wins >= 3  # PowerPlay wins on most small loads

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            FHMMDisaggregator().disaggregate(constant(100.0, 100, 60.0))

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            FHMMDisaggregator().fit({})


class TestHart:
    def test_tracks_distinct_resistive_loads(self):
        # synthetic aggregate: 1000 W and 2500 W devices with clean cycles
        rng = np.random.default_rng(0)
        n = 3 * 1440
        a = np.zeros(n)
        b = np.zeros(n)
        for start in range(60, n - 60, 480):
            a[start : start + 20] = 1000.0
        for start in range(200, n - 120, 720):
            b[start : start + 60] = 2500.0
        aggregate = PowerTrace(a + b + rng.normal(0, 5, n), 60.0)
        hart = HartDisaggregator({"kettle": 1000.0, "heater": 2500.0}, rng=1)
        result = hart.disaggregate(aggregate)
        err_a = disaggregation_error(result.appliance("kettle"), PowerTrace(a, 60.0))
        err_b = disaggregation_error(result.appliance("heater"), PowerTrace(b, 60.0))
        assert err_a < 0.3
        assert err_b < 0.3

    def test_empty_appliances_rejected(self):
        with pytest.raises(ValueError):
            HartDisaggregator({})

    def test_no_matching_pairs_gives_zero_estimates(self):
        flat = constant(100.0, 1440, 60.0)
        hart = HartDisaggregator({"kettle": 1000.0}, rng=0)
        result = hart.disaggregate(flat)
        assert result.appliance("kettle").max() == 0.0
