"""Degraded-feed hardening: FeedGuard policies, attack quarantine,
checkpoint/resume, and the CLI health contract.

The load-bearing contracts (ISSUE 7 acceptance criteria):

* **clean-feed invariance** — a default-config guard on an uncorrupted
  replay forwards the same array objects untouched, so every bitwise
  streamed-vs-batch pin holds with the guard on-path;
* **kill/resume** — a checkpointed run killed mid-stream and resumed
  produces a report bitwise-identical (results, total_samples) to an
  uninterrupted run, at chunk size 1 and 60, and through the CLI with a
  real ``os._exit`` kill;
* **quarantine** — one crashing attack never takes the session down:
  the rest finalize, the failure is recorded, and the CLI exits nonzero.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.cli import main
from repro.stream import (
    STREAM_ATTACKS,
    Checkpointer,
    FeedDead,
    FeedGuard,
    GuardPolicy,
    StreamClock,
    StreamSession,
    TraceReplaySource,
    has_checkpoint,
    load_checkpoint,
    make_stream_attack,
    run_stream,
    tagged_chunks,
)
from repro.stream.checkpoint import STREAM_CHECKPOINT_VERSION, checkpoint_path
from repro.timeseries import PowerTrace


class _Sink:
    """Records what the guard delivers (array identity preserved)."""

    def __init__(self):
        self.chunks: list[np.ndarray] = []
        self.resyncs: list[int] = []

    def push(self, values):
        self.chunks.append(values)

    def resync(self, gap_samples):
        self.resyncs.append(gap_samples)

    @property
    def delivered(self) -> np.ndarray:
        if not self.chunks:
            return np.empty(0)
        return np.concatenate(self.chunks)


def _trace(n: int = 1200, seed: int = 0) -> PowerTrace:
    rng = np.random.default_rng(seed)
    values = np.abs(rng.normal(200.0, 40.0, n))
    for start in range(100, n - 150, 180):
        values[start : start + 90] += rng.choice([0.0, 400.0, 1200.0])
    return PowerTrace(values, period_s=60.0)


class TestGuardPolicy:
    def test_defaults_valid(self):
        policy = GuardPolicy()
        assert policy.value_policy == "hold-last"
        assert policy.gap_policy == "resync"
        assert policy.max_gap_samples is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"value_policy": "nuke"},
            {"gap_policy": "panic"},
            {"max_gap_samples": 0},
            {"max_gap_samples": -3},
        ],
    )
    def test_rejects_bad_settings(self, kwargs):
        with pytest.raises(ValueError):
            GuardPolicy(**kwargs)


class TestValuePolicies:
    def test_clean_chunk_forwarded_by_identity(self):
        # The clean-feed invariance pin: no copy, no modification.
        sink = _Sink()
        guard = FeedGuard(sink)
        chunk = np.array([100.0, 200.0, 300.0])
        guard.push(chunk)
        assert sink.chunks[0] is chunk
        assert guard.stats.quarantined_values == 0

    def test_hold_last_forward_fills(self):
        sink = _Sink()
        guard = FeedGuard(sink, GuardPolicy(value_policy="hold-last"))
        guard.push(np.array([100.0, np.nan, np.inf, 120.0, -5.0]))
        assert np.array_equal(
            sink.delivered, [100.0, 100.0, 100.0, 120.0, 120.0]
        )
        assert guard.stats.quarantined_values == 3

    def test_hold_last_spans_chunk_boundary(self):
        sink = _Sink()
        guard = FeedGuard(sink, GuardPolicy(value_policy="hold-last"))
        guard.push(np.array([100.0, 140.0]))
        guard.push(np.array([np.nan, 150.0]))
        assert np.array_equal(sink.delivered, [100.0, 140.0, 140.0, 150.0])

    def test_hold_last_with_no_history_uses_zero(self):
        sink = _Sink()
        guard = FeedGuard(sink, GuardPolicy(value_policy="hold-last"))
        guard.push(np.array([np.nan, 75.0]))
        assert np.array_equal(sink.delivered, [0.0, 75.0])

    def test_zero_fill(self):
        sink = _Sink()
        guard = FeedGuard(sink, GuardPolicy(value_policy="zero-fill"))
        guard.push(np.array([np.nan, 50.0, -1.0]))
        assert np.array_equal(sink.delivered, [0.0, 50.0, 0.0])

    def test_drop_shortens_but_clock_advances(self):
        sink = _Sink()
        guard = FeedGuard(sink, GuardPolicy(value_policy="drop"))
        guard.push(np.array([np.nan, 50.0, np.inf]))
        assert np.array_equal(sink.delivered, [50.0])
        # wall clock covers all three: the next in-order chunk is at 3
        assert guard.position == 3
        guard.push(np.array([60.0]))
        assert guard.stats.gaps == 0

    def test_all_bad_chunk_under_drop_delivers_nothing(self):
        sink = _Sink()
        guard = FeedGuard(sink, GuardPolicy(value_policy="drop"))
        guard.push(np.array([np.nan, np.nan]))
        assert sink.chunks == []
        assert guard.position == 2


class TestOrdering:
    def test_duplicate_chunk_rejected(self):
        sink = _Sink()
        guard = FeedGuard(sink)
        chunk = np.array([1.0, 2.0, 3.0])
        guard.push(chunk, at=0)
        guard.push(chunk, at=0)
        assert np.array_equal(sink.delivered, chunk)
        assert guard.stats.rejected_chunks == 1
        assert guard.stats.rejected_samples == 3

    def test_straddling_chunk_trimmed_to_novel_suffix(self):
        sink = _Sink()
        guard = FeedGuard(sink)
        guard.push(np.array([1.0, 2.0, 3.0]), at=0)
        guard.push(np.array([30.0, 40.0, 50.0]), at=2)  # overlaps sample 2
        assert np.array_equal(sink.delivered, [1.0, 2.0, 3.0, 40.0, 50.0])
        assert guard.stats.trimmed_samples == 1

    def test_gap_resync_resets_sink(self):
        sink = _Sink()
        guard = FeedGuard(sink, GuardPolicy(gap_policy="resync"))
        guard.push(np.array([1.0, 2.0]), at=0)
        guard.push(np.array([9.0]), at=7)
        assert sink.resyncs == [5]
        assert guard.stats.gaps == 1
        assert guard.stats.gap_samples == 5
        assert guard.position == 8

    def test_gap_hold_delivers_contiguously(self):
        sink = _Sink()
        guard = FeedGuard(sink, GuardPolicy(gap_policy="hold"))
        guard.push(np.array([1.0]), at=0)
        guard.push(np.array([9.0]), at=5)
        assert sink.resyncs == []
        assert np.array_equal(sink.delivered, [1.0, 9.0])
        assert guard.position == 6  # wall clock, not sample count

    def test_gap_fill_synthesizes_last_value(self):
        sink = _Sink()
        guard = FeedGuard(sink, GuardPolicy(gap_policy="fill"))
        guard.push(np.array([1.0, 7.0]), at=0)
        guard.push(np.array([9.0]), at=5)
        assert np.array_equal(sink.delivered, [1.0, 7.0, 7.0, 7.0, 7.0, 9.0])
        assert guard.stats.filled_samples == 3

    def test_watchdog_declares_feed_dead(self):
        sink = _Sink()
        guard = FeedGuard(sink, GuardPolicy(max_gap_samples=3))
        guard.push(np.array([1.0]), at=0)
        with pytest.raises(FeedDead):
            guard.push(np.array([9.0]), at=10)
        assert guard.stats.feed_dead
        # a dead feed stays dead
        with pytest.raises(FeedDead):
            guard.push(np.array([2.0]), at=1)

    def test_gap_at_watchdog_boundary_survives(self):
        sink = _Sink()
        guard = FeedGuard(sink, GuardPolicy(max_gap_samples=5))
        guard.push(np.array([1.0]), at=0)
        guard.push(np.array([2.0]), at=6)  # gap of exactly 5: allowed
        assert not guard.stats.feed_dead

    def test_rejects_bad_input(self):
        guard = FeedGuard(_Sink())
        with pytest.raises(ValueError):
            guard.push(np.ones((2, 2)))
        with pytest.raises(ValueError):
            guard.push(np.ones(2), at=-1)

    def test_empty_chunk_is_a_noop(self):
        sink = _Sink()
        guard = FeedGuard(sink)
        assert guard.push(np.empty(0)) == 0
        assert guard.position == 0
        assert sink.chunks == []

    def test_state_round_trip(self):
        guard = FeedGuard(_Sink(), GuardPolicy(gap_policy="hold"))
        guard.push(np.array([1.0, np.nan, 3.0]))
        state = guard.state_dict()
        fresh = FeedGuard(_Sink(), GuardPolicy(gap_policy="hold"))
        fresh.load_state(state)
        assert fresh.position == guard.position
        assert fresh.stats.as_dict() == guard.stats.as_dict()

    def test_state_rejects_policy_mismatch(self):
        guard = FeedGuard(_Sink(), GuardPolicy(gap_policy="hold"))
        state = guard.state_dict()
        other = FeedGuard(_Sink(), GuardPolicy(gap_policy="fill"))
        with pytest.raises(ValueError):
            other.load_state(state)


class _BoomAttack:
    """Registered crasher: raises at a configurable protocol stage."""

    def __init__(self, stage: str = "push", after_samples: int = 0):
        self.params = {"stage": stage, "after_samples": after_samples}
        self.stage = stage
        self.after_samples = after_samples
        self._seen = 0

    def open(self, clock):
        pass

    def push(self, values):
        self._seen += len(values)
        if self.stage == "push" and self._seen > self.after_samples:
            raise RuntimeError("boom in push")

    def resync(self, gap_samples=0):
        if self.stage == "resync":
            raise RuntimeError("boom in resync")

    def finalize(self):
        if self.stage == "finalize":
            raise RuntimeError("boom in finalize")
        return {"seen": self._seen}

    def state_dict(self):
        return {"seen": self._seen}

    def load_state(self, state):
        self._seen = state["seen"]


@pytest.fixture
def boom_registry():
    STREAM_ATTACKS["boom"] = _BoomAttack
    try:
        yield
    finally:
        STREAM_ATTACKS.pop("boom", None)


class TestQuarantine:
    def test_crashing_push_is_isolated(self, boom_registry):
        trace = _trace(600)
        report = run_stream(
            TraceReplaySource(trace),
            attacks=("edges", "niom", "boom"),
            chunk_samples=60,
            attack_kwargs={"boom": {"after_samples": 120}},
        )
        assert not report.ok
        assert [f.name for f in report.failures] == ["boom"]
        failure = report.failures[0]
        assert failure.stage == "push"
        assert "boom in push" in failure.error
        assert failure.at_sample == 120
        # the survivors finalized with full batch-equivalent results
        assert set(report.results) == {"edges", "niom"}
        clean = run_stream(
            TraceReplaySource(trace),
            attacks=("edges", "niom"),
            chunk_samples=60,
        )
        assert report.results == clean.results

    def test_crashing_finalize_is_isolated(self, boom_registry):
        report = run_stream(
            TraceReplaySource(_trace(600)),
            attacks=("edges", "boom"),
            chunk_samples=60,
            attack_kwargs={"boom": {"stage": "finalize"}},
        )
        assert not report.ok
        assert report.failures[0].stage == "finalize"
        assert "boom" not in report.results
        assert "edges" in report.results

    def test_quarantined_attack_stops_consuming(self, boom_registry):
        trace = _trace(600)
        session = StreamSession(
            StreamClock.of(trace),
            {"edges": make_stream_attack("edges"), "boom": _BoomAttack()},
        )
        for _, chunk in tagged_chunks(trace.values, 60):
            session.push(chunk)
        assert session.failures[0].at_sample == 0
        report = session.finalize()
        assert report.stats["boom"].pushes == 0
        assert report.stats["edges"].pushes == 10

    def test_failures_survive_state_round_trip(self, boom_registry):
        trace = _trace(600)
        session = StreamSession(
            StreamClock.of(trace),
            {
                "edges": make_stream_attack("edges"),
                "boom": make_stream_attack("boom"),
            },
        )
        session.push(trace.values[:120])
        assert session.failures
        rebuilt = StreamSession.from_state(session.state_dict())
        assert rebuilt.failures == session.failures
        rebuilt.push(trace.values[120:240])  # quarantined attack skipped
        report = rebuilt.finalize()
        assert [f.name for f in report.failures] == ["boom"]


class TestRegistryName:
    def test_make_stream_attack_stamps_name(self):
        attack = make_stream_attack("edges")
        assert attack.registry_name == "edges"

    def test_state_dict_uses_stamped_name(self):
        class _SubEdge(STREAM_ATTACKS["edges"]):
            pass

        STREAM_ATTACKS["subedge"] = _SubEdge
        try:
            trace = _trace(300)
            session = StreamSession(
                StreamClock.of(trace),
                {"x": make_stream_attack("subedge")},
            )
            state = session.state_dict()
            # isinstance probing would have matched the "edges" base class
            assert state["attacks"]["x"]["registry"] == "subedge"
        finally:
            STREAM_ATTACKS.pop("subedge", None)

    def test_unregistered_attack_fails_loudly(self):
        trace = _trace(300)

        class _Rogue(_BoomAttack):
            pass

        session = StreamSession(StreamClock.of(trace), {"r": _Rogue()})
        with pytest.raises(KeyError):
            session.state_dict()


class TestCleanFeedInvariance:
    @pytest.mark.parametrize("chunk", [1, 7, 60])
    def test_guarded_run_matches_unguarded_session(self, chunk):
        trace = _trace(720)
        report = run_stream(
            TraceReplaySource(trace),
            attacks=("edges", "niom", "hmm"),
            chunk_samples=chunk,
        )
        session = StreamSession(
            StreamClock.of(trace),
            {n: make_stream_attack(n) for n in ("edges", "niom", "hmm")},
        )
        for _, part in tagged_chunks(trace.values, chunk):
            session.push(part)
        bare = session.finalize()
        assert report.results == bare.results
        assert report.total_samples == bare.total_samples
        stats = report.guard
        assert stats["quarantined_values"] == 0
        assert stats["gap_samples"] == 0
        assert stats["rejected_chunks"] == 0
        assert stats["trimmed_samples"] == 0
        assert report.ok


class TestResyncSeamSafety:
    """Post-resync pushes must not trip the seam index arithmetic."""

    @pytest.mark.parametrize("settle", [1, 3, 5])
    @pytest.mark.parametrize("chunk", [1, 7, 60])
    def test_resync_then_stream_stays_well_formed(self, settle, chunk):
        trace = _trace(600)
        det_attacks = {
            "edges": make_stream_attack("edges", settle_samples=settle),
            "niom": make_stream_attack("niom"),
            "hmm": make_stream_attack("hmm"),
            "fhmm": make_stream_attack("fhmm"),
        }
        session = StreamSession(StreamClock.of(trace), det_attacks)
        session.push(trace.values[:200])
        session.resync(37)
        for _, part in tagged_chunks(trace.values[200:], chunk):
            session.push(part)
        report = session.finalize()
        assert not report.failures
        # wall-clock-true duration: pushed samples plus the gap
        assert report.total_samples == 600 + 37

    def test_post_resync_edges_stay_finite(self):
        # Regression: the carry-trim bound used to go negative after a
        # resync (wall clock ahead of buffered history), shedding the
        # pre-windows and minting NaN-magnitude edges.
        trace = _trace(600)
        att = make_stream_attack("edges", settle_samples=3)
        att.open(StreamClock.of(trace))
        att.push(trace.values[:200])
        att.resync(37)
        for _, part in tagged_chunks(trace.values[200:], 1):
            att.push(part)
        att.finalize()
        det = att.detector
        # carry saturates at 2 * settle once enough history accumulates
        assert len(det._carry) == 2 * det.settle_samples
        for edge in det.edges:
            assert np.isfinite(edge.delta_w)
            assert np.isfinite(edge.pre_w)
            assert np.isfinite(edge.post_w)

    def test_post_resync_edge_indices_are_wall_clock(self):
        det = make_stream_attack("edges").detector
        det.open(StreamClock(60.0))
        det.push(np.full(50, 100.0))
        det.resync(10)
        det.push(np.full(5, 100.0))
        emitted = det.push(np.array([900.0] * 5))
        det.finalize()
        (edge,) = det.edges
        # 50 pre-gap + 10 gap + 5 flat: the step lands at index 65
        assert edge.index == 65


class TestCheckpoint:
    def _run_to(self, trace, chunks, upto, ckdir, every=300):
        session = StreamSession(
            StreamClock.of(trace),
            {n: make_stream_attack(n) for n in ("edges", "niom", "hmm")},
        )
        guard = FeedGuard(session)
        ck = Checkpointer(ckdir, every_samples=every)
        for at, part in chunks[:upto]:
            guard.push(part, at=at)
            ck.maybe_write(session, guard)
        return session, guard, ck

    @pytest.mark.parametrize("chunk", [1, 60])
    def test_kill_and_resume_is_bitwise_identical(self, tmp_path, chunk):
        trace = _trace(900)
        chunks = list(tagged_chunks(trace.values, chunk))
        # "killed" run: consume 40% of the feed, then vanish
        self._run_to(trace, chunks, int(len(chunks) * 0.4), tmp_path)
        assert has_checkpoint(tmp_path)
        session_state, guard_state = load_checkpoint(tmp_path)
        resumed = StreamSession.from_state(session_state)
        guard = FeedGuard(resumed)
        guard.load_state(guard_state)
        for at, part in chunks:  # replay from the start
            guard.push(part, at=at)
        resumed_report = resumed.finalize(guard=guard)

        reference = StreamSession(
            StreamClock.of(trace),
            {n: make_stream_attack(n) for n in ("edges", "niom", "hmm")},
        )
        ref_guard = FeedGuard(reference)
        for at, part in chunks:
            ref_guard.push(part, at=at)
        ref_report = reference.finalize(guard=ref_guard)

        assert resumed_report.results == ref_report.results
        assert resumed_report.total_samples == ref_report.total_samples

    def test_write_cadence(self, tmp_path):
        trace = _trace(900)
        chunks = list(tagged_chunks(trace.values, 60))
        _, _, ck = self._run_to(trace, chunks, len(chunks), tmp_path, every=300)
        # first write at the first offered position, then every >= 300
        assert ck.writes == 3

    def test_missing_checkpoint_raises(self, tmp_path):
        assert not has_checkpoint(tmp_path)
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path)

    def test_torn_checkpoint_raises(self, tmp_path):
        checkpoint_path(tmp_path).write_bytes(b"\x80\x04 torn")
        with pytest.raises(ValueError, match="unreadable"):
            load_checkpoint(tmp_path)

    def test_foreign_pickle_raises(self, tmp_path):
        checkpoint_path(tmp_path).write_bytes(pickle.dumps({"not": "ours"}))
        with pytest.raises(ValueError, match="not a stream checkpoint"):
            load_checkpoint(tmp_path)

    def test_stale_format_raises(self, tmp_path):
        envelope = {
            "format": STREAM_CHECKPOINT_VERSION + 1,
            "kind": "stream-checkpoint",
            "session": {},
            "guard": {},
        }
        checkpoint_path(tmp_path).write_bytes(pickle.dumps(envelope))
        with pytest.raises(ValueError, match="stale"):
            load_checkpoint(tmp_path)

    def test_rejects_bad_cadence(self, tmp_path):
        with pytest.raises(ValueError):
            Checkpointer(tmp_path, every_samples=0)


class TestDegenerateFeeds:
    def test_empty_chunks_through_session(self):
        trace = _trace(300)
        session = StreamSession(
            StreamClock.of(trace),
            {n: make_stream_attack(n) for n in ("edges", "niom")},
        )
        session.push(np.empty(0))
        session.push(trace.values)
        session.push(np.empty(0))
        report = session.finalize()
        assert report.total_samples == 300
        assert not report.failures

    def test_zero_length_trace_quarantines_niom_only(self):
        # NIOM's too-short finalize guard becomes a recorded failure,
        # not a session crash; edges finalizes an empty result.
        report = run_stream(
            TraceReplaySource(PowerTrace(np.empty(0), period_s=60.0)),
            attacks=("edges", "niom"),
            chunk_samples=60,
        )
        assert report.total_samples == 0
        assert "edges" in report.results
        assert report.results["edges"]["n_edges"] == 0
        assert [f.name for f in report.failures] == ["niom"]
        assert report.failures[0].stage == "finalize"

    @pytest.mark.parametrize("chunk", [1, 60])
    def test_single_sample_trace_every_attack(self, chunk):
        trace = PowerTrace(np.array([150.0]), period_s=60.0)
        report = run_stream(
            TraceReplaySource(trace),
            attacks=tuple(sorted(STREAM_ATTACKS)),
            chunk_samples=chunk,
        )
        assert report.total_samples == 1
        # niom cannot calibrate on one sample; everything else completes
        assert [f.name for f in report.failures] == ["niom"]
        for name in ("edges", "hmm", "fhmm"):
            assert name in report.results
        assert report.results["hmm"]["n_labeled"] == 1


class TestStreamCLIHealth:
    def test_crashing_attack_exits_nonzero(self, boom_registry, capsys):
        code = main(
            [
                "stream",
                "--home",
                "home-a",
                "--days",
                "1",
                "--attacks",
                "edges,boom",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED attack boom" in out

    def test_feed_dead_exits_nonzero(self, monkeypatch, capsys):
        monkeypatch.setenv(
            "REPRO_STREAM_FAULTS",
            json.dumps({"seed": 5, "dropout_rate": 0.5}),
        )
        code = main(
            [
                "stream",
                "--home",
                "home-a",
                "--days",
                "1",
                "--attacks",
                "edges",
                "--max-gap",
                "30",
            ]
        )
        assert code == 1
        assert "FEED DEAD" in capsys.readouterr().out

    def test_resume_without_checkpoint_dir_is_usage_error(self):
        assert main(["stream", "--home", "home-a", "--resume"]) == 2

    def test_cli_kill_and_resume_bitwise(self, tmp_path):
        """The acceptance pin: a real os._exit kill, then --resume."""
        ref_json = tmp_path / "ref.json"
        res_json = tmp_path / "res.json"
        ckdir = tmp_path / "ck"
        base = [
            "stream",
            "--home",
            "home-a",
            "--days",
            "1",
            "--seed",
            "7",
            "--attacks",
            "edges,niom,hmm",
            "--chunk",
            "60",
        ]
        assert main(base + ["--json", str(ref_json)]) == 0

        env = dict(os.environ)
        env["REPRO_STREAM_KILL_AFTER"] = "700"
        env["PYTHONPATH"] = os.pathsep.join(
            [str(p) for p in sys.path if p] or [""]
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli"]
            + base
            + ["--checkpoint", str(ckdir), "--checkpoint-every", "300"],
            env=env,
            capture_output=True,
            timeout=120,
        )
        assert proc.returncode == 137
        assert has_checkpoint(ckdir)

        assert (
            main(
                base
                + [
                    "--checkpoint",
                    str(ckdir),
                    "--resume",
                    "--json",
                    str(res_json),
                ]
            )
            == 0
        )
        ref = json.loads(ref_json.read_text())
        res = json.loads(res_json.read_text())
        assert res["results"] == ref["results"]
        assert res["total_samples"] == ref["total_samples"]
        assert res["niom_score"] == ref["niom_score"]
