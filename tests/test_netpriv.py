"""Tests for the IoT network privacy substrate, attacks, and gateway."""

import numpy as np
import pytest

from repro.attacks import score_occupancy_attack
from repro.netpriv import (
    Compromise,
    CompromiseKind,
    Device,
    DeviceFingerprinter,
    DeviceType,
    Direction,
    Flow,
    FlowLog,
    GatewayPolicy,
    LanConfig,
    SmartGateway,
    device_window_features,
    flow_features,
    inject_compromise,
    occupancy_from_traffic,
    simulate_lan,
)
from repro.netpriv.fingerprint import FEATURE_NAMES
from repro.timeseries import SECONDS_PER_DAY


@pytest.fixture(scope="module")
def lan():
    return simulate_lan(LanConfig(), 4, rng=1)


DAY2 = 2 * SECONDS_PER_DAY


class TestFlows:
    def test_flow_validation(self):
        with pytest.raises(ValueError):
            Flow(0.0, "d", "e", 443, Direction.OUTBOUND, -1, 0, 0, 0.0)

    def test_log_filtering(self):
        flows = [
            Flow(10.0, "a", "x", 443, Direction.OUTBOUND, 1, 1, 1, 0.1),
            Flow(20.0, "b", "x", 443, Direction.OUTBOUND, 1, 1, 1, 0.1),
            Flow(30.0, "a", "y", 443, Direction.OUTBOUND, 1, 1, 1, 0.1),
        ]
        log = FlowLog(flows)
        assert len(log.for_device("a")) == 2
        assert len(log.in_window(15.0, 25.0)) == 1
        assert log.device_ids() == ["a", "b"]


class TestDeviceSimulation:
    def test_all_types_generate_traffic(self, lan):
        ids_with_flows = set(lan.log.device_ids())
        for device in lan.devices:
            assert device.device_id in ids_with_flows

    def test_heartbeats_are_periodic(self):
        rng = np.random.default_rng(0)
        device = Device.make("plug", DeviceType.SMART_PLUG, rng)
        flows = device.simulate_flows(SECONDS_PER_DAY, None, rng)
        heartbeats = [
            f.time_s
            for f in flows
            if f.bytes_up <= device.profile.heartbeat_bytes_up * 1.5 and f.duration_s < 1.0
        ]
        inter = np.diff(heartbeats)
        expected = device.profile.heartbeat_interval_s
        assert np.median(inter) == pytest.approx(expected, rel=0.1)

    def test_occupancy_gates_events(self):
        from repro.timeseries import BinaryTrace

        rng = np.random.default_rng(1)
        device = Device.make("bulb", DeviceType.LIGHT_BULB, rng)
        n = SECONDS_PER_DAY // 60
        empty = BinaryTrace(np.zeros(n, dtype=int), 60.0)
        full = BinaryTrace(np.ones(n, dtype=int), 60.0)
        f_empty = device.simulate_flows(SECONDS_PER_DAY, empty, np.random.default_rng(2))
        f_full = device.simulate_flows(SECONDS_PER_DAY, full, np.random.default_rng(2))
        events = lambda flows: sum(
            1 for f in flows if f.bytes_up > device.profile.heartbeat_bytes_up * 1.5
        )
        assert events(f_full) > events(f_empty)

    def test_camera_streams_continuously(self, lan):
        cam = lan.log.for_device("camera-1")
        stream = [f for f in cam if f.duration_s >= 200.0]
        # one 5-minute chunk per 5 minutes for 4 days
        assert len(stream) == pytest.approx(4 * 288, rel=0.02)


class TestFingerprinting:
    def test_feature_vector_shape(self, lan):
        features = flow_features(lan.log.for_device("camera-1"), 3600.0)
        assert features.shape == (len(FEATURE_NAMES),)

    def test_empty_window_is_zeros(self):
        assert np.all(flow_features(FlowLog([]), 3600.0) == 0.0)

    def test_classification_beats_chance(self, lan):
        train = device_window_features(lan.log.in_window(0, DAY2), DAY2)
        full = device_window_features(lan.log, lan.duration_s)
        test = {k: v[48:] for k, v in full.items()}
        report = DeviceFingerprinter(rng=0).evaluate(train, test, lan.devices)
        chance = 1.0 / len(report.classes)
        assert report.accuracy > 5 * chance
        assert report.accuracy > 0.8

    def test_majority_vote_identifies_device(self, lan):
        train = device_window_features(lan.log.in_window(0, DAY2), DAY2)
        fp = DeviceFingerprinter(rng=1).fit(train, lan.devices)
        full = device_window_features(lan.log, lan.duration_s)
        assert fp.predict_device(full["camera-2"][48:]) == "camera"
        assert fp.predict_device(full["thermostat-1"][48:]) == "thermostat"


class TestTrafficOccupancyAttack:
    def test_reveals_occupancy(self, lan):
        occ = occupancy_from_traffic(lan.log, lan.devices, lan.duration_s)
        scores = score_occupancy_attack(occ, lan.occupancy)
        assert scores["mcc"] > 0.4  # encrypted traffic still leaks presence

    def test_needs_whole_window(self, lan):
        with pytest.raises(ValueError):
            occupancy_from_traffic(lan.log, lan.devices, 100.0, window_s=1800.0)


class TestCompromises:
    @pytest.fixture(scope="class")
    def ids(self, lan):
        return [d.device_id for d in lan.devices]

    def test_ddos_adds_massive_upstream(self, lan, ids):
        comp = Compromise("camera-1", CompromiseKind.DDOS, start_s=DAY2)
        attacked = inject_compromise(lan.log, comp, lan.duration_s, ids, rng=0)
        before = sum(f.bytes_up for f in lan.log.for_device("camera-1"))
        after = sum(f.bytes_up for f in attacked.for_device("camera-1"))
        assert after > 2 * before

    def test_lateral_scan_creates_lateral_flows(self, lan, ids):
        comp = Compromise("smart_plug-1", CompromiseKind.LATERAL_SCAN, start_s=DAY2)
        attacked = inject_compromise(lan.log, comp, lan.duration_s, ids, rng=1)
        lateral = [f for f in attacked if f.direction is Direction.LATERAL]
        assert len(lateral) > 100
        assert all(f.device_id == "smart_plug-1" for f in lateral)

    def test_passive_monitor_invisible(self, lan, ids):
        comp = Compromise("hub-1", CompromiseKind.PASSIVE_MONITOR, start_s=DAY2)
        attacked = inject_compromise(lan.log, comp, lan.duration_s, ids, rng=2)
        assert len(attacked) == len(lan.log)


class TestGateway:
    @pytest.fixture(scope="class")
    def trained_gateway(self, lan):
        gateway = SmartGateway()
        gateway.learn_baselines(lan.log.in_window(0, DAY2), DAY2)
        return gateway

    def test_no_false_quarantines_on_clean_traffic(self, lan, trained_gateway):
        _, report = trained_gateway.enforce(lan.log, lan.duration_s)
        assert report.quarantined_devices == {}

    @pytest.mark.parametrize(
        "kind,device",
        [
            (CompromiseKind.DDOS, "camera-1"),
            (CompromiseKind.LATERAL_SCAN, "smart_plug-1"),
            (CompromiseKind.EXFILTRATION, "thermostat-1"),
        ],
    )
    def test_detects_active_compromises(self, lan, trained_gateway, kind, device):
        ids = [d.device_id for d in lan.devices]
        comp = Compromise(device, kind, start_s=DAY2 + SECONDS_PER_DAY // 2)
        attacked = inject_compromise(lan.log, comp, lan.duration_s, ids, rng=3)
        _, report = trained_gateway.enforce(attacked, lan.duration_s)
        assert report.detected(device)
        assert report.detection_delay_s(device, comp.start_s) < 4 * 3600.0

    def test_lateral_flows_blocked_even_before_detection(self, lan, trained_gateway):
        ids = [d.device_id for d in lan.devices]
        comp = Compromise("smart_plug-1", CompromiseKind.LATERAL_SCAN, start_s=DAY2)
        attacked = inject_compromise(lan.log, comp, lan.duration_s, ids, rng=4)
        passed, report = trained_gateway.enforce(attacked, lan.duration_s)
        assert report.blocked_lateral > 0
        assert not any(f.direction is Direction.LATERAL for f in passed)

    def test_unknown_device_quarantined(self, lan, trained_gateway):
        rogue = Flow(DAY2 + 10.0, "rogue-device", "evil.example", 443,
                     Direction.OUTBOUND, 100, 100, 2, 0.5)
        log = FlowLog(list(lan.log.flows) + [rogue])
        log.sort()
        _, report = trained_gateway.enforce(log, lan.duration_s)
        assert report.detected("rogue-device")

    def test_unknown_endpoint_blocked(self, lan, trained_gateway):
        # a known device talking to an endpoint outside its allowlist
        odd = Flow(DAY2 + 10.0, "camera-1", "never-seen.example", 443,
                   Direction.OUTBOUND, 100, 100, 2, 0.5)
        log = FlowLog(list(lan.log.flows) + [odd])
        log.sort()
        passed, report = trained_gateway.enforce(log, lan.duration_s)
        assert report.blocked_unknown_endpoint >= 1
        assert not any(f.endpoint == "never-seen.example" for f in passed)

    def test_enforce_without_baselines_raises(self, lan):
        with pytest.raises(RuntimeError):
            SmartGateway().enforce(lan.log, lan.duration_s)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            GatewayPolicy(anomaly_z_threshold=0.0)
