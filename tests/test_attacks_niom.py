"""Tests for NIOM occupancy detection and behavioral profiling."""

import numpy as np
import pytest

from repro.attacks import (
    ClusterNIOM,
    HMMNIOM,
    ThresholdNIOM,
    active_days_of_week,
    build_profile,
    estimated_bedtime_hour,
    meal_profile,
    score_occupancy_attack,
    usage_events_per_day,
    usage_hours_histogram,
)
from repro.home import home_a, home_b, simulate_home
from repro.timeseries import BinaryTrace, PowerTrace, SECONDS_PER_DAY, constant

DETECTORS = [
    ("threshold", lambda: ThresholdNIOM()),
    ("cluster", lambda: ClusterNIOM(rng=0)),
    ("hmm", lambda: HMMNIOM(rng=0)),
]


@pytest.fixture(scope="module")
def week_home():
    return simulate_home(home_a(), 14, rng=42)


class TestDetectors:
    @pytest.mark.parametrize("name,factory", DETECTORS, ids=[d[0] for d in DETECTORS])
    def test_beats_chance_on_simulated_home(self, week_home, name, factory):
        result = factory().detect(week_home.metered)
        scores = score_occupancy_attack(result.occupancy, week_home.occupancy)
        assert scores["mcc"] > 0.15  # clearly better than random
        assert scores["accuracy"] > 0.55

    @pytest.mark.parametrize("name,factory", DETECTORS, ids=[d[0] for d in DETECTORS])
    def test_output_on_window_clock(self, week_home, name, factory):
        result = factory().detect(week_home.metered)
        assert result.occupancy.period_s >= week_home.metered.period_s
        assert set(np.unique(result.occupancy.values)).issubset({0, 1})

    def test_threshold_flags_bursty_windows(self):
        # flat 100 W everywhere except a bursty noon stretch
        rng = np.random.default_rng(0)
        values = np.full(2 * 1440, 100.0)
        noon = slice(12 * 60, 14 * 60)
        values[noon] += rng.uniform(0, 2000, 120)
        values[1440 + 12 * 60 : 1440 + 14 * 60] += rng.uniform(0, 2000, 120)
        trace = PowerTrace(values, 60.0)
        detected = ThresholdNIOM().detect(trace).occupancy
        hours = (detected.times() % SECONDS_PER_DAY) / 3600.0
        assert detected.values[(hours >= 12) & (hours < 14)].mean() > 0.8
        assert detected.values[(hours >= 2) & (hours < 5)].mean() < 0.3

    def test_detector_handles_coarse_trace(self, week_home):
        coarse = week_home.metered.resample(3600.0)
        result = ThresholdNIOM().detect(coarse)  # window finer than period
        assert result.occupancy.period_s == 3600.0

    def test_too_short_trace_raises(self):
        with pytest.raises(ValueError):
            ThresholdNIOM().detect(constant(100.0, 20, 60.0))

    def test_score_alignment(self, week_home):
        result = ThresholdNIOM().detect(week_home.metered)
        scores = score_occupancy_attack(result.occupancy, week_home.occupancy)
        assert 0.0 <= scores["accuracy"] <= 1.0
        assert -1.0 <= scores["mcc"] <= 1.0

    def test_accuracy_in_paper_band_across_homes(self):
        """Sec. II-A: '70-90% for a range of homes'."""
        accs = []
        for seed, config in [(1, home_a()), (2, home_b()), (3, home_a()), (4, home_b())]:
            sim = simulate_home(config, 10, rng=seed)
            best = max(
                score_occupancy_attack(f().detect(sim.metered).occupancy, sim.occupancy)[
                    "accuracy"
                ]
                for _, f in DETECTORS
            )
            accs.append(best)
        assert 0.65 <= float(np.mean(accs)) <= 0.95


class TestProfiling:
    @staticmethod
    def pulse_trace(days, hour, duration_min, power, period_s=60.0):
        n = int(days * SECONDS_PER_DAY / period_s)
        values = np.zeros(n)
        for d in range(days):
            i0 = int((d * SECONDS_PER_DAY + hour * 3600) / period_s)
            values[i0 : i0 + int(duration_min * 60 / period_s)] = power
        return PowerTrace(values, period_s)

    def test_usage_events_per_day(self):
        trace = self.pulse_trace(5, 8.0, 10, 1000.0)
        assert usage_events_per_day(trace) == pytest.approx(1.0)

    def test_usage_hours_histogram_peaks_correctly(self):
        trace = self.pulse_trace(5, 19.0, 30, 1000.0)
        hist = usage_hours_histogram(trace)
        assert hist.argmax() == 19
        assert hist.sum() == pytest.approx(1.0)

    def test_laundry_day_detection(self):
        # dryer runs only on epoch weekdays 2 and 5
        n = int(14 * SECONDS_PER_DAY / 60)
        values = np.zeros(n)
        for day in range(14):
            if day % 7 in (2, 5):
                i0 = int((day * SECONDS_PER_DAY + 11 * 3600) / 60)
                values[i0 : i0 + 45] = 5000.0
        trace = PowerTrace(values, 60.0)
        assert active_days_of_week(trace) == [2, 5]

    def test_meal_profile_frozen_dinners(self):
        microwave = self.pulse_trace(10, 18.5, 5, 1400.0)
        mp = meal_profile(microwave, None)
        assert mp.prefers_frozen_dinners
        assert mp.eats_out_days_fraction < 0.2

    def test_meal_profile_requires_an_appliance(self):
        with pytest.raises(ValueError):
            meal_profile(None, None)

    def test_bedtime_from_lighting(self):
        lights = self.pulse_trace(7, 20.0, 150, 200.0)  # lights off at 22:30
        occupancy = BinaryTrace(np.ones(7 * 1440, dtype=int), 60.0)
        bedtime = estimated_bedtime_hour(occupancy, lights)
        assert bedtime == pytest.approx(22.5, abs=0.2)

    def test_full_profile_from_simulated_home(self):
        sim = simulate_home(home_b(), 14, rng=9)
        profile = build_profile(sim.appliance_traces, sim.occupancy)
        assert 0.0 < profile.occupied_fraction < 1.0
        assert 19.0 <= profile.bedtime_hour <= 24.0
        assert profile.tv_hours_per_day >= 0.0
        assert "fridge" in profile.appliance_event_rates

    def test_profile_requires_appliances(self):
        occupancy = BinaryTrace(np.ones(1440, dtype=int), 60.0)
        with pytest.raises(ValueError):
            build_profile({}, occupancy)
