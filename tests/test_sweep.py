"""Tests for the fleet knob-sweep engine (Sec. III-E at population scale).

The load-bearing guarantees:

* the cell order is canonical, so ``--shard i/n`` partitions the grid
  identically on every machine;
* a killed shard resumes through the fleet cache — re-running the full
  sweep over the same cache executes only the cells the shard skipped;
* the acceptance grid (3 defenses x 4 knob settings x 20 homes) produces
  a frontier whose attack MCC is non-increasing in the knob setting, per
  (defense, seed) series;
* frontier exports round-trip through CSV and JSON;
* sweep cells carry merged telemetry.
"""

import csv

import pytest

from repro.fleet import (
    FrontierReport,
    SweepCell,
    SweepError,
    SweepGrid,
    SweepRunner,
    load_grid,
    parse_shard,
    run_sweep,
    shard_cells,
)

# Small grid used by the plumbing tests: 2 defenses x 2 settings x 3 homes
SMALL = SweepGrid(
    defenses=("nill", "smoothing"),
    settings=(0.0, 1.0),
    n_homes=3,
    days=1,
    seeds=(0,),
    mix=("home-a", "home-b", "fig2"),
)


class TestGrid:
    def test_cell_order_is_canonical(self):
        cells = SMALL.cells()
        assert cells == [
            SweepCell("nill", 0.0, 0),
            SweepCell("nill", 1.0, 0),
            SweepCell("smoothing", 0.0, 0),
            SweepCell("smoothing", 1.0, 0),
        ]
        assert SMALL.n_cells == 4

    def test_settings_sorted_within_defense(self):
        grid = SweepGrid(
            defenses=("nill",), settings=(1.0, 0.0, 0.5), n_homes=1
        )
        assert [c.setting for c in grid.cells()] == [0.0, 0.5, 1.0]

    def test_cell_spec_carries_parametrized_defense(self):
        spec = SMALL.cell_spec(SweepCell("nill", 0.5, 7))
        assert spec.defenses == ("nill@0.5",)
        assert spec.seed == 7
        assert spec.n_homes == SMALL.n_homes

    def test_rejects_unmapped_defense(self):
        with pytest.raises(SweepError, match="no knob mapping"):
            SweepGrid(defenses=("zkp",), settings=(0.5,), n_homes=1)

    def test_rejects_out_of_range_setting(self):
        with pytest.raises(SweepError, match="outside"):
            SweepGrid(defenses=("nill",), settings=(1.5,), n_homes=1)

    def test_rejects_empty_axes(self):
        with pytest.raises(SweepError):
            SweepGrid(defenses=(), settings=(0.5,), n_homes=1)
        with pytest.raises(SweepError):
            SweepGrid(defenses=("nill",), settings=(), n_homes=1)
        with pytest.raises(SweepError):
            SweepGrid(defenses=("nill",), settings=(0.5,), n_homes=1, seeds=())

    def test_rejects_duplicates(self):
        with pytest.raises(SweepError, match="duplicate"):
            SweepGrid(defenses=("nill", "nill"), settings=(0.5,), n_homes=1)
        with pytest.raises(SweepError, match="duplicate"):
            SweepGrid(defenses=("nill",), settings=(0.5, 0.5), n_homes=1)

    def test_rejects_bad_population(self):
        # population-shape errors surface at grid construction, not
        # mid-shard: FleetSpec validation runs once in __post_init__
        with pytest.raises(ValueError):
            SweepGrid(defenses=("nill",), settings=(0.5,), n_homes=0)
        with pytest.raises(ValueError):
            SweepGrid(
                defenses=("nill",), settings=(0.5,), n_homes=1,
                mix=("no-such-preset",),
            )


class TestSharding:
    def test_shards_partition_cells(self):
        cells = SMALL.cells()
        for n in (1, 2, 3, 4, 7):
            pieces = [shard_cells(cells, (i, n)) for i in range(1, n + 1)]
            merged = [c for piece in pieces for c in piece]
            assert sorted(merged, key=str) == sorted(cells, key=str)

    def test_round_robin_slicing(self):
        cells = SMALL.cells()
        assert shard_cells(cells, (1, 2)) == cells[0::2]
        assert shard_cells(cells, (2, 2)) == cells[1::2]

    def test_invalid_shards_rejected(self):
        for bad in ((0, 2), (3, 2), (1, 0), (-1, 2)):
            with pytest.raises(SweepError):
                shard_cells(SMALL.cells(), bad)

    def test_parse_shard(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("3/8") == (3, 8)
        for bad in ("", "2", "0/2", "3/2", "a/b", "1/", "/2", "1/2/3"):
            with pytest.raises(SweepError):
                parse_shard(bad)


class TestResume:
    def test_killed_shard_resumes_via_cache(self, tmp_path):
        """A full re-run over a shard's cache only executes the rest.

        This is the resumability contract: shard 1/2 completes (stand-in
        for "the run was killed after some cells finished"), then the
        full sweep over the same cache_dir replays those homes from disk
        and executes only shard 2/2's jobs.
        """
        cache = tmp_path / "cache"
        first = run_sweep(SMALL, shard=(1, 2), cache_dir=cache)
        shard_jobs = sum(c.fleet.n_homes for c in first.cells)
        assert first.executed == shard_jobs

        full = run_sweep(SMALL, cache_dir=cache)
        total_jobs = SMALL.n_cells * SMALL.n_homes
        assert full.executed == total_jobs - shard_jobs
        assert full.n_cells == SMALL.n_cells

        # and a third pass is fully cached
        again = run_sweep(SMALL, cache_dir=cache)
        assert again.executed == 0

    def test_cached_and_fresh_frontiers_identical(self, tmp_path):
        cache = tmp_path / "cache"
        fresh = run_sweep(SMALL, cache_dir=cache).frontier()
        cached = run_sweep(SMALL, cache_dir=cache).frontier()
        assert fresh == cached

    def test_runner_reuse_accumulates_cache_stats(self, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path / "cache")
        runner.run(SMALL)
        runner.run(SMALL)
        stats = runner.runner.cache.stats
        assert stats.hits == SMALL.n_cells * SMALL.n_homes


class TestTelemetry:
    def test_cells_carry_merged_telemetry(self):
        result = run_sweep(SMALL, telemetry=True)
        # every cell has an attributable snapshot...
        for cell_result in result.cells:
            assert cell_result.telemetry is not None
            assert cell_result.telemetry.timers["stage.job"].count > 0
        # ...and the sweep-level merge adds up across cells
        assert result.telemetry is not None
        total_jobs = sum(
            c.telemetry.timers["stage.job"].count for c in result.cells
        )
        assert result.telemetry.timers["stage.job"].count == total_jobs
        assert total_jobs == SMALL.n_cells * SMALL.n_homes

    def test_telemetry_off_by_default(self):
        result = run_sweep(SMALL)
        assert result.telemetry is None


class TestGridFiles:
    def test_toml_round_trip(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text(
            'defenses = ["nill", "smoothing"]\n'
            "settings = [0.0, 1.0]\n"
            "n_homes = 3\n"
            "days = 1\n"
            "seeds = [0]\n"
            'mix = ["home-a", "home-b", "fig2"]\n'
        )
        assert load_grid(path) == SMALL

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "grid.json"
        import json

        path.write_text(json.dumps(SMALL.as_dict()))
        assert load_grid(path) == SMALL

    def test_bad_grid_files_rejected(self, tmp_path):
        cases = {
            "missing.toml": None,  # file does not exist
            "syntax.toml": "defenses = [",
            "syntax.json": "{",
            "unknown-key.toml": 'defenses = ["nill"]\nsettings = [0.5]\nfrobs = 3\n',
            "missing-keys.toml": 'n_homes = 3\n',
            "not-a-table.json": '[1, 2]',
            "bad-defense.toml": 'defenses = ["no-such"]\nsettings = [0.5]\n',
            "bad-ext.yaml": "defenses: [nill]\n",
        }
        for name, text in cases.items():
            path = tmp_path / name
            if text is not None:
                path.write_text(text)
            with pytest.raises(SweepError):
                load_grid(path)


class TestFrontierExports:
    @pytest.fixture(scope="class")
    def frontier(self):
        return run_sweep(SMALL).frontier()

    def test_json_round_trip(self, frontier, tmp_path):
        path = tmp_path / "frontier.json"
        frontier.to_json(path)
        assert FrontierReport.from_json(path) == frontier

    def test_csv_round_trip(self, frontier, tmp_path):
        path = frontier.to_csv(tmp_path / "frontier.csv")
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        assert tuple(rows[0]) == FrontierReport.CSV_HEADER
        assert len(rows) == 1 + len(frontier.points)
        for row, point in zip(rows[1:], frontier.points):
            assert row[0] == point.defense
            assert float(row[1]) == point.setting
            assert float(row[5]) == pytest.approx(point.mcc.mean)
            assert float(row[13]) == pytest.approx(point.extra_kwh.mean)

    def test_table_covers_all_points(self, frontier):
        table = frontier.format_table()
        assert table.count("\n") == 1 + len(frontier.points)

    def test_monotone_tolerance_validated(self, frontier):
        with pytest.raises(ValueError):
            frontier.monotone_violations(-0.1)


class TestAcceptanceGrid:
    """The ISSUE's acceptance gate: >=3 defenses x >=4 settings x >=20 homes,
    frontier monotone (higher knob => attack MCC non-increasing)."""

    GRID = SweepGrid(
        defenses=("nill", "dp-laplace", "coarsening"),
        settings=(0.0, 0.33, 0.67, 1.0),
        n_homes=20,
        days=1,
        seeds=(0,),
        mix=("home-a", "home-b", "fig2", "random"),
    )

    @pytest.fixture(scope="class")
    def result(self):
        return run_sweep(self.GRID)

    def test_grid_meets_acceptance_shape(self):
        assert len(self.GRID.defenses) >= 3
        assert len(self.GRID.settings) >= 4
        assert self.GRID.n_homes >= 20

    def test_all_cells_succeed(self, result):
        assert result.ok
        assert result.n_cells == self.GRID.n_cells
        for cell_result in result.cells:
            assert cell_result.fleet.n_homes == self.GRID.n_homes

    def test_frontier_is_monotone(self, result):
        frontier = result.frontier()
        assert len(frontier.points) == self.GRID.n_cells
        assert frontier.monotone_violations(tolerance=0.05) == []

    def test_setting_zero_is_the_undefended_anchor(self, result):
        frontier = result.frontier()
        anchors = [p for p in frontier.points if p.setting == 0.0]
        assert len(anchors) == len(self.GRID.defenses)
        # all mechanisms share the identity anchor: same homes, no defense
        for point in anchors[1:]:
            assert point.mcc == anchors[0].mcc
        for point in anchors:
            assert point.distortion_w.max == 0.0
            assert point.extra_kwh.max == 0.0

    def test_full_knob_buys_privacy(self, result):
        """The dial's endpoints bracket the tradeoff, per mechanism."""
        frontier = result.frontier()
        by_defense: dict[str, dict[float, float]] = {}
        for p in frontier.points:
            by_defense.setdefault(p.defense, {})[p.setting] = p.mcc.mean
        for defense in ("nill", "dp-laplace"):
            series = by_defense[defense]
            assert series[1.0] < 0.65 * series[0.0]
