"""Tests for the fleet subsystem: seeding, determinism, caching, reports.

The load-bearing guarantees:

* per-home seeding is a pure function of (fleet seed, home index), so any
  home is reproducible in isolation;
* fleet results are bitwise-identical across worker counts and chunk
  sizes (the determinism the cache and every future sharding PR rely on);
* the on-disk cache round-trips results exactly and only recomputes
  changed cells.

The CI fast job re-runs this file with ``REPRO_FLEET_WORKERS`` set to 1
and 2 to catch pickling regressions early.
"""

import os
import pickle

import numpy as np
import pytest

from repro.fleet import (
    FleetReport,
    FleetRunner,
    FleetSpec,
    job_cache_key,
    run_fleet,
    run_home_job,
)
from repro.fleet.spec import _home_seed
from repro.home import config_fingerprint, home_a, home_b
from tests.conftest import FLEET_SPEC as SPEC

# the CI fast job overrides the non-serial worker count to exercise
# pickling under different pool widths
_EXTRA_WORKERS = int(os.environ.get("REPRO_FLEET_WORKERS", "2"))
WORKER_COUNTS = sorted({1, _EXTRA_WORKERS})


@pytest.fixture(scope="module")
def serial_result(fleet_serial_result):
    return fleet_serial_result


class TestSeeding:
    def test_isolated_job_matches_spawned_job(self):
        jobs = SPEC.jobs()
        for i in range(SPEC.n_homes):
            solo = SPEC.job(i)
            assert job_cache_key(solo) == job_cache_key(jobs[i])
            assert solo.fingerprint == jobs[i].fingerprint

    def test_home_seed_equals_seedsequence_spawn(self):
        children = np.random.SeedSequence(123).spawn(4)
        for i, child in enumerate(children):
            iso = _home_seed(123, i)
            assert iso.entropy == child.entropy
            assert iso.spawn_key == child.spawn_key

    def test_homes_get_distinct_streams(self):
        keys = {job_cache_key(job) for job in SPEC.jobs()}
        assert len(keys) == SPEC.n_homes

    def test_mix_cycles_presets(self):
        presets = [job.preset for job in SPEC.jobs()]
        assert presets == ["random", "home-a", "random", "home-a", "random"]

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FleetSpec(n_homes=0)
        with pytest.raises(ValueError):
            FleetSpec(n_homes=1, days=0)
        with pytest.raises(ValueError):
            FleetSpec(n_homes=1, mix=("no-such-preset",))
        with pytest.raises(ValueError):
            FleetSpec(n_homes=1, mix=())
        with pytest.raises(IndexError):
            FleetSpec(n_homes=2).job(2)

    def test_fingerprint_distinguishes_configs(self):
        assert config_fingerprint(home_a()) != config_fingerprint(home_b())
        assert config_fingerprint(home_a()) == config_fingerprint(home_a())


class TestDeterminism:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("chunksize", [1, 3])
    def test_bitwise_identical_across_workers_and_chunking(
        self, serial_result, workers, chunksize
    ):
        result = run_fleet(SPEC, workers=workers, chunksize=chunksize)
        # byte-identical per-home metered traces...
        assert [h.trace_digest for h in result.homes] == [
            h.trace_digest for h in serial_result.homes
        ]
        # ...and exactly equal population reports (floats compared ==)
        assert FleetReport.from_result(result).comparable(
            FleetReport.from_result(serial_result)
        )

    def test_same_spec_same_traces(self, serial_result):
        again = run_fleet(SPEC, workers=1)
        assert [h.trace_digest for h in again.homes] == [
            h.trace_digest for h in serial_result.homes
        ]

    def test_different_seed_different_traces(self, serial_result):
        other = run_fleet(
            FleetSpec(
                n_homes=SPEC.n_homes,
                days=SPEC.days,
                seed=SPEC.seed + 1,
                mix=SPEC.mix,
                defenses=SPEC.defenses,
            ),
            workers=1,
        )
        assert [h.trace_digest for h in other.homes] != [
            h.trace_digest for h in serial_result.homes
        ]

    def test_job_is_picklable_and_stable(self, serial_result):
        job = SPEC.job(0)
        clone = pickle.loads(pickle.dumps(job))
        assert run_home_job(clone).trace_digest == serial_result.homes[0].trace_digest

    @pytest.mark.parametrize("backend", ["serial", "shmem", "batched"])
    def test_bitwise_identical_across_backends(self, serial_result, backend):
        """The executor-backend parity pin for the determinism fleet.

        Each backend runs with a pool *and* telemetry enabled, so one
        assertion covers both backend-invariance and telemetry-
        invariance of every home digest and scored number.  (The
        ``process`` backend is the workers matrix above.)
        """
        result = run_fleet(
            SPEC, workers=_EXTRA_WORKERS, backend=backend, telemetry=True
        )
        assert result.ok
        assert [h.trace_digest for h in result.homes] == [
            h.trace_digest for h in serial_result.homes
        ]
        assert FleetReport.from_result(result).comparable(
            FleetReport.from_result(serial_result)
        )
        assert result.telemetry.counters.get(f"fleet.backend.{backend}") == 1


class TestCache:
    def test_round_trip_hits_and_equal_report(self, tmp_path, serial_result):
        cache_dir = tmp_path / "cache"
        first = run_fleet(SPEC, workers=1, cache_dir=cache_dir)
        assert first.cache_stats.hits == 0
        assert first.cache_stats.stores == SPEC.n_homes
        assert first.executed == SPEC.n_homes

        second = run_fleet(SPEC, workers=1, cache_dir=cache_dir)
        assert second.cache_stats.hit_rate == 1.0
        assert second.executed == 0
        assert all(h.from_cache for h in second.homes)
        assert FleetReport.from_result(second).comparable(
            FleetReport.from_result(first)
        )
        # cached results also match the uncached ground truth exactly
        assert FleetReport.from_result(second).comparable(
            FleetReport.from_result(serial_result)
        )

    def test_key_sensitive_to_everything_that_matters(self):
        base = SPEC.job(0)
        variants = [
            FleetSpec(n_homes=5, days=2, seed=123, mix=SPEC.mix,
                      defenses=SPEC.defenses).job(0),          # days
            FleetSpec(n_homes=5, days=1, seed=124, mix=SPEC.mix,
                      defenses=SPEC.defenses).job(0),          # seed
            FleetSpec(n_homes=5, days=1, seed=123, mix=SPEC.mix,
                      defenses=("nill",)).job(0),              # defense set
            FleetSpec(n_homes=5, days=1, seed=123, mix=SPEC.mix,
                      defenses=SPEC.defenses,
                      detectors=("hmm",)).job(0),              # detector set
            FleetSpec(n_homes=5, days=1, seed=123, mix=("home-b",),
                      defenses=SPEC.defenses).job(0),          # config
        ]
        base_key = job_cache_key(base)
        assert all(job_cache_key(v) != base_key for v in variants)

    def test_corrupt_entry_recomputed(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_fleet(SPEC, workers=1, cache_dir=cache_dir)
        victim = next(cache_dir.glob("*/*.pkl"))
        victim.write_bytes(b"not a pickle")
        result = run_fleet(SPEC, workers=1, cache_dir=cache_dir)
        assert result.cache_stats.misses == 1
        assert result.cache_stats.hits == SPEC.n_homes - 1
        assert result.executed == 1

    def test_widening_fleet_only_pays_for_new_homes(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_fleet(SPEC, workers=1, cache_dir=cache_dir)
        wider = FleetSpec(
            n_homes=SPEC.n_homes + 2,
            days=SPEC.days,
            seed=SPEC.seed,
            mix=SPEC.mix,
            defenses=SPEC.defenses,
        )
        result = run_fleet(wider, workers=1, cache_dir=cache_dir)
        assert result.cache_stats.hits == SPEC.n_homes
        assert result.executed == 2


class TestReportAndRunner:
    def test_report_shape(self, serial_result):
        report = FleetReport.from_result(serial_result)
        assert set(report.distributions) == {"baseline", "dp-laplace", "smoothing"}
        baseline = report.distributions["baseline"]
        assert baseline.worst_case_mcc.p10 <= baseline.worst_case_mcc.median
        assert baseline.worst_case_mcc.median <= baseline.worst_case_mcc.p90
        assert baseline.worst_case_mcc.min <= baseline.worst_case_mcc.max
        assert report.n_homes == SPEC.n_homes
        table = report.format_table()
        assert "dp-laplace" in table and "baseline" in table

    def test_report_exports(self, tmp_path, serial_result):
        import csv
        import json

        report = FleetReport.from_result(serial_result)
        csv_path = tmp_path / "report.csv"
        report.to_csv(csv_path)
        with csv_path.open(newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "defense"
        assert len(rows) == 1 + len(report.distributions)

        doc = json.loads(report.to_json(tmp_path / "report.json"))
        assert doc["n_homes"] == SPEC.n_homes
        assert {d["defense"] for d in doc["defenses"]} == set(report.distributions)

    def test_runner_validation(self):
        with pytest.raises(ValueError):
            FleetRunner(chunksize=0)

    def test_all_defenses_by_default(self):
        from repro.core import defense_names

        spec = FleetSpec(n_homes=1, days=1, seed=0)
        assert spec.resolved_defenses() == tuple(defense_names())


class TestCLIFleet:
    def test_cli_fleet_reports_and_caches(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        args = [
            "fleet", "--homes", "3", "--days", "1", "--seed", "5",
            "--workers", "1", "--defenses", "dp-laplace",
            "--cache-dir", str(cache_dir),
            "--csv", str(tmp_path / "r.csv"), "--json", str(tmp_path / "r.json"),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "3 homes x 1 days" in out
        assert "dp-laplace" in out
        assert (tmp_path / "r.csv").exists()
        assert (tmp_path / "r.json").exists()

        assert main(args[: -4]) == 0  # re-run without exports
        out = capsys.readouterr().out
        assert "cache hit rate 100%" in out
        assert "ran 0/3 homes" in out
