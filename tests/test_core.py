"""Tests for the core pipeline, knob, registries, and datasets."""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_DETECTORS,
    PrivacyKnob,
    RegistryError,
    analytics_utility,
    defense_names,
    evaluate_defense_outcome,
    make_defense,
    make_niom_attack,
    niom_attack_names,
    occupancy_privacy,
    register_defense,
    run_pipeline,
    sweep_knob,
)
from repro.datasets import (
    fig1_dataset,
    fig2_dataset,
    load_trace_csv,
    population_dataset,
    save_trace_csv,
)
from repro.defenses import DefenseOutcome, NILLDefense
from repro.home import home_a, simulate_home
from repro.timeseries import PowerTrace, TraceError, constant


@pytest.fixture(scope="module")
def sim():
    return simulate_home(home_a(), 7, rng=2)


class TestEvaluation:
    def test_privacy_score_structure(self, sim):
        score = occupancy_privacy(sim.metered, sim.occupancy)
        assert set(score.per_detector_mcc) == {n for n, _ in DEFAULT_DETECTORS}
        assert score.worst_case_mcc == max(score.per_detector_mcc.values())

    def test_utility_of_identity_is_high(self, sim):
        utility = analytics_utility(sim.metered, sim.metered)
        assert utility.composite() > 0.97
        assert utility.energy_error_fraction == 0.0

    def test_utility_penalizes_distortion(self, sim):
        doubled = sim.metered.scaled(2.0)
        utility = analytics_utility(doubled, sim.metered)
        assert utility.composite() < 0.8

    def test_evaluate_defense_outcome(self, sim):
        outcome = NILLDefense().apply(sim.metered)
        point = evaluate_defense_outcome("nill", outcome, sim.metered, sim.occupancy)
        assert point.defense == "nill"
        summary = point.summary()
        assert {"worst_case_mcc", "utility", "extra_energy_kwh"} <= set(summary)


class TestRegistry:
    def test_builtins_present(self):
        assert {"nill", "stepped", "dp-laplace"} <= set(defense_names())
        assert {"threshold-15m", "hmm"} <= set(niom_attack_names())

    def test_make_defense(self):
        defense = make_defense("nill")
        assert defense.name == "nill"

    def test_unknown_name_raises(self):
        with pytest.raises(RegistryError):
            make_defense("nonexistent")
        with pytest.raises(RegistryError):
            make_niom_attack("nonexistent")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(RegistryError):
            register_defense("nill", lambda: NILLDefense())

    def test_custom_registration(self):
        from repro.core import registry

        register_defense("test-custom-defense", lambda: NILLDefense())
        try:
            assert "test-custom-defense" in defense_names()
            assert make_defense("test-custom-defense") is not None
        finally:
            # the registry is module-global: leaking the entry would break
            # registry-closure checks elsewhere (test_defense_invariants)
            registry._DEFENSES.pop("test-custom-defense", None)


class TestPipeline:
    def test_runs_all_defenses(self, sim):
        result = run_pipeline(sim, rng=0)
        assert set(result.defenses) >= {"nill", "dp-laplace", "smoothing"}
        assert result.baseline.privacy.worst_case_mcc > 0.2

    def test_mcc_reduction_computation(self, sim):
        result = run_pipeline(sim, defense_names=["dp-laplace"], rng=1)
        assert result.mcc_reduction("dp-laplace") > 1.0

    def test_subset_of_defenses(self, sim):
        result = run_pipeline(sim, defense_names=["nill"], rng=2)
        assert set(result.defenses) == {"nill"}


class TestKnob:
    def test_setting_zero_is_identity(self, sim):
        knob = PrivacyKnob()
        outcome = knob.apply(sim.metered, 0.0, rng=0)
        assert np.array_equal(outcome.visible.values, sim.metered.values)

    def test_invalid_setting_rejected(self, sim):
        with pytest.raises(ValueError):
            PrivacyKnob().apply(sim.metered, 1.5)

    def test_stack_grows_with_setting(self):
        knob = PrivacyKnob()
        assert len(knob.defenses_for(0.0)) == 0
        assert len(knob.defenses_for(0.5)) >= 1
        assert len(knob.defenses_for(1.0)) == 3

    def test_frontier_monotone_trend(self, sim):
        points = sweep_knob(
            PrivacyKnob(), sim.metered, sim.occupancy, settings=[0.0, 0.5, 1.0], rng=3
        )
        mccs = [p.privacy.worst_case_mcc for p in points]
        utils = [p.utility.composite() for p in points]
        assert mccs[-1] < mccs[0]  # more privacy at full knob
        assert utils[-1] < utils[0]  # paid for with utility

    def test_full_knob_substantially_masks(self, sim):
        points = sweep_knob(
            PrivacyKnob(), sim.metered, sim.occupancy, settings=[0.0, 1.0], rng=4
        )
        # NILL's adaptive target still tracks demand at low frequency, so
        # some occupancy structure survives even the full stack — masking
        # is substantial but not total (that is what CHPr adds)
        assert points[1].privacy.worst_case_mcc < 0.7 * points[0].privacy.worst_case_mcc


class TestDatasets:
    def test_fig1_dataset_shapes(self):
        a, b = fig1_dataset(n_days=2)
        assert a.config.name == "home-a"
        assert b.config.name == "home-b"
        assert len(a.metered) == len(b.metered)

    def test_fig2_dataset_has_all_devices(self):
        from repro.home import FIG2_DEVICES

        sim = fig2_dataset(n_days=7)
        for device in FIG2_DEVICES:
            assert sim.appliance_traces[device].values.sum() > 0

    def test_population_dataset_size(self):
        homes = population_dataset(n_homes=3, n_days=2)
        assert len(homes) == 3

    def test_datasets_are_deterministic(self):
        a1, _ = fig1_dataset(n_days=1)
        a2, _ = fig1_dataset(n_days=1)
        assert np.array_equal(a1.metered.values, a2.metered.values)


class TestTraceIO:
    def test_round_trip(self, tmp_path, sim):
        path = tmp_path / "trace.csv"
        original = sim.metered.slice_time(0, 3600.0)
        save_trace_csv(original, path)
        loaded = load_trace_csv(path)
        assert loaded.period_s == pytest.approx(original.period_s)
        assert np.allclose(loaded.values, original.values, atol=0.01)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3,4\n")
        with pytest.raises(TraceError):
            load_trace_csv(path)

    def test_uneven_timestamps_rejected(self, tmp_path):
        path = tmp_path / "uneven.csv"
        path.write_text("time_s,power_w\n0,1\n60,2\n200,3\n")
        with pytest.raises(TraceError):
            load_trace_csv(path)

    def test_too_short_rejected(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("time_s,power_w\n0,1\n")
        with pytest.raises(TraceError):
            load_trace_csv(path)

    def test_empty_file_rejected_clearly(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceError, match="empty file"):
            load_trace_csv(path)

    def test_garbled_header_names_expectation(self, tmp_path):
        path = tmp_path / "garbled.csv"
        path.write_text("timestamp;watts\n0,1\n60,2\n")
        with pytest.raises(TraceError, match="expected header"):
            load_trace_csv(path)

    def test_non_numeric_row_reports_line_number(self, tmp_path):
        path = tmp_path / "bad_row.csv"
        path.write_text("time_s,power_w\n0,1\n60,oops\n120,3\n")
        with pytest.raises(TraceError, match=r":3: non-numeric"):
            load_trace_csv(path)

    def test_short_row_reports_line_number(self, tmp_path):
        path = tmp_path / "short_row.csv"
        path.write_text("time_s,power_w\n0,1\n60\n")
        with pytest.raises(TraceError, match=r":3: expected 2 columns"):
            load_trace_csv(path)

    def test_save_rows_csv_round_trips_floats(self, tmp_path):
        import csv

        from repro.datasets import save_rows_csv

        path = tmp_path / "rows.csv"
        save_rows_csv(path, ("name", "value"), [["a", 0.1 + 0.2], ["b", 3]])
        with path.open(newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["name", "value"]
        assert float(rows[1][1]) == 0.1 + 0.2
        assert rows[2] == ["b", "3"]
