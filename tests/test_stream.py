"""Streaming evaluation engine: chunk-size invariance, batch equivalence,
resume, fleet threading, and the CLI surface.

The load-bearing contracts (ISSUE 6 acceptance criteria):

* streamed edges / Hart pairs / NIOM are **bitwise** equal to the batch
  pass for every tested chunk size (1, 7, 60, full trace);
* streamed HMM/FHMM decoding is bitwise *chunk-invariant*, matches batch
  smoothing bitwise when ``lag >= n``, and agrees with batch
  smoothing/Viterbi within the documented tolerance at modest lag;
* a session serialized mid-trace and rebuilt produces identical outputs;
* the streamed fleet path sees byte-identical metered traces to the
  batch fleet path (shared seed streams).
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.attacks import ThresholdNIOM
from repro.cli import main
from repro.fleet import FleetRunner, FleetSpec
from repro.ml import kernels
from repro.stream import (
    StreamClock,
    StreamSession,
    StreamingEdgeDetector,
    StreamingFHMMDecoder,
    StreamingHMMDecoder,
    StreamingHartPairer,
    StreamingThresholdNIOM,
    TraceReplaySource,
    iter_chunks,
    make_stream_attack,
    run_stream,
    signature_fhmm,
    simulated_meter_source,
    stream_attack_names,
    two_state_power_hmm,
)
from repro.timeseries import Edge, PowerTrace, detect_edges, pair_edges

CHUNK_SIZES = (1, 7, 60, None)  # None = full trace in one push


def _chunks(values: np.ndarray, chunk: int | None):
    return iter_chunks(values, chunk if chunk is not None else len(values))


def _steppy_trace(n: int = 2400, seed: int = 0, period_s: float = 60.0) -> PowerTrace:
    """Noisy baseline with injected appliance-style steps (and edge cases:
    a step right at index 1 and one at the final sample)."""
    rng = np.random.default_rng(seed)
    values = np.abs(rng.normal(200.0, 40.0, n))
    for start in range(100, n - 150, 180):
        values[start : start + 90] += rng.choice([0.0, 400.0, 1200.0])
    values[1:] += 0.0
    values[0] = 50.0
    values[1] = 600.0  # candidate at index 1 (short pre-window)
    values[-1] = values[-2] + 800.0  # candidate at the last index
    return PowerTrace(values, period_s=period_s)


class TestSources:
    def test_iter_chunks_covers_every_sample(self):
        values = np.arange(10.0)
        for chunk in (1, 3, 10, 99):
            parts = list(iter_chunks(values, chunk))
            assert np.array_equal(np.concatenate(parts), values)

    def test_iter_chunks_rejects_bad_size(self):
        with pytest.raises(ValueError):
            list(iter_chunks(np.arange(4.0), 0))

    def test_clock_of_trace(self):
        trace = PowerTrace(np.ones(5), period_s=30.0, start_s=120.0)
        clock = StreamClock.of(trace)
        assert clock.period_s == 30.0
        assert clock.start_s == 120.0

    def test_clock_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            StreamClock(0.0)

    def test_simulated_source_carries_ground_truth(self):
        source = simulated_meter_source("home-a", 1, 0)
        assert len(source) == len(source.metered)
        assert source.occupancy is not None


class TestStreamingEdges:
    @pytest.mark.parametrize("settle", [1, 3])
    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_bitwise_equal_to_batch(self, settle, chunk):
        trace = _steppy_trace()
        batch = detect_edges(trace, settle_samples=settle)
        det = StreamingEdgeDetector(settle_samples=settle)
        det.open(StreamClock.of(trace))
        streamed: list[Edge] = []
        for part in _chunks(trace.values, chunk):
            streamed.extend(det.push(part))
        streamed.extend(det.finalize())
        assert streamed == batch

    def test_seam_straddling_settle_windows(self):
        # chunk size below the settle span: every pre/post window straddles
        # at least one seam
        trace = _steppy_trace(n=600)
        batch = detect_edges(trace, settle_samples=5)
        det = StreamingEdgeDetector(settle_samples=5)
        det.open(StreamClock.of(trace))
        out: list[Edge] = []
        for part in iter_chunks(trace.values, 2):
            out.extend(det.push(part))
        out.extend(det.finalize())
        assert out == batch

    def test_edge_at_first_and_last_index_survive(self):
        trace = _steppy_trace()
        indices = {e.index for e in detect_edges(trace, settle_samples=3)}
        assert 1 in indices
        assert len(trace) - 1 in indices

    def test_push_after_finalize_raises(self):
        det = StreamingEdgeDetector()
        det.open(StreamClock(60.0))
        det.push(np.array([0.0, 100.0]))
        det.finalize()
        with pytest.raises(RuntimeError):
            det.push(np.array([0.0]))

    def test_empty_chunks_are_noops(self):
        trace = _steppy_trace(n=400)
        det = StreamingEdgeDetector()
        det.open(StreamClock.of(trace))
        for part in iter_chunks(trace.values, 50):
            det.push(part)
            det.push(np.empty(0))
        det.finalize()
        assert det.edges == detect_edges(trace)


class TestSeamAudit:
    """Regression pins for the pair_edges gap-scan audit (`continue` ->
    early `break`: older open rises only have larger gaps)."""

    @staticmethod
    def _pair_edges_pre_audit(edges, tolerance_w=50.0, max_gap_s=None):
        # the pre-audit loop body, kept verbatim as the reference
        open_rises, pairs = [], []
        for edge in edges:
            if edge.is_rising:
                open_rises.append(edge)
                continue
            best = None
            for rise in reversed(open_rises):
                if abs(rise.delta_w + edge.delta_w) <= tolerance_w:
                    if max_gap_s is not None and edge.time_s - rise.time_s > max_gap_s:
                        continue
                    best = rise
                    break
            if best is not None:
                open_rises.remove(best)
                pairs.append((best, edge))
        pairs.sort(key=lambda p: p[0].time_s)
        return pairs

    @pytest.mark.parametrize("max_gap_s", [None, 1800.0, 7200.0])
    def test_break_matches_pre_audit_continue(self, max_gap_s):
        edges = detect_edges(_steppy_trace(seed=5))
        assert pair_edges(edges, max_gap_s=max_gap_s) == self._pair_edges_pre_audit(
            edges, max_gap_s=max_gap_s
        )

    @pytest.mark.parametrize("max_gap_s", [None, 1800.0])
    def test_streamed_pairer_matches_batch(self, max_gap_s):
        trace = _steppy_trace(seed=6)
        edges = detect_edges(trace)
        batch = pair_edges(edges, max_gap_s=max_gap_s)
        det = StreamingEdgeDetector()
        det.open(StreamClock.of(trace))
        pairer = StreamingHartPairer(max_gap_s=max_gap_s)
        for part in iter_chunks(trace.values, 17):
            pairer.feed(det.push(part))
        pairer.feed(det.finalize())
        assert pairer.finalize() == batch

    def test_unpaired_rise_carries_across_many_chunks(self):
        # one rise in the first chunk, its fall hundreds of samples later
        values = np.full(900, 100.0)
        values[3:800] = 700.0  # rise at 3, fall at 800
        trace = PowerTrace(values, period_s=60.0)
        det = StreamingEdgeDetector()
        det.open(StreamClock.of(trace))
        pairer = StreamingHartPairer()
        for part in iter_chunks(values, 10):
            pairer.feed(det.push(part))
        pairer.feed(det.finalize())
        pairs = pairer.finalize()
        assert pairs == pair_edges(detect_edges(trace))
        assert len(pairs) == 1
        assert pairs[0][0].index == 3 and pairs[0][1].index == 800


class TestStreamingNIOM:
    @pytest.mark.parametrize("night_prior", [False, True])
    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_bitwise_equal_to_batch(self, night_prior, chunk):
        trace = _steppy_trace()
        batch = ThresholdNIOM(night_prior=night_prior).detect(trace)
        niom = StreamingThresholdNIOM(night_prior=night_prior)
        niom.open(StreamClock.of(trace))
        for part in _chunks(trace.values, chunk):
            niom.push(part)
        result = niom.finalize()
        assert np.array_equal(result.features, batch.features)
        assert np.array_equal(result.occupancy.values, batch.occupancy.values)
        assert result.occupancy.period_s == batch.occupancy.period_s

    def test_too_short_guard_matches_batch(self):
        trace = PowerTrace(np.ones(30), period_s=60.0)
        with pytest.raises(ValueError, match="too short"):
            ThresholdNIOM().detect(trace)
        niom = StreamingThresholdNIOM()
        niom.open(StreamClock.of(trace))
        niom.push(trace.values)
        with pytest.raises(ValueError, match="too short"):
            niom.finalize()

    def test_provisional_labels_warm_up_and_converge(self):
        trace = _steppy_trace()
        niom = StreamingThresholdNIOM()
        niom.open(StreamClock.of(trace))
        niom.push(trace.values[:20])  # one window at most
        assert niom.provisional_occupancy() is None
        niom.push(trace.values[20:])
        provisional = niom.provisional_occupancy()
        final = niom.finalize()
        assert np.array_equal(provisional, final.occupancy.values)


class TestStreamingHMM:
    def _trace(self, n=1500, seed=1):
        rng = np.random.default_rng(seed)
        values = np.abs(rng.normal(180.0, 60.0, n))
        for start in range(0, n, 300):
            if rng.random() < 0.5:
                values[start : start + 150] += 900.0
        return PowerTrace(values, period_s=60.0)

    def _batch_forward(self, hmm, values):
        log_b = hmm._emission_logprob(values.reshape(-1, 1))
        shift = log_b.max(axis=1)
        b = np.exp(log_b - shift[:, None])
        alpha, c = kernels.forward_scaled_loop(hmm.startprob_, hmm.transmat_, b)
        return b, shift, alpha, c

    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_filtering_is_bitwise_chunk_invariant(self, chunk):
        trace = self._trace()
        hmm = two_state_power_hmm()
        _, shift, alpha_ref, c_ref = self._batch_forward(hmm, trace.values)
        dec = StreamingHMMDecoder(hmm, lag=0, keep_history=True)
        dec.open(StreamClock.of(trace))
        for part in _chunks(trace.values, chunk):
            dec.push(part)
        dec.finalize()
        assert np.array_equal(dec.alpha_history, alpha_ref)
        assert dec.log_likelihood() == float(np.log(c_ref).sum() + shift.sum())
        assert np.array_equal(dec.labels, np.argmax(alpha_ref, axis=1))

    def test_full_lag_matches_batch_smoothing_bitwise(self):
        trace = self._trace()
        hmm = two_state_power_hmm()
        b, _, _, _ = self._batch_forward(hmm, trace.values)
        gamma, _, _ = kernels.estep_loop(
            hmm.startprob_, hmm.transmat_, b, want_xi=False
        )
        dec = StreamingHMMDecoder(hmm, lag=len(trace) + 1)
        dec.open(StreamClock.of(trace))
        for part in iter_chunks(trace.values, 97):
            dec.push(part)
        dec.finalize()
        assert np.array_equal(dec.labels, np.argmax(gamma, axis=1))

    def test_bounded_lag_labels_chunk_invariant_and_accurate(self):
        trace = self._trace()
        hmm = two_state_power_hmm()
        b, _, _, _ = self._batch_forward(hmm, trace.values)
        gamma, _, _ = kernels.estep_loop(
            hmm.startprob_, hmm.transmat_, b, want_xi=False
        )
        smoothed = np.argmax(gamma, axis=1)
        reference = None
        for chunk in CHUNK_SIZES:
            dec = StreamingHMMDecoder(hmm, lag=30)
            dec.open(StreamClock.of(trace))
            for part in _chunks(trace.values, chunk):
                dec.push(part)
            dec.finalize()
            labels = dec.labels
            assert len(labels) == len(trace)
            if reference is None:
                reference = labels
            else:
                assert np.array_equal(labels, reference)
        # documented filtering-vs-smoothing tolerance: bounded-lag labels
        # agree with full smoothing on >= 95% of samples for this workload
        assert (reference == smoothed).mean() >= 0.95


class TestStreamingFHMM:
    def _trace(self, n=1200, seed=3):
        rng = np.random.default_rng(seed)
        values = np.abs(rng.normal(150.0, 40.0, n))
        for start in range(0, n, 240):
            if rng.random() < 0.6:
                values[start : start + 120] += 1500.0
        return PowerTrace(values, period_s=60.0)

    def test_chunk_invariant_and_agrees_with_viterbi(self):
        trace = self._trace()
        fhmm = signature_fhmm()
        reference = None
        for chunk in CHUNK_SIZES:
            dec = StreamingFHMMDecoder(fhmm, lag=20)
            dec.open(StreamClock.of(trace))
            for part in _chunks(trace.values, chunk):
                dec.push(part)
            dec.finalize()
            states = dec.states
            if reference is None:
                reference = states
            else:
                assert np.array_equal(states, reference)
        viterbi = fhmm.decode(trace.values)
        # documented tolerance: per-sample posterior argmax vs MAP path
        assert (reference == viterbi).all(axis=1).mean() >= 0.9

    def test_powers_map_through_chain_means(self):
        trace = self._trace(n=600)
        fhmm = signature_fhmm()
        dec = StreamingFHMMDecoder(fhmm, lag=10)
        dec.open(StreamClock.of(trace))
        for part in iter_chunks(trace.values, 100):
            dec.push(part)
        dec.finalize()
        powers = dec.powers()
        assert powers.shape == (len(trace), len(fhmm.chains))
        assert (powers >= 0.0).all()


class TestStreamSession:
    ATTACKS = ("edges", "niom", "hmm", "fhmm")
    KWARGS = {"hmm": {"lag": 25}, "fhmm": {"lag": 25}}

    def test_results_identical_across_chunk_sizes(self):
        trace = _steppy_trace(n=1800)
        source = TraceReplaySource(trace)
        reference = None
        for chunk in (1, 7, 60, len(trace)):
            report = run_stream(
                source,
                attacks=self.ATTACKS,
                chunk_samples=chunk,
                attack_kwargs=self.KWARGS,
            )
            assert report.total_samples == len(trace)
            if reference is None:
                reference = report.results
            else:
                assert report.results == reference

    def test_resume_mid_trace_is_lossless(self):
        trace = _steppy_trace(n=1800, seed=9)
        source = TraceReplaySource(trace)
        full = run_stream(
            source,
            attacks=self.ATTACKS,
            chunk_samples=150,
            attack_kwargs=self.KWARGS,
        )
        session = StreamSession(
            source.clock,
            {
                name: make_stream_attack(name, **self.KWARGS.get(name, {}))
                for name in self.ATTACKS
            },
        )
        parts = list(source.chunks(150))
        for part in parts[:5]:
            session.push(part)
        blob = pickle.dumps(session.state_dict())
        del session
        resumed = StreamSession.from_state(pickle.loads(blob))
        for part in parts[5:]:
            resumed.push(part)
        assert resumed.finalize().results == full.results

    def test_telemetry_does_not_change_results(self):
        from repro.obs import TELEMETRY

        trace = _steppy_trace(n=1200, seed=4)
        source = TraceReplaySource(trace)
        off = run_stream(source, attacks=("edges", "niom"), chunk_samples=90)
        previous = TELEMETRY.enabled
        before = TELEMETRY.snapshot()
        TELEMETRY.enabled = True
        try:
            on = run_stream(source, attacks=("edges", "niom"), chunk_samples=90)
            delta = TELEMETRY.snapshot().minus(before)
        finally:
            TELEMETRY.enabled = previous
            TELEMETRY.restore(before)
        assert on.results == off.results
        assert delta.counters["stream.samples"] == len(trace)
        assert "stage.stream.push" in delta.timers
        assert "stage.stream.edges" in delta.timers

    def test_unknown_attack_rejected(self):
        with pytest.raises(KeyError, match="unknown stream attack"):
            make_stream_attack("nope")
        assert set(TestStreamSession.ATTACKS) <= set(stream_attack_names())

    def test_push_after_finalize_raises(self):
        trace = _steppy_trace(n=1200)
        session = StreamSession(
            StreamClock.of(trace), {"edges": make_stream_attack("edges")}
        )
        session.push(trace.values)
        session.finalize()
        with pytest.raises(RuntimeError):
            session.push(trace.values[:5])


class TestFleetStreaming:
    def test_trace_digests_match_batch_path(self):
        spec = FleetSpec(
            n_homes=2, days=1, seed=11, mix=("home-a",), defenses=("identity",)
        )
        runner = FleetRunner(workers=1)
        batch = runner.run(spec)
        streamed = runner.run_streaming(
            spec, attacks=("edges", "niom"), chunk_samples=120
        )
        assert streamed.ok
        assert [h.trace_digest for h in streamed.homes] == [
            h.trace_digest for h in batch.homes
        ]
        for home in streamed.homes:
            assert home.niom_score is not None
            assert -1.0 <= home.niom_score["mcc"] <= 1.0
            assert home.results["edges"]["n_edges"] >= 0

    def test_streamed_fleet_is_deterministic(self):
        spec = FleetSpec(n_homes=2, days=1, seed=3, mix=("home-b",))
        runner = FleetRunner(workers=1)
        first = runner.run_streaming(spec, attacks=("niom",), chunk_samples=60)
        second = runner.run_streaming(spec, attacks=("niom",), chunk_samples=60)

        def _stable(home):
            doc = home.as_dict()
            doc.pop("throughput")  # wall-clock timings vary run to run
            return doc

        assert [_stable(h) for h in first.homes] == [
            _stable(h) for h in second.homes
        ]

    def test_unknown_stream_attack_rejected_up_front(self):
        spec = FleetSpec(n_homes=1, days=1, seed=0, mix=("home-a",))
        with pytest.raises(ValueError, match="unknown stream attacks"):
            FleetRunner().run_streaming(spec, attacks=("bogus",))


class TestStreamCLI:
    def test_stream_simulated_home_with_json(self, tmp_path, capsys):
        out = tmp_path / "stream.json"
        assert main([
            "stream", "--home", "home-a", "--days", "1", "--seed", "2",
            "--attacks", "edges,niom", "--chunk", "120",
            "--json", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        assert doc["chunk_samples"] == 120
        assert set(doc["results"]) == {"edges", "niom"}
        assert doc["niom_score"]["accuracy"] >= 0.0
        assert "samples/s" in capsys.readouterr().out

    def test_stream_replays_csv_trace(self, tmp_path, capsys):
        from repro.datasets import save_trace_csv

        path = tmp_path / "trace.csv"
        save_trace_csv(_steppy_trace(n=1200), path)
        assert main(["stream", "--trace", str(path), "--attacks", "edges"]) == 0
        assert "edges" in capsys.readouterr().out

    def test_stream_fleet_mode(self, tmp_path):
        out = tmp_path / "fleet.json"
        assert main([
            "stream", "--homes", "2", "--days", "1", "--mix", "home-a",
            "--chunk", "60", "--json", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        assert doc["n_homes"] == 2
        assert len(doc["homes"]) == 2

    def test_stream_rejects_unknown_attack(self, capsys):
        assert main(["stream", "--attacks", "bogus"]) == 2
        assert "unknown attacks" in capsys.readouterr().err

    def test_stream_telemetry_export(self, tmp_path):
        out = tmp_path / "tel.json"
        assert main([
            "stream", "--home", "home-a", "--days", "1",
            "--attacks", "niom", "--telemetry", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        assert doc["counters"]["stream.samples"] == 1440
        assert "stage.stream.niom" in doc["timers"]

    def test_info_json_lists_registries(self, capsys):
        assert main(["info", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "edges" in doc["stream_attacks"]
        assert doc["defenses"]
        assert doc["knob_mappings"]
        assert doc["niom_attacks"]

    def test_info_plain_mentions_stream(self, capsys):
        assert main(["info"]) == 0
        assert "stream attacks" in capsys.readouterr().out
