"""Tests for the traffic-shaping defense."""

import numpy as np
import pytest

from repro.attacks import score_occupancy_attack
from repro.netpriv import (
    LanConfig,
    ShapingConfig,
    TrafficShaper,
    occupancy_from_traffic,
    simulate_lan,
)


@pytest.fixture(scope="module")
def lan():
    return simulate_lan(LanConfig(), 4, rng=1)


@pytest.fixture(scope="module")
def shaped(lan):
    return TrafficShaper().shape(lan.log, lan.devices, lan.duration_s, rng=2)


class TestTrafficShaper:
    def test_blunts_occupancy_attack(self, lan, shaped):
        shaped_log, _ = shaped
        before = score_occupancy_attack(
            occupancy_from_traffic(lan.log, lan.devices, lan.duration_s),
            lan.occupancy,
        )["mcc"]
        after = score_occupancy_attack(
            occupancy_from_traffic(shaped_log, lan.devices, lan.duration_s),
            lan.occupancy,
        )["mcc"]
        assert before > 0.6  # the attack works unshaped
        assert after < before / 2.0  # shaping breaks it

    def test_no_real_flows_dropped(self, lan, shaped):
        shaped_log, report = shaped
        assert len(shaped_log) == len(lan.log) + report.cover_flows

    def test_cover_flows_mimic_device_endpoints(self, lan, shaped):
        shaped_log, _ = shaped
        endpoints_before = {
            (f.device_id, f.endpoint) for f in lan.log
        }
        endpoints_after = {
            (f.device_id, f.endpoint) for f in shaped_log
        }
        assert endpoints_after <= endpoints_before  # no new endpoints appear

    def test_cost_accounting(self, shaped):
        _, report = shaped
        assert report.cover_flows > 0
        assert report.cover_bytes > 0
        assert report.delayed_flows > 0
        assert 0.0 < report.mean_added_delay_s <= 120.0

    def test_delays_bounded(self, lan):
        config = ShapingConfig(max_delay_s=30.0)
        shaped_log, report = TrafficShaper(config).shape(
            lan.log, lan.devices, lan.duration_s, rng=3
        )
        assert report.mean_added_delay_s <= 30.0

    def test_zero_delay_config(self, lan):
        config = ShapingConfig(max_delay_s=0.0)
        _, report = TrafficShaper(config).shape(
            lan.log, lan.devices, lan.duration_s, rng=4
        )
        assert report.delayed_flows == 0

    def test_deterministic_given_rng(self, lan):
        a, _ = TrafficShaper().shape(lan.log, lan.devices, lan.duration_s, rng=7)
        b, _ = TrafficShaper().shape(lan.log, lan.devices, lan.duration_s, rng=7)
        assert [f.time_s for f in a] == [f.time_s for f in b]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ShapingConfig(rate_margin=0.5)
        with pytest.raises(ValueError):
            ShapingConfig(max_delay_s=-1.0)
