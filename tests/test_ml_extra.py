"""Additional ML substrate tests: boundaries, determinism, and robustness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    DecisionTreeClassifier,
    FactorialHMM,
    GaussianHMM,
    GaussianNB,
    KNeighborsClassifier,
    LogisticRegression,
    RandomForestClassifier,
    StandardScaler,
    accuracy,
    train_test_split,
)
from repro.ml.preprocessing import check_features, check_xy


class TestInputValidation:
    def test_check_features_rejects_nan(self):
        with pytest.raises(ValueError):
            check_features([[1.0, float("nan")]])

    def test_check_features_rejects_empty(self):
        with pytest.raises(ValueError):
            check_features(np.zeros((0, 3)))

    def test_check_features_promotes_1d(self):
        assert check_features([1.0, 2.0]).shape == (2, 1)

    def test_check_xy_length_mismatch(self):
        with pytest.raises(ValueError):
            check_xy(np.zeros((3, 2)), [0, 1])

    def test_split_invalid_fraction(self):
        X, y = np.zeros((10, 1)), np.zeros(10)
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                train_test_split(X, y, bad)

    def test_knn_requires_k_samples(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(k=5).fit(np.zeros((3, 1)), [0, 1, 0])

    def test_logistic_single_class_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((5, 1)), [1, 1, 1, 1, 1])

    def test_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            RandomForestClassifier(n_trees=0)
        with pytest.raises(ValueError):
            KNeighborsClassifier(k=0)
        with pytest.raises(ValueError):
            GaussianHMM(0)
        with pytest.raises(ValueError):
            GaussianNB(var_smoothing=-1.0)


class TestDeterminism:
    def test_forest_deterministic_given_seed(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(int)
        a = RandomForestClassifier(n_trees=5, rng=11).fit(X, y).predict(X)
        b = RandomForestClassifier(n_trees=5, rng=11).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_hmm_fit_deterministic_given_seed(self):
        rng = np.random.default_rng(1)
        obs = np.concatenate([rng.normal(0, 1, 200), rng.normal(8, 1, 200)]).reshape(-1, 1)
        a = GaussianHMM(2, rng=3).fit(obs).means_
        b = GaussianHMM(2, rng=3).fit(obs).means_
        assert np.allclose(a, b)


class TestRobustness:
    def test_tree_handles_constant_features(self):
        X = np.ones((50, 3))
        X[:, 0] = np.arange(50)
        y = (X[:, 0] > 25).astype(int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert accuracy(y, tree.predict(X)) == 1.0

    def test_nb_handles_constant_feature(self):
        X = np.column_stack([np.ones(40), np.r_[np.zeros(20), np.ones(20)]])
        y = np.r_[np.zeros(20), np.ones(20)]
        model = GaussianNB().fit(X, y)
        assert accuracy(y, model.predict(X)) == 1.0

    def test_scaler_then_logistic_on_shifted_data(self):
        rng = np.random.default_rng(4)
        X = rng.normal(1e6, 10.0, size=(200, 2))
        y = (X[:, 0] > 1e6).astype(int)
        scaler = StandardScaler()
        model = LogisticRegression().fit(scaler.fit_transform(X), y)
        assert accuracy(y, model.predict(scaler.transform(X))) > 0.9

    def test_fhmm_noise_var_validation(self):
        chain = GaussianHMM(2)
        chain.set_parameters(
            np.asarray([0.5, 0.5]),
            np.asarray([[0.9, 0.1], [0.1, 0.9]]),
            np.asarray([[0.0], [100.0]]),
            np.asarray([[1.0], [1.0]]),
        )
        with pytest.raises(ValueError):
            FactorialHMM([chain], noise_var=0.0)

    def test_hmm_sample_reproducible(self):
        chain = GaussianHMM(2)
        chain.set_parameters(
            np.asarray([0.5, 0.5]),
            np.asarray([[0.9, 0.1], [0.1, 0.9]]),
            np.asarray([[0.0], [10.0]]),
            np.asarray([[1.0], [1.0]]),
        )
        a, sa = chain.sample(50, rng=5)
        b, sb = chain.sample(50, rng=5)
        assert np.array_equal(sa, sb)
        assert np.allclose(a, b)


@given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_tree_never_exceeds_max_depth_property(max_depth, seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(80, 4))
    y = rng.integers(0, 3, 80)
    tree = DecisionTreeClassifier(max_depth=max_depth).fit(X, y)
    assert tree.depth() <= max_depth


@given(st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_scaler_round_trip_property(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(rng.uniform(-100, 100), rng.uniform(0.5, 50), size=(60, 3))
    scaler = StandardScaler().fit(X)
    Z = scaler.transform(X)
    recovered = Z * scaler.scale_ + scaler.mean_
    assert np.allclose(recovered, X, atol=1e-8)
