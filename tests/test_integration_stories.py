"""Cross-package integration stories.

Each test runs one of the paper's narratives end-to-end across package
boundaries, checking the pieces compose: simulators feed attacks, attacks
feed defenses, defenses feed evaluation.
"""

import numpy as np
import pytest

from repro.attacks import (
    PowerPlayTracker,
    ThresholdNIOM,
    align_truth_to_meter,
    build_profile,
    fig2_signatures,
    score_occupancy_attack,
)
from repro.core import evaluate_defense_outcome, occupancy_privacy, run_pipeline
from repro.datasets import fig2_dataset, load_trace_csv, save_trace_csv
from repro.defenses import LocalAnalyticsHub, PrivateMeter, UtilityVerifier, apply_chpr
from repro.home import MeterConfig, SmartMeter, fig6_home, home_b, simulate_home


class TestMeterToProfileStory:
    """Sec. II-A: from a smart meter to a behavioral dossier."""

    def test_nilm_output_feeds_profiling(self):
        sim = fig2_dataset(n_days=14)
        tracker = PowerPlayTracker(fig2_signatures())
        estimates = tracker.track(sim.metered).estimates
        # profile built from *inferred* appliance traces, not ground truth
        profile = build_profile(dict(estimates), sim.occupancy)
        assert profile.appliance_event_rates["toaster"] > 0.2
        # inferred laundry schedule overlaps the true one
        from repro.attacks import active_days_of_week

        true_days = set(active_days_of_week(sim.appliance_traces["dryer"]))
        inferred_days = set(active_days_of_week(estimates["dryer"]))
        if true_days:
            assert inferred_days & true_days or not inferred_days


class TestDefenseRoundTripStory:
    """Sec. III: defense output is itself a valid trace for everything else."""

    def test_chpr_output_flows_through_pipeline(self):
        sim = simulate_home(fig6_home(), 7, rng=21)
        outcome = apply_chpr(sim, rng=22)
        # the defended trace can be re-metered, attacked, billed, exported
        remetered = SmartMeter(MeterConfig(period_s=900.0)).observe(outcome.visible, 23)
        assert remetered.period_s == 900.0
        score = occupancy_privacy(outcome.visible, sim.occupancy)
        assert score.worst_case_mcc < 0.5
        meter = PrivateMeter(rng=24)
        commitments = meter.record_trace(outcome.visible.resample(3600.0))
        proof = meter.billing_response([1] * len(commitments))
        assert UtilityVerifier().verify_bill(commitments, [1] * len(commitments), proof)

    def test_csv_round_trip_preserves_attackability(self, tmp_path):
        sim = simulate_home(home_b(), 5, rng=25)
        path = tmp_path / "export.csv"
        save_trace_csv(sim.metered, path)
        loaded = load_trace_csv(path)
        a = ThresholdNIOM().detect(sim.metered).occupancy
        b = ThresholdNIOM().detect(loaded).occupancy
        assert np.array_equal(a.values, b.values)


class TestLocalHubVsCloudStory:
    """Sec. III-D: the hub serves the service while starving the attacker."""

    def test_hub_functionality_matches_cloud_quality(self):
        sim = simulate_home(home_b(), 7, rng=26)
        hub = LocalAnalyticsHub(sim.metered)
        # billing identical to what the cloud would compute from raw data
        assert hub.bill_cents(12.0) == pytest.approx(sim.metered.energy_kwh() * 12.0)
        # schedule recommendation targets a genuinely idle window
        rec = hub.recommend_schedule()
        occ = sim.occupancy
        hours = (occ.times() % 86400) / 3600.0
        window = (hours >= rec.setback_start_hour) & (hours < rec.setback_end_hour)
        overall = occ.values.mean()
        assert occ.values[window].mean() <= overall + 0.05

    def test_attacker_with_payload_loses_day_resolution(self):
        sim = simulate_home(home_b(), 7, rng=27)
        payload = LocalAnalyticsHub(sim.metered).shared_payload()
        reconstruction = payload.as_trace()
        days = np.asarray(reconstruction.values).reshape(
            -1, len(payload.mean_daily_profile_w)
        )
        assert np.allclose(days, days[0])  # day-to-day variation is gone


class TestFullPipelineDeterminism:
    def test_pipeline_reproducible(self):
        sim = simulate_home(home_b(), 4, rng=28)
        r1 = run_pipeline(sim, defense_names=["nill", "dp-laplace"], rng=29)
        r2 = run_pipeline(sim, defense_names=["nill", "dp-laplace"], rng=29)
        for name in r1.defenses:
            assert (
                r1.defenses[name].privacy.worst_case_mcc
                == r2.defenses[name].privacy.worst_case_mcc
            )
