"""Chaos tests for the supervised fleet engine and its fault harness.

The recovery paths under test, each driven by deterministic fault
injection (:mod:`repro.fleet.faults`) rather than trusted on faith:

* a poison-pill job fails alone — the sweep returns N-1 results plus one
  structured :class:`HomeFailure`, and every survivor's ``trace_digest``
  is bit-identical to a clean serial run;
* a flaky job (fails first attempt, healthy after) succeeds on retry with
  an identical result;
* a worker crash mid-batch breaks the pool — the supervisor rebuilds it,
  requeues only the in-flight jobs, and produces no duplicates;
* a hung job hits its wall-clock timeout, its pool is torn down, and
  innocents complete;
* corrupt cache entries (torn bytes, wrong type, stale envelope) read as
  misses, never as results;
* results stream into the cache as they complete, so a failed sweep
  resumes from what finished;
* every recovery path above holds unchanged on the shared-memory
  backend, and no run — not even one whose workers were SIGKILLed —
  leaves a shared-memory segment behind.

The CI chaos canary re-runs this file with 2 workers.
"""

import json
import os
import pathlib
import pickle

import pytest

from repro.fleet import (
    FAULTS_ENV,
    CACHE_FORMAT_VERSION,
    FaultInjected,
    FaultPlan,
    FleetReport,
    FleetRunner,
    FleetSpec,
    ResultCache,
    job_cache_key,
    run_fleet,
)
from repro.fleet.engine import trace_digest
from repro.fleet.faults import active_plan
from tests.conftest import CHAOS_SPEC as SPEC

POOL_WORKERS = max(2, int(os.environ.get("REPRO_FLEET_WORKERS", "2")))

FAST = {"retry_backoff_s": 0.01}


@pytest.fixture(scope="module")
def clean_digests(chaos_clean_digests):
    """Ground truth: per-home digests from an uninjected serial run."""
    return chaos_clean_digests


def shmem_orphans():
    """Segments created by this supervisor still visible in /dev/shm.

    The run prefix embeds the supervisor pid (``rf<pid:x>x...``), so this
    only sees segments our own fleet runs created — parallel test
    processes can't pollute the check.
    """
    return sorted(
        p.name for p in pathlib.Path("/dev/shm").glob(f"rf{os.getpid():x}x*")
    )


def surviving_digests(result):
    return {h.index: h.trace_digest for h in result.homes}


class TestFaultPlan:
    def test_kind_and_rate_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(kind="meteor")
        with pytest.raises(ValueError):
            FaultPlan(kind="error", rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(kind="hang", hang_s=0.0)

    def test_targets_indices_and_attempt_bound(self):
        plan = FaultPlan(kind="error", indices=(2,), max_attempt=0)
        assert plan.targets(2, 0)
        assert not plan.targets(2, 1)  # flaky: healthy after first attempt
        assert not plan.targets(1, 0)
        poison = FaultPlan(kind="error", indices=(2,))
        assert all(poison.targets(2, a) for a in range(5))

    def test_rate_draw_is_deterministic_and_seeded(self):
        plan = FaultPlan(kind="error", rate=0.5, seed=7)
        cells = [(i, a) for i in range(20) for a in range(3)]
        draws = [plan.targets(i, a) for i, a in cells]
        assert draws == [plan.targets(i, a) for i, a in cells]  # stable
        assert any(draws) and not all(draws)  # actually probabilistic
        other = FaultPlan(kind="error", rate=0.5, seed=8)
        assert draws != [other.targets(i, a) for i, a in cells]

    def test_env_round_trip(self, monkeypatch):
        plan = FaultPlan(
            kind="hang", indices=(1, 3), rate=0.25, seed=5,
            max_attempt=2, hang_s=9.0,
        )
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        assert active_plan() == plan

    def test_unset_env_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert active_plan() is None

    def test_malformed_env_raises_not_disarms(self, monkeypatch):
        # a chaos test whose faults silently never fire would pass vacuously
        monkeypatch.setenv(FAULTS_ENV, "{not json")
        with pytest.raises(json.JSONDecodeError):
            active_plan()


class TestErrorIsolation:
    @pytest.mark.parametrize("workers", [1, POOL_WORKERS])
    def test_poison_pill_fails_alone(self, clean_digests, workers):
        result = run_fleet(
            SPEC, workers=workers,
            faults=FaultPlan(kind="error", indices=(2,)), **FAST,
        )
        assert [h.index for h in result.homes] == [0, 1, 3]
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.index == 2
        assert failure.kind == "error"
        assert failure.attempts == 3  # first try + 2 default retries
        assert "FaultInjected" in failure.error
        # survivors byte-identical to the clean serial run
        assert surviving_digests(result) == {
            i: d for i, d in clean_digests.items() if i != 2
        }

    @pytest.mark.parametrize("workers", [1, POOL_WORKERS])
    def test_flaky_job_succeeds_on_retry(self, clean_digests, workers):
        result = run_fleet(
            SPEC, workers=workers,
            faults=FaultPlan(kind="error", indices=(1,), max_attempt=0),
            **FAST,
        )
        assert not result.failures
        assert surviving_digests(result) == clean_digests

    def test_max_retries_zero_fails_first_error(self):
        result = run_fleet(
            SPEC, workers=1, max_retries=0,
            faults=FaultPlan(kind="error", indices=(1,), max_attempt=0),
            **FAST,
        )
        assert [f.index for f in result.failures] == [1]
        assert result.failures[0].attempts == 1

    def test_fail_fast_aborts_remaining(self):
        result = run_fleet(
            SPEC, workers=POOL_WORKERS, max_retries=0, fail_fast=True,
            faults=FaultPlan(kind="error", indices=(0,)), **FAST,
        )
        kinds = {f.index: f.kind for f in result.failures}
        assert kinds[0] == "error"
        assert "aborted" in kinds.values()
        # every home is accounted for exactly once
        indices = sorted(
            [h.index for h in result.homes] + [f.index for f in result.failures]
        )
        assert indices == list(range(SPEC.n_homes))


class TestCrashRecovery:
    def test_transient_crash_rebuilds_pool_no_duplicates(self, clean_digests):
        result = run_fleet(
            SPEC, workers=POOL_WORKERS,
            faults=FaultPlan(kind="crash", indices=(0,), max_attempt=0),
            **FAST,
        )
        assert not result.failures
        assert result.pool_rebuilds >= 1
        # no duplicate or missing homes, all byte-identical to serial
        assert [h.index for h in result.homes] == list(range(SPEC.n_homes))
        assert surviving_digests(result) == clean_digests

    def test_poison_crash_fails_alone_survivors_exact(self, clean_digests):
        result = run_fleet(
            SPEC, workers=POOL_WORKERS,
            faults=FaultPlan(kind="crash", indices=(1,)), **FAST,
        )
        assert [f.index for f in result.failures] == [1]
        assert result.failures[0].kind == "crash"
        assert result.pool_rebuilds >= 1
        assert surviving_digests(result) == {
            i: d for i, d in clean_digests.items() if i != 1
        }


class TestTimeouts:
    def test_hung_job_hits_timeout(self, clean_digests):
        # timeout is generous vs the ~25ms healthy job so slow CI boxes
        # never time out an innocent, yet tiny vs the 120s injected hang
        result = run_fleet(
            SPEC, workers=POOL_WORKERS, job_timeout=2.0, max_retries=1,
            faults=FaultPlan(kind="hang", indices=(2,), hang_s=120.0),
            **FAST,
        )
        assert [f.index for f in result.failures] == [2]
        failure = result.failures[0]
        assert failure.kind == "timeout"
        assert failure.attempts == 2
        assert surviving_digests(result) == {
            i: d for i, d in clean_digests.items() if i != 2
        }

    def test_transient_hang_recovers_on_retry(self, clean_digests):
        result = run_fleet(
            SPEC, workers=POOL_WORKERS, job_timeout=2.0,
            faults=FaultPlan(
                kind="hang", indices=(2,), max_attempt=0, hang_s=120.0
            ),
            **FAST,
        )
        assert not result.failures
        assert result.pool_rebuilds >= 1
        assert surviving_digests(result) == clean_digests


class TestShmemChaos:
    """PR-2 recovery semantics must survive the shared-memory backend.

    Same fault plans as the process-backend classes above, but with
    traces travelling through named shared-memory segments — plus the
    backend-specific claim that *no segment outlives the run*, even when
    the worker holding it was SIGKILLed mid-job.
    """

    def test_poison_pill_fails_alone_no_leak(self, clean_digests):
        result = run_fleet(
            SPEC, workers=POOL_WORKERS, backend="shmem", keep_traces=True,
            faults=FaultPlan(kind="error", indices=(2,)), **FAST,
        )
        assert [f.index for f in result.failures] == [2]
        assert result.failures[0].kind == "error"
        assert result.failures[0].attempts == 3
        assert surviving_digests(result) == {
            i: d for i, d in clean_digests.items() if i != 2
        }
        # survivors really travelled via shmem and landed intact
        assert all(
            trace_digest(h.metered) == h.trace_digest for h in result.homes
        )
        assert shmem_orphans() == []

    def test_crash_recovery_unchanged_no_leak(self, clean_digests):
        result = run_fleet(
            SPEC, workers=POOL_WORKERS, backend="shmem",
            faults=FaultPlan(kind="crash", indices=(0,), max_attempt=0),
            **FAST,
        )
        assert not result.failures
        assert result.pool_rebuilds >= 1
        assert surviving_digests(result) == clean_digests
        # the SIGKILLed attempt may have created a segment it could never
        # hand over; the supervisor's teardown sweep must have reaped it
        assert shmem_orphans() == []

    def test_hung_job_timeout_unchanged_no_leak(self, clean_digests):
        result = run_fleet(
            SPEC, workers=POOL_WORKERS, backend="shmem", job_timeout=2.0,
            max_retries=1,
            faults=FaultPlan(kind="hang", indices=(2,), hang_s=120.0),
            **FAST,
        )
        assert [f.index for f in result.failures] == [2]
        assert result.failures[0].kind == "timeout"
        assert surviving_digests(result) == {
            i: d for i, d in clean_digests.items() if i != 2
        }
        assert shmem_orphans() == []


class TestCacheRobustness:
    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_fleet(SPEC, workers=1, cache_dir=cache_dir)
        victim = next(cache_dir.glob("*/*.pkl"))
        victim.write_bytes(victim.read_bytes()[:10])
        result = run_fleet(SPEC, workers=1, cache_dir=cache_dir)
        assert result.cache_stats.misses == 1
        assert result.executed == 1

    def test_wrong_type_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = job_cache_key(SPEC.job(0))
        # loadable pickle of the wrong type, planted at the right path
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps("im-not-a-home-result"))
        assert cache.get(key) is None
        assert cache.stats.misses == 1

    def test_stale_envelope_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = job_cache_key(SPEC.job(0))
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(
            pickle.dumps({"format": CACHE_FORMAT_VERSION - 1, "result": "x"})
        )
        assert cache.get(key) is None

    def test_results_stream_into_cache_and_resume(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = run_fleet(
            SPEC, workers=POOL_WORKERS, cache_dir=cache_dir,
            faults=FaultPlan(kind="error", indices=(2,)), **FAST,
        )
        # survivors were cached even though the sweep had a failure
        assert first.cache_stats.stores == SPEC.n_homes - 1
        resumed = run_fleet(SPEC, workers=1, cache_dir=cache_dir)
        assert not resumed.failures
        assert resumed.cache_stats.hits == SPEC.n_homes - 1
        assert resumed.executed == 1  # only the previously failed home


class TestValidationAndReport:
    def test_spec_rejects_unknown_detectors(self):
        with pytest.raises(ValueError, match="unknown detectors"):
            FleetSpec(n_homes=1, detectors=("bogus",))

    def test_runner_rejects_bad_supervision_params(self):
        with pytest.raises(ValueError):
            FleetRunner(max_retries=-1)
        with pytest.raises(ValueError):
            FleetRunner(job_timeout=0.0)
        with pytest.raises(ValueError):
            FleetRunner(retry_backoff_s=-0.1)

    def test_report_carries_failures(self):
        result = run_fleet(
            SPEC, workers=1,
            faults=FaultPlan(kind="error", indices=(3,)), **FAST,
        )
        report = FleetReport.from_result(result)
        assert report.n_failed == 1
        doc = json.loads(report.to_json())
        assert doc["n_failed"] == 1
        assert doc["failures"][0]["index"] == 3
        assert doc["failures"][0]["kind"] == "error"

    def test_report_refuses_total_loss(self):
        result = run_fleet(
            FleetSpec(n_homes=1, days=1, seed=9, defenses=("nill",),
                      detectors=("threshold-15m",)),
            workers=1,
            faults=FaultPlan(kind="error", indices=(0,)), **FAST,
        )
        assert not result.homes
        with pytest.raises(ValueError, match="no successful homes"):
            FleetReport.from_result(result)

    def test_failure_csv_export(self, tmp_path):
        result = run_fleet(
            SPEC, workers=1,
            faults=FaultPlan(kind="error", indices=(2,)), **FAST,
        )
        report = FleetReport.from_result(result)
        written = report.to_csv(tmp_path / "report.csv")
        assert [p.name for p in written] == ["report.csv", "report.failures.csv"]
        lines = (tmp_path / "report.failures.csv").read_text().splitlines()
        assert lines[0].startswith("index,preset,kind,attempts")
        assert lines[1].split(",")[0] == "2"


class TestCLIFaults:
    def test_cli_reports_failures_and_exits_nonzero(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main

        monkeypatch.setenv(
            FAULTS_ENV, FaultPlan(kind="error", indices=(1,)).to_json()
        )
        code = main([
            "fleet", "--homes", "3", "--days", "1", "--seed", "5",
            "--workers", "1", "--defenses", "nill", "--max-retries", "1",
            "--csv", str(tmp_path / "r.csv"), "--json", str(tmp_path / "r.json"),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED home 1" in out
        assert "1/3 home(s) failed" in out
        assert (tmp_path / "r.failures.csv").exists()
        doc = json.loads((tmp_path / "r.json").read_text())
        assert doc["n_failed"] == 1

    def test_cli_fail_fast_flag(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv(
            FAULTS_ENV, FaultPlan(kind="error", indices=(0,)).to_json()
        )
        code = main([
            "fleet", "--homes", "2", "--days", "1", "--seed", "5",
            "--workers", "1", "--defenses", "nill",
            "--max-retries", "0", "--fail-fast",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED home 0" in out

    def test_cli_clean_run_still_exits_zero(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv(FAULTS_ENV, raising=False)
        code = main([
            "fleet", "--homes", "2", "--days", "1", "--seed", "5",
            "--workers", "1", "--defenses", "nill",
            "--job-timeout", "300", "--max-retries", "1",
        ])
        assert code == 0
