"""Tests for solar geometry, weather, and PV generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solar import (
    LatLon,
    PVArrayConfig,
    SolarSite,
    WeatherConfig,
    WeatherField,
    WeatherStationDB,
    clearsky_ghi_w_m2,
    day_length_hours,
    declination_rad,
    equation_of_time_minutes,
    grid_around,
    haversine_km,
    simulate_generation,
    sun_position,
    sunrise_sunset_utc_hours,
)
from repro.timeseries import SECONDS_PER_DAY, SECONDS_PER_HOUR


class TestGeo:
    def test_haversine_zero(self):
        p = LatLon(42.0, -72.0)
        assert haversine_km(p, p) == 0.0

    def test_haversine_known_distance(self):
        # one degree of latitude is ~111 km
        a, b = LatLon(40.0, -100.0), LatLon(41.0, -100.0)
        assert haversine_km(a, b) == pytest.approx(111.2, rel=0.01)

    def test_haversine_symmetry(self):
        a, b = LatLon(42.39, -72.53), LatLon(33.45, -112.07)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    def test_latlon_validation(self):
        with pytest.raises(ValueError):
            LatLon(91.0, 0.0)
        with pytest.raises(ValueError):
            LatLon(0.0, 200.0)

    def test_grid_around(self):
        pts = grid_around(LatLon(40.0, -100.0), 1.0, 3)
        assert len(pts) == 9
        lats = sorted({p.lat for p in pts})
        assert lats == [39.0, 40.0, 41.0]


class TestAstronomy:
    def test_declination_range(self):
        days = np.arange(1, 366)
        dec_deg = np.degrees(declination_rad(days))
        assert dec_deg.max() == pytest.approx(23.45, abs=0.5)
        assert dec_deg.min() == pytest.approx(-23.45, abs=0.5)

    def test_declination_solstices(self):
        # ~June 21 (day 172) max, ~Dec 21 (day 355) min
        dec = np.degrees(declination_rad(np.arange(1, 366)))
        assert abs(int(dec.argmax()) + 1 - 172) <= 4
        assert abs(int(dec.argmin()) + 1 - 355) <= 4

    def test_equation_of_time_bounds(self):
        eot = equation_of_time_minutes(np.arange(1, 366))
        assert eot.max() < 18.0 and eot.min() > -16.0

    def test_day_length_equator_always_12h(self):
        for day in (1, 90, 180, 270):
            assert day_length_hours(day, 0.0) == pytest.approx(12.0, abs=0.2)

    def test_day_length_seasons_northern(self):
        summer = day_length_hours(171, 45.0)
        winter = day_length_hours(354, 45.0)
        assert summer > 15.0 and winter < 9.5

    def test_day_length_hemispheres_mirror(self):
        north = day_length_hours(171, 40.0)
        south = day_length_hours(171, -40.0)
        assert north + south == pytest.approx(24.0, abs=0.3)

    def test_polar_night_returns_none(self):
        assert sunrise_sunset_utc_hours(354, 80.0, 0.0) is None

    def test_sunrise_before_sunset(self):
        result = sunrise_sunset_utc_hours(100, 42.0, -72.0)
        assert result is not None
        sunrise, sunset = result
        assert sunrise < sunset

    def test_longitude_shifts_noon(self):
        east = sunrise_sunset_utc_hours(100, 42.0, 10.0)
        west = sunrise_sunset_utc_hours(100, 42.0, -100.0)
        noon_east = sum(east) / 2
        noon_west = sum(west) / 2
        # 110 degrees of longitude = 110/15 hours later in UTC
        assert noon_west - noon_east == pytest.approx(110.0 / 15.0, abs=0.1)

    def test_sun_elevation_peaks_at_solar_noon(self):
        times = np.arange(0, SECONDS_PER_DAY, 60.0) + 100 * SECONDS_PER_DAY
        el, _ = sun_position(times, 42.0, 0.0)
        peak_hour = (times[el.argmax()] % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        assert peak_hour == pytest.approx(12.0, abs=0.3)

    def test_clearsky_zero_below_horizon(self):
        assert clearsky_ghi_w_m2(np.asarray([-0.1]))[0] == 0.0

    def test_clearsky_monotone_in_elevation(self):
        els = np.radians(np.asarray([5.0, 20.0, 45.0, 80.0]))
        ghi = clearsky_ghi_w_m2(els)
        assert np.all(np.diff(ghi) > 0)
        assert ghi[-1] < 1100.0  # physical ceiling


class TestWeather:
    def test_cloud_in_unit_interval(self):
        field = WeatherField()
        times = np.arange(0, 5 * SECONDS_PER_DAY, 3600.0)
        cloud = field.cloud_cover(LatLon(40.0, -100.0), times)
        assert np.all(cloud >= 0.0) and np.all(cloud <= 1.0)

    def test_deterministic_given_seed(self):
        a = WeatherField(WeatherConfig(seed=7))
        b = WeatherField(WeatherConfig(seed=7))
        times = np.arange(0, SECONDS_PER_DAY, 1800.0)
        site = LatLon(40.0, -100.0)
        assert np.array_equal(a.cloud_cover(site, times), b.cloud_cover(site, times))

    def test_different_seeds_differ(self):
        times = np.arange(0, SECONDS_PER_DAY, 1800.0)
        site = LatLon(40.0, -100.0)
        a = WeatherField(WeatherConfig(seed=1)).cloud_cover(site, times)
        b = WeatherField(WeatherConfig(seed=2)).cloud_cover(site, times)
        assert not np.array_equal(a, b)

    def test_spatial_correlation_decays(self):
        field = WeatherField()
        times = np.arange(0, 30 * SECONDS_PER_DAY, 3600.0)
        base = field.cloud_cover(LatLon(40.0, -100.0), times)
        near = field.cloud_cover(LatLon(40.05, -100.0), times)
        far = field.cloud_cover(LatLon(48.0, -80.0), times)
        corr_near = np.corrcoef(base, near)[0, 1]
        corr_far = np.corrcoef(base, far)[0, 1]
        assert corr_near > 0.9
        assert corr_far < corr_near - 0.2

    def test_transmittance_bounds(self):
        field = WeatherField()
        times = np.arange(0, 10 * SECONDS_PER_DAY, 3600.0)
        trans = field.transmittance(LatLon(35.0, -90.0), times)
        assert np.all(trans >= 0.25 - 1e-9) and np.all(trans <= 1.0)

    def test_station_db_grid(self):
        db = WeatherStationDB(WeatherField(), (30.0, 32.0), (-100.0, -98.0), 1.0)
        assert len(db) == 9
        reading = db.readings(db.stations[0], np.asarray([0.0, 3600.0]))
        assert reading.shape == (2,)


class TestGeneration:
    def test_zero_at_night(self):
        site = SolarSite("s", LatLon(42.0, -72.0))
        gen = simulate_generation(site, 2, 60.0, rng=0)
        hours = (gen.times() % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        # local solar midnight is ~04:50 UTC for lon -72
        night = (hours > 4.0) & (hours < 6.0)
        assert gen.values[night].max() == 0.0

    def test_power_capped_at_capacity(self):
        site = SolarSite("s", LatLon(35.0, -100.0), PVArrayConfig(capacity_w=5000.0))
        gen = simulate_generation(site, 5, 60.0, rng=1)
        assert gen.max() <= 5000.0 + 1e-6

    def test_clouds_reduce_energy(self):
        site = SolarSite("s", LatLon(40.0, -95.0), PVArrayConfig(noise_w=0.0))
        clear = simulate_generation(site, 10, 60.0, weather=None, rng=2)
        cloudy = simulate_generation(site, 10, 60.0, weather=WeatherField(), rng=2)
        assert cloudy.energy_kwh() < clear.energy_kwh()

    def test_horizon_obstruction_delays_morning(self):
        loc = LatLon(40.0, -95.0)
        free = SolarSite("a", loc, PVArrayConfig(noise_w=0.0))
        blocked = SolarSite(
            "b", loc, PVArrayConfig(noise_w=0.0, horizon_east_deg=15.0)
        )
        g_free = simulate_generation(free, 1, 60.0, rng=3)
        g_blocked = simulate_generation(blocked, 1, 60.0, rng=3)
        threshold = 0.1 * g_free.max()
        first_free = np.flatnonzero(g_free.values > threshold)[0]
        first_blocked = np.flatnonzero(g_blocked.values > threshold)[0]
        assert first_blocked > first_free

    def test_summer_generates_more_than_winter(self):
        site = SolarSite("s", LatLon(42.0, -72.0), PVArrayConfig(noise_w=0.0))
        winter = simulate_generation(site, 5, 60.0, rng=4, start_day=0)
        summer = simulate_generation(site, 5, 60.0, rng=4, start_day=170)
        assert summer.energy_kwh() > 1.5 * winter.energy_kwh()

    def test_south_facing_beats_north_facing(self):
        loc = LatLon(40.0, -95.0)
        south = SolarSite("s", loc, PVArrayConfig(azimuth_deg=180.0, noise_w=0.0))
        north = SolarSite("n", loc, PVArrayConfig(azimuth_deg=0.0, noise_w=0.0))
        g_s = simulate_generation(south, 5, 60.0, rng=5)
        g_n = simulate_generation(north, 5, 60.0, rng=5)
        assert g_s.energy_kwh() > g_n.energy_kwh()

    def test_invalid_period_rejected(self):
        site = SolarSite("s", LatLon(40.0, -95.0))
        with pytest.raises(ValueError):
            simulate_generation(site, 1, 7.0, rng=0)  # 7 s does not divide a day


@given(st.floats(min_value=-60.0, max_value=60.0), st.integers(min_value=1, max_value=365))
@settings(max_examples=60, deadline=None)
def test_day_length_bounded_property(lat, day):
    """At temperate latitudes day length stays within physical bounds."""
    length = day_length_hours(day, lat)
    assert length is not None
    assert 0.0 < length < 24.0


@given(
    st.floats(min_value=-89.0, max_value=89.0),
    st.floats(min_value=-179.0, max_value=179.0),
    st.floats(min_value=-89.0, max_value=89.0),
    st.floats(min_value=-179.0, max_value=179.0),
)
@settings(max_examples=60, deadline=None)
def test_haversine_triangle_inequality_property(lat1, lon1, lat2, lon2):
    a, b = LatLon(lat1, lon1), LatLon(lat2, lon2)
    mid = LatLon((lat1 + lat2) / 2, (lon1 + lon2) / 2)
    assert haversine_km(a, b) <= haversine_km(a, mid) + haversine_km(mid, b) + 1e-6
