"""Shared fleet fixtures: expensive reference runs computed once.

Several modules need the same ground truth — a clean serial run of the
standard 5-home determinism fleet (``test_fleet.py``,
``test_fleet_backends.py``) and of the 4-home chaos fleet
(``test_fleet_faults.py``).  Computing each once per *session* instead of
once per module keeps the backend-parity matrix from inflating the
tier-1 wall clock.

The spec constants live here, next to the fixtures that cache their
results, so a module can never drift from the reference it compares
against.
"""

import pytest

from repro.fleet import FleetSpec, run_fleet

#: the determinism fleet: two presets, two defenses, full detector set
FLEET_SPEC = FleetSpec(
    n_homes=5,
    days=1,
    seed=123,
    mix=("random", "home-a"),
    defenses=("dp-laplace", "smoothing"),
)

#: the chaos fleet: one defense, one detector keeps each job ~25ms so
#: fault paths (which re-run jobs) stay fast
CHAOS_SPEC = FleetSpec(
    n_homes=4,
    days=1,
    seed=9,
    mix=("random", "home-a"),
    defenses=("nill",),
    detectors=("threshold-15m",),
)


@pytest.fixture(scope="session")
def fleet_serial_result():
    """Clean serial run of :data:`FLEET_SPEC` — the bitwise ground truth."""
    return run_fleet(FLEET_SPEC, workers=1)


@pytest.fixture(scope="session")
def chaos_clean_digests():
    """Per-home digests from an uninjected serial run of :data:`CHAOS_SPEC`."""
    result = run_fleet(CHAOS_SPEC, workers=1)
    assert not result.failures
    return {h.index: h.trace_digest for h in result.homes}
