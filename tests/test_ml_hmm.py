"""Tests for the Gaussian HMM and the factorial HMM."""

import numpy as np
import pytest

from repro.ml import FactorialHMM, GaussianHMM, fit_appliance_chain


def two_state_model(rng=None):
    hmm = GaussianHMM(2, rng=rng)
    hmm.set_parameters(
        startprob=np.asarray([0.5, 0.5]),
        transmat=np.asarray([[0.95, 0.05], [0.05, 0.95]]),
        means=np.asarray([[0.0], [10.0]]),
        variances=np.asarray([[1.0], [1.0]]),
    )
    return hmm


class TestGaussianHMM:
    def test_set_parameters_validation(self):
        hmm = GaussianHMM(2)
        with pytest.raises(ValueError):
            hmm.set_parameters(
                startprob=np.asarray([0.9, 0.9]),  # does not sum to 1
                transmat=np.eye(2),
                means=np.zeros((2, 1)),
                variances=np.ones((2, 1)),
            )

    def test_decode_separated_states(self):
        hmm = two_state_model(rng=0)
        obs, states = hmm.sample(400, rng=1)
        decoded = hmm.decode(obs)
        assert np.mean(decoded == states) > 0.97

    def test_posterior_rows_sum_to_one(self):
        hmm = two_state_model(rng=0)
        obs, _ = hmm.sample(100, rng=2)
        gamma = hmm.posterior(obs)
        assert gamma.shape == (100, 2)
        assert np.allclose(gamma.sum(axis=1), 1.0, atol=1e-9)

    def test_log_likelihood_prefers_true_model(self):
        true = two_state_model(rng=0)
        obs, _ = true.sample(300, rng=3)
        wrong = GaussianHMM(2)
        wrong.set_parameters(
            startprob=np.asarray([0.5, 0.5]),
            transmat=np.asarray([[0.95, 0.05], [0.05, 0.95]]),
            means=np.asarray([[50.0], [80.0]]),
            variances=np.asarray([[1.0], [1.0]]),
        )
        assert true.log_likelihood(obs) > wrong.log_likelihood(obs)

    def test_fit_recovers_means(self):
        true = two_state_model(rng=0)
        obs, _ = true.sample(800, rng=4)
        learned = GaussianHMM(2, rng=5).fit(obs)
        means = sorted(learned.means_[:, 0])
        assert means[0] == pytest.approx(0.0, abs=0.5)
        assert means[1] == pytest.approx(10.0, abs=0.5)

    def test_fit_improves_likelihood(self):
        true = two_state_model(rng=0)
        obs, _ = true.sample(300, rng=6)
        model = GaussianHMM(2, n_iter=0, rng=7)
        model._init_from_kmeans(np.asarray(obs))
        before = model.log_likelihood(obs)
        model.n_iter = 20
        model.fit(obs)
        assert model.log_likelihood(obs) >= before - 1e-6

    def test_fit_learns_sticky_transitions(self):
        true = two_state_model(rng=0)
        obs, _ = true.sample(1000, rng=8)
        learned = GaussianHMM(2, rng=9).fit(obs)
        assert learned.transmat_[0, 0] > 0.8
        assert learned.transmat_[1, 1] > 0.8

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GaussianHMM(2).decode(np.zeros((10, 1)))

    def test_too_short_sequence_raises(self):
        with pytest.raises(ValueError):
            GaussianHMM(4).fit(np.zeros((5, 1)))


class TestFactorialHMM:
    @staticmethod
    def appliance_chain(off_w, on_w, stay=0.97):
        chain = GaussianHMM(2)
        chain.set_parameters(
            startprob=np.asarray([0.9, 0.1]),
            transmat=np.asarray([[stay, 1 - stay], [1 - stay, stay]]),
            means=np.asarray([[off_w], [on_w]]),
            variances=np.asarray([[25.0], [100.0]]),
        )
        return chain

    def test_joint_space_size(self):
        chains = [self.appliance_chain(0, 100), self.appliance_chain(0, 1000)]
        fhmm = FactorialHMM(chains)
        assert fhmm.n_joint_states == 4

    def test_disaggregates_two_distinct_loads(self):
        rng = np.random.default_rng(10)
        c1 = self.appliance_chain(0.0, 150.0)
        c2 = self.appliance_chain(0.0, 1200.0)
        obs1, s1 = c1.sample(500, rng=11)
        obs2, s2 = c2.sample(500, rng=12)
        aggregate = obs1[:, 0] + obs2[:, 0] + rng.normal(0, 5, 500)
        fhmm = FactorialHMM([c1, c2], noise_var=25.0)
        states = fhmm.decode(aggregate.reshape(-1, 1))
        assert np.mean(states[:, 1] == s2) > 0.95  # big load: near-perfect
        assert np.mean(states[:, 0] == s1) > 0.80  # small load: good

    def test_disaggregate_power_close_to_truth(self):
        c1 = self.appliance_chain(0.0, 500.0)
        c2 = self.appliance_chain(0.0, 2000.0)
        obs1, _ = c1.sample(300, rng=13)
        obs2, _ = c2.sample(300, rng=14)
        aggregate = (obs1[:, 0] + obs2[:, 0]).reshape(-1, 1)
        powers = fhmm_powers = FactorialHMM([c1, c2]).disaggregate(aggregate)
        total_err = np.abs(powers.sum(axis=1) - aggregate[:, 0]).mean()
        assert total_err < 150.0

    def test_unfitted_chain_rejected(self):
        with pytest.raises(ValueError):
            FactorialHMM([GaussianHMM(2)])

    def test_joint_space_cap(self):
        chains = [self.appliance_chain(0, 100) for _ in range(3)]
        for chain in chains:
            chain.n_states = 2
        big = [fit for fit in chains]
        # 40 chains of 2 states would be 2^40 joint states
        with pytest.raises(ValueError):
            FactorialHMM([self.appliance_chain(0, 100)] * 40)

    def test_fit_appliance_chain_orders_states(self):
        rng = np.random.default_rng(15)
        power = np.where(rng.uniform(size=600) < 0.3, 1000.0, 0.0)
        power += rng.normal(0, 10, 600)
        chain = fit_appliance_chain(power, n_states=2, rng=16)
        assert chain.means_[0, 0] < chain.means_[1, 0]
        assert chain.means_[1, 0] == pytest.approx(1000.0, abs=100.0)
