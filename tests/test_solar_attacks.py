"""Tests for SunSpot, Weatherman, and SunDance."""

import numpy as np
import pytest

from repro.home import MeterConfig, NetMeter, simulate_home, home_a
from repro.solar import (
    LatLon,
    PVArrayConfig,
    SolarSite,
    SunDance,
    SunSpot,
    WeatherField,
    WeatherStationDB,
    Weatherman,
    cloud_proxy_from_generation,
    extract_day_observations,
    predicted_crossings,
    simulate_generation,
)
from repro.solar.sunspot import envelope_observations
from repro.timeseries import SECONDS_PER_DAY

SITE = SolarSite("test-site", LatLon(42.39, -72.53))


@pytest.fixture(scope="module")
def weather():
    return WeatherField()


@pytest.fixture(scope="module")
def year_trace(weather):
    return simulate_generation(SITE, 365, 60.0, weather, rng=0)


class TestObservationExtraction:
    def test_extracts_one_observation_per_clear_day(self):
        site = SolarSite("s", LatLon(42.0, -72.0), PVArrayConfig(noise_w=0.0))
        gen = simulate_generation(site, 20, 60.0, rng=1)
        obs = extract_day_observations(gen)
        # local-solar-day windows drop a boundary day at western longitudes
        assert len(obs) in (19, 20)

    def test_start_before_end(self, year_trace):
        for o in extract_day_observations(year_trace):
            assert o.start_utc_h < o.end_utc_h

    def test_day_length_tracks_season(self):
        site = SolarSite("s", LatLon(45.0, -90.0), PVArrayConfig(noise_w=0.0))
        gen = simulate_generation(site, 365, 60.0, rng=2)
        obs = extract_day_observations(gen)
        lengths = {o.day_index: o.end_utc_h - o.start_utc_h for o in obs}
        assert lengths[171] > lengths[354] + 4.0  # summer much longer

    def test_overcast_days_skipped(self, weather):
        gen = simulate_generation(SITE, 60, 60.0, weather, rng=3)
        obs = extract_day_observations(gen)
        assert len(obs) < 60  # some days were too cloudy

    def test_zero_trace_returns_empty(self):
        from repro.timeseries import constant

        assert extract_day_observations(constant(0.0, 2880, 60.0)) == []

    def test_envelope_keeps_clearest_day(self):
        from repro.solar.sunspot import DayObservation

        days = [
            DayObservation(0, 7.0, 17.0),
            DayObservation(1, 7.5, 16.5),  # cloud-shrunk
            DayObservation(2, 6.9, 17.1),  # clearest
        ]
        out = envelope_observations(days, window_days=10)
        assert len(out) == 1
        assert out[0].day_index == 2


class TestPredictedCrossings:
    def test_higher_el0_shrinks_day(self):
        days = np.asarray([100])
        r1, s1 = predicted_crossings(days, 42.0, -72.0, 0.0)
        r2, s2 = predicted_crossings(days, 42.0, -72.0, 5.0)
        assert (s2 - r2)[0] < (s1 - r1)[0]

    def test_matches_horizon_formula_at_zero(self):
        from repro.solar import sunrise_sunset_utc_hours

        days = np.asarray([80])
        rise, sset = predicted_crossings(days, 42.0, -72.0, 0.0)
        expected = sunrise_sunset_utc_hours(79, 42.0, -72.0)  # day_index 80-1... consistent n
        # both use n = day%365+1, so day_index=80 -> n=81; call with day 80
        expected = sunrise_sunset_utc_hours(80, 42.0, -72.0)
        assert rise[0] == pytest.approx(expected[0], abs=1e-6)
        assert sset[0] == pytest.approx(expected[1], abs=1e-6)


def fast_sunspot() -> SunSpot:
    """SunSpot with a reduced search budget for the unit tests.

    The full-budget default (9x9 grid, 4 refine levels, 4x5 model
    candidates) costs ~20 s per localization regardless of trace size —
    the grid search dominates, not the trace — which made this file the
    whole suite's long pole.  7x7/3-level search with the empirically
    winning threshold/beam candidates is ~4x faster and stays well
    inside every accuracy bound below; the full-budget search remains
    exercised by ``benchmarks/test_fig5_localization.py``.
    """
    return SunSpot(
        grid_per_side=7,
        refine_levels=3,
        threshold_candidates=(12.0, 25.0),
        beam_boost_candidates=(0.0, 0.8, 1.6),
    )


@pytest.fixture(scope="module")
def cloudy_localization(year_trace):
    """One shared localization of the cloudy site (two tests assert on it)."""
    return fast_sunspot().localize(year_trace)


class TestSunSpot:
    def test_localizes_clean_site_within_tens_of_km(self):
        site = SolarSite("clean", LatLon(42.39, -72.53), PVArrayConfig(noise_w=0.0))
        gen = simulate_generation(site, 365, 60.0, rng=0)
        result = fast_sunspot().localize(gen)
        assert result.error_km(site.location) < 60.0

    def test_localizes_cloudy_site(self, cloudy_localization):
        assert cloudy_localization.error_km(SITE.location) < 120.0

    def test_longitude_is_precise(self, cloudy_localization):
        assert abs(cloudy_localization.estimate.lon - SITE.location.lon) < 0.3

    def test_hard_site_still_bounded(self, weather):
        # a skewed-azimuth, horizon-blocked array: the dawn model's beam
        # term absorbs much of the bias, so the estimate stays in-region
        # (which of the ten Fig. 5 sites end up as outliers is determined
        # empirically by the benchmark and recorded in EXPERIMENTS.md)
        hard = SolarSite(
            "hard",
            LatLon(44.0, -90.0),
            PVArrayConfig(azimuth_deg=115.0, horizon_east_deg=12.0),
        )
        gen = simulate_generation(hard, 365, 60.0, weather, rng=7)
        result = fast_sunspot().localize(gen)
        assert result.error_km(hard.location) < 400.0

    def test_too_few_days_raises(self):
        gen = simulate_generation(SITE, 10, 60.0, weather=None, rng=1)
        short = gen.slice_time(0, 3 * SECONDS_PER_DAY)
        with pytest.raises(ValueError):
            SunSpot().localize(short)


class TestWeatherman:
    def test_cloud_proxy_shape(self, year_trace):
        proxy = cloud_proxy_from_generation(year_trace)
        assert len(proxy.times_s) == len(proxy.values)
        assert np.all(proxy.values >= 0.0) and np.all(proxy.values <= 1.0)

    def test_proxy_needs_enough_days(self, year_trace):
        short = year_trace.slice_time(0, 5 * SECONDS_PER_DAY)
        with pytest.raises(ValueError):
            cloud_proxy_from_generation(short)

    def test_localizes_with_hourly_data(self, weather, year_trace):
        stations = WeatherStationDB(
            weather, (SITE.location.lat - 4, SITE.location.lat + 4),
            (SITE.location.lon - 4, SITE.location.lon + 4), 1.0
        )
        hourly = year_trace.resample(3600.0)
        result = Weatherman(stations).localize(hourly)
        assert result.error_km(SITE.location) < 30.0

    def test_localizes_hard_site(self, weather):
        hard = SolarSite(
            "hard",
            LatLon(44.0, -90.0),
            PVArrayConfig(azimuth_deg=115.0, horizon_east_deg=12.0),
        )
        gen = simulate_generation(hard, 180, 60.0, weather, rng=7).resample(3600.0)
        stations = WeatherStationDB(weather, (40.0, 48.0), (-94.0, -86.0), 1.0)
        result = Weatherman(stations).localize(gen)
        # robust where SunSpot is not: weather correlation ignores geometry
        assert result.error_km(hard.location) < 40.0


class TestSunDance:
    def test_recovers_generation_and_consumption(self, weather):
        home = simulate_home(home_a(), 30, rng=11)
        gen = simulate_generation(SITE, 30, 60.0, weather, rng=12)
        net = NetMeter(MeterConfig(noise_std_w=5.0)).observe_net(home.total, gen, 13)
        est = SunDance().disaggregate(net)
        n = len(est.generation)
        gen_err = np.abs(est.generation.values - gen.resample(60.0).values[:n]).sum()
        assert gen_err / gen.values.sum() < 0.3
        # consumption must be non-negative and roughly conserve energy
        assert est.consumption.min() >= 0.0
        total_true = home.total.energy_kwh()
        assert est.consumption.energy_kwh() == pytest.approx(total_true, rel=0.5)

    def test_weather_aided_also_accurate(self, weather):
        # the weather-aided variant replaces the trace's own deficit signal
        # with the public weather service at a (Weatherman-) inferred
        # location; both must recover generation well (the trace's own
        # deficit is itself an excellent transmittance estimate, so aided
        # is not necessarily better — it matters for bursty homes whose
        # load masks the deficit)
        home = simulate_home(home_a(), 30, rng=14)
        gen = simulate_generation(SITE, 30, 60.0, weather, rng=15)
        net = NetMeter(MeterConfig(noise_std_w=5.0)).observe_net(home.total, gen, 16)
        stations = WeatherStationDB(weather, (40.0, 45.0), (-75.0, -70.0), 1.0)
        blind = SunDance().disaggregate(net)
        aided = SunDance(location=SITE.location, weather=stations).disaggregate(net)
        truth = gen.resample(60.0).values[: len(blind.generation)]
        err_blind = np.abs(blind.generation.values - truth).sum() / truth.sum()
        err_aided = np.abs(aided.generation.values - truth).sum() / truth.sum()
        assert err_blind < 0.3
        assert err_aided < 0.4

    def test_needs_a_week(self):
        from repro.timeseries import constant

        with pytest.raises(ValueError):
            SunDance().disaggregate(constant(100.0, 1440, 60.0))

    def test_location_without_weather_rejected(self):
        with pytest.raises(ValueError):
            SunDance(location=LatLon(0, 0), weather=None)
