"""Property-based invariants every registered defense must satisfy.

These are seeded-generator loops (no hypothesis dependency): each
property runs every registered :class:`~repro.defenses.TraceDefense` —
at its registry default *and* at dialed knob settings — against several
independently seeded simulated homes, and asserts physics rather than
pinned numbers:

* **billing energy conservation** — the visible trace's kWh cannot fall
  below the true kWh by more than the mechanism's physical budget (a
  battery can hide at most its capacity; DP noise is zero-mean so its
  shortfall is statistically bounded; CHPr's shift is exactly its
  reported ``extra_energy_kwh``; everything else preserves or adds
  energy up to windowing truncation);
* **CHPr tank physics** — the tank temperature never leaves
  ``[inlet_c, setpoint_c]`` no matter the dial position;
* **DP noise is zero-mean** within statistical tolerance;
* **the identity defense is exactly free** — zero distortion, zero
  cost, bit-identical visible trace;
* plus the universal sanity floor: visible power is finite and
  non-negative, distortion and comfort fractions are well-ranged, and a
  fixed seed reproduces the visible trace bit-for-bit.

New defenses registered via :func:`repro.core.register_defense` (and
dialed via :func:`repro.core.register_knob_mapping`) are picked up
automatically — passing this suite is the price of admission.
"""

import math

import numpy as np
import pytest

from repro.core import defense_names, knob_mapping_names, make_defense
from repro.defenses import (
    CHPrTraceDefense,
    CoarseningDefense,
    IdentityDefense,
    LaplaceReleaseDefense,
    NILLDefense,
    SmoothingDefense,
    SteppedDefense,
    laplace_noise,
)
from repro.home import make_preset, simulate_home

SEEDS = (0, 1, 2)
DAYS = 2

#: every registered defense, at its registry default and dialed through
#: its knob mapping (settings chosen off the registry defaults so the
#: invariants cover genuinely different configurations)
DEFENSE_VARIANTS = tuple(defense_names()) + tuple(
    f"{name}@{setting}"
    for name in knob_mapping_names()
    for setting in ("0.4", "1")
)


@pytest.fixture(scope="module")
def traces():
    """One simulated home trace per seed (shared across all properties)."""
    return {
        seed: simulate_home(make_preset("home-a", seed), DAYS, rng=seed).metered
        for seed in SEEDS
    }


def billing_allowance(defense, outcome, trace) -> float:
    """How much visible kWh may legitimately fall below true kWh.

    This is each mechanism's *physical budget*, not a tuned fudge
    factor; a defense that hides more energy than this is misbilling.
    """
    if isinstance(defense, (NILLDefense, SteppedDefense)):
        # a battery can cover demand with at most its stored capacity
        return defense.battery_config.capacity_wh / 1000.0
    if isinstance(defense, LaplaceReleaseDefense):
        # sum of n iid Laplace(b) samples has std b*sqrt(2n); 6 sigma of
        # that, converted to energy at the release period (clipping at
        # zero only ever raises the visible energy)
        cfg = defense.config
        period = max(cfg.release_period_s, trace.period_s)
        n = math.ceil(len(trace) * trace.period_s / period)
        scale_kwh = cfg.noise_scale_w * period / 3600.0 / 1000.0
        return 6.0 * scale_kwh * math.sqrt(2.0 * n)
    if isinstance(defense, SmoothingDefense):
        # zero-padded convolution loses up to half a window at each edge
        return trace.max() * defense.window_s / 3600.0 / 1000.0
    if isinstance(defense, CoarseningDefense):
        # mean-resampling may truncate a partial trailing interval
        return trace.max() * defense.report_period_s / 3600.0 / 1000.0
    if isinstance(defense, CHPrTraceDefense):
        # CHPr's energy shift is exactly what it reports: visible must
        # hold at least true + extra (clipping only adds)
        return -outcome.extra_energy_kwh
    # identity, physical noise injection: energy only preserved or added
    return 0.0


@pytest.mark.parametrize("name", DEFENSE_VARIANTS)
class TestUniversalInvariants:
    def test_billing_energy_conserved(self, name, traces):
        for seed, trace in traces.items():
            defense = make_defense(name)
            outcome = defense.apply(trace, np.random.default_rng(seed))
            allowance = billing_allowance(defense, outcome, trace)
            assert outcome.visible.energy_kwh() >= (
                trace.energy_kwh() - allowance - 1e-9
            ), f"{name} seed={seed} hides more energy than its budget"

    def test_visible_trace_is_physical(self, name, traces):
        for seed, trace in traces.items():
            outcome = make_defense(name).apply(trace, np.random.default_rng(seed))
            values = outcome.visible.values
            assert np.all(np.isfinite(values)), f"{name} seed={seed}"
            assert values.min() >= 0.0, f"{name} seed={seed}"

    def test_reported_scalars_well_ranged(self, name, traces):
        for seed, trace in traces.items():
            outcome = make_defense(name).apply(trace, np.random.default_rng(seed))
            assert outcome.utility_distortion >= 0.0
            assert 0.0 <= outcome.comfort_violation_fraction <= 1.0
            assert math.isfinite(outcome.extra_energy_kwh)

    def test_seed_reproduces_visible_trace(self, name, traces):
        trace = traces[SEEDS[0]]
        a = make_defense(name).apply(trace, np.random.default_rng(42))
        b = make_defense(name).apply(trace, np.random.default_rng(42))
        assert np.array_equal(a.visible.values, b.visible.values), name
        assert a.extra_energy_kwh == b.extra_energy_kwh


class TestIdentityAnchor:
    def test_identity_distortion_is_exactly_zero(self, traces):
        for seed, trace in traces.items():
            outcome = IdentityDefense().apply(trace, np.random.default_rng(seed))
            assert outcome.utility_distortion == 0.0
            assert outcome.extra_energy_kwh == 0.0
            assert outcome.comfort_violation_fraction == 0.0
            assert np.array_equal(outcome.visible.values, trace.values)
            assert outcome.visible.period_s == trace.period_s

    def test_knob_setting_zero_is_identity_for_every_mapping(self, traces):
        trace = traces[SEEDS[0]]
        for name in knob_mapping_names():
            outcome = make_defense(f"{name}@0").apply(
                trace, np.random.default_rng(0)
            )
            assert outcome.utility_distortion == 0.0, name
            assert np.array_equal(outcome.visible.values, trace.values), name


class TestCHPrTankPhysics:
    @pytest.mark.parametrize("strength", [0.25, 0.6, 1.0])
    def test_tank_temperature_stays_in_bounds(self, strength, traces):
        for seed, trace in traces.items():
            defense = CHPrTraceDefense(strength=strength)
            defense.apply(trace, np.random.default_rng(seed))
            temps = defense.last_controller.last_temps_c
            assert temps.min() >= defense.heater.inlet_c - 1e-9, (
                f"strength={strength} seed={seed}: tank below inlet temp"
            )
            assert temps.max() <= defense.heater.setpoint_c + 1e-9, (
                f"strength={strength} seed={seed}: tank above setpoint"
            )

    def test_comfort_violations_stay_rare(self, traces):
        for seed, trace in traces.items():
            defense = CHPrTraceDefense()
            outcome = defense.apply(trace, np.random.default_rng(seed))
            assert outcome.comfort_violation_fraction <= 0.01

    def test_strength_validated(self):
        with pytest.raises(ValueError):
            CHPrTraceDefense(strength=0.0)
        with pytest.raises(ValueError):
            CHPrTraceDefense(strength=1.5)


class TestDPNoise:
    def test_laplace_noise_zero_mean(self):
        scale, n = 2000.0, 200_000
        for seed in SEEDS:
            noise = laplace_noise(scale, n, np.random.default_rng(seed))
            # std of the mean of n iid Laplace(b) is b*sqrt(2/n)
            tolerance = 5.0 * scale * math.sqrt(2.0 / n)
            assert abs(noise.mean()) < tolerance

    def test_laplace_noise_scale(self):
        scale, n = 500.0, 200_000
        noise = laplace_noise(scale, n, np.random.default_rng(0))
        # Laplace(b) std = b*sqrt(2)
        assert noise.std() == pytest.approx(scale * math.sqrt(2.0), rel=0.05)


def test_every_registered_defense_is_covered():
    """The suite is closed over the registry: adding a defense without a
    knob mapping (or vice versa) breaks this, on purpose."""
    assert set(defense_names()) == set(knob_mapping_names())
    for name in defense_names():
        assert name in DEFENSE_VARIANTS
