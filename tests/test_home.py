"""Tests for the smart-home simulation substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.home import (
    FIG2_DEVICES,
    DrawConfig,
    HomeConfig,
    LightingAppliance,
    MeterConfig,
    NetMeter,
    OccupancyConfig,
    OccupantProfile,
    ResistiveAppliance,
    SmartMeter,
    TimeOfDayAffinity,
    UsagePattern,
    WaterHeaterConfig,
    WaterHeaterTank,
    fig2_home,
    fig6_home,
    generate_draws,
    home_a,
    home_b,
    random_home,
    simulate_home,
    simulate_occupancy,
    thermostat_power,
)
from repro.home.appliances import CyclicAppliance, MEALS
from repro.timeseries import SECONDS_PER_DAY, PowerTrace, constant


class TestTimeOfDayAffinity:
    def test_sample_in_range(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            hour = MEALS.sample_hour(rng)
            assert 0.0 <= hour < 24.0

    def test_density_peaks_where_expected(self):
        affinity = TimeOfDayAffinity(((18.0, 1.0, 1.0),))
        hours = np.asarray([3.0, 18.0])
        density = affinity.density(hours)
        assert density[1] > density[0]

    def test_density_wraps_midnight(self):
        affinity = TimeOfDayAffinity(((23.5, 1.0, 1.0),))
        density = affinity.density(np.asarray([0.5, 12.0]))
        assert density[0] > density[1]

    def test_invalid_peak_rejected(self):
        with pytest.raises(ValueError):
            TimeOfDayAffinity(((25.0, 1.0, 1.0),))


class TestOccupancy:
    def test_shape_and_period(self):
        occ = simulate_occupancy(OccupancyConfig(), 5, 60.0, rng=0)
        assert len(occ) == 5 * SECONDS_PER_DAY // 60
        assert occ.period_s == 60.0

    def test_nights_mostly_occupied(self):
        occ = simulate_occupancy(
            OccupancyConfig(vacation_probability_per_day=0.0), 20, 60.0, rng=1
        )
        hours = (occ.times() % SECONDS_PER_DAY) / 3600.0
        night = occ.values[(hours >= 1.0) & (hours < 5.0)]
        assert night.mean() > 0.95

    def test_workday_middays_mostly_empty(self):
        config = OccupancyConfig(
            occupants=(OccupantProfile(workday_probability=1.0),),
            vacation_probability_per_day=0.0,
        )
        occ = simulate_occupancy(config, 20, 60.0, rng=2)
        hours = (occ.times() % SECONDS_PER_DAY) / 3600.0
        midday = occ.values[(hours >= 11.0) & (hours < 15.0)]
        assert midday.mean() < 0.2

    def test_more_occupants_more_occupancy(self):
        one = simulate_occupancy(
            OccupancyConfig(occupants=(OccupantProfile(),)), 15, 60.0, rng=3
        )
        three = simulate_occupancy(
            OccupancyConfig(occupants=(OccupantProfile(),) * 3), 15, 60.0, rng=3
        )
        assert three.fraction_true() >= one.fraction_true()

    def test_deterministic_given_seed(self):
        a = simulate_occupancy(OccupancyConfig(), 3, 60.0, rng=7)
        b = simulate_occupancy(OccupancyConfig(), 3, 60.0, rng=7)
        assert np.array_equal(a.values, b.values)

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            OccupantProfile(leave_hour=10.0, return_hour=9.0)


class TestAppliances:
    @staticmethod
    def always_home(n_days=3, period_s=60.0):
        from repro.timeseries import BinaryTrace

        n = int(n_days * SECONDS_PER_DAY / period_s)
        return BinaryTrace(np.ones(n, dtype=int), period_s)

    @staticmethod
    def never_home(n_days=3, period_s=60.0):
        from repro.timeseries import BinaryTrace

        n = int(n_days * SECONDS_PER_DAY / period_s)
        return BinaryTrace(np.zeros(n, dtype=int), period_s)

    def test_cyclic_runs_regardless_of_occupancy(self):
        fridge = CyclicAppliance("fridge", 150.0, 15.0, 30.0)
        rng = np.random.default_rng(0)
        trace = fridge.simulate(self.never_home(), rng)
        assert trace.energy_kwh() > 0.5  # runs while nobody is home

    def test_cyclic_duty_cycle_roughly_matches(self):
        fridge = CyclicAppliance("fridge", 150.0, 15.0, 30.0, jitter=0.0, noise_w=0.0)
        trace = fridge.simulate(self.always_home(10), np.random.default_rng(1))
        on_fraction = (trace.values > 1.0).mean()
        assert on_fraction == pytest.approx(1 / 3, abs=0.05)

    def test_interactive_never_runs_when_empty(self):
        toaster = ResistiveAppliance(
            "toaster", UsagePattern(3.0, (2.0, 4.0)), power_w=1000.0
        )
        trace = toaster.simulate(self.never_home(), np.random.default_rng(2))
        assert trace.max() == 0.0

    def test_interactive_runs_when_home(self):
        toaster = ResistiveAppliance(
            "toaster", UsagePattern(5.0, (2.0, 4.0)), power_w=1000.0
        )
        trace = toaster.simulate(self.always_home(10), np.random.default_rng(3))
        assert trace.max() > 900.0

    def test_lighting_zero_when_empty(self):
        lights = LightingAppliance()
        trace = lights.simulate(self.never_home(), np.random.default_rng(4))
        assert trace.max() == 0.0

    def test_lighting_evening_exceeds_midday(self):
        lights = LightingAppliance(max_power_w=300.0)
        trace = lights.simulate(self.always_home(10), np.random.default_rng(5))
        hours = (trace.times() % SECONDS_PER_DAY) / 3600.0
        evening = trace.values[(hours >= 20.0) & (hours < 23.0)].mean()
        midday = trace.values[(hours >= 12.0) & (hours < 15.0)].mean()
        assert evening > midday

    def test_power_never_negative(self):
        for config in (home_a(), home_b(), fig2_home()):
            sim = simulate_home(config, 2, rng=6)
            assert sim.total.min() >= 0.0
            assert sim.metered.min() >= 0.0


class TestWaterHeater:
    def test_draws_only_when_occupied(self):
        occ = TestAppliances.never_home(5)
        draws = generate_draws(occ, np.random.default_rng(0))
        assert draws.sum() == 0.0

    def test_thermostat_maintains_comfort(self):
        occ = TestAppliances.always_home(7)
        draws = generate_draws(occ, np.random.default_rng(1))
        power, tank = thermostat_power(draws, 60.0)
        assert tank.comfort_violation_fraction < 0.01
        assert power.max() <= WaterHeaterConfig().element_power_w + 1e-9

    def test_energy_balance_plausible(self):
        # heating the daily draw volume from inlet to setpoint bounds energy below
        occ = TestAppliances.always_home(7)
        draws = generate_draws(occ, np.random.default_rng(2))
        power, _ = thermostat_power(draws, 60.0)
        electrical_kwh = power.sum() * 60.0 / 3.6e6
        cfg = WaterHeaterConfig()
        thermal_kwh = draws.sum() * 4186.0 * (cfg.setpoint_c - cfg.inlet_c) / 3.6e6
        assert electrical_kwh >= 0.9 * thermal_kwh  # heat delivered + losses

    def test_tank_cools_without_heating(self):
        tank = WaterHeaterTank(WaterHeaterConfig())
        t0 = tank.temp_c
        for _ in range(600):
            tank.step(60.0, 0.2, 0.0)
        assert tank.temp_c < t0

    def test_element_respects_setpoint_ceiling(self):
        cfg = WaterHeaterConfig()
        tank = WaterHeaterTank(cfg, initial_temp_c=cfg.setpoint_c)
        drawn = tank.step(60.0, 0.0, cfg.element_power_w)
        assert drawn == pytest.approx(0.0, abs=cfg.standby_loss_w_per_k * 40)
        assert tank.temp_c <= cfg.setpoint_c + 1e-9

    def test_relay_element_rounds_up(self):
        cfg = WaterHeaterConfig(modulating=False)
        tank = WaterHeaterTank(cfg, initial_temp_c=40.0)
        drawn = tank.step(60.0, 0.0, 1000.0)  # ask for partial power
        assert drawn == pytest.approx(cfg.element_power_w)

    def test_modulating_element_honors_partial(self):
        cfg = WaterHeaterConfig(modulating=True)
        tank = WaterHeaterTank(cfg, initial_temp_c=40.0)
        drawn = tank.step(60.0, 0.0, 1000.0)
        assert drawn == pytest.approx(1000.0)


class TestMeter:
    def test_resamples_to_reporting_period(self):
        trace = constant(500.0, 600, 60.0)
        metered = SmartMeter(MeterConfig(period_s=300.0, noise_std_w=0.0)).observe(trace, 0)
        assert metered.period_s == 300.0
        assert metered.values[0] == pytest.approx(500.0)

    def test_noise_added(self):
        trace = constant(500.0, 1000, 60.0)
        metered = SmartMeter(MeterConfig(noise_std_w=20.0, quantum_w=0.0)).observe(trace, 1)
        assert 10.0 < metered.values.std() < 30.0

    def test_quantization(self):
        trace = constant(503.3, 10, 60.0)
        metered = SmartMeter(MeterConfig(noise_std_w=0.0, quantum_w=10.0)).observe(trace, 2)
        assert np.all(metered.values % 10.0 == 0.0)

    def test_finer_than_simulation_rejected(self):
        trace = constant(1.0, 10, 60.0)
        with pytest.raises(ValueError):
            SmartMeter(MeterConfig(period_s=1.0)).observe(trace, 3)

    def test_net_meter_can_go_negative(self):
        cons = constant(200.0, 60, 60.0)
        gen = constant(1500.0, 60, 60.0)
        net = NetMeter(MeterConfig(noise_std_w=0.0)).observe_net(cons, gen, 4)
        assert net.values.mean() < 0.0


class TestHousehold:
    def test_total_is_sum_of_appliances(self):
        sim = simulate_home(home_a(), 2, rng=0)
        summed = sum(t.values for t in sim.appliance_traces.values())
        assert np.allclose(summed, sim.total.values)

    def test_deterministic_given_seed(self):
        a = simulate_home(home_b(), 2, rng=42)
        b = simulate_home(home_b(), 2, rng=42)
        assert np.array_equal(a.metered.values, b.metered.values)

    def test_different_seeds_differ(self):
        a = simulate_home(home_b(), 2, rng=1)
        b = simulate_home(home_b(), 2, rng=2)
        assert not np.array_equal(a.metered.values, b.metered.values)

    def test_fig2_home_has_target_devices(self):
        sim = simulate_home(fig2_home(), 2, rng=3)
        for device in FIG2_DEVICES:
            assert device in sim.appliance_traces

    def test_fig6_home_has_water_heater(self):
        sim = simulate_home(fig6_home(), 3, rng=4)
        assert "water_heater" in sim.appliance_traces
        assert sim.hot_water_draws is not None
        assert sim.hot_water_draws.sum() > 0.0

    def test_aggregate_without(self):
        sim = simulate_home(home_a(), 2, rng=5)
        rest = sim.aggregate_without("fridge")
        assert np.allclose(
            rest.values + sim.appliance_traces["fridge"].values, sim.total.values
        )
        with pytest.raises(KeyError):
            sim.aggregate_without("spaceship")

    def test_occupied_periods_are_busier(self):
        sim = simulate_home(home_b(), 7, rng=6)
        occ = sim.metered_occupancy().values
        metered = sim.metered.values
        assert metered[occ == 1].mean() > 1.5 * metered[occ == 0].mean()

    def test_duplicate_appliance_names_rejected(self):
        fridge = CyclicAppliance("fridge", 150.0, 15.0, 30.0)
        with pytest.raises(ValueError):
            HomeConfig(name="bad", appliances=(fridge, fridge))

    def test_random_home_valid(self):
        for seed in range(5):
            sim = simulate_home(random_home(seed), 2, rng=seed)
            assert sim.total.min() >= 0.0
            assert len(sim.appliance_traces) >= 3


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_home_simulation_invariants_property(seed):
    """Any seed yields non-negative power and a valid occupancy fraction."""
    sim = simulate_home(home_a(), 1, rng=seed)
    assert sim.total.min() >= 0.0
    assert 0.0 <= sim.occupancy.fraction_true() <= 1.0
