"""Netpriv grid/sweep machinery, its frontier report, and the CLI."""

import json

import numpy as np
import pytest

from repro.fleet import (
    NetprivFrontierPoint,
    NetprivFrontierReport,
    NetprivGrid,
    NetprivJobResult,
    NetprivSweepRunner,
    PopulationStats,
    SweepError,
    netpriv_lan_config,
    run_netpriv_job,
    shard_cells,
)
from repro.fleet.netpriv import NetprivJob


def _stats(value: float) -> PopulationStats:
    return PopulationStats.of([value])


def _point(defense: str, setting: float, adaptive_mcc: float, seed: int = 0):
    return NetprivFrontierPoint(
        defense=defense,
        setting=setting,
        seed=seed,
        n_lans=1,
        n_failed=0,
        naive_mcc=_stats(0.5),
        adaptive_mcc=_stats(adaptive_mcc),
        naive_fingerprint_acc=_stats(0.9),
        adaptive_fingerprint_acc=_stats(0.95),
        cover_mb_per_day=_stats(10.0),
        mean_added_delay_s=_stats(5.0),
    )


class TestNetprivGrid:
    def test_validation(self):
        with pytest.raises(SweepError):
            NetprivGrid(defenses=(), settings=(0.5,))
        with pytest.raises(SweepError):
            NetprivGrid(defenses=("cover",), settings=())
        with pytest.raises(SweepError):
            NetprivGrid(defenses=("nonsense",), settings=(0.5,))
        with pytest.raises(SweepError):
            NetprivGrid(defenses=("cover",), settings=(1.5,))
        with pytest.raises(SweepError):
            NetprivGrid(defenses=("cover", "cover"), settings=(0.5,))
        with pytest.raises(SweepError):
            NetprivGrid(defenses=("cover",), settings=(0.5,), n_lans=0)
        with pytest.raises(SweepError):
            NetprivGrid(defenses=("cover",), settings=(0.5,), lan="bogus")

    def test_cells_canonical_order(self):
        grid = NetprivGrid(
            defenses=("merge", "cover"), settings=(1.0, 0.0), seeds=(0, 1)
        )
        cells = grid.cells()
        assert [(c.defense, c.setting, c.seed) for c in cells] == [
            ("merge", 0.0, 0), ("merge", 0.0, 1),
            ("merge", 1.0, 0), ("merge", 1.0, 1),
            ("cover", 0.0, 0), ("cover", 0.0, 1),
            ("cover", 1.0, 0), ("cover", 1.0, 1),
        ]
        assert grid.n_cells == 8
        assert grid.n_jobs == 8

    def test_jobs_carry_grid_parameters(self):
        grid = NetprivGrid(
            defenses=("cover",), settings=(0.5,), n_lans=2, days=3, lan="small"
        )
        jobs = grid.jobs_for(grid.cells())
        assert len(jobs) == 2
        assert [j.index for j in jobs] == [0, 1]
        assert jobs[0].days == 3 and jobs[0].lan == "small"
        assert jobs[1].lan_index == 1
        assert "cover@0.5" in jobs[0].preset

    def test_shards_partition_cells(self):
        grid = NetprivGrid(defenses=("cover", "merge"), settings=(0.0, 0.5, 1.0))
        cells = grid.cells()
        parts = [shard_cells(cells, (i, 3)) for i in (1, 2, 3)]
        rejoined = [c for part in parts for c in part]
        assert sorted(rejoined, key=str) == sorted(cells, key=str)

    def test_lan_config_registry(self):
        small = netpriv_lan_config("small")
        assert small.total_devices() < netpriv_lan_config("default").total_devices()
        # factories, not shared instances
        assert netpriv_lan_config("small") is not small
        with pytest.raises(SweepError):
            netpriv_lan_config("bogus")


class TestRunNetprivJob:
    def test_job_result_addresses_its_cell(self):
        job = NetprivJob(
            index=4, preset="jitter@1 seed=2 lan=0", defense="jitter",
            setting=1.0, seed=2, lan_index=0, days=1, lan="small",
        )
        result = run_netpriv_job(job)
        assert result.index == 4
        assert (result.defense, result.setting, result.seed) == ("jitter", 1.0, 2)
        assert result.outcome.n_devices == 9

    def test_same_seed_same_lan_population_across_cells(self):
        # within one grid seed, cells must attack identical LANs so the
        # frontier isolates the defense dial
        base = dict(seed=5, lan_index=0, days=1, lan="small")
        a = run_netpriv_job(
            NetprivJob(index=0, preset="a", defense="merge", setting=0.0, **base)
        )
        b = run_netpriv_job(
            NetprivJob(index=1, preset="b", defense="jitter", setting=0.0, **base)
        )
        # setting 0 is the identity shaper for every defense: same seed
        # stream + same LAN -> byte-identical shaped victim logs
        assert a.outcome.shaped_digest == b.outcome.shaped_digest


class TestNetprivFrontierReport:
    def test_monotone_violation_detection(self):
        ok = NetprivFrontierReport(
            points=(
                _point("cover", 0.0, 0.8),
                _point("cover", 0.5, 0.5),
                _point("cover", 1.0, 0.52),  # within tolerance of running min
            )
        )
        assert ok.monotone_violations(tolerance=0.05) == []
        bad = NetprivFrontierReport(
            points=(_point("cover", 0.0, 0.3), _point("cover", 1.0, 0.8))
        )
        violations = bad.monotone_violations(tolerance=0.05)
        assert len(violations) == 1
        assert "cover@1" in violations[0]
        with pytest.raises(ValueError):
            ok.monotone_violations(tolerance=-1.0)

    def test_series_tracked_per_defense_and_seed(self):
        report = NetprivFrontierReport(
            points=(
                _point("cover", 0.0, 0.2, seed=0),
                _point("cover", 1.0, 0.8, seed=1),  # different seed: own series
            )
        )
        assert report.monotone_violations() == []

    def test_json_roundtrip(self, tmp_path):
        report = NetprivFrontierReport(
            points=(_point("cover", 0.0, 0.8), _point("cover", 1.0, 0.1))
        )
        path = tmp_path / "frontier.json"
        report.to_json(path)
        assert NetprivFrontierReport.from_json(path) == report

    def test_csv_export(self, tmp_path):
        report = NetprivFrontierReport(points=(_point("merge", 0.5, 0.4),))
        path = report.to_csv(tmp_path / "frontier.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].split(",")[:3] == ["defense", "setting", "seed"]
        assert len(lines) == 2
        assert lines[1].startswith("merge,0.5,0,1,0")

    def test_format_table_lists_every_point(self):
        report = NetprivFrontierReport(
            points=(_point("cover", 0.0, 0.8), _point("jitter", 1.0, 0.7))
        )
        table = report.format_table()
        assert "cover" in table and "jitter" in table
        assert "adapt" in table.splitlines()[0]


class TestNetprivSweep:
    def test_serial_sweep_end_to_end(self):
        grid = NetprivGrid(
            defenses=("cover",), settings=(0.0, 0.5), seeds=(0,), days=1
        )
        result = NetprivSweepRunner(workers=1).run(grid)
        assert result.ok
        assert len(result.results) == 2
        frontier = result.frontier()
        assert len(frontier.points) == 2
        # setting 0 is the unshaped anchor: naive attacker healthy there,
        # suppressed by cover at the dialed point; adaptive survives both
        by_setting = {p.setting: p for p in frontier.points}
        assert by_setting[0.0].naive_mcc.mean > by_setting[0.5].naive_mcc.mean
        assert by_setting[0.5].adaptive_advantage > 0.2

    def test_failures_reported_not_raised(self, monkeypatch):
        import repro.fleet.netpriv as fn

        def boom(job):
            raise RuntimeError("lan exploded")

        grid = NetprivGrid(defenses=("jitter",), settings=(0.5,), days=1)
        runner = NetprivSweepRunner(workers=1, max_retries=0)
        jobs = grid.jobs_for(grid.cells())
        batch = runner.runner.run_jobs(jobs, boom)
        assert not batch.results
        assert len(batch.failures) == 1
        assert batch.failures[0].kind == "error"
        report = NetprivFrontierReport.from_results([], batch.failures)
        assert report.points == ()


class TestNetprivCli:
    def test_cli_smoke(self, tmp_path, capsys):
        from repro.cli import main

        csv = tmp_path / "frontier.csv"
        doc = tmp_path / "frontier.json"
        rc = main([
            "netpriv", "--defenses", "cover", "--settings", "0,0.5",
            "--days", "1", "--check-monotone", "--tolerance", "0.2",
            "--csv", str(csv), "--json", str(doc),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "frontier monotonicity: ok" in out
        assert csv.exists()
        payload = json.loads(doc.read_text())
        assert len(payload["points"]) == 2

    def test_cli_rejects_bad_grid(self, capsys):
        from repro.cli import main

        assert main(["netpriv", "--defenses", "bogus"]) == 2
        assert "netpriv:" in capsys.readouterr().err

    def test_cli_rejects_bad_shard(self, capsys):
        from repro.cli import main

        assert main(["netpriv", "--shard", "5/2"]) == 2
