"""Detailed tests of the appliance load-model taxonomy (ref. [18])."""

import numpy as np
import pytest

from repro.home import (
    ANYTIME,
    CompoundCycleAppliance,
    ContinuousAppliance,
    CyclicAppliance,
    InductiveAppliance,
    NonLinearAppliance,
    ResistiveAppliance,
    UsagePattern,
)
from repro.timeseries import BinaryTrace, SECONDS_PER_DAY


def always_home(n_days=3, period_s=60.0):
    n = int(n_days * SECONDS_PER_DAY / period_s)
    return BinaryTrace(np.ones(n, dtype=int), period_s)


class TestResistive:
    def test_flat_while_on(self):
        appliance = ResistiveAppliance(
            "kettle", UsagePattern(6.0, (5.0, 10.0), ANYTIME), power_w=1500.0, noise_w=0.0
        )
        trace = appliance.simulate(always_home(5), np.random.default_rng(0))
        on = trace.values[trace.values > 0]
        assert len(on) > 0
        # overlapping Poisson uses stack, so check the typical level
        assert np.median(on) == pytest.approx(1500.0)
        assert (np.isclose(on, 1500.0) | np.isclose(on, 3000.0)).all()

    def test_invalid_power(self):
        with pytest.raises(ValueError):
            ResistiveAppliance("x", UsagePattern(1.0, (1.0, 2.0)), power_w=-5.0)


class TestInductive:
    def test_startup_spike_on_first_sample(self):
        appliance = InductiveAppliance(
            "pump",
            UsagePattern(4.0, (20.0, 30.0), ANYTIME),
            running_power_w=500.0,
            spike_power_w=2000.0,
            spike_seconds=60.0,  # full first minute at spike level
            noise_w=0.0,
        )
        trace = appliance.simulate(always_home(5), np.random.default_rng(1))
        values = trace.values
        starts = np.flatnonzero((values[1:] > 0) & (values[:-1] == 0)) + 1
        assert len(starts) > 0
        for idx in starts:
            assert values[idx] > values[idx + 1]  # spike decays to running

    def test_spike_below_running_rejected(self):
        with pytest.raises(ValueError):
            InductiveAppliance(
                "x", UsagePattern(1.0, (1.0, 2.0)), running_power_w=500.0, spike_power_w=100.0
            )


class TestNonLinear:
    def test_power_fluctuates_within_band(self):
        appliance = NonLinearAppliance(
            "tv", UsagePattern(3.0, (60.0, 120.0), ANYTIME),
            mean_power_w=200.0, fluctuation_w=50.0,
        )
        trace = appliance.simulate(always_home(5), np.random.default_rng(2))
        on = trace.values[trace.values > 0]
        assert len(on) > 10
        assert on.std() > 1.0  # genuinely fluctuating
        assert on.min() >= 200.0 - 50.0 - 1e-9
        # single-session samples stay in band; overlaps may stack to 2x
        assert np.median(on) <= 200.0 + 50.0 + 1e-9
        assert on.max() <= 2 * (200.0 + 50.0) + 1e-9


class TestCompound:
    def test_element_duty_cycles_over_motor(self):
        appliance = CompoundCycleAppliance(
            "dryer",
            UsagePattern(2.0, (50.0, 60.0), ANYTIME),
            motor_power_w=300.0,
            element_power_w=4500.0,
            element_duty=0.5,
            element_cycle_minutes=10.0,
            noise_w=0.0,
        )
        trace = appliance.simulate(always_home(5), np.random.default_rng(3))
        on = trace.values[trace.values > 0]
        assert len(on) > 0
        levels = set(np.round(np.unique(on)).astype(int).tolist())
        assert 300 in levels  # motor-only samples
        assert 4800 in levels  # motor + element samples
        element_fraction = float((on > 1000).mean())
        assert 0.3 < element_fraction < 0.7  # ~50% duty

    def test_invalid_duty(self):
        with pytest.raises(ValueError):
            CompoundCycleAppliance(
                "x", UsagePattern(1.0, (1.0, 2.0)), motor_power_w=300.0,
                element_power_w=4500.0, element_duty=1.5,
            )


class TestCyclicAndContinuous:
    def test_cyclic_spike_raises_first_sample(self):
        fridge = CyclicAppliance(
            "fridge", 150.0, 15.0, 30.0, spike_power_w=600.0, spike_seconds=60.0,
            jitter=0.0, noise_w=0.0,
        )
        trace = fridge.simulate(always_home(2), np.random.default_rng(4))
        values = trace.values
        starts = np.flatnonzero((values[1:] > 0) & (values[:-1] == 0)) + 1
        assert all(values[i] > values[i + 2] for i in starts[:-1])

    def test_continuous_boosts_when_configured(self):
        hrv = ContinuousAppliance(
            "hrv", base_power_w=80.0, boost_power_w=160.0,
            boosts_per_day=24.0, boost_minutes=30.0, noise_w=0.0,
        )
        trace = hrv.simulate(always_home(3), np.random.default_rng(5))
        assert trace.min() >= 79.0
        assert (trace.values > 150.0).any()

    def test_continuous_without_boost_is_flat(self):
        hrv = ContinuousAppliance("fan", base_power_w=50.0, noise_w=0.0)
        trace = hrv.simulate(always_home(1), np.random.default_rng(6))
        assert np.allclose(trace.values, 50.0)

    def test_usage_pattern_validation(self):
        with pytest.raises(ValueError):
            UsagePattern(-1.0, (1.0, 2.0))
        with pytest.raises(ValueError):
            UsagePattern(1.0, (5.0, 2.0))
