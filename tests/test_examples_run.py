"""The examples must actually run — they are part of the public surface.

Each example's ``main()`` is executed with stdout captured.  The slow solar
example is exercised through its components elsewhere; here we run the
fast ones end-to-end.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart_runs(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "Sweeping every registered defense" in out
        assert "nill" in out

    def test_chpr_example_runs(self, capsys):
        _load("occupancy_attack_and_chpr").main()
        out = capsys.readouterr().out
        assert "Attack on the original week" in out
        assert "CHPr" in out

    def test_knob_example_runs(self, capsys):
        _load("privacy_knob").main()
        out = capsys.readouterr().out
        assert "knob" in out
        assert "utility" in out

    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "occupancy_attack_and_chpr.py",
            "solar_localization.py",
            "network_gateway.py",
            "privacy_knob.py",
        } <= names
