"""Unit tests for the executor-backend layer (:mod:`repro.fleet.backends`).

The end-to-end parity matrix lives in ``test_fleet_golden.py`` /
``test_fleet.py``; this module pins the layer's *parts* in isolation:

* payload channels round-trip a metered trace bitwise (inline pickle and
  shared-memory segment alike), and the supervisor's integrity check
  refuses a trace whose digest disagrees with the result that shipped it;
* segment names are a pure function of ``(run prefix, home index,
  attempt)`` — the property the teardown leak sweep enumerates;
* :func:`sweep_segments` actually reclaims an orphan and is idempotent;
* block partitioning preserves order and labels spans readably;
* the across-home batched simulation is bitwise-equal to the per-home
  reference, including homes with metering dropout;
* validation errors fire early, at construction time.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.fleet import (
    BACKENDS,
    DEFAULT_BACKEND,
    FleetRunner,
    FleetSpec,
    InlinePayload,
    ShmemPayload,
    materialize_trace,
    new_run_prefix,
    pack_trace,
    partition_blocks,
    resolve_backend,
    run_fleet,
    run_home_job,
    segment_name,
    sweep_segments,
)
from repro.fleet.backends import _create_segment
from repro.fleet.engine import trace_digest
from repro.home import home_a, simulate_home
from repro.home.batch import simulate_home_block
from tests.conftest import FLEET_SPEC as SPEC


@pytest.fixture()
def metered_trace():
    """A real metered trace (noise + quantization), ~8640 samples."""
    return simulate_home(home_a(), 1, np.random.default_rng(3)).metered


class TestBackendAxis:
    def test_axis_is_pinned(self):
        assert BACKENDS == ("serial", "process", "shmem", "batched")
        assert DEFAULT_BACKEND == "process"

    def test_resolve_accepts_every_backend(self):
        for name in BACKENDS:
            assert resolve_backend(name) == name

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("thread")

    def test_spec_validates_backend(self):
        assert FleetSpec(n_homes=1, backend="shmem").backend == "shmem"
        with pytest.raises(ValueError, match="unknown backend"):
            FleetSpec(n_homes=1, backend="bogus")

    def test_runner_validates_backend_and_batch_size(self):
        assert FleetRunner(backend="batched", batch_size=8).batch_size == 8
        with pytest.raises(ValueError, match="unknown backend"):
            FleetRunner(backend="bogus")
        with pytest.raises(ValueError, match="batch_size"):
            FleetRunner(batch_size=0)

    def test_spec_backend_overrides_runner_default(self):
        runner = FleetRunner(workers=1, backend="process", telemetry=True)
        result = runner.run(replace(SPEC, n_homes=2, backend="serial"))
        assert result.telemetry.counters.get("fleet.backend.serial") == 1

    def test_streaming_and_jobs_reject_batched(self):
        with pytest.raises(ValueError, match="batched backend"):
            FleetRunner(backend="batched").run_streaming(
                replace(SPEC, n_homes=1)
            )
        with pytest.raises(ValueError, match="batched backend"):
            FleetRunner(backend="batched").run_jobs([], run_home_job)


class TestPayloadChannels:
    def test_inline_round_trip_is_bitwise(self, metered_trace):
        payload = pack_trace(metered_trace, "inline")
        assert isinstance(payload, InlinePayload)
        back = materialize_trace(payload)
        assert trace_digest(back) == trace_digest(metered_trace)
        np.testing.assert_array_equal(back.values, metered_trace.values)

    def test_shmem_round_trip_is_bitwise_and_consumes(self, metered_trace):
        name = segment_name(new_run_prefix(), 0, 0)
        payload = pack_trace(metered_trace, "shmem", name=name)
        assert isinstance(payload, ShmemPayload)
        assert payload.digest == trace_digest(metered_trace)
        assert payload.nbytes == metered_trace.values.nbytes
        back = materialize_trace(payload)
        assert trace_digest(back) == trace_digest(metered_trace)
        assert back.period_s == metered_trace.period_s
        assert back.unit == metered_trace.unit
        # materializing unlinked the segment — a second read must fail
        with pytest.raises(FileNotFoundError):
            materialize_trace(payload)

    def test_shmem_pack_needs_a_name(self, metered_trace):
        with pytest.raises(ValueError, match="segment name"):
            pack_trace(metered_trace, "shmem")

    def test_unknown_channel_rejected(self, metered_trace):
        with pytest.raises(ValueError, match="channel"):
            pack_trace(metered_trace, "carrier-pigeon")

    def test_inline_payload_of_wrong_type_rejected(self):
        import pickle

        bogus = InlinePayload(data=pickle.dumps("not a trace"))
        with pytest.raises(TypeError, match="inline payload held"):
            materialize_trace(bogus)

    def test_supervisor_rejects_digest_mismatch(self, metered_trace):
        """`_receive` must refuse a trace that doesn't match its result."""
        job = replace(SPEC.job(1), payload="none")
        result = run_home_job(job)
        payload = pack_trace(
            metered_trace, "shmem", name=segment_name(new_run_prefix(), 1, 0)
        )
        # metered_trace belongs to a different home than result — digest
        # cannot match, exactly as if the segment had been corrupted
        poisoned = replace(result, payload=payload)
        runner = FleetRunner(keep_traces=True)
        with pytest.raises(RuntimeError, match="trace_digest"):
            runner._receive(poisoned)


class TestSegmentLifecycle:
    def test_names_are_deterministic_and_distinct(self):
        prefix = new_run_prefix()
        assert segment_name(prefix, 3, 1) == f"{prefix}-3-a1"
        names = {
            segment_name(prefix, i, a) for i in range(4) for a in range(3)
        }
        assert len(names) == 12

    def test_run_prefixes_embed_pid_and_differ(self):
        import os

        a, b = new_run_prefix(), new_run_prefix()
        assert a != b
        assert a.startswith(f"rf{os.getpid():x}x")

    def test_create_reclaims_stale_segment(self):
        name = segment_name(new_run_prefix(), 0, 0)
        first = _create_segment(name, 64)
        first.buf[:2] = b"xx"
        first.close()
        # same (index, attempt) retried after an uncharged crash requeue
        second = _create_segment(name, 64)
        try:
            assert bytes(second.buf[:2]) == b"\x00\x00"  # fresh, not stale
        finally:
            second.close()
            second.unlink()

    def test_sweep_reclaims_orphan_once(self):
        prefix = new_run_prefix()
        orphan = _create_segment(segment_name(prefix, 2, 1), 128)
        orphan.close()
        assert sweep_segments(prefix, indices=range(4), max_retries=2) == 1
        # really gone, and the sweep is idempotent
        import multiprocessing.shared_memory as sm

        with pytest.raises(FileNotFoundError):
            sm.SharedMemory(name=segment_name(prefix, 2, 1))
        assert sweep_segments(prefix, indices=range(4), max_retries=2) == 0

    def test_clean_run_leaks_nothing(self):
        result = run_fleet(
            replace(SPEC, n_homes=3), workers=2, backend="shmem",
            telemetry=True,
        )
        assert result.ok
        assert not result.telemetry.counters.get("shmem.leaked_segments")
        assert result.telemetry.counters["shmem.segments_created"] == 3


class TestBlockPartitioning:
    def test_blocks_preserve_order_and_label_spans(self):
        jobs = SPEC.jobs()
        blocks = partition_blocks(jobs, 2)
        assert [b.index for b in blocks] == [0, 2, 4]
        assert [len(b.jobs) for b in blocks] == [2, 2, 1]
        assert blocks[0].preset == "homes[0..1]"
        assert blocks[-1].preset == jobs[4].preset  # singleton keeps its own
        assert [j.index for b in blocks for j in b.jobs] == [0, 1, 2, 3, 4]

    def test_block_size_validated(self):
        with pytest.raises(ValueError, match="block_size"):
            partition_blocks(SPEC.jobs(), 0)

    def test_default_block_size_spreads_over_workers(self):
        assert FleetRunner(workers=4)._block_size(100) == 25
        assert FleetRunner(workers=1)._block_size(100) == 64  # capped
        assert FleetRunner(workers=2)._block_size(3) == 2
        assert FleetRunner(workers=2, batch_size=7)._block_size(100) == 7


class TestBatchedEquivalence:
    def test_block_simulation_matches_reference_bitwise(self):
        configs = [SPEC.job(i).config for i in range(3)]
        seeds = [SPEC.job(i).sim_seed for i in range(3)]
        block = simulate_home_block(
            configs, 1, [np.random.default_rng(s) for s in seeds]
        )
        for config, seed, sim in zip(configs, seeds, block):
            reference = simulate_home(config, 1, np.random.default_rng(seed))
            np.testing.assert_array_equal(
                sim.metered.values, reference.metered.values
            )
            np.testing.assert_array_equal(sim.total.values, reference.total.values)

    def test_block_simulation_matches_with_dropout(self):
        """Dropout (LOCF loop) is the trickiest meter path — pin it too."""
        config = home_a()
        config = replace(
            config, meter=replace(config.meter, dropout_probability=0.05)
        )
        [sim] = simulate_home_block(
            [config], 1, [np.random.default_rng(11)]
        )
        reference = simulate_home(config, 1, np.random.default_rng(11))
        np.testing.assert_array_equal(
            sim.metered.values, reference.metered.values
        )

    def test_mixed_quanta_grouping_is_bitwise(self):
        """Homes with different meter quanta stack separately but exactly."""
        coarse = home_a()
        coarse = replace(coarse, meter=replace(coarse.meter, quantum_w=5.0))
        configs = [home_a(), coarse, home_a()]
        sims = simulate_home_block(
            configs, 1, [np.random.default_rng(s) for s in (1, 2, 3)]
        )
        for config, seed, sim in zip(configs, (1, 2, 3), sims):
            reference = simulate_home(config, 1, np.random.default_rng(seed))
            np.testing.assert_array_equal(
                sim.metered.values, reference.metered.values
            )


class TestKeepTraces:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_metered_attached_and_payload_stripped(self, backend):
        spec = replace(SPEC, n_homes=2)
        result = run_fleet(
            spec, workers=2, backend=backend, keep_traces=True
        )
        assert result.ok
        for home in result.homes:
            assert home.payload is None
            assert trace_digest(home.metered) == home.trace_digest

    def test_traces_dropped_by_default(self):
        result = run_fleet(replace(SPEC, n_homes=2), workers=2,
                           backend="shmem")
        assert all(h.metered is None for h in result.homes)
        assert all(h.payload is None for h in result.homes)
