"""Unit and property tests for the time-series substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeseries import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    BinaryTrace,
    PowerTrace,
    TraceError,
    burstiness,
    concat,
    constant,
    daily_profile,
    detect_edges,
    pair_edges,
    rolling_mean,
    rolling_std,
    steady_states,
    window_features,
    zeros_like,
)


def make_trace(values, period_s=60.0, start_s=0.0):
    return PowerTrace(np.asarray(values, dtype=float), period_s, start_s)


class TestPowerTraceStructure:
    def test_basic_properties(self):
        trace = make_trace([1.0, 2.0, 3.0])
        assert len(trace) == 3
        assert trace.duration_s == 180.0
        assert trace.end_s == 180.0

    def test_times_are_left_edges(self):
        trace = make_trace([0, 0, 0], period_s=10.0, start_s=100.0)
        assert list(trace.times()) == [100.0, 110.0, 120.0]

    def test_rejects_negative_period(self):
        with pytest.raises(TraceError):
            make_trace([1.0], period_s=-1.0)

    def test_rejects_2d_values(self):
        with pytest.raises(TraceError):
            PowerTrace(np.zeros((2, 2)), 60.0)

    def test_rejects_nan(self):
        with pytest.raises(TraceError):
            make_trace([1.0, float("nan")])

    def test_hours_of_day_wraps(self):
        trace = make_trace([0, 0], period_s=SECONDS_PER_HOUR, start_s=23 * SECONDS_PER_HOUR)
        hours = trace.hours_of_day()
        assert hours[0] == 23.0
        assert hours[1] == 0.0

    def test_index_at(self):
        trace = make_trace([0, 0, 0], period_s=60.0, start_s=60.0)
        assert trace.index_at(60.0) == 0
        assert trace.index_at(179.9) == 1
        with pytest.raises(TraceError):
            trace.index_at(240.0)


class TestSliceResample:
    def test_slice_time(self):
        trace = make_trace(range(10), period_s=60.0)
        part = trace.slice_time(120.0, 300.0)
        assert list(part.values) == [2.0, 3.0, 4.0]
        assert part.start_s == 120.0

    def test_slice_outside_raises(self):
        trace = make_trace(range(4))
        with pytest.raises(TraceError):
            trace.slice_time(1000.0, 2000.0)

    def test_day_extraction(self):
        samples_per_day = SECONDS_PER_DAY // 60
        trace = make_trace(range(2 * samples_per_day))
        day1 = trace.day(1)
        assert day1.start_s == SECONDS_PER_DAY
        assert len(day1) == samples_per_day

    def test_resample_mean(self):
        trace = make_trace([1, 3, 5, 7], period_s=60.0)
        coarse = trace.resample(120.0)
        assert list(coarse.values) == [2.0, 6.0]
        assert coarse.period_s == 120.0

    def test_resample_preserves_energy(self):
        rng = np.random.default_rng(0)
        trace = make_trace(rng.uniform(0, 1000, 120), period_s=60.0)
        coarse = trace.resample(600.0)
        assert coarse.energy_kwh() == pytest.approx(trace.energy_kwh())

    def test_resample_drops_partial_block(self):
        trace = make_trace([1, 2, 3, 4, 5], period_s=60.0)
        coarse = trace.resample(120.0)
        assert len(coarse) == 2

    def test_resample_non_multiple_raises(self):
        trace = make_trace([1, 2, 3])
        with pytest.raises(TraceError):
            trace.resample(90.0)

    def test_resample_unknown_reducer_raises(self):
        trace = make_trace([1, 2, 3, 4], period_s=60.0)
        with pytest.raises(TraceError, match="unknown reducer"):
            trace.resample(120.0, reducer="median")

    def test_resample_unknown_reducer_raises_even_without_downsampling(self):
        # Regression: block == 1 used to return self before validating the
        # reducer, so a typo'd reducer passed silently when no resampling
        # was needed.
        trace = make_trace([1, 2, 3, 4], period_s=60.0)
        with pytest.raises(TraceError, match="unknown reducer"):
            trace.resample(60.0, reducer="median")
        # the valid-reducer fast path still returns the trace unchanged
        assert trace.resample(60.0) is trace

    def test_windows(self):
        trace = make_trace(range(10), period_s=60.0)
        windows = list(trace.windows(180.0))
        assert len(windows) == 3
        assert list(windows[1].values) == [3.0, 4.0, 5.0]


class TestArithmetic:
    def test_add_sub(self):
        a = make_trace([1, 2, 3])
        b = make_trace([10, 20, 30])
        assert list((a + b).values) == [11.0, 22.0, 33.0]
        assert list((b - a).values) == [9.0, 18.0, 27.0]

    def test_misaligned_raises(self):
        a = make_trace([1, 2, 3])
        b = make_trace([1, 2, 3], start_s=60.0)
        with pytest.raises(TraceError):
            _ = a + b

    def test_energy(self):
        # 1000 W for one hour = 1 kWh
        trace = constant(1000.0, 60, 60.0)
        assert trace.energy_kwh() == pytest.approx(1.0)

    def test_clipped(self):
        trace = make_trace([-5.0, 5.0])
        assert list(trace.clipped().values) == [0.0, 5.0]


class TestConcatHelpers:
    def test_concat(self):
        a = make_trace([1, 2])
        b = make_trace([3, 4], start_s=120.0)
        joined = concat([a, b])
        assert list(joined.values) == [1.0, 2.0, 3.0, 4.0]

    def test_concat_gap_raises(self):
        a = make_trace([1, 2])
        b = make_trace([3], start_s=500.0)
        with pytest.raises(TraceError):
            concat([a, b])

    def test_zeros_like(self):
        trace = make_trace([5, 6])
        z = zeros_like(trace)
        assert list(z.values) == [0.0, 0.0]
        assert z.period_s == trace.period_s


class TestBinaryTrace:
    def test_validation(self):
        with pytest.raises(TraceError):
            BinaryTrace(np.asarray([0, 2]), 60.0)

    def test_fraction(self):
        trace = BinaryTrace(np.asarray([1, 1, 0, 0]), 60.0)
        assert trace.fraction_true() == 0.5

    def test_intervals(self):
        trace = BinaryTrace(np.asarray([0, 1, 1, 0, 1]), 60.0)
        assert trace.intervals() == [(60.0, 180.0), (240.0, 300.0)]

    def test_resample_majority(self):
        trace = BinaryTrace(np.asarray([1, 1, 0, 0, 0, 1]), 60.0)
        coarse = trace.resample(180.0)
        assert list(coarse.values) == [1, 0]

    def test_align_to(self):
        occ = BinaryTrace(np.ones(10, dtype=int), 60.0)
        power = make_trace(range(5), period_s=120.0)
        aligned = occ.align_to(power)
        assert len(aligned) == 5
        assert aligned.period_s == 120.0


class TestEdges:
    def test_detects_single_step(self):
        values = [100.0] * 10 + [1100.0] * 10
        edges = detect_edges(make_trace(values), min_delta_w=500.0)
        assert len(edges) == 1
        assert edges[0].is_rising
        assert edges[0].delta_w == pytest.approx(1000.0)
        assert edges[0].index == 10

    def test_noise_below_threshold_ignored(self):
        rng = np.random.default_rng(1)
        values = 100.0 + rng.normal(0, 5, 100)
        assert detect_edges(make_trace(values), min_delta_w=50.0) == []

    def test_rise_and_fall_pair(self):
        values = [0.0] * 5 + [1000.0] * 5 + [0.0] * 5
        edges = detect_edges(make_trace(values), min_delta_w=500.0)
        pairs = pair_edges(edges, tolerance_w=100.0)
        assert len(pairs) == 1
        rise, fall = pairs[0]
        assert rise.is_rising and not fall.is_rising

    def test_pairing_respects_tolerance(self):
        values = [0.0] * 5 + [1000.0] * 5 + [500.0] * 5
        edges = detect_edges(make_trace(values), min_delta_w=300.0)
        pairs = pair_edges(edges, tolerance_w=100.0)
        assert pairs == []  # -500 fall does not match +1000 rise

    def test_steady_states(self):
        values = [100.0] * 10 + [600.0] * 10
        states = steady_states(make_trace(values), min_delta_w=300.0)
        assert len(states) == 2
        assert states[0].level_w == pytest.approx(100.0)
        assert states[1].level_w == pytest.approx(600.0)


class TestStats:
    def test_rolling_mean_matches_naive(self):
        rng = np.random.default_rng(2)
        trace = make_trace(rng.uniform(0, 100, 50))
        fast = rolling_mean(trace, 300.0)
        for i in range(len(trace)):
            lo = max(0, i - 4)
            assert fast[i] == pytest.approx(trace.values[lo : i + 1].mean())

    def test_rolling_std_matches_naive(self):
        rng = np.random.default_rng(3)
        trace = make_trace(rng.uniform(0, 100, 40))
        fast = rolling_std(trace, 300.0)
        for i in range(len(trace)):
            lo = max(0, i - 4)
            assert fast[i] == pytest.approx(trace.values[lo : i + 1].std(), abs=1e-8)

    def test_burstiness_flat_vs_bursty(self):
        flat = constant(500.0, 100, 60.0)
        rng = np.random.default_rng(4)
        bursty_values = 500.0 + np.where(rng.uniform(size=100) < 0.2, 1500.0, 0.0)
        bursty = make_trace(bursty_values)
        assert burstiness(bursty) > burstiness(flat)

    def test_window_features_shape(self):
        trace = make_trace(range(60))
        feats = window_features(trace, 600.0)
        assert feats.shape == (6, 4)

    def test_daily_profile(self):
        samples = SECONDS_PER_DAY // 3600
        values = np.arange(samples, dtype=float)
        trace = make_trace(values, period_s=3600.0)
        profile = daily_profile(trace, bins_per_day=24)
        assert profile[0] == 0.0
        assert profile[23] == 23.0


@given(
    st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=4, max_size=200),
    st.sampled_from([2, 4]),
)
@settings(max_examples=50, deadline=None)
def test_resample_energy_conservation_property(values, block):
    """Downsampling by block means never changes total energy of whole blocks."""
    trace = make_trace(values, period_s=60.0)
    n_whole = (len(values) // block) * block
    whole = make_trace(values[:n_whole], period_s=60.0)
    coarse = trace.resample(60.0 * block)
    assert coarse.energy_kwh() == pytest.approx(whole.energy_kwh(), rel=1e-9, abs=1e-12)


@given(st.lists(st.sampled_from([0, 1]), min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_binary_intervals_cover_exactly_the_ones(bits):
    trace = BinaryTrace(np.asarray(bits), 60.0)
    covered = sum(int(round((b - a) / 60.0)) for a, b in trace.intervals())
    assert covered == sum(bits)
