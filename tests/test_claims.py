"""Tests for the privacy-claims DSL: model, artifacts, engine, CLI.

The CLI exit-code contract is the load-bearing part: 0 = every claim
passed, 1 = at least one failed, 2 = malformed claims/artifact input,
3 = inconclusive claims but no failures.  A malformed or foreign
artifact must refuse loudly (exit 2), never evaluate to "no violations".
"""

import json

import pytest

from repro.claims import (
    ClaimsError,
    ClaimsReport,
    evaluate_claims,
    load_claims,
)
from repro.cli import main
from repro.core.claims import Claim, ClaimSet, Selector, Span, parse_span
from repro.fleet.artifacts import (
    Artifact,
    ArtifactError,
    ArtifactRow,
    artifact_from_dict,
    artifact_from_frontier,
    load_artifact,
)


def _stats(value: float) -> dict:
    return {k: value for k in ("mean", "median", "p10", "p90", "min", "max")}


def _sweep_doc(points) -> dict:
    """points: iterable of (defense, setting, seed, mcc, bill_error)."""
    return {
        "points": [
            {
                "defense": d, "setting": s, "seed": seed,
                "n_homes": 2, "n_failed": 0,
                "mcc": _stats(mcc),
                "distortion_w": _stats(1.0),
                "bill_error": _stats(bill),
                "extra_kwh": _stats(0.1),
            }
            for d, s, seed, mcc, bill in points
        ]
    }


def _netpriv_doc(points) -> dict:
    """points: iterable of (defense, setting, seed, naive, adaptive)."""
    return {
        "points": [
            {
                "defense": d, "setting": s, "seed": seed,
                "n_lans": 1, "n_failed": 0,
                "naive_mcc": _stats(naive),
                "adaptive_mcc": _stats(adaptive),
                "naive_fingerprint_acc": _stats(0.9),
                "adaptive_fingerprint_acc": _stats(0.9),
                "cover_mb_per_day": _stats(10.0),
                "mean_added_delay_s": _stats(1.0),
            }
            for d, s, seed, naive, adaptive in points
        ]
    }


SWEEP = _sweep_doc([
    ("nill", 0.0, 0, 0.9, 0.0),
    ("nill", 1.0, 0, 0.4, 0.1),
])
NETPRIV = _netpriv_doc([
    ("cover", 0.0, 0, 0.85, 0.75),
    ("cover", 1.0, 0, 0.00, 0.70),
])


class TestSpanAndSelector:
    def test_span_grammar(self):
        assert parse_span("*", "settings").is_any
        assert parse_span(None, "settings").is_any
        assert parse_span(0.5, "settings").contains(0.5)
        assert not parse_span(0.5, "settings").contains(0.6)
        assert parse_span([0, 1], "settings").contains(1.0)
        assert parse_span(">=0.5", "settings").contains(0.5)
        assert not parse_span(">0.5", "settings").contains(0.5)
        assert parse_span("<=0.5", "settings").contains(0.5)
        assert not parse_span("<0.5", "settings").contains(0.5)
        span = parse_span("0.25..0.75", "settings")
        assert span.contains(0.25) and span.contains(0.75)
        assert not span.contains(0.8)

    @pytest.mark.parametrize("bad", ["", ">=x", "1..0", [], ["a"], {}, True])
    def test_span_rejects_garbage(self, bad):
        with pytest.raises(ClaimsError):
            parse_span(bad, "settings")

    def test_constrained_span_rejects_none_coordinate(self):
        assert Span().contains(None)
        assert not parse_span(">=0.5", "settings").contains(None)

    def test_selector_globs_and_axes(self):
        sel = Selector.from_dict(
            {"defenses": ["constant-*"], "settings": ">=0.5", "seeds": [0]}
        )
        assert sel.matches("constant-rate", 1.0, 0)
        assert not sel.matches("cover", 1.0, 0)
        assert not sel.matches("constant-rate", 0.0, 0)
        assert not sel.matches("constant-rate", 1.0, 1)
        assert not sel.matches(None, 1.0, 0)

    def test_selector_unknown_key_refused(self):
        with pytest.raises(ClaimsError, match="unknown selector keys"):
            Selector.from_dict({"attacker": "naive"})


class TestClaimModel:
    def test_threshold_needs_op_and_bound(self):
        with pytest.raises(ClaimsError, match="op"):
            Claim.from_dict({"id": "x", "metric": "mcc.mean", "bound": 0.3})
        with pytest.raises(ClaimsError, match="bound"):
            Claim.from_dict({"id": "x", "metric": "mcc.mean", "op": "<="})

    def test_unknown_keys_refused(self):
        with pytest.raises(ClaimsError, match="unknown keys"):
            Claim.from_dict({"id": "x", "metric": "m", "op": "<=",
                             "bound": 1, "severity": "high"})

    def test_duplicate_ids_refused(self):
        doc = {"claims": [
            {"id": "a", "metric": "m", "op": "<=", "bound": 1},
            {"id": "a", "metric": "m", "op": "<=", "bound": 2},
        ]}
        with pytest.raises(ClaimsError, match="duplicate claim id"):
            ClaimSet.from_dict(doc)

    def test_load_toml_and_json_roundtrip(self, tmp_path):
        toml = tmp_path / "claims.toml"
        toml.write_text(
            'title = "t"\n\n[[claim]]\nid = "a"\nmetric = "mcc.mean"\n'
            'op = "<="\nbound = 0.3\n\n[claim.where]\nsettings = ">=0.5"\n'
        )
        cs = load_claims(toml)
        assert cs.claims[0].where.settings.contains(0.7)
        as_json = tmp_path / "claims.json"
        as_json.write_text(json.dumps(cs.as_dict()))
        # the JSON re-load parses the described selector back
        cs2 = load_claims(as_json)
        assert cs2.claims[0].id == "a"

    def test_load_rejects_bad_files(self, tmp_path):
        missing = tmp_path / "nope.toml"
        with pytest.raises(ClaimsError, match="cannot read"):
            load_claims(missing)
        bad = tmp_path / "bad.toml"
        bad.write_text("this is = not [ toml")
        with pytest.raises(ClaimsError, match="bad TOML"):
            load_claims(bad)
        wrong_ext = tmp_path / "claims.yaml"
        wrong_ext.write_text("x")
        with pytest.raises(ClaimsError, match="toml or .json"):
            load_claims(wrong_ext)


class TestArtifacts:
    def test_sniffs_sweep_and_netpriv_and_stream(self):
        assert artifact_from_dict(SWEEP, "s").kind == "sweep-frontier"
        assert artifact_from_dict(NETPRIV, "n").kind == "netpriv-frontier"
        stream = {"total_samples": 10, "chunk_samples": 5, "duration_s": 1.0,
                  "ok": True, "results": {"niom": {"mcc": 0.5}},
                  "throughput": {"niom": {"samples_per_sec": 100.0}},
                  "failures": [], "guard": None}
        art = artifact_from_dict(stream, "st")
        assert art.kind == "stream"
        row = art.rows[0]
        assert row.defense is None and row.setting is None
        assert row.metrics["results.niom.mcc"] == 0.5
        assert row.metrics["failures"] == 0.0

    def test_netpriv_gains_adaptive_advantage(self):
        art = artifact_from_dict(NETPRIV, "n")
        by_label = {r.label: r for r in art.rows}
        assert by_label["cover@1 seed=0"].metrics[
            "adaptive_advantage"] == pytest.approx(0.70)

    def test_foreign_artifact_refused(self):
        with pytest.raises(ArtifactError, match="unrecognised artifact"):
            artifact_from_dict({"accuracy": 0.9, "loss": 0.1}, "foreign")
        with pytest.raises(ArtifactError, match="neither the sweep axes"):
            artifact_from_dict(
                {"points": [{"defense": "x", "setting": 0, "seed": 0}]}, "f"
            )
        with pytest.raises(ArtifactError, match="no points"):
            artifact_from_dict({"points": []}, "empty")

    def test_load_artifact_refuses_bad_json(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_text("{ not json")
        with pytest.raises(ArtifactError, match="bad JSON"):
            load_artifact(path)
        with pytest.raises(ArtifactError, match="cannot read"):
            load_artifact(tmp_path / "missing.json")

    def test_from_frontier_report_object(self, tmp_path):
        from repro.fleet.frontier import FrontierReport

        path = tmp_path / "frontier.json"
        path.write_text(json.dumps(SWEEP))
        report = FrontierReport.from_json(path)
        art = artifact_from_frontier(report)
        assert art.kind == "sweep-frontier"
        assert len(art.rows) == len(report.points)


class TestEngine:
    def _artifacts(self):
        return [artifact_from_dict(SWEEP, "sweep"),
                artifact_from_dict(NETPRIV, "netpriv")]

    def _report(self, claims) -> ClaimsReport:
        return evaluate_claims(
            ClaimSet.from_dict({"title": "t", "claims": claims}),
            self._artifacts(),
        )

    def test_threshold_pass_fail_inconclusive(self):
        report = self._report([
            {"id": "ok", "metric": "bill_error.p90", "op": "<=", "bound": 0.2},
            {"id": "bad", "metric": "mcc.mean", "op": "<=", "bound": 0.1},
            {"id": "gap", "metric": "mcc.mean", "op": "<=", "bound": 0.5,
             "where": {"defenses": ["jitter"]}},
        ])
        verdicts = {v.claim.id: v for v in report.verdicts}
        assert verdicts["ok"].verdict == "pass"
        assert verdicts["bad"].verdict == "fail"
        assert "mcc.mean = 0.9" in verdicts["bad"].violations[0]
        assert verdicts["gap"].verdict == "inconclusive"
        assert verdicts["gap"].reason == "selector matched no cells"
        assert report.exit_code == 1
        assert report.uncovered_claims == ("gap",)

    def test_metric_glob_spans_attacker_generations(self):
        report = self._report([
            {"id": "worst", "metrics": ["*mcc.max"], "op": "<=", "bound": 0.3,
             "where": {"settings": ">=1"}},
        ])
        (verdict,) = report.verdicts
        # sweep mcc.max 0.4 and netpriv adaptive_mcc.max 0.70 both violate;
        # naive_mcc.max 0.0 passes — one glob covers all three metrics.
        assert verdict.verdict == "fail"
        assert len(verdict.violations) == 2
        assert any("adaptive_mcc.max" in v for v in verdict.violations)

    def test_missing_metric_is_inconclusive_not_pass(self):
        report = self._report([
            {"id": "m", "metric": "p95_latency", "op": "<=", "bound": 1.0},
        ])
        (verdict,) = report.verdicts
        assert verdict.verdict == "inconclusive"
        assert "no matched cell carries metric" in verdict.reason
        assert report.exit_code == 3

    def test_monotone_pass_and_fail(self):
        ok = self._report([
            {"id": "mono", "kind": "monotone", "metric": "adaptive_mcc.mean",
             "tolerance": 0.1},
        ])
        assert ok.verdicts[0].verdict == "pass"
        doc = _sweep_doc([
            ("nill", 0.0, 0, 0.4, 0.0),
            ("nill", 1.0, 0, 0.9, 0.0),  # dial up, leakage UP
        ])
        bad = evaluate_claims(
            ClaimSet.from_dict({"title": "t", "claims": [
                {"id": "mono", "kind": "monotone", "metric": "mcc.mean",
                 "tolerance": 0.05},
            ]}),
            [artifact_from_dict(doc, "s")],
        )
        assert bad.verdicts[0].verdict == "fail"
        assert "exceeds running min" in bad.verdicts[0].violations[0]

    def test_monotone_single_setting_inconclusive(self):
        doc = _sweep_doc([("nill", 1.0, 0, 0.4, 0.0)])
        report = evaluate_claims(
            ClaimSet.from_dict({"title": "t", "claims": [
                {"id": "mono", "kind": "monotone", "metric": "mcc.mean"},
            ]}),
            [artifact_from_dict(doc, "s")],
        )
        assert report.verdicts[0].verdict == "inconclusive"
        assert "2 settings" in report.verdicts[0].reason

    def test_coverage_both_ways(self):
        report = self._report([
            {"id": "sweep-only", "metric": "mcc.mean", "op": "<=", "bound": 1.0},
        ])
        # netpriv cells carry no plain mcc.mean -> both are uncovered
        assert len(report.uncovered_cells) == 2
        assert all("netpriv ::" in c for c in report.uncovered_cells)
        covered = {c.cell for c in report.coverage if c.claim_ids}
        assert covered == {"sweep :: nill@0 seed=0", "sweep :: nill@1 seed=0"}

    def test_certified_report_exit_zero(self):
        report = self._report([
            {"id": "ok", "metric": "bill_error.p90", "op": "<=", "bound": 0.2},
        ])
        assert report.exit_code == 0
        # uncovered cells do not block certification (use --strict-coverage)
        assert report.certified
        assert "CERTIFIED" in report.to_markdown()

    def test_markdown_and_json_exports(self):
        report = self._report([
            {"id": "bad", "metric": "mcc.mean", "op": "<=", "bound": 0.1},
        ])
        md = report.to_markdown()
        assert "NOT CERTIFIED" in md and "## Violations" in md
        doc = json.loads(report.to_json())
        assert doc["summary"]["fail"] == 1
        assert doc["summary"]["exit_code"] == 1
        assert doc["claims"][0]["verdict"] == "fail"

    def test_empty_artifact_rows_refused(self):
        with pytest.raises(ArtifactError, match="empty evidence"):
            Artifact(kind="stream", source="s", rows=())

    def test_artifact_row_defaults(self):
        row = ArtifactRow(label="x", defense=None, setting=None, seed=None)
        assert row.metrics == {}


class TestClaimsCLI:
    @pytest.fixture()
    def workdir(self, tmp_path):
        (tmp_path / "frontier.json").write_text(json.dumps(SWEEP))
        (tmp_path / "netpriv.json").write_text(json.dumps(NETPRIV))
        return tmp_path

    def _claims_file(self, tmp_path, claims) -> str:
        path = tmp_path / "claims.json"
        path.write_text(json.dumps({"title": "t", "claims": claims}))
        return str(path)

    def test_exit_zero_when_all_pass(self, workdir, capsys):
        claims = self._claims_file(workdir, [
            {"id": "ok", "metric": "bill_error.p90", "op": "<=", "bound": 0.2},
        ])
        rc = main(["claims", "--claims", claims,
                   "--artifact", str(workdir / "frontier.json")])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_exit_one_on_any_fail(self, workdir, capsys):
        claims = self._claims_file(workdir, [
            {"id": "ok", "metric": "bill_error.p90", "op": "<=", "bound": 0.2},
            {"id": "bad", "metric": "mcc.mean", "op": "<=", "bound": 0.1},
        ])
        rc = main(["claims", "--claims", claims,
                   "--artifact", str(workdir / "frontier.json"),
                   "--artifact", str(workdir / "netpriv.json")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "PASS" in out

    def test_exit_three_distinguishes_inconclusive(self, workdir, capsys):
        claims = self._claims_file(workdir, [
            {"id": "ok", "metric": "bill_error.p90", "op": "<=", "bound": 0.2},
            {"id": "gap", "metric": "mcc.mean", "op": "<=", "bound": 0.5,
             "where": {"defenses": ["jitter"]}},
        ])
        rc = main(["claims", "--claims", claims,
                   "--artifact", str(workdir / "frontier.json")])
        assert rc == 3
        assert "uncovered claims" in capsys.readouterr().out

    def test_exit_two_on_malformed_claims(self, workdir, capsys):
        bad = workdir / "bad.toml"
        bad.write_text("not [ valid toml")
        rc = main(["claims", "--claims", str(bad),
                   "--artifact", str(workdir / "frontier.json")])
        assert rc == 2
        assert "claims:" in capsys.readouterr().err

    def test_exit_two_on_foreign_artifact(self, workdir, capsys):
        claims = self._claims_file(workdir, [
            {"id": "ok", "metric": "mcc.mean", "op": "<=", "bound": 1.0},
        ])
        foreign = workdir / "foreign.json"
        foreign.write_text(json.dumps({"accuracy": 0.99}))
        rc = main(["claims", "--claims", claims,
                   "--artifact", str(foreign)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unrecognised artifact" in err

    def test_exit_two_without_artifacts(self, workdir, capsys):
        claims = self._claims_file(workdir, [
            {"id": "ok", "metric": "mcc.mean", "op": "<=", "bound": 1.0},
        ])
        assert main(["claims", "--claims", claims]) == 2
        assert "--artifact" in capsys.readouterr().err

    def test_strict_coverage_flags_unconstrained_cells(self, workdir, capsys):
        claims = self._claims_file(workdir, [
            {"id": "ok", "metric": "mcc.mean", "op": "<=", "bound": 1.0},
        ])
        rc = main(["claims", "--claims", claims,
                   "--artifact", str(workdir / "frontier.json"),
                   "--artifact", str(workdir / "netpriv.json"),
                   "--strict-coverage"])
        assert rc == 3
        assert "strict coverage" in capsys.readouterr().out

    def test_report_files_written(self, workdir, capsys):
        claims = self._claims_file(workdir, [
            {"id": "bad", "metric": "mcc.mean", "op": "<=", "bound": 0.1},
        ])
        md = workdir / "cert.md"
        js = workdir / "cert.json"
        rc = main(["claims", "--claims", claims,
                   "--artifact", str(workdir / "frontier.json"),
                   "--md", str(md), "--json", str(js)])
        assert rc == 1
        assert "NOT CERTIFIED" in md.read_text()
        assert json.loads(js.read_text())["summary"]["fail"] == 1


class TestExampleClaimFiles:
    """The checked-in example claim files stay loadable and well-formed."""

    def test_certification_claims_parse(self):
        cs = load_claims("examples/certification_claims.toml")
        ids = [c.id for c in cs.claims]
        assert "sec4-adaptive-worst-case" in ids
        assert "sec4-jitter-strong-dial" in ids
        assert len(ids) == len(set(ids))

    def test_sweep_claims_parse(self):
        cs = load_claims("examples/sweep_claims.toml")
        assert any(c.kind == "monotone" for c in cs.claims)

    def test_certification_claims_acceptance_scenario(self):
        """The flagship example yields >=1 pass, >=1 fail, and >=1
        uncovered claim against synthetic sweep + netpriv artifacts that
        mirror the measured repo results (cover blinds the naive
        attacker; the adaptive one still sees occupancy)."""
        sweep = _sweep_doc([
            ("nill", 0.0, 0, 0.91, 0.00),
            ("nill", 0.5, 0, 0.47, 0.19),
            ("nill", 1.0, 0, 0.49, 0.17),
        ])
        netpriv = _netpriv_doc([
            ("cover", 0.0, 0, 0.83, 0.75),
            ("cover", 1.0, 0, 0.00, 0.71),
        ])
        report = evaluate_claims(
            load_claims("examples/certification_claims.toml"),
            [artifact_from_dict(sweep, "sweep"),
             artifact_from_dict(netpriv, "netpriv")],
        )
        verdicts = {v.claim.id: v.verdict for v in report.verdicts}
        assert verdicts["sec4-adaptive-worst-case"] == "fail"
        assert verdicts["sec4-jitter-strong-dial"] == "inconclusive"
        assert report.n_pass >= 1
        assert report.uncovered_claims == ("sec4-jitter-strong-dial",)
        assert report.exit_code == 1
