"""Coverage for remaining branches: profiling fallbacks, pipeline math,
DP aggregate validation, and dataset invariants."""

import numpy as np
import pytest

from repro.attacks import estimated_bedtime_hour, usage_hours_histogram
from repro.core import PipelineResult
from repro.core.evaluation import PrivacyScore, TradeoffPoint, UtilityScore
from repro.defenses import DefenseOutcome, dp_aggregate_consumption
from repro.timeseries import BinaryTrace, PowerTrace, constant


def _point(mcc: float) -> TradeoffPoint:
    return TradeoffPoint(
        defense="x",
        privacy=PrivacyScore(per_detector_mcc={"d": mcc}, per_detector_accuracy={"d": 0.5}),
        utility=UtilityScore(0.0, 0.0, 0.0),
        extra_energy_kwh=0.0,
        comfort_violation_fraction=0.0,
    )


class TestPipelineMath:
    def test_mcc_reduction_finite(self):
        result = PipelineResult(baseline=_point(0.8), defenses={"d": _point(0.2)})
        assert result.mcc_reduction("d") == pytest.approx(4.0)

    def test_mcc_reduction_infinite_when_fully_masked(self):
        result = PipelineResult(baseline=_point(0.8), defenses={"d": _point(0.0)})
        assert result.mcc_reduction("d") == float("inf")

    def test_mcc_reduction_unity_when_both_zero(self):
        result = PipelineResult(baseline=_point(0.0), defenses={"d": _point(0.0)})
        assert result.mcc_reduction("d") == 1.0

    def test_utility_composite_bounds(self):
        good = UtilityScore(0.0, 0.0, 0.0)
        bad = UtilityScore(5.0, 5.0, 5000.0)
        assert good.composite() == 1.0
        assert bad.composite() == pytest.approx(0.0)


class TestProfilingFallbacks:
    def test_histogram_of_silent_device_is_zero(self):
        hist = usage_hours_histogram(constant(0.0, 1440, 60.0))
        assert hist.sum() == 0.0

    def test_bedtime_from_occupancy_only(self):
        # occupied until 22:00 each evening, empty after
        n = 3 * 1440
        values = np.ones(n, dtype=int)
        hours = (np.arange(n) * 60.0 % 86400) / 3600.0
        values[(hours >= 22.0)] = 0
        occupancy = BinaryTrace(values, 60.0)
        bedtime = estimated_bedtime_hour(occupancy, lighting=None)
        assert bedtime == pytest.approx(22.0, abs=0.1)

    def test_bedtime_no_evening_activity_raises(self):
        occupancy = BinaryTrace(np.zeros(1440, dtype=int), 60.0)
        with pytest.raises(ValueError):
            estimated_bedtime_hour(occupancy)


class TestDPAggregateValidation:
    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            dp_aggregate_consumption([], 1.0, 100.0)

    def test_invalid_epsilon_rejected(self):
        homes = [constant(100.0, 10, 60.0)]
        with pytest.raises(ValueError):
            dp_aggregate_consumption(homes, 0.0, 100.0)

    def test_output_nonnegative(self):
        homes = [constant(1.0, 50, 60.0) for _ in range(3)]
        out = dp_aggregate_consumption(homes, 0.01, 1000.0, rng=0)
        assert out.min() >= 0.0

    def test_uses_shortest_home(self):
        homes = [constant(1.0, 50, 60.0), constant(1.0, 30, 60.0)]
        out = dp_aggregate_consumption(homes, 10.0, 10.0, rng=1)
        assert len(out) == 30


class TestDefenseOutcomeDefaults:
    def test_defaults(self):
        outcome = DefenseOutcome(visible=constant(1.0, 10, 60.0))
        assert outcome.extra_energy_kwh == 0.0
        assert outcome.comfort_violation_fraction == 0.0
        assert outcome.utility_distortion == 0.0
