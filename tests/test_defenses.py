"""Tests for all Sec. III defenses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import ThresholdNIOM, score_occupancy_attack
from repro.defenses import (
    Battery,
    BatteryConfig,
    BillProof,
    CHPrConfig,
    CoarseningDefense,
    DPConfig,
    LaplaceReleaseDefense,
    LocalAnalyticsHub,
    NILLDefense,
    NoiseInjectionDefense,
    PedersenParams,
    PrivateMeter,
    SmoothingDefense,
    SteppedDefense,
    UtilityVerifier,
    apply_chpr,
    dp_aggregate_consumption,
)
from repro.home import fig6_home, home_b, simulate_home
from repro.timeseries import PowerTrace, constant


@pytest.fixture(scope="module")
def week_home():
    return simulate_home(home_b(), 7, rng=3)


@pytest.fixture(scope="module")
def chpr_home():
    return simulate_home(fig6_home(), 7, rng=5)


def attack_mcc(trace, occupancy):
    detector = ThresholdNIOM(window_s=3600.0)
    result = detector.detect(trace)
    return score_occupancy_attack(result.occupancy, occupancy)["mcc"]


# ---------------------------------------------------------------------------
# CHPr
# ---------------------------------------------------------------------------
class TestCHPr:
    def test_reduces_attack_mcc_substantially(self, chpr_home):
        before = attack_mcc(chpr_home.metered, chpr_home.occupancy)
        outcome = apply_chpr(chpr_home, rng=105)
        after = attack_mcc(outcome.visible, chpr_home.occupancy)
        assert before > 0.4  # the attack works on the original
        assert after < before / 2.5  # and CHPr breaks it

    def test_comfort_mostly_preserved(self, chpr_home):
        outcome = apply_chpr(chpr_home, rng=105)
        assert outcome.comfort_violation_fraction < 0.02

    def test_roughly_energy_neutral(self, chpr_home):
        outcome = apply_chpr(chpr_home, rng=105)
        baseline_kwh = chpr_home.appliance_traces["water_heater"].energy_kwh()
        assert abs(outcome.extra_energy_kwh) < 0.35 * baseline_kwh

    def test_requires_water_heater(self, week_home):
        with pytest.raises(ValueError):
            apply_chpr(week_home)

    def test_deterministic_given_rng(self, chpr_home):
        a = apply_chpr(chpr_home, rng=7).visible
        b = apply_chpr(chpr_home, rng=7).visible
        assert np.array_equal(a.values, b.values)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CHPrConfig(target_mean_w=-5.0)
        with pytest.raises(ValueError):
            CHPrConfig(mask_start_hour=10.0, mask_end_hour=9.0)


# ---------------------------------------------------------------------------
# Battery
# ---------------------------------------------------------------------------
class TestBattery:
    def test_soc_bounds_respected(self):
        battery = Battery(BatteryConfig(capacity_wh=100.0))
        for _ in range(500):
            battery.step(5000.0, 60.0)  # try to over-discharge
        assert battery.energy_wh >= -1e-9
        for _ in range(500):
            battery.step(-5000.0, 60.0)  # try to over-charge
        assert battery.energy_wh <= 100.0 + 1e-9

    def test_charging_incurs_losses(self):
        battery = Battery(BatteryConfig(efficiency=0.8, initial_soc=0.0))
        battery.step(-1000.0, 3600.0)
        assert battery.losses_wh > 0.0

    def test_power_limits(self):
        battery = Battery(BatteryConfig(max_discharge_w=500.0))
        assert battery.step(2000.0, 60.0) <= 500.0

    def test_nill_flattens_signal(self, week_home):
        outcome = NILLDefense(BatteryConfig(capacity_wh=4000.0)).apply(week_home.metered)
        assert outcome.visible.std() < 0.9 * week_home.metered.std()

    def test_nill_reduces_attack(self, week_home):
        before = attack_mcc(week_home.metered, week_home.occupancy)
        outcome = NILLDefense(BatteryConfig(capacity_wh=4000.0)).apply(week_home.metered)
        after = attack_mcc(outcome.visible, week_home.occupancy)
        assert after < before

    def test_bigger_battery_hides_more(self, week_home):
        small = NILLDefense(BatteryConfig(capacity_wh=500.0)).apply(week_home.metered)
        large = NILLDefense(BatteryConfig(capacity_wh=8000.0)).apply(week_home.metered)
        assert large.visible.std() <= small.visible.std()

    def test_stepped_output_quantized_mostly(self, week_home):
        defense = SteppedDefense(BatteryConfig(capacity_wh=4000.0), step_w=500.0)
        outcome = defense.apply(week_home.metered)
        on_grid = np.abs(outcome.visible.values % 500.0)
        on_grid = np.minimum(on_grid, 500.0 - on_grid)
        # most samples sit on the step grid (battery saturation breaks some)
        assert (on_grid < 1.0).mean() > 0.5

    def test_visible_never_negative(self, week_home):
        for defense in (NILLDefense(), SteppedDefense()):
            assert defense.apply(week_home.metered).visible.min() >= 0.0


# ---------------------------------------------------------------------------
# Differential privacy
# ---------------------------------------------------------------------------
class TestDP:
    def test_low_epsilon_destroys_attack(self, week_home):
        outcome = LaplaceReleaseDefense(DPConfig(epsilon=0.5)).apply(week_home.metered, rng=1)
        after = attack_mcc(outcome.visible, week_home.occupancy)
        assert abs(after) < 0.25

    def test_high_epsilon_preserves_energy(self, week_home):
        outcome = LaplaceReleaseDefense(DPConfig(epsilon=50.0)).apply(week_home.metered, rng=2)
        assert outcome.visible.energy_kwh() == pytest.approx(
            week_home.metered.energy_kwh(), rel=0.1
        )

    def test_noise_scale(self):
        config = DPConfig(epsilon=2.0, sensitivity_w=1000.0)
        assert config.noise_scale_w == 500.0

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            DPConfig(epsilon=0.0)

    def test_aggregate_error_shrinks_with_population(self):
        rng = np.random.default_rng(0)
        homes = [
            PowerTrace(rng.uniform(0, 1000, 500), 60.0) for _ in range(40)
        ]
        true_mean = np.mean([h.values for h in homes], axis=0)
        small = dp_aggregate_consumption(homes[:4], 1.0, 2000.0, rng=1)
        large = dp_aggregate_consumption(homes, 1.0, 2000.0, rng=1)
        err_small = np.abs(small.values - np.mean([h.values for h in homes[:4]], axis=0)).mean()
        err_large = np.abs(large.values - true_mean).mean()
        assert err_large < err_small


# ---------------------------------------------------------------------------
# ZKP billing
# ---------------------------------------------------------------------------
class TestZKPBilling:
    def test_bill_verifies(self):
        meter = PrivateMeter(rng=0)
        for reading in (1200, 800, 1500, 40):
            meter.record(reading)
        tariffs = [10, 10, 25, 25]  # time-of-use
        proof = meter.billing_response(tariffs)
        assert proof.bill == 10 * 1200 + 10 * 800 + 25 * 1500 + 25 * 40
        assert UtilityVerifier().verify_bill(meter.commitments, tariffs, proof)

    def test_forged_bill_rejected(self):
        meter = PrivateMeter(rng=1)
        for reading in (500, 700):
            meter.record(reading)
        proof = meter.billing_response([1, 1])
        forged = BillProof(bill=proof.bill - 100, aggregate_blinding=proof.aggregate_blinding)
        assert not UtilityVerifier().verify_bill(meter.commitments, [1, 1], forged)

    def test_commitments_hide_readings(self):
        # same reading, different blinding -> different commitments
        meter = PrivateMeter(rng=2)
        c1 = meter.record(1000)
        c2 = meter.record(1000)
        assert c1.value_c != c2.value_c

    def test_opening_proof_round_trip(self):
        meter = PrivateMeter(rng=3)
        commitment = meter.record(123)
        proof = meter.prove_opening(0)
        assert UtilityVerifier().verify_opening(commitment, proof)

    def test_opening_proof_rejects_wrong_commitment(self):
        meter = PrivateMeter(rng=4)
        c0 = meter.record(100)
        meter.record(999)
        proof_for_1 = meter.prove_opening(1)
        assert not UtilityVerifier().verify_opening(c0, proof_for_1)

    def test_record_trace(self, week_home):
        meter = PrivateMeter(rng=5)
        hourly = week_home.metered.resample(3600.0)
        commitments = meter.record_trace(hourly)
        assert len(commitments) == len(hourly)
        tariffs = [1] * len(commitments)
        proof = meter.billing_response(tariffs)
        assert UtilityVerifier().verify_bill(commitments, tariffs, proof)
        # the verified bill equals total energy (in Wh, rounding aside)
        assert proof.bill == pytest.approx(hourly.energy_kwh() * 1000.0, rel=0.01)

    def test_negative_reading_rejected(self):
        with pytest.raises(ValueError):
            PrivateMeter(rng=6).record(-1)

    def test_params_commit_is_binding_shape(self):
        params = PedersenParams()
        c = params.commit(42, 12345)
        assert c != params.commit(43, 12345)
        assert c != params.commit(42, 12346)


# ---------------------------------------------------------------------------
# Local services
# ---------------------------------------------------------------------------
class TestLocalHub:
    def test_billing_matches_raw(self, week_home):
        hub = LocalAnalyticsHub(week_home.metered)
        assert hub.bill_cents(20.0) == pytest.approx(
            week_home.metered.energy_kwh() * 20.0
        )

    def test_payload_weaker_than_raw_for_niom(self, week_home):
        hub = LocalAnalyticsHub(week_home.metered)
        payload = hub.shared_payload()
        reconstruction = payload.as_trace()
        # the tiled average profile leaks only the *typical* schedule; the
        # attack degrades sharply relative to the raw trace and can never
        # distinguish one day from another
        mcc = attack_mcc(reconstruction, week_home.occupancy)
        direct = attack_mcc(week_home.metered, week_home.occupancy)
        assert mcc < direct * 0.75
        days = np.asarray(payload.mean_daily_profile_w)
        rebuilt = reconstruction.values.reshape(-1, len(days))
        assert np.allclose(rebuilt, rebuilt[0])  # every day identical

    def test_schedule_recommendation_sane(self, week_home):
        rec = LocalAnalyticsHub(week_home.metered).recommend_schedule()
        assert 0 <= rec.setback_start_hour < rec.setback_end_hour <= 24

    def test_cloud_model_runs_locally(self, week_home):
        class CloudModel:
            def predict(self, X):
                return (X[:, 0] > X[:, 0].mean()).astype(int)

        hub = LocalAnalyticsHub(week_home.metered)
        out = hub.evaluate_cloud_model(CloudModel(), np.arange(10.0).reshape(-1, 1))
        assert out.shape == (10,)

    def test_empty_trace_rejected(self):
        with pytest.raises(Exception):
            LocalAnalyticsHub(PowerTrace(np.asarray([]), 60.0))


# ---------------------------------------------------------------------------
# Obfuscation baselines
# ---------------------------------------------------------------------------
class TestObfuscation:
    def test_smoothing_preserves_energy(self, week_home):
        outcome = SmoothingDefense(1800.0).apply(week_home.metered)
        assert outcome.visible.energy_kwh() == pytest.approx(
            week_home.metered.energy_kwh(), rel=0.02
        )

    def test_coarsening_preserves_energy(self, week_home):
        outcome = CoarseningDefense(3600.0).apply(week_home.metered)
        assert outcome.visible.energy_kwh() == pytest.approx(
            week_home.metered.energy_kwh(), rel=0.02
        )

    def test_physical_noise_only_adds(self, week_home):
        outcome = NoiseInjectionDefense(std_w=200.0, physical=True).apply(
            week_home.metered, rng=1
        )
        n = len(outcome.visible)
        assert np.all(outcome.visible.values >= week_home.metered.values[:n] - 1e-9)
        assert outcome.extra_energy_kwh > 0.0


@given(st.floats(min_value=100.0, max_value=10000.0))
@settings(max_examples=20, deadline=None)
def test_battery_energy_conservation_property(capacity):
    """Energy out <= energy in * efficiency, for any capacity."""
    battery = Battery(BatteryConfig(capacity_wh=capacity, initial_soc=0.0, efficiency=0.9))
    rng = np.random.default_rng(int(capacity))
    charged = 0.0
    discharged = 0.0
    for _ in range(200):
        request = float(rng.uniform(-2000, 2000))
        delivered = battery.step(request, 60.0)
        if delivered > 0:
            discharged += delivered * 60.0 / 3600.0
        else:
            charged += -delivered * 60.0 / 3600.0
    assert discharged <= charged * 0.9 + 1e-6
