"""Tests for the metrics, preprocessing, and tabular classifiers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    DecisionTreeClassifier,
    GaussianNB,
    KMeans,
    KNeighborsClassifier,
    LogisticRegression,
    RandomForestClassifier,
    StandardScaler,
    accuracy,
    binary_counts,
    confusion_matrix,
    f1_score,
    macro_f1,
    mcc,
    precision,
    recall,
    train_test_split,
)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_perfect_prediction(self):
        y = [0, 1, 0, 1, 1]
        assert accuracy(y, y) == 1.0
        assert mcc(y, y) == pytest.approx(1.0)
        assert f1_score(y, y) == 1.0

    def test_always_wrong_mcc(self):
        y = [0, 1, 0, 1]
        flipped = [1, 0, 1, 0]
        assert mcc(y, flipped) == pytest.approx(-1.0)

    def test_constant_prediction_mcc_zero(self):
        y = [0, 1, 0, 1]
        assert mcc(y, [1, 1, 1, 1]) == 0.0
        assert mcc(y, [0, 0, 0, 0]) == 0.0

    def test_mcc_known_value(self):
        # tp=4 fp=1 tn=3 fn=2 -> mcc = (12-2)/sqrt(5*6*4*5)
        y_true = [1, 1, 1, 1, 1, 1, 0, 0, 0, 0]
        y_pred = [1, 1, 1, 1, 0, 0, 0, 0, 0, 1]
        expected = (4 * 3 - 1 * 2) / np.sqrt(5 * 6 * 4 * 5)
        assert mcc(y_true, y_pred) == pytest.approx(expected)

    def test_binary_counts(self):
        c = binary_counts([1, 1, 0, 0], [1, 0, 1, 0])
        assert (c.tp, c.fn, c.fp, c.tn) == (1, 1, 1, 1)

    def test_precision_recall(self):
        y_true = [1, 1, 0, 0]
        y_pred = [1, 1, 1, 0]
        assert precision(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall(y_true, y_pred) == 1.0

    def test_zero_division_conventions(self):
        assert precision([0, 0], [0, 0]) == 0.0
        assert recall([0, 0], [0, 0]) == 0.0
        assert f1_score([0, 0], [0, 0]) == 0.0

    def test_confusion_matrix(self):
        m = confusion_matrix(["a", "b", "a"], ["a", "a", "a"])
        assert m.tolist() == [[2, 0], [1, 0]]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy([1], [1, 0])

    def test_macro_f1_multiclass(self):
        y = ["x", "y", "z", "x"]
        assert macro_f1(y, y) == 1.0


@given(st.lists(st.sampled_from([0, 1]), min_size=2, max_size=60))
@settings(max_examples=60, deadline=None)
def test_mcc_bounded_property(y_true):
    rng = np.random.default_rng(sum(y_true) + len(y_true))
    y_pred = rng.integers(0, 2, len(y_true))
    value = mcc(y_true, y_pred)
    assert -1.0 <= value <= 1.0


# ---------------------------------------------------------------------------
# Preprocessing
# ---------------------------------------------------------------------------
class TestPreprocessing:
    def test_scaler_zero_mean_unit_var(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 3))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_scaler_constant_feature_safe(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))

    def test_scaler_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform([[1.0]])

    def test_scaler_wrong_width_raises(self):
        scaler = StandardScaler().fit(np.zeros((5, 2)))
        with pytest.raises(ValueError):
            scaler.transform(np.zeros((5, 3)))

    def test_split_sizes_and_disjoint(self):
        X = np.arange(40.0).reshape(-1, 1)
        y = np.arange(40)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, 0.25, rng=0)
        assert len(X_te) == 10 and len(X_tr) == 30
        assert set(y_tr) | set(y_te) == set(range(40))
        assert not set(y_tr) & set(y_te)


# ---------------------------------------------------------------------------
# Classifiers — all should nail a well-separated 3-class blob problem
# ---------------------------------------------------------------------------
def blob_data(rng_seed=0, n_per_class=60):
    rng = np.random.default_rng(rng_seed)
    centers = np.asarray([[0.0, 0.0], [8.0, 0.0], [0.0, 8.0]])
    X = np.vstack([rng.normal(c, 1.0, size=(n_per_class, 2)) for c in centers])
    y = np.repeat([0, 1, 2], n_per_class)
    return X, y


CLASSIFIERS = [
    lambda: DecisionTreeClassifier(max_depth=8),
    lambda: RandomForestClassifier(n_trees=10, rng=0),
    lambda: GaussianNB(),
    lambda: KNeighborsClassifier(k=5),
    lambda: LogisticRegression(),
]


@pytest.mark.parametrize("factory", CLASSIFIERS, ids=lambda f: type(f()).__name__)
def test_classifier_separable_blobs(factory):
    X, y = blob_data()
    X_tr, X_te, y_tr, y_te = train_test_split(X, y, 0.3, rng=1)
    model = factory().fit(X_tr, y_tr)
    assert accuracy(y_te, model.predict(X_te)) >= 0.95


@pytest.mark.parametrize("factory", CLASSIFIERS, ids=lambda f: type(f()).__name__)
def test_classifier_proba_sums_to_one(factory):
    X, y = blob_data(1)
    model = factory().fit(X, y)
    proba = model.predict_proba(X[:10])
    assert proba.shape == (10, 3)
    assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)
    assert np.all(proba >= 0.0)


@pytest.mark.parametrize("factory", CLASSIFIERS, ids=lambda f: type(f()).__name__)
def test_classifier_unfitted_raises(factory):
    with pytest.raises(RuntimeError):
        factory().predict([[0.0, 0.0]])


class TestTreeSpecifics:
    def test_pure_node_is_leaf(self):
        X = np.asarray([[0.0], [1.0], [2.0]])
        y = np.asarray([7, 7, 7])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth() == 0
        assert list(tree.predict([[5.0]])) == [7]

    def test_max_depth_respected(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(size=(200, 3))
        y = (X[:, 0] + X[:, 1] + X[:, 2] > 1.5).astype(int)
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.depth() <= 3

    def test_xor_needs_depth_two(self):
        X = np.asarray([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        X = np.repeat(X, 20, axis=0)
        y = (X[:, 0] != X[:, 1]).astype(int)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert accuracy(y, tree.predict(X)) == 1.0


class TestKMeans:
    def test_recovers_separated_clusters(self):
        X, y = blob_data(3)
        km = KMeans(3, rng=0).fit(X)
        labels = km.predict(X)
        # cluster labels are arbitrary; check purity instead
        purity = 0
        for k in range(3):
            members = y[labels == k]
            if len(members):
                purity += np.bincount(members).max()
        assert purity / len(y) >= 0.95

    def test_k_greater_than_n_raises(self):
        with pytest.raises(ValueError):
            KMeans(5).fit(np.zeros((3, 2)))

    def test_deterministic_given_seed(self):
        X, _ = blob_data(4)
        a = KMeans(3, rng=42).fit(X).centroids_
        b = KMeans(3, rng=42).fit(X).centroids_
        assert np.allclose(a, b)

    def test_single_cluster_centroid_is_mean(self):
        X = np.arange(10.0).reshape(-1, 1)
        km = KMeans(1, rng=0).fit(X)
        assert km.centroids_[0, 0] == pytest.approx(4.5)
