"""Tests for the observability layer and its time-anchor bugfix riders.

Pins the contracts every perf PR will lean on:

* the telemetry registry is a no-op while disabled and exact while
  enabled; snapshots merge commutatively/associatively and subtract
  cleanly (the worker delta protocol);
* fleet runs with telemetry on and off produce bit-identical
  ``trace_digest``s — observation can never perturb results;
* per-home stage timers account for (nearly all of) per-job wall-clock;
* cache corruption is counted, not just silently eaten;
* the profiling-attack evening windows and the local hub's daily energy
  buckets are anchored at the trace's own clock (regressions for the
  absolute-``t=0`` anchoring bugs).
"""

import json
import pickle

import numpy as np
import pytest

from repro.attacks.profiling import meal_profile
from repro.defenses.local import LocalAnalyticsHub
from repro.fleet import FleetReport, FleetSpec, run_fleet
from repro.obs import (
    TELEMETRY,
    Telemetry,
    TelemetrySnapshot,
    TimerStat,
    maybe_profile,
    merge_snapshots,
)
from repro.timeseries import PowerTrace, SECONDS_PER_DAY

SPEC = FleetSpec(n_homes=3, days=1, seed=42, defenses=("dp-laplace",))


# ---------------------------------------------------------------------------
# Registry mechanics
# ---------------------------------------------------------------------------
class TestTelemetryRegistry:
    def test_disabled_registry_records_nothing(self):
        reg = Telemetry(enabled=False)
        reg.count("x", 5)
        with reg.timer("t"):
            pass
        assert reg.snapshot().empty

    def test_enabled_registry_counts_and_times(self):
        reg = Telemetry(enabled=True)
        reg.count("events")
        reg.count("events", 2)
        reg.count("bytes", 0.5)
        with reg.timer("stage"):
            pass
        with reg.timer("stage"):
            pass
        snap = reg.snapshot()
        assert snap.counters == {"events": 3.0, "bytes": 0.5}
        assert snap.timers["stage"].count == 2
        assert snap.timers["stage"].total_s >= 0.0
        assert snap.timers["stage"].mean_s == pytest.approx(
            snap.timers["stage"].total_s / 2
        )

    def test_timer_records_on_exception(self):
        reg = Telemetry(enabled=True)
        with pytest.raises(RuntimeError):
            with reg.timer("boom"):
                raise RuntimeError("x")
        assert reg.snapshot().timers["boom"].count == 1

    def test_restore_round_trip(self):
        reg = Telemetry(enabled=True)
        reg.count("a")
        before = reg.snapshot()
        reg.count("a", 9)
        reg.count("b")
        with reg.timer("t"):
            pass
        delta = reg.snapshot().minus(before)
        assert delta.counters == {"a": 9.0, "b": 1.0}
        assert delta.timers["t"].count == 1
        reg.restore(before)
        assert reg.snapshot() == before

    def test_snapshot_is_picklable(self):
        snap = TelemetrySnapshot(
            counters={"a": 1.0}, timers={"t": TimerStat(2, 0.5)}
        )
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap

    def test_as_dict_shape(self):
        snap = TelemetrySnapshot(
            counters={"b": 2.0, "a": 1.0}, timers={"t": TimerStat(1, 2.0)}
        )
        doc = snap.as_dict()
        assert list(doc["counters"]) == ["a", "b"]
        assert doc["timers"]["t"] == {"count": 1, "total_s": 2.0, "mean_s": 2.0}


class TestSnapshotMerge:
    A = TelemetrySnapshot(counters={"x": 1.0}, timers={"t": TimerStat(1, 0.25)})
    B = TelemetrySnapshot(
        counters={"x": 2.0, "y": 5.0}, timers={"t": TimerStat(3, 0.75)}
    )
    C = TelemetrySnapshot(counters={"y": 1.0}, timers={"u": TimerStat(2, 1.0)})

    def test_merge_is_commutative(self):
        assert self.A.merged(self.B) == self.B.merged(self.A)

    def test_merge_is_associative(self):
        left = self.A.merged(self.B).merged(self.C)
        right = self.A.merged(self.B.merged(self.C))
        assert left == right

    def test_merge_identity(self):
        assert self.A.merged(TelemetrySnapshot()) == self.A

    def test_merge_order_determinism(self):
        # any completion order of job snapshots yields the same totals
        import itertools

        merges = {
            json.dumps(merge_snapshots(perm).as_dict(), sort_keys=True)
            for perm in itertools.permutations([self.A, self.B, self.C])
        }
        assert len(merges) == 1

    def test_minus_inverts_merge(self):
        assert self.A.merged(self.B).minus(self.B) == self.A


# ---------------------------------------------------------------------------
# Fleet integration
# ---------------------------------------------------------------------------
class TestFleetTelemetry:
    @pytest.fixture(scope="class")
    def pair(self):
        off = run_fleet(SPEC, workers=1)
        on = run_fleet(SPEC, workers=1, telemetry=True)
        return off, on

    def test_telemetry_off_by_default(self, pair):
        off, _ = pair
        assert off.telemetry is None
        assert all(h.telemetry is None for h in off.homes)

    def test_identical_digests_on_and_off(self, pair):
        off, on = pair
        assert [h.trace_digest for h in on.homes] == [
            h.trace_digest for h in off.homes
        ]
        assert FleetReport.from_result(on).comparable(
            FleetReport.from_result(off)
        )

    def test_per_home_snapshots_and_totals(self, pair):
        _, on = pair
        assert on.telemetry is not None
        assert all(h.telemetry is not None for h in on.homes)
        merged = merge_snapshots(h.telemetry for h in on.homes)
        for stage in ("stage.job", "stage.simulate", "stage.attack"):
            assert on.telemetry.timers[stage] == merged.timers[stage]
            assert merged.timers[stage].count >= SPEC.n_homes or stage != "stage.job"

    def test_stage_durations_cover_job_wall_clock(self, pair):
        _, on = pair
        for home in on.homes:
            timers = home.telemetry.timers
            job = timers["stage.job"].total_s
            stages = sum(
                timers[name].total_s
                for name in ("stage.simulate", "stage.defend", "stage.attack")
                if name in timers
            )
            # acceptance: per-home stage durations sum to within 10% of
            # the job's wall-clock (and can never exceed it)
            assert stages <= job + 1e-6
            assert stages >= 0.9 * job

    def test_registry_left_disabled_and_clean(self, pair):
        # the runner enables the ambient registry only for the duration
        # of the run and restores its baseline afterwards
        assert not TELEMETRY.enabled
        assert TELEMETRY.snapshot().empty

    @pytest.mark.parametrize("workers", [1, 2])
    def test_parallel_telemetry_matches_serial_digests(self, pair, workers):
        off, _ = pair
        result = run_fleet(SPEC, workers=workers, telemetry=True)
        assert [h.trace_digest for h in result.homes] == [
            h.trace_digest for h in off.homes
        ]
        assert result.telemetry is not None
        assert "stage.job" in result.telemetry.timers

    def test_report_telemetry_section(self, pair):
        _, on = pair
        report = FleetReport.from_result(on)
        section = report.telemetry
        assert section is not None
        assert section["homes_with_telemetry"] == SPEC.n_homes
        assert "stage.job" in section["per_home_stage_s"]
        stats = section["per_home_stage_s"]["stage.job"]
        assert stats["min"] <= stats["median"] <= stats["max"]
        assert "stage.job" in section["totals"]["timers"]
        # the whole section must be JSON-serializable for --telemetry
        json.dumps(report.as_dict())

    def test_retry_counters_from_fault_injection(self):
        from repro.fleet import FaultPlan

        flaky = FaultPlan(kind="error", indices=(0,), max_attempt=0)
        result = run_fleet(
            SPEC,
            workers=1,
            telemetry=True,
            faults=flaky,
            max_retries=2,
            retry_backoff_s=0.01,
        )
        assert result.ok
        assert result.telemetry.counters["fleet.retry"] >= 1
        assert result.telemetry.counters["fleet.attempt_failed.error"] >= 1
        assert result.telemetry.counters["fleet.backoff_wait_s"] > 0


class TestCacheTelemetry:
    def test_cached_results_carry_no_snapshot(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_fleet(SPEC, workers=1, cache_dir=cache_dir, telemetry=True)
        warm = run_fleet(SPEC, workers=1, cache_dir=cache_dir, telemetry=True)
        assert warm.cache_stats.hit_rate == 1.0
        assert all(h.telemetry is None for h in warm.homes)
        assert warm.telemetry.counters["cache.hit"] == SPEC.n_homes
        assert warm.telemetry.timers["cache.read"].count == SPEC.n_homes

    def test_cache_entries_identical_with_and_without_telemetry(self, tmp_path):
        plain = tmp_path / "plain"
        observed = tmp_path / "observed"
        run_fleet(SPEC, workers=1, cache_dir=plain)
        run_fleet(SPEC, workers=1, cache_dir=observed, telemetry=True)
        plain_entries = {p.name: p.read_bytes() for p in plain.glob("*/*.pkl")}
        observed_entries = {
            p.name: p.read_bytes() for p in observed.glob("*/*.pkl")
        }
        assert plain_entries == observed_entries

    def test_corrupt_entry_counted_not_fatal(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_fleet(SPEC, workers=1, cache_dir=cache_dir)
        victim = next(cache_dir.glob("*/*.pkl"))
        victim.write_bytes(b"definitely not a pickle")
        result = run_fleet(SPEC, workers=1, cache_dir=cache_dir, telemetry=True)
        assert result.ok
        assert result.cache_stats.corrupt == 1
        assert result.cache_stats.misses == 1
        assert result.cache_stats.hits == SPEC.n_homes - 1
        assert result.telemetry.counters["cache.corrupt_entry"] == 1

    def test_stale_format_counted_separately(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_fleet(SPEC, workers=1, cache_dir=cache_dir)
        victim = next(cache_dir.glob("*/*.pkl"))
        stale = {"format": -1, "result": None}
        victim.write_bytes(pickle.dumps(stale))
        result = run_fleet(SPEC, workers=1, cache_dir=cache_dir, telemetry=True)
        assert result.cache_stats.stale == 1
        assert result.cache_stats.corrupt == 0
        assert result.telemetry.counters["cache.stale_entry"] == 1


# ---------------------------------------------------------------------------
# Profiling hooks
# ---------------------------------------------------------------------------
class TestProfiling:
    def test_maybe_profile_disabled_writes_nothing(self, tmp_path):
        with maybe_profile("unit") as prof:
            assert prof is None
        assert list(tmp_path.iterdir()) == []

    def test_maybe_profile_dumps_pstats(self, tmp_path):
        import pstats

        with maybe_profile("unit", tmp_path) as prof:
            assert prof is not None
            sum(range(1000))
        dump = tmp_path / "unit.pstats"
        assert dump.exists()
        pstats.Stats(str(dump))  # parseable

    def test_fleet_profile_dir_one_dump_per_home(self, tmp_path):
        profile_dir = tmp_path / "prof"
        result = run_fleet(SPEC, workers=1, profile_dir=profile_dir)
        assert result.ok
        dumps = sorted(p.name for p in profile_dir.glob("*.pstats"))
        assert dumps == [
            f"home-{i:04d}-a0.pstats" for i in range(SPEC.n_homes)
        ]


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
class TestCLITelemetry:
    def test_fleet_telemetry_and_profile_flags(self, tmp_path, capsys):
        from repro.cli import main

        # both paths live in directories that do not exist yet: the CLI
        # must create them rather than crash after the sweep finished
        telemetry_path = tmp_path / "out" / "telemetry.json"
        profile_dir = tmp_path / "profiles"
        args = [
            "fleet", "--homes", "2", "--days", "1", "--seed", "5",
            "--workers", "1", "--defenses", "dp-laplace",
            "--telemetry", str(telemetry_path),
            "--profile", str(profile_dir),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "telemetry JSON written to" in out
        assert "telemetry:" in out
        doc = json.loads(telemetry_path.read_text())
        assert "stage.job" in doc["totals"]["timers"]
        assert "stage.job" in doc["per_home_stage_s"]
        assert doc["homes_with_telemetry"] == 2
        assert len(list(profile_dir.glob("*.pstats"))) == 2


# ---------------------------------------------------------------------------
# Time-anchor regressions (the satellite bugfixes)
# ---------------------------------------------------------------------------
def _pulse_trace(
    days: int,
    hour: float,
    duration_min: int,
    power: float,
    start_s: float = 0.0,
    period_s: float = 60.0,
) -> PowerTrace:
    values = np.zeros(int(days * SECONDS_PER_DAY / period_s))
    for d in range(days):
        i0 = int((d * SECONDS_PER_DAY + hour * 3600) / period_s)
        values[i0 : i0 + int(duration_min * 60 / period_s)] = power
    return PowerTrace(values, period_s, start_s)


class TestMealProfileAnchoring:
    def test_nonzero_start_trace_not_misread_as_eating_out(self):
        # cooking every evening at 18:30; the trace begins on epoch day 7.
        # The old epoch-anchored windows never overlapped the trace, every
        # slice raised, and the household was profiled as eating out daily.
        cooked_daily = _pulse_trace(
            5, 18.5, 10, 1400.0, start_s=7 * SECONDS_PER_DAY
        )
        profile = meal_profile(cooked_daily, None)
        assert profile.eats_out_days_fraction == 0.0

    def test_shifted_and_epoch_anchored_traces_agree(self):
        base = _pulse_trace(4, 18.0, 15, 1200.0)
        shifted = base.shift(3 * SECONDS_PER_DAY)
        assert (
            meal_profile(base, None).eats_out_days_fraction
            == meal_profile(shifted, None).eats_out_days_fraction
        )

    def test_no_evening_cooking_still_reads_as_eating_out(self):
        # breakfast-only microwave use, nonzero start: every evening empty
        breakfast = _pulse_trace(
            4, 7.5, 10, 1200.0, start_s=2 * SECONDS_PER_DAY
        )
        profile = meal_profile(breakfast, None)
        assert profile.eats_out_days_fraction == 1.0

    def test_mixed_cooked_and_skipped_evenings(self):
        period = 60.0
        days = 4
        values = np.zeros(int(days * SECONDS_PER_DAY / period))
        for d in (0, 2):  # cook only on days 0 and 2
            i0 = int((d * SECONDS_PER_DAY + 19 * 3600) / period)
            values[i0 : i0 + 10] = 1500.0
        trace = PowerTrace(values, period, start_s=10 * SECONDS_PER_DAY)
        profile = meal_profile(trace, None)
        assert profile.eats_out_days_fraction == pytest.approx(0.5)


class TestSharedPayloadDays:
    def test_partial_trailing_day_included(self):
        period = 60.0
        n = int(2.5 * SECONDS_PER_DAY / period)
        hub = LocalAnalyticsHub(PowerTrace(np.full(n, 1000.0), period))
        payload = hub.shared_payload()
        assert len(payload.daily_energy_kwh) == 3
        assert payload.daily_energy_kwh[0] == pytest.approx(24.0)
        assert payload.daily_energy_kwh[2] == pytest.approx(12.0)
        assert sum(payload.daily_energy_kwh) == pytest.approx(
            payload.total_energy_kwh
        )

    def test_nonzero_start_daily_buckets(self):
        period = 60.0
        n = int(3 * SECONDS_PER_DAY / period)
        hub = LocalAnalyticsHub(
            PowerTrace(np.full(n, 500.0), period, start_s=5 * SECONDS_PER_DAY)
        )
        payload = hub.shared_payload()
        assert len(payload.daily_energy_kwh) == 3
        assert sum(payload.daily_energy_kwh) == pytest.approx(
            payload.total_energy_kwh
        )

    def test_sub_day_trace_single_bucket(self):
        period = 60.0
        n = int(0.25 * SECONDS_PER_DAY / period)
        hub = LocalAnalyticsHub(PowerTrace(np.full(n, 800.0), period))
        payload = hub.shared_payload()
        assert len(payload.daily_energy_kwh) == 1
        assert payload.daily_energy_kwh[0] == pytest.approx(
            payload.total_energy_kwh
        )
