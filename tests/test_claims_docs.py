"""docs/CLAIMS.md must be executable documentation.

The worked example's fenced ``bash`` blocks are extracted and run
verbatim in a scratch directory (with ``examples/`` copied in), so the
operator guide can never drift from the CLI it documents.  The doc
states the final command exits 1 — the adaptive-attacker claim failing
*is* the documented finding — and this test pins exactly that.
"""

import json
import os
import re
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC = REPO / "docs" / "CLAIMS.md"

# Expected exit code per fenced ```bash block, in document order:
# sweep artifact, netpriv artifact, claims evaluation (fails by design).
EXPECTED_EXITS = (0, 0, 1)


def _bash_blocks() -> list[str]:
    text = DOC.read_text()
    return [m.strip() for m in re.findall(r"```bash\n(.*?)```", text, re.S)]


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    """Scratch dir shaped like a repo checkout: examples/ available,
    artifacts written locally."""
    path = tmp_path_factory.mktemp("claims_doc")
    shutil.copytree(REPO / "examples", path / "examples")
    return path


@pytest.fixture(scope="module")
def doc_run(workdir):
    """Run every documented command once, in order, capturing outcomes."""
    blocks = _bash_blocks()
    assert len(blocks) == len(EXPECTED_EXITS), (
        "docs/CLAIMS.md worked example changed shape — update this test "
        "and EXPECTED_EXITS together"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    runs = []
    for block in blocks:
        command = block.replace("python ", f"{sys.executable} ", 1)
        runs.append(
            subprocess.run(
                ["bash", "-c", command], cwd=workdir, env=env,
                capture_output=True, text=True, timeout=600,
            )
        )
    return runs


class TestClaimsDocCommands:
    def test_commands_exit_as_documented(self, doc_run):
        for i, (run, expected) in enumerate(zip(doc_run, EXPECTED_EXITS)):
            assert run.returncode == expected, (
                f"block {i} exited {run.returncode}, doc promises {expected}\n"
                f"stdout:\n{run.stdout}\nstderr:\n{run.stderr}"
            )

    def test_artifacts_written(self, workdir, doc_run):
        assert (workdir / "frontier.json").exists()
        assert (workdir / "netpriv-frontier.json").exists()

    def test_certification_reports_match_doc_narrative(self, workdir, doc_run):
        md = (workdir / "certification.md").read_text()
        assert "NOT CERTIFIED" in md
        assert "sec4-adaptive-worst-case" in md
        doc = json.loads((workdir / "certification.json").read_text())
        verdicts = {c["id"]: c["verdict"] for c in doc["claims"]}
        # the doc narrates each of these outcomes explicitly
        assert verdicts["sec4-cover-blinds-naive"] == "pass"
        assert verdicts["sec4-adaptive-worst-case"] == "fail"
        assert verdicts["sec4-jitter-strong-dial"] == "inconclusive"
        assert verdicts["sec3e-dial-monotone"] == "pass"
        assert verdicts["sec3e-bill-integrity"] == "pass"
        assert doc["summary"]["uncovered_claims"] == ["sec4-jitter-strong-dial"]
        assert doc["summary"]["exit_code"] == 1

    def test_adaptive_attacker_beats_cover_in_evidence(self, workdir, doc_run):
        """The quantitative story the doc tells: cover zeroes the naive
        attacker while the adaptive one keeps seeing occupancy."""
        points = json.loads(
            (workdir / "netpriv-frontier.json").read_text()
        )["points"]
        cover_full = next(
            p for p in points
            if p["defense"] == "cover" and p["setting"] == 1.0
        )
        assert cover_full["naive_mcc"]["max"] <= 0.05
        assert cover_full["adaptive_mcc"]["max"] > 0.3
