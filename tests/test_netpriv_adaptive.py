"""Arms-race attackers, new shapers, and the traffic-side bug regressions."""

import numpy as np
import pytest

from repro.netpriv import (
    AdaptiveOccupancyInferrer,
    ConstantRatePadding,
    Device,
    DeviceType,
    Direction,
    Flow,
    FlowLog,
    FlowMerging,
    HeartbeatJitter,
    IdentityShaper,
    LanConfig,
    PROFILES,
    ShapingConfig,
    TrafficShaper,
    device_window_features,
    evaluate_arms_race,
    flow_log_digest,
    make_shaper,
    occupancy_window_features,
    simulate_lan,
)
from repro.netpriv.threats import occupancy_from_traffic
from repro.timeseries import BinaryTrace, SECONDS_PER_DAY, SECONDS_PER_HOUR

SMALL_LAN = LanConfig(
    device_counts={
        DeviceType.CAMERA: 1,
        DeviceType.THERMOSTAT: 1,
        DeviceType.SMART_PLUG: 2,
        DeviceType.HUB: 1,
        DeviceType.LIGHT_BULB: 3,
        DeviceType.VOICE_ASSISTANT: 1,
    }
)


def _camera(device_id: str = "cam-1") -> Device:
    return Device(device_id, DeviceType.CAMERA, PROFILES[DeviceType.CAMERA])


def _event(device: Device, t: float, endpoint: str | None = None) -> Flow:
    return Flow(
        time_s=t,
        device_id=device.device_id,
        endpoint=endpoint or device.profile.endpoints[0],
        port=device.profile.port,
        direction=Direction.OUTBOUND,
        bytes_up=900_000,
        bytes_down=40_000,
        packets=100,
        duration_s=10.0,
    )


# ---------------------------------------------------------------------------
# Satellite regression: silent devices must not vanish from the feature set
# ---------------------------------------------------------------------------
class TestSilentDeviceWindows:
    def test_silent_device_gets_all_zero_rows(self):
        talker = _camera("talker")
        silent = _camera("silent")
        log = FlowLog([_event(talker, 100.0), _event(talker, 4000.0)])
        features = device_window_features(
            log, duration_s=7200.0, window_s=3600.0, devices=[talker, silent]
        )
        assert set(features) == {"talker", "silent"}
        assert features["silent"].shape == features["talker"].shape
        assert np.all(features["silent"] == 0.0)

    def test_device_ids_accepted_as_strings(self):
        talker = _camera("talker")
        log = FlowLog([_event(talker, 100.0)])
        features = device_window_features(
            log, duration_s=3600.0, window_s=3600.0, devices=["talker", "ghost"]
        )
        assert np.all(features["ghost"] == 0.0)

    def test_unlisted_devices_still_kept(self):
        talker = _camera("talker")
        log = FlowLog([_event(talker, 100.0)])
        features = device_window_features(
            log, duration_s=3600.0, window_s=3600.0, devices=["other"]
        )
        assert set(features) == {"talker", "other"}

    def test_without_devices_behaviour_unchanged(self):
        talker = _camera("talker")
        log = FlowLog([_event(talker, 100.0)])
        features = device_window_features(log, duration_s=3600.0, window_s=3600.0)
        assert set(features) == {"talker"}


# ---------------------------------------------------------------------------
# Satellite regression: cover deficits must see *shaped* event timestamps
# ---------------------------------------------------------------------------
class TestShapedTimestampBuckets:
    def test_delayed_events_count_against_landing_hour(self):
        # all real events sit in the last two minutes of hour 10; a 600 s
        # delay budget pushes most of them across the boundary into hour
        # 11.  Bucketing by pre-delay timestamps would see hour 11 as
        # empty and pad it with a full target's worth of cover on top of
        # the arrivals — the hour-edge rate bump this regression pins.
        cam = _camera()
        target = cam.profile.event_rate_per_occupied_hour  # 6.0
        log = FlowLog(
            [_event(cam, 10 * SECONDS_PER_HOUR + 3480.0 + 10.0 * k) for k in range(12)]
        )
        shaper = TrafficShaper(ShapingConfig(rate_margin=1.0, max_delay_s=600.0))
        shaped, report = shaper.shape(
            log, [cam], duration_s=SECONDS_PER_DAY, rng=np.random.default_rng(0)
        )
        assert report.delayed_flows == 12

        def events_in_hour(h: int) -> int:
            lo, hi = h * SECONDS_PER_HOUR, (h + 1) * SECONDS_PER_HOUR
            return sum(
                1
                for f in shaped
                if lo <= f.time_s < hi and f.bytes_up + f.bytes_down > 5_000
            )

        landed = events_in_hour(11)
        # fixed code tops hour 11 up to at most ~target given its real
        # arrivals; the old pre-delay bucketing adds a full Poisson(6) of
        # cover on top of ~9 delayed arrivals (~15 events, seeded)
        assert landed <= target + 6
        # the deficit pass must still fill genuinely empty hours
        assert events_in_hour(15) >= 1

    def test_hourly_rate_uniform_under_full_shaping(self):
        # with margin 1.0 every in-window hour should carry roughly the
        # target rate — no hour systematically above it by a whole target
        cam = _camera()
        target = cam.profile.event_rate_per_occupied_hour
        rng = np.random.default_rng(7)
        events = [
            _event(cam, float(h) * SECONDS_PER_HOUR + float(rng.uniform(3500, 3600)))
            for h in range(7, 23)
            for _ in range(3)
        ]
        shaper = TrafficShaper(ShapingConfig(rate_margin=1.0, max_delay_s=240.0))
        shaped, _ = shaper.shape(
            FlowLog(events), [cam], SECONDS_PER_DAY, rng=np.random.default_rng(1)
        )
        counts = np.zeros(24)
        for f in shaped:
            if f.bytes_up + f.bytes_down > 5_000:
                counts[int(f.time_s // SECONDS_PER_HOUR)] += 1
        # hours 8..22 receive at most their own arrivals (3 real + <=3
        # spill) topped to target; a double-pad bug would push ~2x target
        assert counts[8:23].max() <= 2.0 * target - 1


# ---------------------------------------------------------------------------
# Satellite regression: dataclass defaults must not share instances
# ---------------------------------------------------------------------------
class TestDefaultFactories:
    def test_lan_config_occupancy_not_shared(self):
        a, b = LanConfig(), LanConfig()
        assert a.occupancy is not b.occupancy

    def test_home_config_defaults_not_shared(self):
        from repro.home.household import HomeConfig

        a, b = HomeConfig(name="a", appliances=()), HomeConfig(name="b", appliances=())
        assert a.occupancy is not b.occupancy
        assert a.meter is not b.meter
        assert a.draws is not b.draws

    def test_solar_site_array_not_shared(self):
        from repro.solar.generation import LatLon, SolarSite

        loc = LatLon(40.0, -105.0)
        a, b = SolarSite("a", loc), SolarSite("b", loc)
        assert a.array is not b.array


# ---------------------------------------------------------------------------
# Satellite regression: always-occupied homes and the traffic baseline
# ---------------------------------------------------------------------------
class TestProfileDerivedBaseline:
    def _always_occupied_lan(self, seed: int = 3):
        rng = np.random.default_rng(seed)
        duration_s = 2 * SECONDS_PER_DAY
        occupancy = BinaryTrace(
            np.ones(int(duration_s // 60.0), dtype=int), 60.0, 0.0
        )
        devices = [
            Device.make(f"{t.value}-{k}", t, rng)
            for t, n in SMALL_LAN.device_counts.items()
            for k in range(n)
        ]
        log = FlowLog()
        for device in devices:
            log.extend(device.simulate_flows(duration_s, occupancy, rng))
        log.sort()
        return log, devices, duration_s

    def test_always_occupied_home_detected_as_occupied(self):
        log, devices, duration_s = self._always_occupied_lan()
        trace = occupancy_from_traffic(log, devices, duration_s)
        assert trace.fraction_true() > 0.9

    def test_quantile_mode_reproduces_historical_underestimate(self):
        # the old 25th-percentile-of-observed baseline treats the home's
        # quietest quartile as "empty" even when nobody ever left
        log, devices, duration_s = self._always_occupied_lan()
        new = occupancy_from_traffic(log, devices, duration_s)
        old = occupancy_from_traffic(log, devices, duration_s, baseline_quantile=0.25)
        assert new.fraction_true() > old.fraction_true()

    def test_baseline_params_validated(self):
        log, devices, duration_s = self._always_occupied_lan()
        with pytest.raises(ValueError):
            occupancy_from_traffic(log, devices, duration_s, baseline_quantile=1.5)
        with pytest.raises(ValueError):
            occupancy_from_traffic(log, devices, duration_s, baseline_margin=0.0)

    def test_normal_home_attack_still_strong(self):
        sim = simulate_lan(SMALL_LAN, n_days=2, rng=11)
        trace = occupancy_from_traffic(sim.log, sim.devices, sim.duration_s)
        from repro.attacks import score_occupancy_attack

        assert score_occupancy_attack(trace, sim.occupancy)["mcc"] > 0.4


# ---------------------------------------------------------------------------
# New shapers
# ---------------------------------------------------------------------------
class TestShapers:
    def test_make_shaper_zero_is_identity(self):
        for name in ("cover", "constant-rate", "merge", "jitter"):
            assert isinstance(make_shaper(name, 0.0), IdentityShaper)

    def test_make_shaper_validates_setting(self):
        with pytest.raises(ValueError):
            make_shaper("cover", 1.5)
        from repro.core.registry import RegistryError

        with pytest.raises(RegistryError):
            make_shaper("nonsense", 0.5)

    def test_identity_shaper_passes_log_through(self):
        sim = simulate_lan(SMALL_LAN, n_days=1, rng=0)
        shaped, report = IdentityShaper().shape(sim.log, sim.devices, sim.duration_s)
        assert flow_log_digest(shaped) == flow_log_digest(sim.log)
        assert report.cover_flows == 0 and report.delayed_flows == 0

    def test_constant_rate_pads_overnight_too(self):
        cam = _camera()
        shaped, report = ConstantRatePadding(margin=1.0).shape(
            FlowLog([]), [cam], SECONDS_PER_DAY, rng=np.random.default_rng(0)
        )
        assert report.cover_flows > 0
        night = [f for f in shaped if f.time_s < 6 * SECONDS_PER_HOUR]
        assert night, "constant-rate padding must not gate on daytime hours"

    def test_constant_rate_covers_all_endpoints(self):
        cam = _camera()
        shaped, _ = ConstantRatePadding(margin=1.0).shape(
            FlowLog([]), [cam], 3 * SECONDS_PER_DAY, rng=np.random.default_rng(0)
        )
        assert {f.endpoint for f in shaped} == set(cam.profile.endpoints)

    def test_merge_relabels_and_batches(self):
        cam = _camera()
        log = FlowLog([_event(cam, 100.0)])
        shaped, report = FlowMerging(fraction=1.0, quantum_s=300.0).shape(
            log, [cam], SECONDS_PER_DAY
        )
        assert report.merged_flows == 1
        flow = shaped.flows[0]
        assert flow.device_id == "gateway"
        assert flow.endpoint == "vpn.gateway.example"
        assert flow.time_s == 300.0  # held to the next quantum boundary
        assert flow.bytes_up == 900_000  # volume preserved

    def test_merge_skips_lateral_flows(self):
        cam = _camera()
        lateral = Flow(
            time_s=50.0, device_id="cam-1", endpoint="hub-1", port=8080,
            direction=Direction.LATERAL, bytes_up=500, bytes_down=100,
            packets=5, duration_s=1.0,
        )
        shaped, report = FlowMerging(fraction=1.0).shape(
            FlowLog([lateral]), [cam], SECONDS_PER_DAY
        )
        assert report.merged_flows == 0
        assert shaped.flows[0].device_id == "cam-1"

    def test_merge_fraction_selects_sorted_prefix(self):
        devices = [_camera("a"), _camera("b"), _camera("c"), _camera("d")]
        assert FlowMerging(fraction=0.5).merged_ids(devices) == {"a", "b"}

    def test_jitter_touches_only_heartbeats(self):
        cam = _camera()
        hb = Flow(
            time_s=40.0, device_id="cam-1",
            endpoint=cam.profile.endpoints[0], port=443,
            direction=Direction.OUTBOUND,
            bytes_up=cam.profile.heartbeat_bytes_up,
            bytes_down=cam.profile.heartbeat_bytes_down,
            packets=4, duration_s=0.5,
        )
        event = _event(cam, 200.0)
        shaped, report = HeartbeatJitter(scale=0.5).shape(
            FlowLog([hb, event]), [cam], SECONDS_PER_DAY,
            rng=np.random.default_rng(0),
        )
        assert report.delayed_flows == 1
        shaped_event = [f for f in shaped if f.bytes_up > 5_000]
        assert shaped_event[0].time_s == 200.0  # events untouched

    def test_shaper_params_validated(self):
        with pytest.raises(ValueError):
            ConstantRatePadding(margin=0.0)
        with pytest.raises(ValueError):
            FlowMerging(fraction=0.0)
        with pytest.raises(ValueError):
            FlowMerging(fraction=0.5, quantum_s=-1.0)
        with pytest.raises(ValueError):
            HeartbeatJitter(scale=1.5)


# ---------------------------------------------------------------------------
# Adaptive attacker
# ---------------------------------------------------------------------------
class TestAdaptiveOccupancy:
    def test_feature_matrix_shape(self):
        sim = simulate_lan(SMALL_LAN, n_days=1, rng=0)
        X = occupancy_window_features(sim.log, sim.devices, sim.duration_s)
        assert X.shape == (48, 6)
        assert np.all(X >= 0)

    def test_secondary_endpoint_feature_sees_cover_residual(self):
        # cover flows only visit endpoints[0]; real camera events spread
        # over both endpoints — the residual column must separate them
        cam = _camera()
        real = FlowLog([_event(cam, 100.0, endpoint=cam.profile.endpoints[1])])
        cover = FlowLog([_event(cam, 100.0, endpoint=cam.profile.endpoints[0])])
        X_real = occupancy_window_features(real, [cam], 1800.0)
        X_cover = occupancy_window_features(cover, [cam], 1800.0)
        assert X_real[0, 5] == 1.0
        assert X_cover[0, 5] == 0.0

    def test_degenerate_labels_fall_back_to_baseline(self):
        sim = simulate_lan(SMALL_LAN, n_days=1, rng=2)
        always = BinaryTrace(
            np.ones(len(sim.occupancy), dtype=int), sim.occupancy.period_s, 0.0
        )
        inferrer = AdaptiveOccupancyInferrer().fit(
            sim.log, sim.devices, always, sim.duration_s
        )
        trace = inferrer.infer(sim.log, sim.devices, sim.duration_s)
        assert len(trace) == 48

    def test_unfitted_inferrer_raises(self):
        sim = simulate_lan(SMALL_LAN, n_days=1, rng=0)
        with pytest.raises(RuntimeError):
            AdaptiveOccupancyInferrer().infer(sim.log, sim.devices, sim.duration_s)


class TestArmsRace:
    def test_adaptive_beats_naive_under_cover(self):
        outcome = evaluate_arms_race(
            "cover", 0.5, days=2, seed=0, lan_config=SMALL_LAN
        )
        assert outcome.adaptive.occupancy_mcc > outcome.naive.occupancy_mcc + 0.2
        assert outcome.adaptive.occupancy_mcc > 0.3
        assert outcome.cover_bytes > 0

    def test_undefended_lan_falls_to_both_attackers(self):
        outcome = evaluate_arms_race(
            "cover", 0.0, days=2, seed=0, lan_config=SMALL_LAN
        )
        assert outcome.naive.occupancy_mcc > 0.4
        assert outcome.adaptive.occupancy_mcc > 0.4
        assert outcome.cover_flows == 0

    def test_outcome_dict_roundtrips_scalars(self):
        outcome = evaluate_arms_race(
            "jitter", 0.5, days=1, seed=1, lan_config=SMALL_LAN
        )
        doc = outcome.as_dict()
        assert doc["defense"] == "jitter"
        assert doc["adaptive_advantage"] == pytest.approx(
            outcome.adaptive.occupancy_mcc - outcome.naive.occupancy_mcc
        )
        assert doc["shaped_digest"] == outcome.shaped_digest


# ---------------------------------------------------------------------------
# Seed determinism: shaped logs and attacker scores pin to their seed
# ---------------------------------------------------------------------------
class TestSeedDeterminism:
    @pytest.mark.parametrize("name", ["cover", "constant-rate", "merge", "jitter"])
    def test_shaper_digest_reproducible(self, name):
        sim = simulate_lan(SMALL_LAN, n_days=1, rng=5)
        shaper = make_shaper(name, 0.7)
        digests = []
        for _ in range(2):
            shaped, _ = shaper.shape(
                sim.log, sim.devices, sim.duration_s, rng=np.random.default_rng(9)
            )
            digests.append(flow_log_digest(shaped))
        assert digests[0] == digests[1]
        shaped, _ = shaper.shape(
            sim.log, sim.devices, sim.duration_s, rng=np.random.default_rng(10)
        )
        if name != "merge":  # merging is deterministic by design (no rng)
            assert flow_log_digest(shaped) != digests[0]

    def test_arms_race_reproducible_end_to_end(self):
        a = evaluate_arms_race("cover", 0.5, days=1, seed=42, lan_config=SMALL_LAN)
        b = evaluate_arms_race("cover", 0.5, days=1, seed=42, lan_config=SMALL_LAN)
        assert a.shaped_digest == b.shaped_digest
        assert a.naive == b.naive
        assert a.adaptive == b.adaptive

    def test_arms_race_seed_sensitivity(self):
        a = evaluate_arms_race("cover", 0.5, days=1, seed=42, lan_config=SMALL_LAN)
        c = evaluate_arms_race("cover", 0.5, days=1, seed=43, lan_config=SMALL_LAN)
        assert a.shaped_digest != c.shaped_digest
