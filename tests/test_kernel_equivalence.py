"""Equivalence and performance pins for the vectorized hot-path kernels.

Every vectorized kernel in the repo ships next to its pre-vectorization
loop implementation (``repro.ml.kernels``'s ``*_loop`` functions and the
``_reference`` modules under ``repro.home``, ``repro.timeseries`` and
``repro.attacks.nilm``).  These tests pin each production kernel to its
reference:

* bitwise-identical where the arithmetic permits (Viterbi paths,
  joint-chain parameters, Gaussian log-densities, simulated appliance
  traces, window features, detected edges, PowerPlay candidate lists);
* documented-tolerance-identical for the scan-based E-step (posteriors to
  1e-10, EM-fitted parameters to 1e-9), whose matrix-product prefix scan
  necessarily reassociates float additions;
* RNG-stream-identical for the appliance simulators: the vectorized
  generators must consume the seeded generator exactly as the loops did,
  or every seeded trace digest and cached fleet result would silently
  change.

The perf test at the bottom asserts the headline speedup (vectorized HMM
fit+decode at least 3x the loop baseline) with best-of-N timing;
``benchmarks/bench_kernels.py`` records the full speedup table.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.attacks.nilm._reference import pair_candidates_loop
from repro.attacks.nilm.powerplay import LoadKind, _pair_candidates, fig2_signatures
from repro.home._reference import (
    simulate_continuous_loop,
    simulate_cyclic_loop,
    simulate_lighting_loop,
)
from repro.home.appliances import (
    ContinuousAppliance,
    CyclicAppliance,
    LightingAppliance,
)
from repro.ml import kernels
from repro.ml._reference import decode_loop, fit_loop, posterior_loop
from repro.ml.hmm import GaussianHMM
from repro.ml.fhmm import FactorialHMM, fit_appliance_chain
from repro.timeseries import BinaryTrace, Edge, PowerTrace
from repro.timeseries._reference import detect_edges_loop, window_features_loop
from repro.timeseries.events import detect_edges
from repro.timeseries.stats import window_features


def _random_hmm_inputs(seed: int, n_max: int = 800):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, n_max))
    k = int(rng.choice([1, 2, 3, 5]))
    transmat = rng.dirichlet(np.ones(k) * 2.0, size=k)
    startprob = rng.dirichlet(np.ones(k))
    log_b = rng.normal(-10.0, 8.0, (n, k))
    b = np.exp(log_b - log_b.max(axis=1, keepdims=True))
    return startprob, transmat, b


class TestHMMKernels:
    def test_log_gaussian_bitwise(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            n = int(rng.integers(1, 500))
            k = int(rng.integers(1, 6))
            d = int(rng.integers(1, 4))
            X = rng.normal(100.0, 50.0, (n, d))
            means = rng.normal(100.0, 80.0, (k, d))
            variances = rng.uniform(1.0, 500.0, (k, d))
            a = kernels.log_gaussian(X, means, variances)
            b = kernels.log_gaussian_loop(X, means, variances)
            assert np.array_equal(a, b)

    def test_estep_scan_matches_loop(self):
        for seed in range(25):
            startprob, transmat, b = _random_hmm_inputs(seed)
            g1, x1, l1 = kernels.estep_loop(startprob, transmat, b)
            g2, x2, l2 = kernels._estep_scan(startprob, transmat, b, want_xi=True)
            assert np.all(np.isfinite(g2))
            assert np.max(np.abs(g1 - g2)) < 1e-10
            assert abs(l1 - l2) <= 1e-9 * max(1.0, abs(l1))
            if x1 is None:
                assert x2 is None or not np.any(x2)
            else:
                scale = max(1.0, float(np.abs(x1).max()))
                assert np.max(np.abs(x1 - x2)) / scale < 1e-9

    def test_estep_scan_survives_extreme_dynamic_range(self):
        # Regression for the lazy-renormalization overflow: matrices whose
        # maxima straddle many hundreds of orders of magnitude used to
        # overflow the doubling passes before the upper rescale trigger
        # was added.
        rng = np.random.default_rng(3)
        n, k = 2554, 4
        transmat = rng.dirichlet(np.ones(k) * 5.0, size=k)
        startprob = rng.dirichlet(np.ones(k))
        b = rng.uniform(1e-280, 1.0, (n, k))
        b[rng.uniform(size=n) < 0.3] *= 1e-200
        g1, x1, l1 = kernels.estep_loop(startprob, transmat, b)
        g2, x2, l2 = kernels._estep_scan(startprob, transmat, b, want_xi=True)
        assert np.all(np.isfinite(g2)) and np.all(np.isfinite(x2))
        assert np.max(np.abs(g1 - g2)) < 1e-10
        assert abs(l1 - l2) <= 1e-9 * abs(l1)

    def test_estep_dispatch_is_shape_based(self):
        startprob, transmat, b = _random_hmm_inputs(11)
        short = b[: kernels.SCAN_MIN_SAMPLES - 1]
        g1, x1, l1 = kernels.estep(startprob, transmat, short)
        g2, x2, l2 = kernels.estep_loop(startprob, transmat, short)
        assert np.array_equal(g1, g2) and l1 == l2

    def test_viterbi_bitwise_small_and_large_k(self):
        rng = np.random.default_rng(1)
        for k in (1, 2, 3, kernels.VITERBI_PRUNE_MIN_STATES, 40):
            for n in (1, 2, 50, 400):
                log_pi = np.log(rng.dirichlet(np.ones(k)) + 1e-300)
                transmat = np.full((k, k), 0.05 / max(k - 1, 1))
                np.fill_diagonal(transmat, 0.95 if k > 1 else 1.0)
                transmat /= transmat.sum(axis=1, keepdims=True)
                log_a = np.log(transmat + 1e-300)
                log_b = rng.normal(-5.0, 4.0, (n, k))
                p1 = kernels.viterbi(log_pi, log_a, log_b)
                p2 = kernels.viterbi_loop(log_pi, log_a, log_b)
                assert np.array_equal(p1, p2), (k, n)

    def test_viterbi_bitwise_on_ties(self):
        # Degenerate emissions (a NILL-defended constant trace) produce
        # exact score ties; tie-breaking must match the reference argmax.
        k, n = 20, 120
        log_pi = np.zeros(k)
        log_a = np.zeros((k, k))
        log_b = np.zeros((n, k))
        assert np.array_equal(
            kernels.viterbi(log_pi, log_a, log_b),
            kernels.viterbi_loop(log_pi, log_a, log_b),
        )

    def test_joint_chain_params_bitwise(self):
        rng = np.random.default_rng(5)
        for n_chains in (1, 2, 3, 5):
            startprobs, transmats, means, variances = [], [], [], []
            for _ in range(n_chains):
                k = int(rng.integers(2, 4))
                startprobs.append(rng.dirichlet(np.ones(k)))
                transmats.append(rng.dirichlet(np.ones(k), size=k))
                means.append(rng.uniform(0.0, 500.0, k))
                variances.append(rng.uniform(1.0, 100.0, k))
            fast = kernels.joint_chain_params(
                startprobs, transmats, means, variances, 100.0
            )
            slow = kernels.joint_chain_params_loop(
                startprobs, transmats, means, variances, 100.0
            )
            for a, b in zip(fast, slow):
                assert np.array_equal(a, b)


class TestModelEquivalence:
    """Whole-model pins: production GaussianHMM/FactorialHMM vs loop baseline."""

    @staticmethod
    def _training_signal(seed: int, n: int = 600, k: int = 2):
        rng = np.random.default_rng(seed)
        means = np.linspace(0.0, 400.0, k)
        states = np.zeros(n, dtype=int)
        for i in range(1, n):
            states[i] = states[i - 1] if rng.uniform() < 0.9 else rng.integers(k)
        return (means[states] + rng.normal(0.0, 30.0, n)).reshape(-1, 1)

    def test_fit_params_within_1e9_of_loop_baseline(self):
        for seed in range(3):
            X = self._training_signal(seed)
            vec = GaussianHMM(2, n_iter=15, rng=seed).fit(X)
            ref = fit_loop(GaussianHMM(2, n_iter=15, rng=seed), X)
            for a, b in (
                (vec.startprob_, ref.startprob_),
                (vec.transmat_, ref.transmat_),
                (vec.means_, ref.means_),
                (vec.variances_, ref.variances_),
            ):
                assert np.max(np.abs(a - b)) < 1e-9

    def test_decode_paths_identical(self):
        X = self._training_signal(7)
        model = GaussianHMM(2, n_iter=15, rng=7).fit(X)
        assert np.array_equal(model.decode(X), decode_loop(model, X))

    def test_posterior_matches_loop(self):
        X = self._training_signal(9)
        model = GaussianHMM(2, n_iter=15, rng=9).fit(X)
        assert np.max(np.abs(model.posterior(X) - posterior_loop(model, X))) < 1e-10

    def test_fhmm_decode_matches_loop_viterbi(self):
        rng = np.random.default_rng(2)
        chains = []
        for power in (150.0, 400.0, 1000.0):
            on = (rng.uniform(size=500) < 0.4).astype(float) * power
            signal = on + rng.normal(0.0, 15.0, 500)
            chains.append(fit_appliance_chain(signal, n_states=2, rng=1))
        fhmm = FactorialHMM(chains, noise_var=200.0)
        aggregate = np.abs(rng.normal(600.0, 300.0, 300))
        log_b = fhmm._emission_logprob(aggregate)
        log_pi = np.log(fhmm._startprob + 1e-300)
        log_a = np.log(fhmm._transmat + 1e-300)
        joint_ref = kernels.viterbi_loop(log_pi, log_a, log_b)
        assert np.array_equal(fhmm.decode(aggregate), fhmm._joint_states[joint_ref])


class TestApplianceStreamEquivalence:
    """Vectorized simulators: bitwise traces AND identical RNG consumption."""

    CASES = [
        (
            CyclicAppliance("fridge", on_power_w=150.0, on_minutes=15.0,
                            off_minutes=30.0, spike_power_w=600.0),
            simulate_cyclic_loop,
        ),
        (
            CyclicAppliance("freezer", on_power_w=120.0, on_minutes=12.0,
                            off_minutes=40.0, jitter=0.4),
            simulate_cyclic_loop,
        ),
        (
            ContinuousAppliance("hrv", base_power_w=80.0, boost_power_w=160.0,
                                boosts_per_day=3.0),
            simulate_continuous_loop,
        ),
        (
            LightingAppliance("lights", max_power_w=300.0),
            simulate_lighting_loop,
        ),
    ]

    @pytest.mark.parametrize("period_s", [30.0, 60.0, 300.0, 1800.0])
    def test_bitwise_and_stream_identical(self, period_s):
        n = int(2 * 86400 / period_s)
        for app, reference in self.CASES:
            for seed in range(4):
                rng = np.random.default_rng(seed)
                occ_vals = (np.random.default_rng(seed + 1).uniform(size=n) < 0.6)
                occupancy = BinaryTrace(occ_vals.astype(int), period_s)
                rng_ref = np.random.default_rng(seed)
                got = app.simulate(occupancy, rng)
                want = reference(app, occupancy, rng_ref)
                assert np.array_equal(got.values, want.values), (app.name, seed)
                # stream position must match exactly: draw once from both
                assert rng.uniform() == rng_ref.uniform(), (app.name, seed)


class TestTimeseriesEquivalence:
    @staticmethod
    def _trace(seed: int, n: int = 4000, period_s: float = 60.0) -> PowerTrace:
        rng = np.random.default_rng(seed)
        vals = np.abs(rng.normal(200.0, 150.0, n))
        vals += rng.choice([0.0, 400.0], n, p=[0.85, 0.15])
        return PowerTrace(vals, period_s, start_s=float(rng.integers(0, 3600)))

    def test_window_features_bitwise(self):
        for seed in range(5):
            trace = self._trace(seed)
            for window_s in (60.0, 300.0, 900.0, 3600.0):
                assert np.array_equal(
                    window_features(trace, window_s),
                    window_features_loop(trace, window_s),
                )

    def test_detect_edges_bitwise(self):
        for seed in range(5):
            trace = self._trace(seed, n=2000)
            for settle in (1, 2, 3, 7, 5000):
                assert detect_edges(trace, 30.0, settle) == detect_edges_loop(
                    trace, 30.0, settle
                )

    def test_powerplay_candidates_identical(self):
        rng = np.random.default_rng(4)
        period = 30.0
        idxs = np.sort(rng.choice(np.arange(1, 8000), size=300, replace=False))
        edges = []
        for idx in idxs:
            mag = float(rng.choice([120.0, 150.0, 1050.0]) * rng.uniform(0.8, 1.2))
            delta = mag if rng.uniform() < 0.5 else -mag
            edges.append(
                Edge(index=int(idx), time_s=idx * period, delta_w=delta,
                     pre_w=200.0, post_w=200.0 + delta)
            )
        used = rng.uniform(size=len(edges)) < 0.15
        for signature in fig2_signatures():
            target = signature.on_power_w + (
                signature.motor_power_w
                if signature.kind is LoadKind.COMPOUND
                else 0.0
            )
            assert _pair_candidates(edges, used.copy(), signature, target) == (
                pair_candidates_loop(edges, used.copy(), signature, target)
            )


def _best_of(f, reps: int = 5) -> float:
    best = np.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        f()
        best = min(best, time.perf_counter() - t0)
    return best


def test_hmm_fit_decode_speedup_at_least_3x():
    """The headline perf pin: vectorized fit+decode >= 3x the loop baseline.

    Uses best-of-N wall times (machine noise between runs is real) on the
    NIOM-detector shape (2 states, ~1.4 days of minutes); the measured
    factor is ~4.5-5x, so 3x leaves headroom for a loaded CI box.
    """
    rng = np.random.default_rng(7)
    n, k = 2000, 2
    means = np.array([0.0, 500.0])
    states = np.zeros(n, dtype=int)
    for i in range(1, n):
        states[i] = states[i - 1] if rng.uniform() < 0.9 else rng.integers(k)
    X = (means[states] + rng.normal(0.0, 40.0, n)).reshape(-1, 1)

    def vectorized():
        model = GaussianHMM(k, n_iter=20, tol=0.0, rng=3)
        model.fit(X)
        return model.decode(X)

    def baseline():
        model = GaussianHMM(k, n_iter=20, tol=0.0, rng=3)
        fit_loop(model, X)
        return decode_loop(model, X)

    assert np.array_equal(vectorized(), baseline())
    t_vec = _best_of(vectorized)
    t_loop = _best_of(baseline)
    speedup = t_loop / t_vec
    print(f"hmm fit+decode: loop {t_loop*1e3:.1f} ms, vec {t_vec*1e3:.1f} ms, "
          f"{speedup:.2f}x")
    assert speedup >= 3.0, f"fit+decode speedup {speedup:.2f}x < 3x"
