"""Golden-digest regression pins for the fleet pipeline.

``tests/test_kernel_equivalence.py`` proves each vectorized kernel
bitwise-equal to its loop reference; these tests pin the *end-to-end*
fleet output the same way.  :func:`repro.fleet.result_digest` hashes
every scored number a run produced (per-home trace digests, all detector
MCCs/accuracies, utility scores, energy costs) while excluding runtime
facts, so the digest is a stable fingerprint of the whole
simulate→defend→attack pipeline.

If a future kernel or refactor PR changes one of these values, it
changed observable results — either fix the regression or, if the change
is an intentional semantic fix, re-pin the digests *in that PR* with the
rationale in its message.  The digests were produced by the pure-Python/
NumPy pipeline (no platform-dependent fast math), so they are expected
to be stable across platforms and supported interpreter versions.
"""

from dataclasses import replace

from repro.fleet import FleetSpec, result_digest, run_fleet

#: the pinned presets: one uses the dialed-defense (``name@setting``)
#: path so the knob mapping layer is inside the pinned surface
GOLDEN = {
    "home-a": (
        FleetSpec(
            n_homes=2, days=1, seed=7,
            mix=("home-a",), defenses=("dp-laplace", "smoothing"),
        ),
        "571484cd72af1bafeba36b5cc9f64a151e83e43cee208d9b6116cbba09c0ca3a",
    ),
    "fig2": (
        FleetSpec(
            n_homes=2, days=1, seed=11,
            mix=("fig2",), defenses=("nill", "chpr@0.5"),
        ),
        "df720c0cf4b132b7f39927f6111fe2012dad96a0d241764f8953998206b45265",
    ),
}


class TestGoldenDigests:
    def test_home_a_preset_digest(self):
        spec, expected = GOLDEN["home-a"]
        assert result_digest(run_fleet(spec)) == expected

    def test_fig2_preset_digest(self):
        spec, expected = GOLDEN["fig2"]
        assert result_digest(run_fleet(spec)) == expected

    def test_digest_ignores_runtime_facts(self, tmp_path):
        """Cache-replayed and fresh runs of one spec share a digest."""
        spec, expected = GOLDEN["home-a"]
        fresh = run_fleet(spec, cache_dir=tmp_path)
        replayed = run_fleet(spec, cache_dir=tmp_path)
        assert replayed.executed == 0
        assert result_digest(fresh) == result_digest(replayed) == expected

    def test_digest_ignores_telemetry(self):
        spec, expected = GOLDEN["fig2"]
        observed = run_fleet(spec, telemetry=True)
        assert result_digest(observed) == expected

    def test_digest_is_sensitive_to_results(self):
        """Sanity: the digest actually covers the scored numbers."""
        spec, expected = GOLDEN["home-a"]
        result = run_fleet(spec)
        tweaked = replace(
            result,
            homes=[replace(result.homes[0], energy_kwh=0.0)]
            + result.homes[1:],
        )
        assert result_digest(tweaked) != expected

    def test_specs_disagree(self):
        """The two pinned presets are genuinely different pipelines."""
        assert GOLDEN["home-a"][1] != GOLDEN["fig2"][1]
