"""Golden-digest regression pins for the fleet pipeline.

``tests/test_kernel_equivalence.py`` proves each vectorized kernel
bitwise-equal to its loop reference; these tests pin the *end-to-end*
fleet output the same way.  :func:`repro.fleet.result_digest` hashes
every scored number a run produced (per-home trace digests, all detector
MCCs/accuracies, utility scores, energy costs) while excluding runtime
facts, so the digest is a stable fingerprint of the whole
simulate→defend→attack pipeline.

If a future kernel or refactor PR changes one of these values, it
changed observable results — either fix the regression or, if the change
is an intentional semantic fix, re-pin the digests *in that PR* with the
rationale in its message.  The digests were produced by the pure-Python/
NumPy pipeline (no platform-dependent fast math), so they are expected
to be stable across platforms and supported interpreter versions.
"""

from dataclasses import replace

import pytest

from repro.fleet import BACKENDS, FleetSpec, result_digest, run_fleet

#: the pinned presets: one uses the dialed-defense (``name@setting``)
#: path so the knob mapping layer is inside the pinned surface
GOLDEN = {
    "home-a": (
        FleetSpec(
            n_homes=2, days=1, seed=7,
            mix=("home-a",), defenses=("dp-laplace", "smoothing"),
        ),
        "571484cd72af1bafeba36b5cc9f64a151e83e43cee208d9b6116cbba09c0ca3a",
    ),
    "fig2": (
        FleetSpec(
            n_homes=2, days=1, seed=11,
            mix=("fig2",), defenses=("nill", "chpr@0.5"),
        ),
        "df720c0cf4b132b7f39927f6111fe2012dad96a0d241764f8953998206b45265",
    ),
}


@pytest.fixture(scope="module")
def golden_run():
    """Memoized ``(preset, backend)`` fleet runs for the parity matrix."""
    cache = {}

    def get(preset, backend):
        if (preset, backend) not in cache:
            spec, _ = GOLDEN[preset]
            workers = 1 if backend == "serial" else 2
            cache[(preset, backend)] = run_fleet(
                spec, workers=workers, backend=backend
            )
        return cache[(preset, backend)]

    return get


class TestGoldenDigests:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("preset", sorted(GOLDEN))
    def test_preset_digest_on_every_backend(self, golden_run, preset, backend):
        """The backend-parity matrix: 4 backends x 2 pinned presets.

        One pinned constant per preset — not per (preset, backend) — is
        the whole point: every executor backend must reproduce the
        reference pipeline bit for bit.
        """
        _, expected = GOLDEN[preset]
        assert result_digest(golden_run(preset, backend)) == expected

    @pytest.mark.parametrize("preset", sorted(GOLDEN))
    def test_backends_agree_home_for_home(self, golden_run, preset):
        reference = golden_run(preset, "process")
        for backend in BACKENDS:
            result = golden_run(preset, backend)
            assert [h.trace_digest for h in result.homes] == [
                h.trace_digest for h in reference.homes
            ], backend

    def test_cache_entries_are_backend_invariant(self, tmp_path):
        """Byte-identical cache entries no matter which backend wrote them.

        ``keep_traces=True`` makes this a strong claim: even when the
        metered traces physically travel (inline pickle, shared-memory
        segment), the cache strips the channel before the bytes land.
        """
        spec, _ = GOLDEN["home-a"]
        entries = {}
        for backend in BACKENDS:
            cache_dir = tmp_path / backend
            run_fleet(
                spec, workers=2, backend=backend,
                cache_dir=cache_dir, keep_traces=True,
            )
            entries[backend] = {
                p.relative_to(cache_dir): p.read_bytes()
                for p in sorted(cache_dir.glob("*/*.pkl"))
            }
        assert len(entries["process"]) == spec.n_homes
        for backend in BACKENDS:
            assert entries[backend] == entries["process"], backend

    def test_digest_ignores_runtime_facts(self, tmp_path):
        """Cache-replayed and fresh runs of one spec share a digest."""
        spec, expected = GOLDEN["home-a"]
        fresh = run_fleet(spec, cache_dir=tmp_path)
        replayed = run_fleet(spec, cache_dir=tmp_path)
        assert replayed.executed == 0
        assert result_digest(fresh) == result_digest(replayed) == expected

    def test_digest_ignores_telemetry(self):
        spec, expected = GOLDEN["fig2"]
        observed = run_fleet(spec, telemetry=True)
        assert result_digest(observed) == expected

    def test_digest_is_sensitive_to_results(self):
        """Sanity: the digest actually covers the scored numbers."""
        spec, expected = GOLDEN["home-a"]
        result = run_fleet(spec)
        tweaked = replace(
            result,
            homes=[replace(result.homes[0], energy_kwh=0.0)]
            + result.homes[1:],
        )
        assert result_digest(tweaked) != expected

    def test_specs_disagree(self):
        """The two pinned presets are genuinely different pipelines."""
        assert GOLDEN["home-a"][1] != GOLDEN["fig2"][1]
