"""Chaos tests for the stream fault injector and the guarded pipeline.

The contract under test is **deterministic degradation**: a
:class:`~repro.stream.faults.StreamFaultPlan` is a pure function of
``(seed, chunk_index, kind)``, so the same plan poisons the same chunks
with the same bytes on every run — which is what lets these tests pin
byte-identical degraded outputs across two full passes, single-home and
fleet-wide.

Also covered: each fault kind exercises its matching guard recovery path
(dropout → gap, corrupt → value quarantine, duplicate/stall → rejection),
the ``REPRO_STREAM_FAULTS`` env round-trip, and the streamed fleet path
inheriting the batch supervisor's retry semantics.

The CI stream-chaos canary re-runs this file.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import FleetRunner, FleetSpec
from repro.fleet.faults import FaultPlan
from repro.stream import (
    STREAM_FAULTS_ENV,
    GuardPolicy,
    StreamFaultPlan,
    TraceReplaySource,
    active_stream_plan,
    inject_stream_faults,
    run_stream,
    tagged_chunks,
)
from repro.timeseries import PowerTrace

SPEC = FleetSpec(
    n_homes=2,
    days=1,
    seed=11,
    mix=("home-a",),
    defenses=("nill",),
    detectors=("threshold-15m",),
)

MIXED = StreamFaultPlan(
    seed=7,
    dropout_rate=0.1,
    corrupt_rate=0.1,
    duplicate_rate=0.05,
    stall_rate=0.05,
)


def _trace(n: int = 1200, seed: int = 3) -> PowerTrace:
    rng = np.random.default_rng(seed)
    values = np.abs(rng.normal(250.0, 50.0, n))
    for start in range(80, n - 200, 240):
        values[start : start + 120] += 900.0
    return PowerTrace(values, period_s=60.0)


def _feed(n_chunks: int = 20, chunk: int = 10):
    values = np.arange(n_chunks * chunk, dtype=float)
    return list(tagged_chunks(values, chunk))


def _deliveries(plan, **feed_kwargs):
    return [
        (at, chunk.tobytes())
        for at, chunk in inject_stream_faults(_feed(**feed_kwargs), plan)
    ]


class TestStreamFaultPlan:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dropout_rate": 1.5},
            {"corrupt_rate": -0.1},
            {"duplicate_rate": 2.0},
            {"stall_rate": -1.0},
            {"corrupt_fraction": 1.01},
            {"corrupt_kind": "gamma-rays"},
            {"stall_chunks": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            StreamFaultPlan(**kwargs)

    def test_targets_is_deterministic_and_seeded(self):
        plan = StreamFaultPlan(seed=3, dropout_rate=0.3)
        again = StreamFaultPlan(seed=3, dropout_rate=0.3)
        other = StreamFaultPlan(seed=4, dropout_rate=0.3)
        hits = [plan.targets(i, "dropout") for i in range(200)]
        assert hits == [again.targets(i, "dropout") for i in range(200)]
        assert hits != [other.targets(i, "dropout") for i in range(200)]
        assert 20 < sum(hits) < 90  # a rate, not a constant

    def test_targets_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            StreamFaultPlan().targets(0, "solar-flare")

    def test_zero_rate_never_fires(self):
        plan = StreamFaultPlan(seed=1)
        assert not any(plan.targets(i, k) for i in range(50)
                       for k in ("dropout", "corrupt", "duplicate", "stall"))

    def test_corrupt_positions_are_deterministic(self):
        plan = StreamFaultPlan(seed=5, corrupt_rate=1.0, corrupt_kind="nan")
        values = np.arange(40, dtype=float)
        a = plan.corrupt(3, values)
        b = plan.corrupt(3, values)
        assert np.array_equal(np.isnan(a), np.isnan(b))
        assert np.isnan(a).sum() == 10  # corrupt_fraction=0.25 of 40
        # a different chunk index poisons different positions
        c = plan.corrupt(4, values)
        assert not np.array_equal(np.isnan(a), np.isnan(c))

    @pytest.mark.parametrize("kind,check", [
        ("nan", lambda x: np.isnan(x)),
        ("inf", lambda x: np.isinf(x)),
        ("negative", lambda x: x < 0),
    ])
    def test_corrupt_kinds(self, kind, check):
        plan = StreamFaultPlan(seed=2, corrupt_rate=1.0, corrupt_kind=kind)
        out = plan.corrupt(0, np.full(20, 100.0))
        assert check(out).sum() == 5
        # the original is never mutated
        assert plan.corrupt.__name__ == "corrupt"

    def test_env_round_trip(self, monkeypatch):
        monkeypatch.setenv(STREAM_FAULTS_ENV, MIXED.to_json())
        assert active_stream_plan() == MIXED

    def test_unset_env_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(STREAM_FAULTS_ENV, raising=False)
        assert active_stream_plan() is None

    def test_malformed_env_raises_not_disarms(self, monkeypatch):
        monkeypatch.setenv(STREAM_FAULTS_ENV, "{not json")
        with pytest.raises(ValueError):
            active_stream_plan()


class TestInjector:
    def test_injection_is_repeatable(self):
        assert _deliveries(MIXED) == _deliveries(MIXED)

    def test_dropout_skips_targeted_chunks(self):
        plan = StreamFaultPlan(seed=9, dropout_rate=0.4)
        delivered_at = {at for at, _ in _deliveries(plan)}
        expected = {
            at
            for i, (at, _) in enumerate(_feed())
            if not plan.targets(i, "dropout")
        }
        assert delivered_at == expected
        assert len(delivered_at) < 20

    def test_duplicate_delivers_same_chunk_twice(self):
        plan = StreamFaultPlan(seed=9, duplicate_rate=1.0)
        out = _deliveries(plan, n_chunks=3)
        assert [at for at, _ in out] == [0, 0, 10, 10, 20, 20]
        assert out[0] == out[1]

    def test_stall_delivers_late_not_never(self):
        plan = StreamFaultPlan(seed=9, stall_rate=0.3, stall_chunks=2)
        out = [at for at, _ in _deliveries(plan)]
        # every chunk still arrives exactly once...
        assert sorted(out) == [at for at, _ in _feed()]
        # ...but not in clock order
        assert out != sorted(out)

    def test_all_chunks_stalled_flush_at_end(self):
        plan = StreamFaultPlan(seed=9, stall_rate=1.0, stall_chunks=2)
        out = [at for at, _ in _deliveries(plan, n_chunks=4)]
        assert out == [0, 10, 20, 30]  # the closing flush, in clock order


class TestChaosEndToEnd:
    def _degraded(self, policy=None):
        return run_stream(
            TraceReplaySource(_trace()),
            attacks=("edges", "niom", "hmm"),
            chunk_samples=30,
            guard_policy=policy,
            fault_plan=MIXED,
        )

    def test_degraded_run_is_deterministic(self):
        a, b = self._degraded(), self._degraded()
        assert a.results == b.results
        assert a.guard == b.guard
        assert a.total_samples == b.total_samples

    def test_degradation_actually_happened(self):
        report = self._degraded()
        stats = report.guard
        assert stats["quarantined_values"] > 0
        assert stats["gap_samples"] > 0
        assert stats["rejected_chunks"] > 0
        # degraded but alive: no attack failures, no dead feed
        assert report.ok

    @pytest.mark.parametrize("value_policy", ["drop", "hold-last", "zero-fill"])
    @pytest.mark.parametrize("gap_policy", ["hold", "fill", "resync"])
    def test_every_policy_survives_chaos(self, value_policy, gap_policy):
        policy = GuardPolicy(
            value_policy=value_policy, gap_policy=gap_policy
        )
        report = self._degraded(policy)
        assert not report.failures
        assert report.results["hmm"]["n_labeled"] > 0

    def test_results_stay_finite_under_chaos(self):
        report = self._degraded()
        for name, result in report.results.items():
            for key, value in result.items():
                if isinstance(value, float):
                    assert np.isfinite(value), (name, key, value)


class TestFleetStreamChaos:
    def _run(self, **runner_kwargs):
        runner = FleetRunner(
            workers=1, retry_backoff_s=0.01, **runner_kwargs
        )
        return runner.run_streaming(SPEC, attacks=("edges", "niom"))

    def test_fleet_chaos_is_deterministic(self):
        a = self._run(stream_faults=MIXED)
        b = self._run(stream_faults=MIXED)
        assert a.ok and b.ok
        for ha, hb in zip(a.homes, b.homes):
            assert ha.results == hb.results
            assert ha.guard == hb.guard
            assert ha.trace_digest == hb.trace_digest
        # and the feeds really were degraded
        assert any(h.guard["gap_samples"] > 0 for h in a.homes)

    def test_stream_telemetry_merges_fleet_wide(self):
        runner = FleetRunner(
            workers=1, retry_backoff_s=0.01,
            stream_faults=MIXED, telemetry=True,
        )
        result = runner.run_streaming(SPEC, attacks=("edges",))
        counters = result.telemetry.counters
        assert counters.get("stream.gap_samples", 0) > 0
        assert counters.get("stream.quarantined_values", 0) > 0

    def test_flaky_stream_job_succeeds_on_retry(self):
        clean = self._run()
        flaky = self._run(
            faults=FaultPlan(kind="error", indices=(1,), max_attempt=0),
            max_retries=2,
        )
        assert flaky.ok and not flaky.failures
        assert len(flaky.homes) == len(clean.homes)
        for fh, ch in zip(flaky.homes, clean.homes):
            assert fh.results == ch.results
            assert fh.trace_digest == ch.trace_digest

    def test_poison_stream_job_fails_alone(self):
        result = self._run(
            faults=FaultPlan(kind="error", indices=(1,), max_attempt=None),
            max_retries=1,
        )
        assert not result.ok
        assert [f.index for f in result.failures] == [1]
        assert result.failures[0].attempts == 2
        # the innocent home still completed, bit-identical to clean
        clean = self._run()
        (survivor,) = result.homes
        assert survivor.index == 0
        assert survivor.results == clean.homes[0].results

    def test_permanent_failures_counted_once(self):
        runner = FleetRunner(
            workers=1, retry_backoff_s=0.01, telemetry=True,
            faults=FaultPlan(kind="error", indices=(1,), max_attempt=None),
            max_retries=1,
        )
        result = runner.run_streaming(SPEC, attacks=("edges",))
        assert result.telemetry.counters["fleet.stream_failure"] == 1
