"""Sec. IV — traffic fingerprinting, traffic-side occupancy, and the gateway.

The paper's network section makes three testable claims: (i) devices can
be classified from "their typical traffic patterns"; (ii) a passive
observer on the (encrypted) LAN can profile the occupants; (iii) a smart
gateway following least privilege can isolate suspicious devices
automatically.  This benchmark exercises all three on a 24-device LAN.
"""

from bench_util import once, print_table
from repro.attacks import score_occupancy_attack
from repro.netpriv import (
    Compromise,
    CompromiseKind,
    DeviceFingerprinter,
    LanConfig,
    SmartGateway,
    device_window_features,
    inject_compromise,
    occupancy_from_traffic,
    simulate_lan,
)
from repro.timeseries import SECONDS_PER_DAY

TRAIN_S = 2 * SECONDS_PER_DAY
TOTAL_DAYS = 4


def test_network_fingerprint_and_gateway(benchmark):
    lan = simulate_lan(LanConfig(), TOTAL_DAYS, rng=2018)
    ids = [d.device_id for d in lan.devices]

    def experiment():
        # (i) device-type fingerprinting: train on days 1-2, test on 3-4
        train = device_window_features(lan.log.in_window(0, TRAIN_S), TRAIN_S)
        full = device_window_features(lan.log, lan.duration_s)
        test = {k: v[int(TRAIN_S // 3600) :] for k, v in full.items()}
        report = DeviceFingerprinter(rng=0).evaluate(train, test, lan.devices)

        # (ii) occupancy from encrypted traffic timing alone
        occupancy = occupancy_from_traffic(lan.log, lan.devices, lan.duration_s)
        occ_scores = score_occupancy_attack(occupancy, lan.occupancy)

        # (iii) gateway: baseline (pooled by fingerprinted type), then
        # detect each compromise type
        gateway = SmartGateway()
        device_types = {d.device_id: d.device_type.value for d in lan.devices}
        gateway.learn_baselines(
            lan.log.in_window(0, TRAIN_S), TRAIN_S, device_types=device_types
        )
        _, clean_report = gateway.enforce(lan.log, lan.duration_s)
        detections = {}
        for kind, device in [
            (CompromiseKind.DDOS, "camera-1"),
            (CompromiseKind.EXFILTRATION, "thermostat-1"),
            (CompromiseKind.LATERAL_SCAN, "smart_plug-1"),
        ]:
            compromise = Compromise(device, kind, start_s=TRAIN_S + SECONDS_PER_DAY / 2)
            attacked = inject_compromise(lan.log, compromise, lan.duration_s, ids, rng=5)
            _, report_c = gateway.enforce(attacked, lan.duration_s)
            delay_h = (
                report_c.detection_delay_s(device, compromise.start_s) / 3600.0
                if report_c.detected(device)
                else float("inf")
            )
            detections[kind.value] = (
                report_c.detected(device),
                delay_h,
                report_c.blocked_lateral,
            )
        return report, occ_scores, clean_report, detections

    report, occ_scores, clean_report, detections = once(benchmark, experiment)

    rows = [
        ["device-type classification accuracy", report.accuracy],
        ["device-type classification macro-F1", report.macro_f1],
        ["chance level", 1.0 / len(report.classes)],
        ["occupancy-from-traffic MCC", occ_scores["mcc"]],
        ["occupancy-from-traffic accuracy", occ_scores["accuracy"]],
        ["false quarantines on clean traffic", len(clean_report.quarantined_devices)],
    ]
    for kind, (detected, delay_h, blocked) in detections.items():
        rows.append([f"{kind}: detected / delay(h) / lateral blocked",
                     f"{detected} / {delay_h:.1f} / {blocked}"])
    print_table(
        "Sec. IV — traffic analysis and the smart gateway (paper: devices "
        "classifiable from traffic patterns; passive profiling feasible; "
        "gateways should auto-isolate suspicious devices)",
        ["quantity", "value"],
        rows,
    )

    assert report.accuracy > 0.85, "device types should be clearly fingerprintable"
    assert occ_scores["mcc"] > 0.4, "encrypted traffic still reveals occupancy"
    assert len(clean_report.quarantined_devices) == 0, "no false quarantines"
    for kind, (detected, delay_h, _) in detections.items():
        assert detected, f"{kind} must be detected"
        assert delay_h <= 4.0, f"{kind} detection too slow"
