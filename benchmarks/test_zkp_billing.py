"""Sec. III-C — zero-knowledge billing: correctness, soundness, and cost.

The cryptographic defense of refs. [29]/[30]: the meter publishes
commitments, bills verify homomorphically, individual readings never
leave the home.  The benchmark measures the whole month-of-hourly-readings
workflow (commit, bill, verify) — the practicality question the paper
raises for "low-cost microcontrollers" — and checks soundness (forged
bills rejected) and completeness (honest bills accepted) over a real
simulated month.
"""

import numpy as np

from bench_util import once, print_table
from repro.defenses import BillProof, PrivateMeter, UtilityVerifier
from repro.home import home_a, simulate_home

DAYS = 30


def test_zkp_billing(benchmark):
    sim = simulate_home(home_a(), DAYS, rng=88)
    hourly = sim.metered.resample(3600.0)
    # time-of-use tariff: peak hours cost 3x (integer cents per kWh scale)
    hours = (hourly.times() % 86400.0) / 3600.0
    tariffs = [30 if 16 <= h < 21 else 10 for h in hours]

    def experiment():
        meter = PrivateMeter(rng=99)
        commitments = meter.record_trace(hourly)
        proof = meter.billing_response(tariffs)
        verifier = UtilityVerifier()
        ok = verifier.verify_bill(commitments, tariffs, proof)
        forged = BillProof(
            bill=proof.bill - 1, aggregate_blinding=proof.aggregate_blinding
        )
        forged_ok = verifier.verify_bill(commitments, tariffs, forged)
        audit = verifier.verify_opening(commitments[5], meter.prove_opening(5))
        return len(commitments), proof, ok, forged_ok, audit

    n, proof, ok, forged_ok, audit = once(benchmark, experiment)
    true_bill = sum(
        t * int(round(v)) for t, v in zip(tariffs, hourly.values * 1.0)
    )
    print_table(
        "Sec. III-C — privacy-preserving billing over a month of hourly "
        "readings (paper: verifiable bills without revealing usage)",
        ["quantity", "value"],
        [
            ["intervals committed", n],
            ["honest bill accepted", ok],
            ["forged bill (1 unit low) rejected", not forged_ok],
            ["spot-audit opening proof verified", audit],
            ["bill (tariff-weighted Wh)", proof.bill],
        ],
    )
    assert ok and not forged_ok and audit
    assert n == DAYS * 24
