"""Sec. III-E — the privacy knob's trade-off curve over a 20-home fleet.

``test_privacy_utility_frontier.py`` sweeps the knob over *one* home;
the paper's proposal is population-facing — the knob "can be adjusted to
tradeoff the loss of privacy ... with the value or utility offered by
the service" for whole service territories.  This benchmark runs the
fleet sweep engine over a mixed 20-home population, dialing three
mechanistically different defenses (battery leveling, DP release, CHPr
heat masking) through four knob settings each, and checks the frontier's
shape: the dial buys privacy monotonically, and what it charges differs
by mechanism (batteries burn energy, DP burns analytics, CHPr burns
neither but is capped by tank physics).
"""

from bench_util import once, print_table
from repro.fleet import SweepGrid, run_sweep

GRID = SweepGrid(
    defenses=("nill", "dp-laplace", "chpr"),
    settings=(0.0, 0.33, 0.67, 1.0),
    n_homes=20,
    days=1,
    seeds=(0,),
    mix=("home-a", "home-b", "fig2", "random"),
)


def test_knob_frontier_fleet(benchmark):
    result = once(benchmark, lambda: run_sweep(GRID))
    frontier = result.frontier()

    print_table(
        "Sec. III-E — knob frontier over a 20-home fleet (lower MCC = "
        "more privacy; paper: the knob trades privacy against "
        "value/utility, per mechanism)",
        ["defense", "setting", "attack_mcc", "mcc_p90", "rmse_w",
         "bill_err", "extra_kwh"],
        [
            [p.defense, p.setting, p.mcc.mean, p.mcc.p90,
             p.distortion_w.mean, p.bill_error.mean, p.extra_kwh.mean]
            for p in frontier.points
        ],
    )

    assert result.ok
    assert len(frontier.points) == GRID.n_cells

    # the dial is a dial: per mechanism, more knob never helps the attacker
    assert frontier.monotone_violations(tolerance=0.05) == []

    by_defense = {}
    for p in frontier.points:
        by_defense.setdefault(p.defense, {})[p.setting] = p

    # the knob's endpoints bracket the tradeoff for the strong mechanisms
    for name in ("nill", "dp-laplace"):
        series = by_defense[name]
        assert series[1.0].mcc.mean < 0.65 * series[0.0].mcc.mean

    # and the mechanisms charge different currencies at full dial:
    full_nill = by_defense["nill"][1.0]
    full_dp = by_defense["dp-laplace"][1.0]
    full_chpr = by_defense["chpr"][1.0]
    # the battery burns real energy; DP's release is free to run
    assert full_nill.extra_kwh.mean > 10 * max(full_dp.extra_kwh.mean, 0.001)
    # DP wrecks load-shape analytics far beyond what the battery does
    assert full_dp.distortion_w.mean > 5 * full_nill.distortion_w.mean
    # CHPr never *adds* energy — rescheduling heats lazily against the
    # comfort floor, so it runs at or below the thermostat's bill —
    # and it leaves analytics far more intact than DP
    assert full_chpr.extra_kwh.mean <= 0.1
    assert full_chpr.distortion_w.mean < full_dp.distortion_w.mean
    # ...and still buys measurable privacy over the open dial
    assert full_chpr.mcc.mean < by_defense["chpr"][0.0].mcc.mean
