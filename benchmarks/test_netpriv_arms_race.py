"""Naive-vs-adaptive attacker benchmark across the netpriv defense dials.

The arms-race acceptance experiment: fan every registered netpriv traffic
defense over a dial grid (off / mid / full) with
:class:`repro.fleet.netpriv.NetprivSweepRunner`, score each cell with both
attacker generations, and demand two things of the result:

* **the arms race is real** — at the mid dial, the adaptive attacker
  (retrained on shaped traffic, :mod:`repro.netpriv.adaptive`) recovers
  materially more occupancy signal than the naive attacker on at least
  two defenses;
* **the frontier is sane** — turning any defense dial up never *raises*
  the adaptive attacker's occupancy MCC (running-min monotone check, the
  same gate ``repro netpriv --check-monotone`` runs).

Writes a machine-readable ``BENCH_netpriv_arms_race.json`` (override the
path with ``REPRO_BENCH_NETPRIV_OUT``); CI uploads it as an artifact.

Run directly::

    PYTHONPATH=src python benchmarks/test_netpriv_arms_race.py

or through pytest (``python -m pytest benchmarks/test_netpriv_arms_race.py -s``),
which additionally asserts the acceptance floors above.
"""

from __future__ import annotations

import json
import os

from repro.core.knob import knob_mapping_names
from repro.fleet import NetprivGrid, run_netpriv_sweep

OUT_ENV = "REPRO_BENCH_NETPRIV_OUT"
DEFAULT_OUT = "BENCH_netpriv_arms_race.json"

#: dial positions: off (shared unshaped anchor), mid, full
SETTINGS = (0.0, 0.5, 1.0)
MID_SETTING = 0.5

#: acceptance floors asserted by the pytest entry point
MIN_DEFENSES_WITH_ADAPTIVE_WIN = 2
ADAPTIVE_WIN_MARGIN = 0.1  # occupancy-MCC gap that counts as a win
#: single-LAN MCC estimates wobble ~0.05 between dials even when a
#: defense has no real effect on the adaptive attacker (cover's series is
#: flat: the endpoint residual survives every dial position), so the
#: benchmark's monotone gate uses a wider tolerance than the CLI default
MONOTONE_TOLERANCE = 0.1

DAYS = 3
SEED = 0


def run_benchmarks(workers: int | None = None) -> dict:
    """Run the full defense × dial grid; returns the report document."""
    defenses = tuple(knob_mapping_names("netpriv"))
    grid = NetprivGrid(
        defenses=defenses,
        settings=SETTINGS,
        seeds=(SEED,),
        n_lans=1,
        days=DAYS,
        lan="default",
    )
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    result = run_netpriv_sweep(grid, workers=workers, telemetry=True)
    frontier = result.frontier()
    violations = frontier.monotone_violations(MONOTONE_TOLERANCE)

    mid_gaps = {
        p.defense: round(p.adaptive_advantage, 4)
        for p in frontier.points
        if p.setting == MID_SETTING
    }
    adaptive_wins = sorted(
        d for d, gap in mid_gaps.items() if gap > ADAPTIVE_WIN_MARGIN
    )
    doc = {
        "schema": "repro.bench_netpriv_arms_race/1",
        "grid": grid.as_dict(),
        "elapsed_s": round(result.elapsed_s, 2),
        "workers": result.workers_used,
        "ok": result.ok,
        "points": [p.as_dict() for p in frontier.points],
        "mid_dial_adaptive_gaps": mid_gaps,
        "adaptive_wins_at_mid_dial": adaptive_wins,
        "monotone_tolerance": MONOTONE_TOLERANCE,
        "monotone_violations": violations,
        "telemetry": (
            result.telemetry.as_dict() if result.telemetry is not None else None
        ),
    }
    return doc


def _write(doc: dict) -> str:
    out = os.environ.get(OUT_ENV, DEFAULT_OUT)
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return out


def _format(doc: dict) -> str:
    lines = [
        f"netpriv arms race: {len(doc['points'])} frontier points "
        f"in {doc['elapsed_s']}s on {doc['workers']} worker(s)"
    ]
    for point in doc["points"]:
        lines.append(
            f"  {point['defense']:<14s}@{point['setting']:<4g} "
            f"naive mcc {point['naive_mcc']['mean']:+.3f}  "
            f"adaptive mcc {point['adaptive_mcc']['mean']:+.3f}  "
            f"cover {point['cover_mb_per_day']['mean']:8.1f} MB/day  "
            f"delay {point['mean_added_delay_s']['mean']:6.1f} s"
        )
    lines.append(f"mid-dial adaptive gaps: {doc['mid_dial_adaptive_gaps']}")
    lines.append(
        f"adaptive wins at mid dial: {doc['adaptive_wins_at_mid_dial']} "
        f"(need >= {MIN_DEFENSES_WITH_ADAPTIVE_WIN})"
    )
    lines.append(
        "monotone violations: "
        + (", ".join(doc["monotone_violations"]) or "none")
    )
    return "\n".join(lines)


def test_bench_netpriv_arms_race():
    """Acceptance: adaptive beats naive on >=2 defenses; frontier is sane."""
    doc = run_benchmarks()
    out = _write(doc)
    print()
    print(_format(doc))
    print(f"report written to {out}")
    assert doc["ok"], "sweep lost LAN jobs; benchmark numbers incomplete"
    assert (
        len(doc["adaptive_wins_at_mid_dial"]) >= MIN_DEFENSES_WITH_ADAPTIVE_WIN
    ), (
        f"adaptive attacker must beat naive by > {ADAPTIVE_WIN_MARGIN} MCC on "
        f">= {MIN_DEFENSES_WITH_ADAPTIVE_WIN} defenses at the mid dial; "
        f"gaps: {doc['mid_dial_adaptive_gaps']}"
    )
    assert not doc["monotone_violations"], doc["monotone_violations"]


if __name__ == "__main__":
    document = run_benchmarks()
    path = _write(document)
    print(_format(document))
    print(f"report written to {path}")
