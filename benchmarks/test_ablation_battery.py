"""Ablation — battery capacity vs privacy vs cost (Sec. III-B).

The paper: battery-based methods protect against NILM/NIOM "at a high cost
to install and maintain the battery".  This ablation sweeps battery
capacity for the NILL defense and measures the privacy gained (attack MCC
down), the analytics utility lost, and the energy cost of conversion
losses — the cost curve that motivates CHPr's free thermal storage.
"""

import numpy as np

from bench_util import once, print_table
from repro.core import evaluate_defense_outcome
from repro.defenses import BatteryConfig, NILLDefense
from repro.home import home_b, simulate_home

CAPACITIES_WH = (0.0, 500.0, 1500.0, 3000.0, 6000.0, 12000.0)


def test_battery_capacity_ablation(benchmark):
    sim = simulate_home(home_b(), 7, rng=55)

    def experiment():
        rows = []
        for capacity in CAPACITIES_WH:
            if capacity == 0.0:
                from repro.defenses import DefenseOutcome

                outcome = DefenseOutcome(visible=sim.metered)
            else:
                defense = NILLDefense(BatteryConfig(capacity_wh=capacity))
                outcome = defense.apply(sim.metered)
            point = evaluate_defense_outcome(
                f"{capacity:.0f}Wh", outcome, sim.metered, sim.occupancy
            )
            rows.append(
                [
                    f"{capacity / 1000:.1f} kWh",
                    point.privacy.worst_case_mcc,
                    point.utility.composite(),
                    point.extra_energy_kwh,
                ]
            )
        return rows

    rows = once(benchmark, experiment)
    print_table(
        "Ablation — NILL battery capacity sweep (paper: batteries buy "
        "privacy at hardware + loss cost)",
        ["capacity", "attack_mcc", "utility", "losses_kwh"],
        rows,
    )
    mccs = [r[1] for r in rows]
    losses = [r[3] for r in rows]
    assert mccs[-1] < 0.5 * mccs[0], "a big battery should strongly mask"
    assert losses[-1] > 0.0, "and it is not free"
    # privacy is broadly monotone in capacity
    assert np.mean(mccs[3:]) < np.mean(mccs[:3])
