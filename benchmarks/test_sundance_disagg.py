"""Sec. II-B claim — SunDance: net meters do not hide solar homes.

"Our recent work on solar disaggregation shows that we can accurately
separate net meter data into energy consumption and solar generation."
The benchmark builds a solar home's net-meter trace, disaggregates it
black-box, and shows the chained privacy attack the paper warns about: the
recovered *consumption* is nearly as good for occupancy detection as the
true consumption, and the recovered *generation* still localizes the home
via its weather signature.
"""

import numpy as np

from bench_util import once, print_table
from repro.attacks import ThresholdNIOM, score_occupancy_attack
from repro.home import MeterConfig, NetMeter, home_b, simulate_home
from repro.solar import (
    LatLon,
    SolarSite,
    SunDance,
    WeatherField,
    Weatherman,
    WeatherStationDB,
    simulate_generation,
)

SITE = SolarSite("net-home", LatLon(40.01, -105.27))
N_DAYS = 60


def test_sundance_disaggregation(benchmark):
    weather = WeatherField()
    home = simulate_home(home_b(), N_DAYS, rng=77)
    generation = simulate_generation(SITE, N_DAYS, 60.0, weather, rng=78)
    net = NetMeter(MeterConfig(noise_std_w=10.0)).observe_net(
        home.total, generation, 79
    )

    def experiment():
        estimate = SunDance().disaggregate(net)
        n = len(estimate.generation)
        truth_gen = generation.resample(60.0).values[:n]
        gen_error = float(
            np.abs(estimate.generation.values - truth_gen).sum() / truth_gen.sum()
        )
        detector = ThresholdNIOM(window_s=3600.0)
        direct = score_occupancy_attack(
            detector.detect(home.metered).occupancy, home.occupancy
        )["mcc"]
        recovered = score_occupancy_attack(
            detector.detect(estimate.consumption).occupancy, home.occupancy
        )["mcc"]
        net_only = score_occupancy_attack(
            detector.detect(net.clipped(low=0.0)).occupancy, home.occupancy
        )["mcc"]
        stations = WeatherStationDB(
            weather, (36.0, 44.0), (-109.0, -101.0), 1.0
        )
        loc = Weatherman(stations).localize(estimate.generation)
        return gen_error, direct, recovered, net_only, loc.error_km(SITE.location)

    gen_error, direct, recovered, net_only, loc_err = once(benchmark, experiment)
    print_table(
        "Sec. II-B — SunDance chained attack (paper: net meter data can be "
        "accurately split, re-enabling NIOM/NILM and localization)",
        ["quantity", "value"],
        [
            ["generation error factor", gen_error],
            ["NIOM mcc on true consumption", direct],
            ["NIOM mcc on recovered consumption", recovered],
            ["NIOM mcc on raw net trace", net_only],
            ["Weatherman km on recovered generation", loc_err],
        ],
    )
    assert gen_error < 0.35, "generation should be recovered accurately"
    # the raw net trace defeats NIOM outright; disaggregation re-enables it
    # (partially — residual solar artifacts still blunt the detector)
    assert net_only < 0.1, "solar export should mask occupancy in raw net data"
    assert recovered > net_only + 0.15, "disaggregation re-enables NIOM"
    assert recovered > 0.15
    assert loc_err < 50.0, "recovered generation still localizes the home"
