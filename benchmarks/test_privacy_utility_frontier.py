"""Sec. III-E — the tunable privacy knob and the discrete-defense frontier.

The paper argues existing defenses "lie at different discrete points in
the tradeoff between user privacy and IoT functionality", motivating a
tunable knob.  This benchmark places every registered discrete defense in
the (privacy, utility) plane and sweeps the knob across it, checking that
the knob traces a monotone frontier from full-utility/no-privacy to
strong-privacy/degraded-utility.
"""

import numpy as np

from bench_util import once, print_table
from repro.core import PrivacyKnob, run_pipeline, sweep_knob
from repro.home import home_b, simulate_home


def test_privacy_utility_frontier(benchmark):
    sim = simulate_home(home_b(), 7, rng=31)

    def experiment():
        pipeline = run_pipeline(sim, rng=32)
        knob_points = sweep_knob(
            PrivacyKnob(),
            sim.metered,
            sim.occupancy,
            settings=np.linspace(0.0, 1.0, 6),
            rng=33,
        )
        return pipeline, knob_points

    pipeline, knob_points = once(benchmark, experiment)

    rows = [
        [
            "baseline",
            pipeline.baseline.privacy.worst_case_mcc,
            pipeline.baseline.utility.composite(),
            0.0,
        ]
    ]
    for name, point in sorted(pipeline.defenses.items()):
        rows.append(
            [
                name,
                point.privacy.worst_case_mcc,
                point.utility.composite(),
                point.extra_energy_kwh,
            ]
        )
    for point in knob_points:
        rows.append(
            [
                point.defense,
                point.privacy.worst_case_mcc,
                point.utility.composite(),
                point.extra_energy_kwh,
            ]
        )
    print_table(
        "Sec. III-E — privacy/utility/cost positions (lower MCC = more "
        "privacy; paper: defenses sit at discrete points, knob makes the "
        "tradeoff tunable)",
        ["defense", "attack_mcc", "utility", "extra_kwh"],
        rows,
    )

    knob_mcc = [p.privacy.worst_case_mcc for p in knob_points]
    knob_util = [p.utility.composite() for p in knob_points]
    # the knob's endpoints bracket the tradeoff
    assert knob_mcc[-1] < 0.65 * knob_mcc[0]
    assert knob_util[-1] < knob_util[0]
    # broadly monotone: late settings dominate early ones on privacy
    assert np.mean(knob_mcc[3:]) < np.mean(knob_mcc[:3])
    # at least one discrete defense achieves strong privacy at low utility
    strong = [p for p in pipeline.defenses.values() if p.privacy.worst_case_mcc < 0.3]
    assert strong, "some discrete defense should reach strong privacy"
