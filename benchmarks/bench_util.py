"""Shared reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures and prints the
same rows/series the paper reports, next to the paper's own numbers where
the paper states them.  Absolute values are not expected to match (our
substrate is a simulator, not the authors' testbed); the *shape* — who
wins, by roughly what factor, where the crossovers fall — is the claim
each benchmark checks.
"""

from __future__ import annotations


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print an aligned results table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
