"""Streaming attack throughput benchmark: samples/sec and push latency.

Replays a synthetic multi-day aggregate trace through every registered
stream attack (``repro.stream.STREAM_ATTACKS``) at a realistic chunk
size and reports per-attack throughput (samples/sec, the paper-scale
figure of merit: a 1 Hz smart meter emits 86 400 samples per day, so
1e5 samples/sec means one evaluator core shadows ~1e5 meters in real
time) plus per-push latency percentiles.  Writes a machine-readable
``BENCH_stream.json`` next to the working directory (override with
``REPRO_BENCH_STREAM_OUT``); CI uploads it as a workflow artifact.

Throughput is best-of-N wall clock (scheduler noise only ever adds
time).  Every workload also replays the batch equivalence check — a
throughput figure for a decoder that drifted from the batch pass would
be a bug, not a win.

Run directly::

    PYTHONPATH=src python benchmarks/bench_stream.py

or through pytest (``python -m pytest benchmarks/bench_stream.py -s``),
which additionally asserts the acceptance floor: >= 1e5 samples/sec on
at least one attack.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.attacks import ThresholdNIOM
from repro.stream import (
    STREAM_ATTACKS,
    StreamClock,
    TraceReplaySource,
    iter_chunks,
    make_stream_attack,
)
from repro.timeseries import PowerTrace, detect_edges

OUT_ENV = "REPRO_BENCH_STREAM_OUT"
DEFAULT_OUT = "BENCH_stream.json"

#: acceptance floor asserted by the pytest entry point: at least one
#: attack must stream >= 1e5 samples/sec
SAMPLES_PER_SEC_FLOOR = 1e5

#: bounded smoothing lag (samples) for the HMM/FHMM decoders
LAG = 30


def _workload_trace(days: int = 7, period_s: float = 60.0) -> PowerTrace:
    """A multi-day aggregate with appliance-style step structure."""
    n = int(days * 86400 / period_s)
    rng = np.random.default_rng(42)
    values = np.abs(rng.normal(220.0, 60.0, n))
    for start in range(120, n - 240, 210):
        values[start : start + 120] += rng.choice([0.0, 150.0, 900.0, 1500.0])
    return PowerTrace(values, period_s=period_s)


def _attack_kwargs(name: str) -> dict:
    return {"lag": LAG} if name in ("hmm", "fhmm") else {}


def _stream_once(name: str, trace: PowerTrace, chunk_samples: int):
    """One full streamed pass; returns (summary, per-push seconds)."""
    attack = make_stream_attack(name, **_attack_kwargs(name))
    attack.open(StreamClock.of(trace))
    push_s: list[float] = []
    for part in iter_chunks(trace.values, chunk_samples):
        t0 = time.perf_counter()
        attack.push(part)
        push_s.append(time.perf_counter() - t0)
    summary = attack.finalize()
    return attack, summary, push_s


def _batch_equivalent(name: str, attack, trace: PowerTrace) -> bool:
    """Replay the documented stream-vs-batch contract for this attack."""
    if name == "edges":
        return attack.detector.edges == detect_edges(trace)
    if name == "niom":
        batch = ThresholdNIOM().detect(trace)
        return bool(
            np.array_equal(attack.result.features, batch.features)
            and np.array_equal(
                attack.result.occupancy.values, batch.occupancy.values
            )
        )
    # hmm/fhmm: filtering-mode decoders; the chunk-invariance and
    # batch-smoothing contracts are pinned by tests/test_stream.py.
    # Here we check the cheap internal consistency: one label per sample.
    decoder = attack.decoder
    labels = decoder.labels if name == "hmm" else decoder.states
    return len(labels) == len(trace)


def run_benchmarks(
    days: int = 7, chunk_samples: int = 600, reps: int = 3
) -> dict:
    """Time every registered stream attack; returns the report document."""
    trace = _workload_trace(days=days)
    source = TraceReplaySource(trace)
    n = len(trace)
    results: dict[str, dict] = {}

    for name in STREAM_ATTACKS:
        best_total = np.inf
        best_push: list[float] = []
        attack = summary = None
        for _ in range(reps):
            t0 = time.perf_counter()
            attack, summary, push_s = _stream_once(name, trace, chunk_samples)
            total = time.perf_counter() - t0
            if total < best_total:
                best_total, best_push = total, push_s
        push = np.asarray(best_push)
        results[name] = {
            "samples": n,
            "chunk_samples": chunk_samples,
            "pushes": len(push),
            "total_s": round(best_total, 6),
            "samples_per_sec": round(n / best_total, 1),
            "push_latency_ms": {
                "p50": round(float(np.percentile(push, 50)) * 1e3, 4),
                "p95": round(float(np.percentile(push, 95)) * 1e3, 4),
                "max": round(float(push.max()) * 1e3, 4),
            },
            "batch_equivalent": bool(_batch_equivalent(name, attack, trace)),
            "summary": summary,
        }

    return {
        "schema": "repro.bench_stream/1",
        "floor_samples_per_sec": SAMPLES_PER_SEC_FLOOR,
        "trace": {"days": days, "period_s": trace.period_s, "samples": n},
        "source": type(source).__name__,
        "attacks": results,
    }


def write_report(doc: dict) -> str:
    out = os.environ.get(OUT_ENV, DEFAULT_OUT)
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2)
    return out


def _print_table(doc: dict) -> None:
    print(f"\n{'attack':<8} {'samples/s':>12} {'p50 push':>10} "
          f"{'p95 push':>10} {'batch==':>8}")
    for name, row in doc["attacks"].items():
        lat = row["push_latency_ms"]
        print(f"{name:<8} {row['samples_per_sec']:>12,.0f} "
              f"{lat['p50']:>8.3f}ms {lat['p95']:>8.3f}ms "
              f"{str(row['batch_equivalent']):>8}")


def test_bench_stream():
    """Pytest entry: record the table, assert equivalence and the floor."""
    doc = run_benchmarks()
    out = write_report(doc)
    _print_table(doc)
    print(f"wrote {out}")
    for name, row in doc["attacks"].items():
        assert row["batch_equivalent"], f"{name}: streamed output diverged"
        assert row["samples"] == doc["trace"]["samples"]
    best = max(row["samples_per_sec"] for row in doc["attacks"].values())
    assert best >= SAMPLES_PER_SEC_FLOOR, (
        f"no attack reached the {SAMPLES_PER_SEC_FLOOR:.0e} samples/sec "
        f"floor (best: {best:,.0f})"
    )


if __name__ == "__main__":
    doc = run_benchmarks()
    out = write_report(doc)
    _print_table(doc)
    print(f"wrote {out}")
