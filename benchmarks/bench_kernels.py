"""Kernel speedup benchmark: vectorized hot paths vs their loop references.

Times every vectorized kernel in the repo against the pre-vectorization
loop implementation it replaced (see ``docs/PERFORMANCE.md`` for the full
hot-path inventory) and writes a machine-readable ``BENCH_kernels.json``
next to the working directory (override with ``REPRO_BENCH_KERNELS_OUT``).
CI uploads that file as a workflow artifact so speedups can be compared
across commits.

Timing is best-of-N wall clock: the minimum over ``reps`` runs is the
figure of record, because scheduler noise only ever adds time.  Every
workload also checks equivalence (bitwise where the kernel contract is
bitwise, documented tolerance for the E-step scan) — a speedup obtained
by computing something different would be a bug, not a win.

Run directly::

    PYTHONPATH=src python benchmarks/bench_kernels.py

or through pytest (``python -m pytest benchmarks/bench_kernels.py``),
which additionally asserts the acceptance floors: >= 3x on the HMM
fit+decode pipeline and on FHMM joint-space decoding.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.attacks.nilm._reference import pair_candidates_loop
from repro.attacks.nilm.powerplay import _pair_candidates, fig2_signatures
from repro.home._reference import simulate_cyclic_loop, simulate_lighting_loop
from repro.home.appliances import CyclicAppliance, LightingAppliance
from repro.ml import kernels
from repro.ml._reference import decode_loop, fit_loop
from repro.ml.fhmm import FactorialHMM, fit_appliance_chain
from repro.ml.hmm import GaussianHMM
from repro.timeseries import BinaryTrace, Edge, PowerTrace
from repro.timeseries._reference import detect_edges_loop, window_features_loop
from repro.timeseries.events import detect_edges
from repro.timeseries.stats import window_features

OUT_ENV = "REPRO_BENCH_KERNELS_OUT"
DEFAULT_OUT = "BENCH_kernels.json"

#: acceptance floors asserted by the pytest entry point
FLOORS = {"hmm_fit_decode": 3.0, "fhmm_decode": 3.0}


def _best_of(f, reps: int) -> float:
    best = np.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        f()
        best = min(best, time.perf_counter() - t0)
    return best


def _entry(name, loop_fn, vec_fn, equal_fn, reps, detail):
    loop_out = loop_fn()
    vec_out = vec_fn()
    equivalent = bool(equal_fn(loop_out, vec_out))
    loop_s = _best_of(loop_fn, reps)
    vec_s = _best_of(vec_fn, reps)
    return name, {
        "loop_s": round(loop_s, 6),
        "vectorized_s": round(vec_s, 6),
        "speedup": round(loop_s / vec_s, 2),
        "equivalent": equivalent,
        "detail": detail,
    }


def _hmm_training_signal(n: int = 2000, k: int = 2):
    rng = np.random.default_rng(7)
    means = np.linspace(0.0, 500.0, k)
    states = np.zeros(n, dtype=int)
    for i in range(1, n):
        states[i] = states[i - 1] if rng.uniform() < 0.9 else rng.integers(k)
    return (means[states] + rng.normal(0.0, 40.0, n)).reshape(-1, 1)


def _fitted_fhmm() -> tuple[FactorialHMM, np.ndarray]:
    rng = np.random.default_rng(2)
    chains = []
    for power in (80.0, 150.0, 400.0, 1000.0, 4800.0):
        on = (rng.uniform(size=600) < 0.4).astype(float) * power
        chains.append(fit_appliance_chain(on + rng.normal(0.0, 15.0, 600),
                                          n_states=3, rng=1))
    aggregate = np.abs(rng.normal(900.0, 500.0, 1440))
    return FactorialHMM(chains, noise_var=200.0), aggregate


def _synthetic_edges(n_edges: int = 400, period: float = 30.0) -> list[Edge]:
    rng = np.random.default_rng(1)
    idxs = np.sort(rng.choice(np.arange(1, 20000), size=n_edges, replace=False))
    edges = []
    for idx in idxs:
        mag = float(rng.choice([120.0, 150.0, 1050.0]) * rng.uniform(0.8, 1.2))
        delta = mag if rng.uniform() < 0.5 else -mag
        edges.append(Edge(index=int(idx), time_s=idx * period, delta_w=delta,
                          pre_w=200.0, post_w=200.0 + delta))
    return edges


def run_benchmarks(reps: int = 3) -> dict:
    """Time every kernel pair; returns the BENCH_kernels.json document."""
    results: dict[str, dict] = {}

    # --- HMM fit + decode pipeline (the NIOM detector shape) ---
    X = _hmm_training_signal()

    def fit_decode_vec():
        model = GaussianHMM(2, n_iter=20, tol=0.0, rng=3)
        model.fit(X)
        return model.decode(X)

    def fit_decode_loop():
        model = GaussianHMM(2, n_iter=20, tol=0.0, rng=3)
        fit_loop(model, X)
        return decode_loop(model, X)

    name, row = _entry(
        "hmm_fit_decode", fit_decode_loop, fit_decode_vec,
        lambda a, b: np.array_equal(a, b), reps,
        "GaussianHMM(k=2) Baum-Welch 20 iters + Viterbi, n=2000",
    )
    results[name] = row

    # --- E-step kernel alone ---
    rng = np.random.default_rng(0)
    b = rng.uniform(0.1, 1.0, (2000, 2))
    pi = np.array([0.5, 0.5])
    A = np.array([[0.95, 0.05], [0.05, 0.95]])
    name, row = _entry(
        "hmm_estep",
        lambda: kernels.estep_loop(pi, A, b),
        lambda: kernels._estep_scan(pi, A, b, want_xi=True),
        lambda x, y: (np.max(np.abs(x[0] - y[0])) < 1e-10
                      and abs(x[2] - y[2]) <= 1e-9 * max(1.0, abs(x[2]))),
        reps, "forward/backward + xi statistics, n=2000 k=2",
    )
    results[name] = row

    # --- FHMM joint-space construction and decoding ---
    fhmm, aggregate = _fitted_fhmm()
    sp = [c.startprob_ for c in fhmm.chains]
    tm = [c.transmat_ for c in fhmm.chains]
    mu = [c.means_[:, 0] for c in fhmm.chains]
    var = [c.variances_[:, 0] for c in fhmm.chains]
    name, row = _entry(
        "fhmm_joint_build",
        lambda: kernels.joint_chain_params_loop(sp, tm, mu, var, 200.0),
        lambda: kernels.joint_chain_params(sp, tm, mu, var, 200.0),
        lambda a, b: all(np.array_equal(x, y) for x, y in zip(a, b)),
        reps, "5 chains x 3 states -> 243 joint states",
    )
    results[name] = row

    log_b = fhmm._emission_logprob(aggregate)
    log_pi = np.log(fhmm._startprob + 1e-300)
    log_a = np.log(fhmm._transmat + 1e-300)
    name, row = _entry(
        "fhmm_decode",
        lambda: kernels.viterbi_loop(log_pi, log_a, log_b),
        lambda: kernels.viterbi(log_pi, log_a, log_b),
        lambda a, b: np.array_equal(a, b), reps,
        "bound-pruned Viterbi, 243 joint states, n=1440 (one day of minutes)",
    )
    results[name] = row

    # --- appliance simulators (bitwise + RNG-stream preserving) ---
    n = int(7 * 86400 / 30.0)
    occupancy = BinaryTrace(
        (np.random.default_rng(5).uniform(size=n) < 0.6).astype(int), 30.0
    )
    fridge = CyclicAppliance("fridge", on_power_w=150.0, on_minutes=15.0,
                             off_minutes=30.0, spike_power_w=600.0)
    lights = LightingAppliance("lights", max_power_w=300.0)
    name, row = _entry(
        "appliance_cyclic",
        lambda: simulate_cyclic_loop(fridge, occupancy, np.random.default_rng(9)),
        lambda: fridge.simulate(occupancy, np.random.default_rng(9)),
        lambda a, b: np.array_equal(a.values, b.values), reps,
        "CyclicAppliance, 7 days @ 30 s",
    )
    results[name] = row
    name, row = _entry(
        "appliance_lighting",
        lambda: simulate_lighting_loop(lights, occupancy, np.random.default_rng(9)),
        lambda: lights.simulate(occupancy, np.random.default_rng(9)),
        lambda a, b: np.array_equal(a.values, b.values), reps,
        "LightingAppliance per-sample modulation, 7 days @ 30 s",
    )
    results[name] = row

    # --- timeseries features and edge detection ---
    rng = np.random.default_rng(0)
    vals = np.abs(rng.normal(200.0, 150.0, n))
    vals += rng.choice([0.0, 400.0], n, p=[0.85, 0.15])
    trace = PowerTrace(vals, 30.0)
    name, row = _entry(
        "window_features",
        lambda: window_features_loop(trace, 900.0),
        lambda: window_features(trace, 900.0),
        lambda a, b: np.array_equal(a, b), reps,
        "NIOM 15-min feature windows over 7 days @ 30 s",
    )
    results[name] = row
    name, row = _entry(
        "detect_edges",
        lambda: detect_edges_loop(trace, 30.0, 3),
        lambda: detect_edges(trace, 30.0, 3),
        lambda a, b: a == b, reps,
        "edge detection with settle medians over 7 days @ 30 s",
    )
    results[name] = row

    # --- PowerPlay rise/fall pairing ---
    edges = _synthetic_edges()
    used = np.zeros(len(edges), dtype=bool)
    fridge_sig = next(s for s in fig2_signatures() if s.name == "fridge")
    name, row = _entry(
        "powerplay_pairing",
        lambda: pair_candidates_loop(edges, used, fridge_sig, 150.0),
        lambda: _pair_candidates(edges, used, fridge_sig, 150.0),
        lambda a, b: a == b, reps,
        "broadcast rise x fall candidate scoring, 400 edges",
    )
    results[name] = row

    return {
        "schema": "repro.bench_kernels/1",
        "floors": FLOORS,
        "workloads": results,
    }


def write_report(doc: dict) -> str:
    out = os.environ.get(OUT_ENV, DEFAULT_OUT)
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2)
    return out


def _print_table(doc: dict) -> None:
    print(f"\n{'workload':<20} {'loop':>10} {'vectorized':>11} "
          f"{'speedup':>8}  {'equal':>5}")
    for name, row in doc["workloads"].items():
        print(f"{name:<20} {row['loop_s']*1e3:>8.1f}ms {row['vectorized_s']*1e3:>9.1f}ms "
              f"{row['speedup']:>7.2f}x  {str(row['equivalent']):>5}")


def test_bench_kernels():
    """Pytest entry: record the table, assert floors and equivalence."""
    doc = run_benchmarks()
    out = write_report(doc)
    _print_table(doc)
    print(f"wrote {out}")
    for name, row in doc["workloads"].items():
        assert row["equivalent"], f"{name}: vectorized output diverged from loop"
    for name, floor in FLOORS.items():
        got = doc["workloads"][name]["speedup"]
        assert got >= floor, f"{name}: {got}x below the {floor}x acceptance floor"


if __name__ == "__main__":
    doc = run_benchmarks()
    out = write_report(doc)
    _print_table(doc)
    print(f"wrote {out}")
