"""Fleet supervisor resilience: what failure recovery costs, measured.

The supervised engine replaces ``pool.map`` with per-job dispatch so a
fleet survives crashed workers, flaky jobs, and hung jobs.  That
machinery must be close to free on the happy path and bounded on the sad
paths.  This benchmark runs one 12-home fleet four ways —

* clean (no faults): supervision overhead vs the work itself;
* flaky errors (every home fails its first attempt): retry + backoff;
* one transient worker crash: pool rebuild + in-flight requeue;
* one poison pill: N-1 results plus a structured failure;

— and asserts the operational claims: every surviving home is
byte-identical to the clean run in all modes, and the degraded modes
still complete.
"""

import os
import time

from bench_util import once, print_table
from repro.fleet import FaultPlan, FleetSpec, run_fleet

SPEC = FleetSpec(n_homes=12, days=1, seed=31, defenses=("nill", "dp-laplace"))
WORKERS = 2
FAST = {"retry_backoff_s": 0.01}


def digests(result):
    return {h.index: h.trace_digest for h in result.homes}


def test_fleet_resilience(benchmark):
    timings: dict[str, float] = {}
    runs: dict[str, object] = {}

    def measure(mode, **kwargs):
        t0 = time.perf_counter()
        runs[mode] = run_fleet(SPEC, workers=WORKERS, **kwargs)
        timings[mode] = time.perf_counter() - t0

    def experiment():
        measure("clean")
        measure(
            "flaky-all",
            faults=FaultPlan(
                kind="error", indices=tuple(range(SPEC.n_homes)), max_attempt=0
            ),
            **FAST,
        )
        measure(
            "crash-once",
            faults=FaultPlan(kind="crash", indices=(0,), max_attempt=0),
            **FAST,
        )
        measure(
            "poison-pill",
            faults=FaultPlan(kind="error", indices=(5,)),
            **FAST,
        )
        return runs["clean"]

    clean = once(benchmark, experiment)

    rows = [
        [
            mode,
            timings[mode],
            timings[mode] / timings["clean"],
            len(runs[mode].homes),
            runs[mode].n_failed,
            runs[mode].pool_rebuilds,
        ]
        for mode in timings
    ]
    print_table(
        f"fleet resilience — {SPEC.n_homes} homes x {SPEC.days} days, "
        f"{WORKERS} workers ({os.cpu_count()} cpus)",
        ["mode", "seconds", "vs clean", "homes", "failed", "rebuilds"],
        rows,
    )

    # operational claims: recovery never corrupts results
    base = digests(clean)
    assert not clean.failures
    assert digests(runs["flaky-all"]) == base  # every retry reproduced exactly
    assert not runs["flaky-all"].failures
    assert digests(runs["crash-once"]) == base
    assert runs["crash-once"].pool_rebuilds >= 1
    poison = runs["poison-pill"]
    assert [f.index for f in poison.failures] == [5]
    assert digests(poison) == {i: d for i, d in base.items() if i != 5}
