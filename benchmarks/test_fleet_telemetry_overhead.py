"""Telemetry observation cost: wall-clock with the registry on vs off.

The `repro.obs` contract is "free when off, cheap when on": a disabled
registry short-circuits before any lock or clock read, and an enabled one
adds only a perf_counter pair and a dict update per stage.  This benchmark
times the same fleet sweep both ways and prints the measured overhead; the
acceptance target is <5% on this 16-home sweep.  The *assertion* is looser
(25%) so a noisy CI box cannot flake the suite — the printed number is the
figure of record.

Digest equality is asserted strictly: observation must never perturb the
simulation, defenses, or attacks.
"""

import os
import time

from bench_util import once, print_table
from repro.fleet import FleetReport, FleetSpec, run_fleet

SPEC = FleetSpec(n_homes=16, days=2, seed=11, defenses=("dp-laplace", "nill"))


def test_fleet_telemetry_overhead(benchmark):
    timings: dict[str, float] = {}
    results: dict[str, object] = {}

    def experiment():
        # interleave off/on pairs so drift (thermal, page cache) hits both
        for mode, kwargs in (("off", {}), ("on", {"telemetry": True})):
            t0 = time.perf_counter()
            results[mode] = run_fleet(SPEC, workers=1, **kwargs)
            timings[mode] = time.perf_counter() - t0
        return results["on"]

    on = once(benchmark, experiment)
    off = results["off"]

    overhead = timings["on"] / timings["off"] - 1.0
    rows = [[mode, elapsed] for mode, elapsed in timings.items()]
    print_table(
        f"telemetry overhead — {SPEC.n_homes} homes x {SPEC.days} days "
        f"({os.cpu_count()} cpus)",
        ["telemetry", "seconds"],
        rows,
    )
    print(f"telemetry overhead: {overhead:+.1%} (target <5%)")
    job = on.telemetry.timers["stage.job"]
    staged = sum(
        stat.total_s
        for name, stat in on.telemetry.timers.items()
        if name.startswith("stage.") and name != "stage.job"
    )
    print(
        f"stage coverage: {staged:.2f}s of {job.total_s:.2f}s job wall-clock "
        f"({staged / job.total_s:.1%})"
    )

    # observation must not perturb results...
    assert [h.trace_digest for h in on.homes] == [
        h.trace_digest for h in off.homes
    ]
    assert FleetReport.from_result(on).comparable(FleetReport.from_result(off))
    # ...and must stay cheap (generous bound; see module docstring)
    assert overhead < 0.25
    # stage timers must account for the job wall-clock (10% acceptance)
    assert staged >= 0.9 * job.total_s
