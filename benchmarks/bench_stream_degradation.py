"""Graceful-degradation benchmark: attack fidelity vs feed damage.

Quantifies what the :class:`~repro.stream.guard.FeedGuard` recovery
policies actually preserve as a feed degrades, along two axes driven by
the deterministic fault injector (:mod:`repro.stream.faults`):

* **corruption sweep** — samples replaced with NaN at increasing rates,
  scrubbed by the default ``hold-last`` policy.  Because scrubbing keeps
  the sample grid intact, the degraded HMM label sequence aligns with
  the clean one sample-for-sample, so fidelity is plain label agreement.
* **dropout sweep** — chunks that never arrive, handled by the default
  ``resync`` policy.  Here the grid has holes, so fidelity is label
  *coverage* (labels emitted / wall-clock samples) plus the fraction of
  clean-feed edges still recovered.

Also measures **guard overhead**: wall-clock for a clean replay pushed
through a default-policy guard vs straight into the session.  On a
clean feed the guard is a single finiteness scan per chunk — the pytest
floor pins that it stays under 50% of bare session time, and the
rate-0.0 sweep rows double as clean-feed invariance checks (agreement
exactly 1.0).

Writes ``BENCH_stream_degradation.json`` (override with
``REPRO_BENCH_STREAM_DEGRADATION_OUT``); CI uploads it as a workflow
artifact.  Run directly::

    PYTHONPATH=src python benchmarks/bench_stream_degradation.py

or through pytest, which asserts the degradation floors.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.stream import (
    FeedGuard,
    GuardPolicy,
    StreamClock,
    StreamFaultPlan,
    StreamSession,
    inject_stream_faults,
    make_stream_attack,
    tagged_chunks,
)
from repro.timeseries import PowerTrace

OUT_ENV = "REPRO_BENCH_STREAM_DEGRADATION_OUT"
DEFAULT_OUT = "BENCH_stream_degradation.json"

#: fault rates swept along each damage axis (0.0 pins clean-feed parity)
RATES = (0.0, 0.02, 0.05, 0.1, 0.2)

#: pytest floors — chosen well below observed values so the benchmark
#: flags regressions, not scheduler noise
CORRUPT_5PCT_AGREEMENT_FLOOR = 0.90
DROPOUT_20PCT_COVERAGE_FLOOR = 0.60
DROPOUT_20PCT_EDGE_RATIO_FLOOR = 0.30
GUARD_OVERHEAD_CEILING = 0.50

CHUNK = 60


def _workload_trace(days: int = 2, period_s: float = 60.0) -> PowerTrace:
    n = int(days * 86400 / period_s)
    rng = np.random.default_rng(42)
    values = np.abs(rng.normal(220.0, 60.0, n))
    for start in range(120, n - 240, 210):
        values[start : start + 120] += rng.choice([0.0, 150.0, 900.0, 1500.0])
    return PowerTrace(values, period_s=period_s)


def _drive(trace: PowerTrace, plan: StreamFaultPlan | None,
           policy: GuardPolicy) -> tuple[StreamSession, dict]:
    """One guarded pass over ``trace``; returns (session, guard stats)."""
    session = StreamSession(
        StreamClock.of(trace),
        {name: make_stream_attack(name) for name in ("edges", "hmm")},
    )
    guard = FeedGuard(session, policy)
    feed = tagged_chunks(trace.values, CHUNK)
    if plan is not None:
        feed = inject_stream_faults(feed, plan)
    for at, part in feed:
        guard.push(part, at=at)
    session.finalize(guard=guard)
    return session, guard.stats.as_dict()


def _labels(session: StreamSession) -> np.ndarray:
    return session.attacks["hmm"].decoder.labels


def _n_edges(session: StreamSession) -> int:
    return len(session.attacks["edges"].detector.edges)


def corruption_sweep(trace: PowerTrace, clean: StreamSession) -> list[dict]:
    """NaN corruption scrubbed by hold-last: per-sample label agreement."""
    ref = _labels(clean)
    rows = []
    for rate in RATES:
        plan = StreamFaultPlan(seed=13, corrupt_rate=rate) if rate else None
        session, stats = _drive(
            trace, plan, GuardPolicy(value_policy="hold-last")
        )
        got = _labels(session)
        rows.append({
            "corrupt_rate": rate,
            "label_agreement": round(float(np.mean(got == ref)), 4),
            "edge_ratio": round(_n_edges(session) / max(1, _n_edges(clean)), 4),
            "quarantined_values": stats["quarantined_values"],
        })
    return rows


def dropout_sweep(trace: PowerTrace, clean: StreamSession) -> list[dict]:
    """Chunk dropout handled by resync: coverage and edge recovery."""
    n = len(trace)
    rows = []
    for rate in RATES:
        plan = StreamFaultPlan(seed=13, dropout_rate=rate) if rate else None
        session, stats = _drive(
            trace, plan, GuardPolicy(gap_policy="resync")
        )
        rows.append({
            "dropout_rate": rate,
            "label_coverage": round(len(_labels(session)) / n, 4),
            "edge_ratio": round(_n_edges(session) / max(1, _n_edges(clean)), 4),
            "gap_samples": stats["gap_samples"],
            "resyncs": stats["resyncs"],
        })
    return rows


def guard_overhead(trace: PowerTrace, reps: int = 3) -> dict:
    """Clean-replay wall clock: guarded vs bare session (best of reps)."""
    def bare() -> float:
        session = StreamSession(
            StreamClock.of(trace),
            {name: make_stream_attack(name) for name in ("edges", "hmm")},
        )
        t0 = time.perf_counter()
        for _, part in tagged_chunks(trace.values, CHUNK):
            session.push(part)
        session.finalize()
        return time.perf_counter() - t0

    def guarded() -> float:
        session = StreamSession(
            StreamClock.of(trace),
            {name: make_stream_attack(name) for name in ("edges", "hmm")},
        )
        guard = FeedGuard(session)
        t0 = time.perf_counter()
        for _, part in tagged_chunks(trace.values, CHUNK):
            guard.push(part)
        session.finalize(guard=guard)
        return time.perf_counter() - t0

    bare_s = min(bare() for _ in range(reps))
    guarded_s = min(guarded() for _ in range(reps))
    return {
        "bare_s": round(bare_s, 6),
        "guarded_s": round(guarded_s, 6),
        "overhead_frac": round(max(0.0, guarded_s / bare_s - 1.0), 4),
    }


def run_benchmarks(days: int = 2) -> dict:
    trace = _workload_trace(days=days)
    clean, _ = _drive(trace, None, GuardPolicy())
    return {
        "schema": "repro.bench_stream_degradation/1",
        "trace": {"days": days, "period_s": trace.period_s,
                  "samples": len(trace)},
        "chunk_samples": CHUNK,
        "corruption": corruption_sweep(trace, clean),
        "dropout": dropout_sweep(trace, clean),
        "guard_overhead": guard_overhead(trace),
    }


def write_report(doc: dict) -> str:
    out = os.environ.get(OUT_ENV, DEFAULT_OUT)
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2)
    return out


def _print_table(doc: dict) -> None:
    print(f"\n{'corrupt':>8} {'agree':>8} {'edges':>8}")
    for row in doc["corruption"]:
        print(f"{row['corrupt_rate']:>8.2f} {row['label_agreement']:>8.4f} "
              f"{row['edge_ratio']:>8.4f}")
    print(f"\n{'dropout':>8} {'cover':>8} {'edges':>8} {'resyncs':>8}")
    for row in doc["dropout"]:
        print(f"{row['dropout_rate']:>8.2f} {row['label_coverage']:>8.4f} "
              f"{row['edge_ratio']:>8.4f} {row['resyncs']:>8}")
    oh = doc["guard_overhead"]
    print(f"\nguard overhead: {oh['overhead_frac']:.1%} "
          f"({oh['bare_s']:.3f}s -> {oh['guarded_s']:.3f}s)")


def test_bench_stream_degradation():
    """Pytest entry: record the curves, assert the degradation floors."""
    doc = run_benchmarks()
    out = write_report(doc)
    _print_table(doc)
    print(f"wrote {out}")

    corrupt = {row["corrupt_rate"]: row for row in doc["corruption"]}
    dropout = {row["dropout_rate"]: row for row in doc["dropout"]}
    # rate 0.0 doubles as the clean-feed invariance pin
    assert corrupt[0.0]["label_agreement"] == 1.0
    assert corrupt[0.0]["edge_ratio"] == 1.0
    assert dropout[0.0]["label_coverage"] == 1.0
    assert dropout[0.0]["edge_ratio"] == 1.0
    assert corrupt[0.05]["label_agreement"] >= CORRUPT_5PCT_AGREEMENT_FLOOR
    assert dropout[0.2]["label_coverage"] >= DROPOUT_20PCT_COVERAGE_FLOOR
    assert dropout[0.2]["edge_ratio"] >= DROPOUT_20PCT_EDGE_RATIO_FLOOR
    assert (
        doc["guard_overhead"]["overhead_frac"] <= GUARD_OVERHEAD_CEILING
    ), "clean-feed guard scan should be nearly free"


if __name__ == "__main__":
    doc = run_benchmarks()
    out = write_report(doc)
    _print_table(doc)
    print(f"wrote {out}")
