"""Fig. 1 — power/occupancy overlay for Home-A and Home-B.

The paper overlays each home's 1-minute average power with its binary
occupancy over one day (8am-11pm) and argues that "periods of occupancy
correlate well with higher and more bursty energy usage".  The benchmark
regenerates the overlay series for both homes and quantifies the claim:
occupied minutes have substantially higher mean power and higher
sample-to-sample variability than unoccupied minutes, and a NIOM attack on
the same data lands in the paper's 70-90% accuracy band.
"""

import numpy as np

from bench_util import once, print_table
from repro.attacks import ThresholdNIOM, score_occupancy_attack
from repro.datasets import fig1_dataset
from repro.timeseries import SECONDS_PER_DAY, SECONDS_PER_HOUR


def _overlay_day(sim, day: int = 1):
    """The Fig. 1 series: (minute power, occupancy) for 8am-11pm of a day."""
    t0 = day * SECONDS_PER_DAY + 8 * SECONDS_PER_HOUR
    t1 = day * SECONDS_PER_DAY + 23 * SECONDS_PER_HOUR
    power = sim.metered.slice_time(t0, t1)
    occupancy = sim.occupancy.slice_time(t0, t1)
    return power, occupancy


def _contrast(sim) -> dict[str, float]:
    power = sim.metered
    occupancy = sim.occupancy.align_to(power)
    values = power.values
    occ = occupancy.values[: len(values)]
    hours = power.hours_of_day()
    awake = (hours >= 8.0) & (hours < 23.0)
    occupied = values[awake & (occ == 1)]
    empty = values[awake & (occ == 0)]
    diff = np.abs(np.diff(values))
    occ_diff = diff[(awake & (occ == 1))[:-1]]
    empty_diff = diff[(awake & (occ == 0))[:-1]]
    return {
        "occupied_mean_w": float(occupied.mean()),
        "empty_mean_w": float(empty.mean()),
        "occupied_burst_w": float(occ_diff.mean()),
        "empty_burst_w": float(empty_diff.mean()),
        "peak_kw": float(values.max() / 1000.0),
    }


def test_fig1_overlay(benchmark):
    home_a_sim, home_b_sim = fig1_dataset(n_days=7)

    def experiment():
        rows = []
        for label, sim in (("Home-A", home_a_sim), ("Home-B", home_b_sim)):
            power, occupancy = _overlay_day(sim)
            stats = _contrast(sim)
            attack = ThresholdNIOM().detect(sim.metered)
            scores = score_occupancy_attack(attack.occupancy, sim.occupancy)
            rows.append(
                [
                    label,
                    stats["peak_kw"],
                    stats["occupied_mean_w"],
                    stats["empty_mean_w"],
                    stats["occupied_mean_w"] / max(stats["empty_mean_w"], 1.0),
                    stats["occupied_burst_w"] / max(stats["empty_burst_w"], 1.0),
                    scores["accuracy"],
                    len(power),
                ]
            )
        return rows

    rows = once(benchmark, experiment)
    print_table(
        "Fig. 1 — occupancy vs power (paper: Home-A peaks ~3 kW, Home-B ~6 kW; "
        "occupied periods visibly higher & burstier; NIOM accuracy 70-90%)",
        [
            "home",
            "peak_kW",
            "occ_mean_W",
            "empty_mean_W",
            "mean_ratio",
            "burst_ratio",
            "niom_acc",
            "overlay_pts",
        ],
        rows,
    )
    for row in rows:
        assert row[4] > 1.5, f"{row[0]}: occupied mean should clearly exceed empty"
        assert row[5] > 1.5, f"{row[0]}: occupied burstiness should clearly exceed empty"
        assert 0.60 <= row[6] <= 0.97, f"{row[0]}: NIOM accuracy out of band"
    assert rows[1][1] > rows[0][1], "Home-B should peak higher than Home-A"
