"""Fleet engine scaling: worker counts, executor backends, payload channels.

The fleet engine's claims are operational rather than figure-shaped: the
same population must (a) score identically no matter how it is executed,
(b) cost nearly nothing to re-sweep thanks to the content-addressed
cache, and (c) be able to spread across worker processes.
``test_fleet_scaling`` measures all three on one 16-home fleet.

``test_fleet_backend_axis`` extends the matrix along the ``--backend``
axis introduced by the executor-backend layer
(:mod:`repro.fleet.backends`):

* homes/sec for every backend on a 200-home fleet (the ``batched``
  backend amortizes per-job dispatch; reported, not asserted — a 1-CPU
  CI box can invert any wall-clock ranking);
* the trace hand-off duel: with ``keep_traces`` every job ships its
  metered trace to the supervisor.  ``process`` pickles it through the
  result pipe — the supervisor process pays to unpickle those bytes
  *twice* (once in the pool's result plumbing, once in ``payload.recv``)
  — while ``shmem`` parks the samples in a named segment and ships a
  ~300-byte descriptor, so the supervisor pays one memcpy.  Per-job
  payload-transfer cost is therefore measured as **supervisor-process
  CPU time per job** (``time.process_time``), the quantity that caps
  how many workers one supervisor can feed.  The duel runs 200
  trace-shipping jobs through the real fleet supervisor
  (:meth:`FleetRunner.run_jobs`) at a multi-MB trace size, where the
  asserted claim holds robustly; at this fleet's ~34 KB metered traces
  the fixed segment cost (~0.3 ms of syscalls + resource-tracker
  traffic) makes pickling cheaper — the crossover sits near 1 MB/trace,
  and the fleet-scale numbers for both are recorded alongside.

Writes a machine-readable ``BENCH_fleet_backends.json`` (override the
path with ``REPRO_BENCH_FLEET_BACKENDS_OUT``).

Speedup is reported but not asserted: CI boxes (and this container) may
expose a single CPU, where a process pool legitimately loses to serial.
"""

import json
import os
import tempfile
import time
from dataclasses import dataclass

import numpy as np

from bench_util import once, print_table
from repro.fleet import (
    BACKENDS,
    FleetReport,
    FleetRunner,
    FleetSpec,
    materialize_trace,
    new_run_prefix,
    pack_trace,
    run_fleet,
    segment_name,
)
from repro.timeseries import PowerTrace

OUT_ENV = "REPRO_BENCH_FLEET_BACKENDS_OUT"
DEFAULT_OUT = "BENCH_fleet_backends.json"

SPEC = FleetSpec(n_homes=16, days=2, seed=11, defenses=("dp-laplace", "nill"))

#: 200 homes, baseline-only scoring, one detector: cheap enough that
#: dispatch and payload overheads are a visible fraction of the run
SCALE_SPEC = FleetSpec(
    n_homes=200, days=1, seed=17, defenses=(), detectors=("threshold-15m",)
)

#: the fleet-scale hand-off duel: 3-day metered traces (~34 KB each)
PAYLOAD_SPEC = FleetSpec(
    n_homes=200, days=3, seed=23, defenses=(), detectors=("threshold-15m",)
)

#: the supervisor-CPU duel: 200 jobs each shipping a 4 MB trace through
#: the fleet supervisor — payload transfer dominates, simulation absent
SHIP_JOBS = 200
SHIP_SAMPLES = 524_288
WORKERS = 4


@dataclass(frozen=True)
class ShipJob:
    """A supervised job that only ships one trace back (no simulation)."""

    index: int
    channel: str
    name: str = ""
    preset: str = "ship"
    attempt: int = 0


@dataclass(frozen=True)
class ShipResult:
    index: int
    payload: object
    telemetry: object = None


_SHIP_TRACE = None


def _ship_trace() -> PowerTrace:
    """The duel's 4 MB trace, built once per worker process."""
    global _SHIP_TRACE
    if _SHIP_TRACE is None:
        values = np.random.default_rng(0).normal(500.0, 100.0, SHIP_SAMPLES)
        _SHIP_TRACE = PowerTrace(values, 1.0, 0.0)
    return _SHIP_TRACE


def run_ship_job(job: ShipJob) -> ShipResult:
    trace = _ship_trace()
    if job.channel == "shmem":
        payload = pack_trace(trace, "shmem", name=job.name)
    else:
        payload = pack_trace(trace, "inline")
    return ShipResult(index=job.index, payload=payload)


def test_fleet_scaling(benchmark):
    timings: dict[str, float] = {}
    reports: dict[str, FleetReport] = {}

    def experiment():
        with tempfile.TemporaryDirectory() as cache_dir:
            t0 = time.perf_counter()
            serial = run_fleet(SPEC, workers=1)
            timings["serial"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            parallel = run_fleet(SPEC, workers=4, chunksize=2)
            timings["parallel(4)"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            cold = run_fleet(SPEC, workers=1, cache_dir=cache_dir)
            timings["cache cold"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            warm = run_fleet(SPEC, workers=1, cache_dir=cache_dir)
            timings["cache warm"] = time.perf_counter() - t0

            reports["serial"] = FleetReport.from_result(serial)
            reports["parallel"] = FleetReport.from_result(parallel)
            reports["warm"] = FleetReport.from_result(warm)
            return warm

    warm = once(benchmark, experiment)

    rows = [
        [mode, elapsed, SPEC.n_homes / elapsed if elapsed > 0 else float("inf")]
        for mode, elapsed in timings.items()
    ]
    print_table(
        f"fleet scaling — {SPEC.n_homes} homes x {SPEC.days} days "
        f"({os.cpu_count()} cpus)",
        ["mode", "seconds", "homes/s"],
        rows,
    )
    print(f"parallel speedup: {timings['serial'] / timings['parallel(4)']:.2f}x")
    print(f"warm-cache speedup: {timings['cache cold'] / timings['cache warm']:.1f}x")
    print(f"warm-cache hit rate: {warm.cache_stats.hit_rate:.0%}")

    # correctness claims: identical reports however executed, and a warm
    # re-sweep that is all hits and much cheaper than the cold pass
    assert reports["serial"].comparable(reports["parallel"])
    assert reports["serial"].comparable(reports["warm"])
    assert warm.cache_stats.hit_rate >= 0.9
    assert timings["cache warm"] < timings["cache cold"] / 2


def _fleet_handoff(backend: str) -> dict:
    """One keep_traces fleet run; returns its payload-channel accounting."""
    cpu0 = time.process_time()
    result = run_fleet(
        PAYLOAD_SPEC, workers=WORKERS, backend=backend,
        keep_traces=True, telemetry=True,
    )
    supervisor_cpu = time.process_time() - cpu0
    assert result.ok
    timers = result.telemetry.timers
    pack = timers.get("payload.pack")
    recv = timers.get("payload.recv")
    return {
        "backend": backend,
        "elapsed_s": round(result.elapsed_s, 3),
        "supervisor_cpu_s": round(supervisor_cpu, 3),
        "pack_s": round(pack.total_s, 4) if pack else None,
        "recv_s": round(recv.total_s, 4) if recv else None,
        "payload_bytes": result.telemetry.counters.get("payload.bytes", 0),
    }


def _ship_duel(channel: str) -> dict:
    """200 trace-shipping jobs through the real fleet supervisor."""
    prefix = new_run_prefix()
    jobs = [
        ShipJob(
            index=i,
            channel=channel,
            name=segment_name(prefix, i, 0) if channel == "shmem" else "",
        )
        for i in range(SHIP_JOBS)
    ]
    landed = []

    def land(result: ShipResult) -> None:
        landed.append(materialize_trace(result.payload))

    runner = FleetRunner(workers=WORKERS)
    cpu0 = time.process_time()
    t0 = time.perf_counter()
    outcome = runner.run_jobs(jobs, run_ship_job, on_result=land)
    wall = time.perf_counter() - t0
    supervisor_cpu = time.process_time() - cpu0
    assert outcome.ok
    assert len(landed) == SHIP_JOBS
    assert all(len(t.values) == SHIP_SAMPLES for t in landed)
    return {
        "channel": channel,
        "wall_s": round(wall, 3),
        "supervisor_cpu_s": round(supervisor_cpu, 3),
        "supervisor_cpu_ms_per_job": round(supervisor_cpu / SHIP_JOBS * 1e3, 3),
        "trace_mb": round(SHIP_SAMPLES * 8 / 1e6, 1),
    }


def test_fleet_backend_axis(benchmark):
    scale: dict[str, dict] = {}
    handoff: dict[str, dict] = {}
    duel: dict[str, dict] = {}

    def experiment():
        digests = {}
        for backend in BACKENDS:
            workers = 1 if backend == "serial" else WORKERS
            t0 = time.perf_counter()
            result = run_fleet(SCALE_SPEC, workers=workers, backend=backend)
            elapsed = time.perf_counter() - t0
            assert result.ok
            digests[backend] = [h.trace_digest for h in result.homes]
            scale[backend] = {
                "workers": workers,
                "elapsed_s": round(elapsed, 3),
                "homes_per_s": round(SCALE_SPEC.n_homes / elapsed, 1),
            }
        # parity at scale: 200 homes agree bit-for-bit on every backend
        for backend in BACKENDS:
            assert digests[backend] == digests["process"], backend

        handoff["inline"] = _fleet_handoff("process")
        handoff["shmem"] = _fleet_handoff("shmem")
        duel["inline"] = _ship_duel("inline")
        duel["shmem"] = _ship_duel("shmem")
        return digests

    once(benchmark, experiment)

    print_table(
        f"backend scaling — {SCALE_SPEC.n_homes} homes x {SCALE_SPEC.days} "
        f"day(s) ({os.cpu_count()} cpus)",
        ["backend", "workers", "seconds", "homes/s"],
        [
            [name, row["workers"], row["elapsed_s"], row["homes_per_s"]]
            for name, row in scale.items()
        ],
    )
    print_table(
        f"fleet trace hand-off — {PAYLOAD_SPEC.n_homes} homes x "
        f"{PAYLOAD_SPEC.days} days, keep_traces (~34 KB/trace)",
        ["channel", "wall s", "supervisor cpu s", "pack s", "recv s", "MB"],
        [
            [
                name,
                row["elapsed_s"],
                row["supervisor_cpu_s"],
                row["pack_s"],
                row["recv_s"],
                round(row["payload_bytes"] / 1e6, 1),
            ]
            for name, row in handoff.items()
        ],
    )
    print_table(
        f"payload transfer duel — {SHIP_JOBS} jobs x "
        f"{duel['inline']['trace_mb']} MB through the fleet supervisor",
        ["channel", "wall s", "supervisor cpu s", "cpu ms/job"],
        [
            [
                name,
                row["wall_s"],
                row["supervisor_cpu_s"],
                row["supervisor_cpu_ms_per_job"],
            ]
            for name, row in duel.items()
        ],
    )
    saving = (
        duel["inline"]["supervisor_cpu_ms_per_job"]
        / duel["shmem"]["supervisor_cpu_ms_per_job"]
        if duel["shmem"]["supervisor_cpu_ms_per_job"]
        else float("inf")
    )
    print(f"shmem supervisor-cpu saving over inline pickling: {saving:.2f}x")

    doc = {
        "schema": "repro.bench_fleet_backends/1",
        "cpus": os.cpu_count(),
        "scale_spec": {
            "n_homes": SCALE_SPEC.n_homes,
            "days": SCALE_SPEC.days,
            "seed": SCALE_SPEC.seed,
        },
        "backends": scale,
        "fleet_handoff": handoff,
        "payload_duel": duel,
        "shmem_supervisor_cpu_saving": round(saving, 2),
    }
    out = os.environ.get(OUT_ENV, DEFAULT_OUT)
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")

    # the acceptance claim: per-job payload transfer costs the supervisor
    # process less CPU through a named segment than through the pickled
    # result pipe (which unpickles the same bytes twice)
    assert (
        duel["shmem"]["supervisor_cpu_s"] < duel["inline"]["supervisor_cpu_s"]
    )
