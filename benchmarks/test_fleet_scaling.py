"""Fleet engine scaling: serial vs parallel wall-clock and cache hit-rate.

The fleet engine's claims are operational rather than figure-shaped: the
same population must (a) score identically no matter how it is executed,
(b) cost nearly nothing to re-sweep thanks to the content-addressed
cache, and (c) be able to spread across worker processes.  This benchmark
measures all three on one 16-home fleet and prints the wall-clocks
side by side.

Speedup is reported but not asserted: CI boxes (and this container) may
expose a single CPU, where a process pool legitimately loses to serial.
"""

import os
import tempfile
import time

from bench_util import once, print_table
from repro.fleet import FleetReport, FleetSpec, run_fleet

SPEC = FleetSpec(n_homes=16, days=2, seed=11, defenses=("dp-laplace", "nill"))


def test_fleet_scaling(benchmark):
    timings: dict[str, float] = {}
    reports: dict[str, FleetReport] = {}

    def experiment():
        with tempfile.TemporaryDirectory() as cache_dir:
            t0 = time.perf_counter()
            serial = run_fleet(SPEC, workers=1)
            timings["serial"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            parallel = run_fleet(SPEC, workers=4, chunksize=2)
            timings["parallel(4)"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            cold = run_fleet(SPEC, workers=1, cache_dir=cache_dir)
            timings["cache cold"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            warm = run_fleet(SPEC, workers=1, cache_dir=cache_dir)
            timings["cache warm"] = time.perf_counter() - t0

            reports["serial"] = FleetReport.from_result(serial)
            reports["parallel"] = FleetReport.from_result(parallel)
            reports["warm"] = FleetReport.from_result(warm)
            return warm

    warm = once(benchmark, experiment)

    rows = [
        [mode, elapsed, SPEC.n_homes / elapsed if elapsed > 0 else float("inf")]
        for mode, elapsed in timings.items()
    ]
    print_table(
        f"fleet scaling — {SPEC.n_homes} homes x {SPEC.days} days "
        f"({os.cpu_count()} cpus)",
        ["mode", "seconds", "homes/s"],
        rows,
    )
    print(f"parallel speedup: {timings['serial'] / timings['parallel(4)']:.2f}x")
    print(f"warm-cache speedup: {timings['cache cold'] / timings['cache warm']:.1f}x")
    print(f"warm-cache hit rate: {warm.cache_stats.hit_rate:.0%}")

    # correctness claims: identical reports however executed, and a warm
    # re-sweep that is all hits and much cheaper than the cold pass
    assert reports["serial"].comparable(reports["parallel"])
    assert reports["serial"].comparable(reports["warm"])
    assert warm.cache_stats.hit_rate >= 0.9
    assert timings["cache warm"] < timings["cache cold"] / 2
