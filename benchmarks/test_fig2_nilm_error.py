"""Fig. 2 — disaggregation error: PowerPlay vs FHMM on five devices.

The paper compares PowerPlay's tracking error factor against a
conventional FHMM NILM baseline for Toaster, Fridge, Freezer, Dryer, and
HRV, on noisy whole-home data.  The shape to hold: PowerPlay's error is
substantially lower for the small/ambiguous loads; the clothes dryer is
large enough that both approaches track it reasonably; error factors near
or above 1.0 mean the method is no better than silence.
"""

import numpy as np

from bench_util import once, print_table
from repro.attacks import (
    FHMMConfig,
    FHMMDisaggregator,
    PowerPlayTracker,
    align_truth_to_meter,
    disaggregation_error,
    fig2_signatures,
)
from repro.datasets import fig2_dataset
from repro.home import FIG2_DEVICES
from repro.timeseries import SECONDS_PER_DAY

TRAIN_DAYS = 7
TOTAL_DAYS = 14


def test_fig2_nilm_error(benchmark):
    sim = fig2_dataset(n_days=TOTAL_DAYS)
    split = TRAIN_DAYS * SECONDS_PER_DAY
    end = TOTAL_DAYS * SECONDS_PER_DAY

    def experiment():
        # PowerPlay needs no training: a-priori load models, full trace
        powerplay = PowerPlayTracker(fig2_signatures()).track(sim.metered)
        pp_errors = {}
        for device in FIG2_DEVICES:
            truth = align_truth_to_meter(sim.appliance_traces[device], sim.metered)
            pp_errors[device] = disaggregation_error(powerplay.appliance(device), truth)

        # FHMM learns from a sub-metered training week, tests on week two
        train = {
            d: sim.appliance_traces[d].slice_time(0, split) for d in FIG2_DEVICES
        }
        test_meter = sim.metered.slice_time(split, end)
        fhmm = FHMMDisaggregator(
            FHMMConfig(states_per_appliance={"dryer": 3}), rng=0
        ).fit(train)
        decoded = fhmm.disaggregate(test_meter)
        fhmm_errors = {}
        for device in FIG2_DEVICES:
            truth = align_truth_to_meter(
                sim.appliance_traces[device].slice_time(split, end), test_meter
            )
            fhmm_errors[device] = disaggregation_error(decoded.appliance(device), truth)
        return pp_errors, fhmm_errors

    pp_errors, fhmm_errors = once(benchmark, experiment)

    paper_pp = {"toaster": 0.18, "fridge": 0.18, "freezer": 0.20, "dryer": 0.10, "hrv": 0.25}
    paper_fhmm = {"toaster": 1.10, "fridge": 0.90, "freezer": 1.05, "dryer": 0.15, "hrv": 0.75}
    rows = [
        [
            device.capitalize(),
            pp_errors[device],
            fhmm_errors[device],
            paper_pp[device],
            paper_fhmm[device],
        ]
        for device in FIG2_DEVICES
    ]
    print_table(
        "Fig. 2 — disaggregation error factor (lower is better; ~1.0 = as bad "
        "as predicting zero)",
        ["device", "PowerPlay", "FHMM", "paper:PowerPlay", "paper:FHMM"],
        rows,
    )

    small_loads = ("toaster", "fridge", "freezer", "hrv")
    wins = sum(1 for d in small_loads if pp_errors[d] < fhmm_errors[d])
    assert wins >= 3, "PowerPlay should beat FHMM on most small loads"
    assert pp_errors["dryer"] < 0.5, "both methods should track the big dryer"
    assert np.mean(list(pp_errors.values())) < np.mean(list(fhmm_errors.values()))
