"""Fig. 5 — solar site localization: SunSpot vs Weatherman on ten sites.

The paper localizes ten anonymous solar sites in different states using
(i) the solar signature on 1-minute data (SunSpot) and (ii) the weather
signature on 1-hour data (Weatherman).  The shape to hold: SunSpot is
accurate for most sites but a few exhibit high inaccuracy (skewed panels,
obstructed horizons, persistent clouds), while Weatherman localizes
*every* site to within a few kilometres despite the 60x coarser data.
"""

import numpy as np

from bench_util import once, print_table
from repro.datasets import fig5_dataset
from repro.solar import SunSpot, Weatherman


def test_fig5_localization(benchmark):
    data = fig5_dataset(n_days=365)

    def experiment():
        sunspot = SunSpot()
        weatherman = Weatherman(data.stations)
        results = []
        for site in data.sites:
            ss_err = sunspot.localize(data.minute_traces[site.site_id]).error_km(
                site.location
            )
            wm_err = weatherman.localize(data.hourly_traces[site.site_id]).error_km(
                site.location
            )
            results.append((site.site_id, ss_err, wm_err))
        return results

    results = once(benchmark, experiment)
    rows = [
        [site_id, ss, wm, "SunSpot outlier" if ss > 100.0 else ""]
        for site_id, ss, wm in results
    ]
    print_table(
        "Fig. 5 — localization error in km (paper: SunSpot within a few km "
        "for most sites with a few high-inaccuracy outliers; Weatherman "
        "within a few km for ALL sites on 1-hour data)",
        ["site", "SunSpot(1min)_km", "Weatherman(1h)_km", "note"],
        rows,
    )

    ss_errors = np.asarray([r[1] for r in results])
    wm_errors = np.asarray([r[2] for r in results])
    # Weatherman: within a few km for EVERY site, on 60x coarser data
    assert wm_errors.max() < 30.0, "Weatherman should localize every site closely"
    # SunSpot: accurate for a solid group of sites...
    assert (ss_errors < 60.0).sum() >= 4, "several sites should localize well"
    assert np.median(ss_errors) < 150.0
    # ...but uneven across sites — the Fig. 5 outlier pattern (cloudy
    # climates and skewed arrays blow the solar-signature fit up)
    assert ss_errors.max() > 100.0
    # Weatherman beats SunSpot overall despite 60x coarser data
    assert np.median(wm_errors) < np.median(ss_errors)
