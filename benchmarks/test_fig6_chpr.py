"""Fig. 6 — CHPr: masking occupancy with a water heater.

The paper shows a week of a home's demand with ground-truth occupancy,
then the same week with a CHPr-enabled 50-gallon water heater.  Its
occupancy-detection attack scores MCC 0.44 on the original data and 0.045
on the CHPr-modified data — a factor of ~10, close to random prediction.
The shape to hold here: a strong attack on the original week (MCC ~0.4+),
collapsing by a large factor under CHPr, with hot-water comfort preserved
and roughly no extra energy (the tank stores heat it must deliver anyway).
"""

import numpy as np

from bench_util import once, print_table
from repro.core import occupancy_privacy
from repro.datasets import fig6_dataset
from repro.defenses import apply_chpr


def test_fig6_chpr(benchmark):
    sim = fig6_dataset(n_days=7)

    def experiment():
        before = occupancy_privacy(sim.metered, sim.occupancy)
        outcome = apply_chpr(sim, rng=2027)
        after = occupancy_privacy(outcome.visible, sim.occupancy)
        return before, after, outcome

    before, after, outcome = once(benchmark, experiment)

    rows = []
    for name in before.per_detector_mcc:
        rows.append(
            [
                name,
                before.per_detector_mcc[name],
                after.per_detector_mcc[name],
                before.per_detector_mcc[name] / max(after.per_detector_mcc[name], 1e-3),
            ]
        )
    rows.append(
        [
            "WORST-CASE",
            before.worst_case_mcc,
            after.worst_case_mcc,
            before.worst_case_mcc / max(after.worst_case_mcc, 1e-3),
        ]
    )
    print_table(
        "Fig. 6 — occupancy attack MCC, original vs CHPr "
        "(paper: 0.44 -> 0.045, ~10x; 0 = random prediction)",
        ["detector", "original_mcc", "chpr_mcc", "reduction_x"],
        rows,
    )
    print(
        f"CHPr cost: extra energy {outcome.extra_energy_kwh:+.1f} kWh/week, "
        f"comfort violations {outcome.comfort_violation_fraction:.2%} of samples"
    )

    assert before.worst_case_mcc > 0.40, "attack must work on the original week"
    assert after.worst_case_mcc < before.worst_case_mcc / 2.5, "CHPr must break it"
    assert outcome.comfort_violation_fraction < 0.02, "hot water must be served"
    heater_kwh = sim.appliance_traces["water_heater"].energy_kwh()
    assert abs(outcome.extra_energy_kwh) < 0.35 * heater_kwh, "CHPr is ~free"
