"""Ablation — meter reporting granularity vs attack power.

Sec. II-A notes smart meters record "at much finer granularities, e.g.
every few minutes rather than once per month", and the DESIGN.md calls out
granularity as the central data-collection knob: the same defense debate
(and the DOE Voluntary Code of Conduct) hinges on how much resolution is
released.  This ablation sweeps the reporting interval from 1 minute to
1 hour and measures how NIOM and NILM degrade.
"""

import numpy as np

from bench_util import once, print_table
from repro.attacks import (
    PowerPlayTracker,
    ThresholdNIOM,
    align_truth_to_meter,
    disaggregation_error,
    fig2_signatures,
    score_occupancy_attack,
)
from repro.datasets import fig2_dataset

RESOLUTIONS_S = (60.0, 300.0, 900.0, 3600.0)


def test_meter_resolution_ablation(benchmark):
    sim = fig2_dataset(n_days=14)

    def experiment():
        from repro.core import occupancy_privacy

        rows = []
        for period in RESOLUTIONS_S:
            metered = sim.metered if period == 60.0 else sim.metered.resample(period)
            privacy = occupancy_privacy(metered, sim.occupancy)
            niom = {
                "mcc": privacy.worst_case_mcc,
                "accuracy": privacy.worst_case_accuracy,
            }
            tracker = PowerPlayTracker(fig2_signatures())
            result = tracker.track(metered)
            fridge_truth = align_truth_to_meter(
                sim.appliance_traces["fridge"], metered
            )
            fridge_err = disaggregation_error(result.appliance("fridge"), fridge_truth)
            dryer_truth = align_truth_to_meter(sim.appliance_traces["dryer"], metered)
            dryer_err = disaggregation_error(result.appliance("dryer"), dryer_truth)
            rows.append(
                [f"{period / 60:.0f} min", niom["mcc"], niom["accuracy"], fridge_err, dryer_err]
            )
        return rows

    rows = once(benchmark, experiment)
    print_table(
        "Ablation — attack power vs meter resolution (coarsening destroys "
        "appliance-level NILM long before it hides occupancy — the paper's "
        "point that even 'coarse-grained' total readings reveal activity)",
        ["interval", "niom_mcc", "niom_acc", "fridge_err", "dryer_err"],
        rows,
    )
    mccs = [r[1] for r in rows]
    fridge = [r[3] for r in rows]
    # NILM on a small cyclic load collapses with coarsening...
    assert fridge[-1] > fridge[0] + 0.2
    # ...while occupancy detection survives even hourly data
    assert mccs[-1] > 0.2
    assert all(m > 0.0 for m in mccs)
