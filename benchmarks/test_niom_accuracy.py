"""Sec. II-A claim — NIOM accuracy of 70-90% "for a range of homes".

Prior work (refs. [1], [14]) reports occupancy-detection accuracies of
70-90% across a range of homes.  This benchmark runs the NIOM detector
ensemble over a population of randomized households and checks that the
best-attack accuracy distribution lands in that band — the quantitative
backing for the paper's statement about how much occupancy information a
smart meter leaks.
"""

import numpy as np

from bench_util import once, print_table
from repro.core import occupancy_privacy
from repro.datasets import population_dataset


def test_niom_accuracy_band(benchmark):
    homes = population_dataset(n_homes=10, n_days=10)

    def experiment():
        results = []
        for sim in homes:
            score = occupancy_privacy(sim.metered, sim.occupancy)
            results.append(
                (
                    sim.config.name,
                    score.worst_case_accuracy,
                    score.worst_case_mcc,
                    sim.occupancy.fraction_true(),
                )
            )
        return results

    results = once(benchmark, experiment)
    rows = [[n, a, m, f] for n, a, m, f in results]
    accs = np.asarray([r[1] for r in rows])
    rows.append(["MEAN", float(accs.mean()), float(np.mean([r[2] for r in rows[:-1]])), ""])
    print_table(
        "Sec. II-A — NIOM accuracy across a population "
        "(paper: 70-90% for a range of homes)",
        ["home", "best_accuracy", "best_mcc", "occupied_frac"],
        rows,
    )
    assert 0.70 <= accs.mean() <= 0.92, f"mean accuracy {accs.mean():.3f} out of band"
    assert (accs > 0.6).all(), "every home should leak substantial occupancy"
