"""Pre-vectorization reference implementations of the appliance simulators.

These are the original per-sample/per-cycle loop bodies of
``CyclicAppliance.simulate``, ``ContinuousAppliance.simulate`` and
``LightingAppliance.simulate``, kept verbatim as *reference semantics* for
the vectorized kernels that replaced them (see ``docs/PERFORMANCE.md``).

The contract is strict: given the same appliance, occupancy trace and RNG
seed, the vectorized simulators must consume the generator stream
identically and produce **bitwise-identical** traces.  (Changing either
would silently invalidate every seeded trace digest, cached fleet result
and measured table in EXPERIMENTS.md.)  ``tests/test_kernel_equivalence.py``
pins the production simulators to these functions across seeds, periods
and durations; ``benchmarks/bench_kernels.py`` times the pairs.
"""

from __future__ import annotations

import numpy as np

from ..timeseries import BinaryTrace, PowerTrace, SECONDS_PER_DAY, SECONDS_PER_HOUR


def _to_trace(occupancy: BinaryTrace, values: np.ndarray) -> PowerTrace:
    return PowerTrace(
        np.maximum(values, 0.0), occupancy.period_s, occupancy.start_s, "W"
    )


def simulate_cyclic_loop(
    app, occupancy: BinaryTrace, rng: np.random.Generator
) -> PowerTrace:
    """Original per-cycle ``while t < n * period`` loop of CyclicAppliance."""
    values = np.zeros(len(occupancy))
    period = occupancy.period_s
    n = len(values)
    t = -rng.uniform(0.0, (app.on_minutes + app.off_minutes) * 60.0)
    while t < n * period:
        on_s = app.on_minutes * 60.0 * (1.0 + rng.uniform(-app.jitter, app.jitter))
        off_s = app.off_minutes * 60.0 * (1.0 + rng.uniform(-app.jitter, app.jitter))
        i0 = max(0, int(np.ceil(t / period)))
        i1 = min(n, int(np.ceil((t + on_s) / period)))
        if i1 > i0:
            values[i0:i1] = app.on_power_w
            if app.spike_power_w > 0:
                frac = min(1.0, app.spike_seconds / period)
                values[i0] += (app.spike_power_w - app.on_power_w) * frac
        t += on_s + off_s
    if app.noise_w > 0:
        on_mask = values > 0
        values[on_mask] += rng.normal(0.0, app.noise_w, on_mask.sum())
    return _to_trace(occupancy, values)


def simulate_continuous_loop(
    app, occupancy: BinaryTrace, rng: np.random.Generator
) -> PowerTrace:
    """Original per-boost loop of ContinuousAppliance."""
    values = np.full(len(occupancy), app.base_power_w)
    period = occupancy.period_s
    if app.boost_power_w > app.base_power_w:
        n_days = max(1, int(np.ceil(occupancy.duration_s / SECONDS_PER_DAY)))
        n_boosts = rng.poisson(app.boosts_per_day * n_days)
        for _ in range(n_boosts):
            start = rng.uniform(0.0, occupancy.duration_s)
            i0 = int(start / period)
            i1 = min(len(values), i0 + max(1, int(app.boost_minutes * 60.0 / period)))
            values[i0:i1] = app.boost_power_w
    if app.noise_w > 0:
        values += rng.normal(0.0, app.noise_w, len(values))
    return _to_trace(occupancy, values)


def simulate_lighting_loop(
    app, occupancy: BinaryTrace, rng: np.random.Generator
) -> PowerTrace:
    """Original per-sample modulation loop of LightingAppliance."""
    hours = (occupancy.times() % SECONDS_PER_DAY) / SECONDS_PER_HOUR
    weight = app.darkness_weight(hours) * occupancy.values
    modulation = np.empty(len(hours))
    level = 0.7
    change_probability = occupancy.period_s / 1800.0  # ~ every 30 min
    for i in range(len(hours)):
        if rng.uniform() < change_probability:
            level = float(np.clip(level + rng.uniform(-0.15, 0.15), 0.3, 1.0))
        modulation[i] = level
    values = app.max_power_w * weight * modulation
    values += rng.normal(0.0, app.noise_w, len(values)) * (values > 0)
    return _to_trace(occupancy, values)
