"""Appliance load models for the household simulator.

The paper's NILM discussion (Sec. II-A) builds on the empirical load
taxonomy of Barker et al. (IGCC'13, ref. [18]): household loads are
*resistive* (flat draw while on: toasters, kettles, resistive heaters),
*inductive* (motor loads with a startup transient: compressors, fans,
pumps), *non-linear* (electronics with fluctuating draw: TVs, computers,
microwaves), or *cyclical* (thermostatically controlled loads that duty-cycle
regardless of occupancy: refrigerators, freezers).  PowerPlay's a-priori
appliance models (:mod:`repro.attacks.nilm.powerplay`) are parameterized in
exactly these terms, so the simulator and the attack share a vocabulary
without sharing state.

Two behavioural categories matter for NIOM:

* **background** appliances run regardless of occupancy (fridge, freezer,
  HRV, water heater) — they are the confounders a NIOM detector must filter;
* **interactive** appliances only run when someone is home and operates them
  (microwave, toaster, lights, TV, dryer, cooktop) — they carry the
  occupancy side-channel.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..timeseries import BinaryTrace, PowerTrace, SECONDS_PER_DAY, SECONDS_PER_HOUR


@dataclass(frozen=True)
class TimeOfDayAffinity:
    """Mixture-of-Gaussians preference over hour-of-day for appliance use.

    ``peaks`` are (hour, weight, std_hours) triples; sampling picks a peak by
    weight and draws an hour around it (wrapped into [0, 24)).
    """

    peaks: tuple[tuple[float, float, float], ...]

    def __post_init__(self) -> None:
        if not self.peaks:
            raise ValueError("affinity needs at least one peak")
        for hour, weight, std in self.peaks:
            if not 0.0 <= hour < 24.0:
                raise ValueError(f"peak hour {hour} outside [0, 24)")
            if weight <= 0 or std <= 0:
                raise ValueError("peak weight and std must be positive")

    def sample_hour(self, rng: np.random.Generator) -> float:
        weights = np.asarray([w for _, w, _ in self.peaks])
        weights = weights / weights.sum()
        idx = rng.choice(len(self.peaks), p=weights)
        hour, _, std = self.peaks[idx]
        return float((rng.normal(hour, std)) % 24.0)

    def density(self, hours: np.ndarray) -> np.ndarray:
        """Unnormalized preference density at the given hours-of-day."""
        out = np.zeros_like(hours, dtype=float)
        for hour, weight, std in self.peaks:
            # wrap-around distance on the 24h circle
            delta = np.abs(hours - hour)
            delta = np.minimum(delta, 24.0 - delta)
            out += weight * np.exp(-0.5 * (delta / std) ** 2)
        return out


ANYTIME = TimeOfDayAffinity(((12.0, 1.0, 8.0),))
MORNING = TimeOfDayAffinity(((7.5, 1.0, 1.2),))
EVENING = TimeOfDayAffinity(((18.5, 1.0, 1.8),))
MEALS = TimeOfDayAffinity(((7.5, 0.8, 1.0), (12.5, 0.6, 1.0), (18.5, 1.0, 1.2)))
NIGHT_LEISURE = TimeOfDayAffinity(((20.0, 1.0, 2.0),))


class Appliance(ABC):
    """Base class: something that turns electricity into a power trace."""

    def __init__(self, name: str, background: bool) -> None:
        if not name:
            raise ValueError("appliance needs a name")
        self.name = name
        self.background = background

    @abstractmethod
    def simulate(self, occupancy: BinaryTrace, rng: np.random.Generator) -> PowerTrace:
        """Render this appliance's power on the occupancy trace's clock."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "background" if self.background else "interactive"
        return f"<{type(self).__name__} {self.name!r} ({kind})>"


def _empty_like(occupancy: BinaryTrace) -> np.ndarray:
    return np.zeros(len(occupancy))


def _to_trace(occupancy: BinaryTrace, values: np.ndarray) -> PowerTrace:
    return PowerTrace(
        np.maximum(values, 0.0), occupancy.period_s, occupancy.start_s, "W"
    )


# ---------------------------------------------------------------------------
# Cyclical background loads (fridge, freezer)
# ---------------------------------------------------------------------------
class CyclicAppliance(Appliance):
    """Thermostatic duty-cycling load: on/off cycles independent of occupancy.

    Compressor loads also carry a short inductive startup spike at the
    beginning of each on-cycle — one of the identifiable features PowerPlay
    keys on.
    """

    def __init__(
        self,
        name: str,
        on_power_w: float,
        on_minutes: float,
        off_minutes: float,
        spike_power_w: float = 0.0,
        spike_seconds: float = 3.0,
        jitter: float = 0.2,
        noise_w: float = 3.0,
    ) -> None:
        super().__init__(name, background=True)
        if on_power_w <= 0 or on_minutes <= 0 or off_minutes <= 0:
            raise ValueError("powers and durations must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.on_power_w = on_power_w
        self.on_minutes = on_minutes
        self.off_minutes = off_minutes
        self.spike_power_w = spike_power_w
        self.spike_seconds = spike_seconds
        self.jitter = jitter
        self.noise_w = noise_w

    def simulate(self, occupancy: BinaryTrace, rng: np.random.Generator) -> PowerTrace:
        # Vectorized port of the original per-cycle loop
        # (repro.home._reference.simulate_cyclic_loop).  Durations are
        # drawn in chunks sized to a *lower bound* on the cycles the loop
        # was still guaranteed to draw, so the RNG stream is consumed
        # identically and the trace is bitwise-unchanged.
        values = _empty_like(occupancy)
        period = occupancy.period_s
        n = len(values)
        end = n * period
        cycle_s = (self.on_minutes + self.off_minutes) * 60.0
        # start at a random phase in the cycle
        t = -rng.uniform(0.0, cycle_s)
        max_pair_s = cycle_s * (1.0 + self.jitter)
        starts_parts: list[np.ndarray] = []
        ons_parts: list[np.ndarray] = []
        while t < end:
            # ceil((end - t) / max_pair_s) cycles fit before `end` even at
            # maximal jitter, so the loop would have drawn every one of them
            m = max(1, int(np.ceil((end - t) / max_pair_s)))
            u = rng.uniform(-self.jitter, self.jitter, size=2 * m)
            on_s = self.on_minutes * 60.0 * (1.0 + u[0::2])
            off_s = self.off_minutes * 60.0 * (1.0 + u[1::2])
            # running sum seeded with t reproduces the loop's exact
            # left-to-right accumulation of t += on_s + off_s
            bounds = np.cumsum(np.concatenate(([t], on_s + off_s)))
            starts_parts.append(bounds[:-1])
            ons_parts.append(on_s)
            t = bounds[-1]
        starts = np.concatenate(starts_parts) if starts_parts else np.empty(0)
        on_s = np.concatenate(ons_parts) if ons_parts else np.empty(0)
        i0 = np.maximum(0, np.ceil(starts / period)).astype(np.int64)
        i1 = np.minimum(n, np.ceil((starts + on_s) / period)).astype(np.int64)
        active = i1 > i0
        i0, i1 = i0[active], i1[active]
        # interval painting via a difference array (cycles never overlap)
        edges = np.zeros(n + 1)
        edges[i0] += 1.0
        edges[i1] -= 1.0
        on_mask = np.cumsum(edges[:-1]) > 0
        values[on_mask] = self.on_power_w
        if self.spike_power_w > 0 and len(i0):
            # startup transient averaged into the first sample
            frac = min(1.0, self.spike_seconds / period)
            values[i0] += (self.spike_power_w - self.on_power_w) * frac
        if self.noise_w > 0:
            values[on_mask] += rng.normal(0.0, self.noise_w, int(on_mask.sum()))
        return _to_trace(occupancy, values)


# ---------------------------------------------------------------------------
# Continuous background loads (HRV, standby electronics)
# ---------------------------------------------------------------------------
class ContinuousAppliance(Appliance):
    """Always-on load with small fluctuation and occasional boost periods.

    Models loads like a heat-recovery ventilator (HRV): a continuously
    running low-power fan that periodically shifts to a higher speed.  Its
    smallness and lack of crisp edges is what makes it hard for
    edge/state-based NILM (the HRV bar in Fig. 2).
    """

    def __init__(
        self,
        name: str,
        base_power_w: float,
        boost_power_w: float | None = None,
        boosts_per_day: float = 4.0,
        boost_minutes: float = 30.0,
        noise_w: float = 2.0,
    ) -> None:
        super().__init__(name, background=True)
        if base_power_w <= 0:
            raise ValueError("base_power_w must be positive")
        self.base_power_w = base_power_w
        self.boost_power_w = boost_power_w if boost_power_w is not None else 0.0
        self.boosts_per_day = boosts_per_day
        self.boost_minutes = boost_minutes
        self.noise_w = noise_w

    def simulate(self, occupancy: BinaryTrace, rng: np.random.Generator) -> PowerTrace:
        # Vectorized port of the per-boost loop in
        # repro.home._reference.simulate_continuous_loop: one batched
        # uniform draw (stream-identical to the scalar draws) and
        # difference-array painting of the possibly overlapping intervals.
        values = np.full(len(occupancy), self.base_power_w)
        period = occupancy.period_s
        n = len(values)
        n_days = max(1, int(np.ceil(occupancy.duration_s / SECONDS_PER_DAY)))
        if self.boost_power_w > self.base_power_w:
            n_boosts = rng.poisson(self.boosts_per_day * n_days)
            if n_boosts:
                start = rng.uniform(0.0, occupancy.duration_s, size=n_boosts)
                block = max(1, int(self.boost_minutes * 60.0 / period))
                i0 = (start / period).astype(np.int64)
                i1 = np.minimum(n, i0 + block)
                edges = np.zeros(n + 1)
                np.add.at(edges, i0, 1.0)
                np.add.at(edges, i1, -1.0)
                values[np.cumsum(edges[:-1]) > 0] = self.boost_power_w
        if self.noise_w > 0:
            values += rng.normal(0.0, self.noise_w, len(values))
        return _to_trace(occupancy, values)


# ---------------------------------------------------------------------------
# Interactive loads
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class UsagePattern:
    """How often and when an interactive appliance is operated.

    ``uses_per_day`` is a Poisson rate over *occupied* days; each use draws
    a start hour from ``affinity`` and runs for a duration sampled uniformly
    from ``duration_minutes`` (a (lo, hi) pair).  Uses that fall in
    unoccupied minutes are dropped — nobody is home to press the button —
    which is precisely the causal link NIOM exploits.
    """

    uses_per_day: float
    duration_minutes: tuple[float, float]
    affinity: TimeOfDayAffinity = ANYTIME

    def __post_init__(self) -> None:
        lo, hi = self.duration_minutes
        if self.uses_per_day < 0 or lo <= 0 or hi < lo:
            raise ValueError("invalid usage pattern")


class InteractiveAppliance(Appliance):
    """An appliance operated manually by occupants.

    Subclasses supply :meth:`render_cycle`, which writes one on-cycle's power
    into the value array.
    """

    def __init__(self, name: str, pattern: UsagePattern) -> None:
        super().__init__(name, background=False)
        self.pattern = pattern

    @abstractmethod
    def render_cycle(
        self,
        values: np.ndarray,
        i0: int,
        n_samples: int,
        period_s: float,
        rng: np.random.Generator,
    ) -> None:
        """Add one usage cycle starting at index ``i0``."""

    def simulate(self, occupancy: BinaryTrace, rng: np.random.Generator) -> PowerTrace:
        values = _empty_like(occupancy)
        period = occupancy.period_s
        n = len(values)
        n_days = max(1, int(np.ceil(occupancy.duration_s / SECONDS_PER_DAY)))
        n_uses = rng.poisson(self.pattern.uses_per_day * n_days)
        lo, hi = self.pattern.duration_minutes
        for _ in range(n_uses):
            day = rng.integers(n_days)
            hour = self.pattern.affinity.sample_hour(rng)
            start_s = day * SECONDS_PER_DAY + hour * SECONDS_PER_HOUR
            i0 = int(start_s / period)
            if i0 >= n:
                continue
            if not occupancy.values[i0]:
                continue  # nobody home: the use never happens
            duration_s = rng.uniform(lo, hi) * 60.0
            n_samples = max(1, int(round(duration_s / period)))
            self.render_cycle(values, i0, min(n_samples, n - i0), period, rng)
        return _to_trace(occupancy, values)


class ResistiveAppliance(InteractiveAppliance):
    """Flat draw while on (toaster, kettle, resistive cooktop)."""

    def __init__(
        self,
        name: str,
        pattern: UsagePattern,
        power_w: float,
        noise_w: float = 5.0,
    ) -> None:
        super().__init__(name, pattern)
        if power_w <= 0:
            raise ValueError("power_w must be positive")
        self.power_w = power_w
        self.noise_w = noise_w

    def render_cycle(self, values, i0, n_samples, period_s, rng) -> None:
        cycle = np.full(n_samples, self.power_w)
        if self.noise_w > 0:
            cycle += rng.normal(0.0, self.noise_w, n_samples)
        values[i0 : i0 + n_samples] += np.maximum(cycle, 0.0)


class InductiveAppliance(InteractiveAppliance):
    """Motor load: startup spike then steady running power (washer motor)."""

    def __init__(
        self,
        name: str,
        pattern: UsagePattern,
        running_power_w: float,
        spike_power_w: float,
        spike_seconds: float = 3.0,
        noise_w: float = 8.0,
    ) -> None:
        super().__init__(name, pattern)
        if running_power_w <= 0 or spike_power_w < running_power_w:
            raise ValueError("need spike_power_w >= running_power_w > 0")
        self.running_power_w = running_power_w
        self.spike_power_w = spike_power_w
        self.spike_seconds = spike_seconds
        self.noise_w = noise_w

    def render_cycle(self, values, i0, n_samples, period_s, rng) -> None:
        cycle = np.full(n_samples, self.running_power_w)
        frac = min(1.0, self.spike_seconds / period_s)
        cycle[0] += (self.spike_power_w - self.running_power_w) * frac
        if self.noise_w > 0:
            cycle += rng.normal(0.0, self.noise_w, n_samples)
        values[i0 : i0 + n_samples] += np.maximum(cycle, 0.0)


class NonLinearAppliance(InteractiveAppliance):
    """Electronics with a fluctuating draw (TV, computer, microwave)."""

    def __init__(
        self,
        name: str,
        pattern: UsagePattern,
        mean_power_w: float,
        fluctuation_w: float,
    ) -> None:
        super().__init__(name, pattern)
        if mean_power_w <= 0 or fluctuation_w < 0:
            raise ValueError("invalid powers")
        self.mean_power_w = mean_power_w
        self.fluctuation_w = fluctuation_w

    def render_cycle(self, values, i0, n_samples, period_s, rng) -> None:
        # smooth random-walk fluctuation around the mean
        steps = rng.normal(0.0, self.fluctuation_w * 0.3, n_samples)
        walk = np.cumsum(steps)
        walk -= walk.mean()
        walk = np.clip(walk, -self.fluctuation_w, self.fluctuation_w)
        values[i0 : i0 + n_samples] += np.maximum(self.mean_power_w + walk, 0.0)


class CompoundCycleAppliance(InteractiveAppliance):
    """Heating element duty-cycling on top of a continuous motor (dryer).

    A clothes dryer draws a ~300 W drum motor for the whole cycle while a
    multi-kW heating element cycles on/off under thermostat control — the
    classic large, easy-to-disaggregate load in Fig. 2.
    """

    def __init__(
        self,
        name: str,
        pattern: UsagePattern,
        motor_power_w: float,
        element_power_w: float,
        element_duty: float = 0.75,
        element_cycle_minutes: float = 6.0,
        noise_w: float = 20.0,
    ) -> None:
        super().__init__(name, pattern)
        if not 0.0 < element_duty <= 1.0:
            raise ValueError("element_duty must be in (0, 1]")
        if motor_power_w <= 0 or element_power_w <= 0:
            raise ValueError("powers must be positive")
        self.motor_power_w = motor_power_w
        self.element_power_w = element_power_w
        self.element_duty = element_duty
        self.element_cycle_minutes = element_cycle_minutes
        self.noise_w = noise_w

    def render_cycle(self, values, i0, n_samples, period_s, rng) -> None:
        cycle = np.full(n_samples, self.motor_power_w)
        cycle_samples = max(1, int(self.element_cycle_minutes * 60.0 / period_s))
        on_samples = max(1, int(round(cycle_samples * self.element_duty)))
        pos = 0
        while pos < n_samples:
            end = min(n_samples, pos + on_samples)
            cycle[pos:end] += self.element_power_w
            pos += cycle_samples
        if self.noise_w > 0:
            cycle += rng.normal(0.0, self.noise_w, n_samples)
        values[i0 : i0 + n_samples] += np.maximum(cycle, 0.0)


class LightingAppliance(Appliance):
    """Aggregate household lighting: follows occupancy and darkness.

    Power scales with an evening/morning darkness weight and is only drawn
    while occupied — lighting is the most pervasive interactive load and a
    strong NIOM signal.
    """

    def __init__(
        self,
        name: str = "lighting",
        max_power_w: float = 300.0,
        noise_w: float = 10.0,
    ) -> None:
        super().__init__(name, background=False)
        if max_power_w <= 0:
            raise ValueError("max_power_w must be positive")
        self.max_power_w = max_power_w
        self.noise_w = noise_w

    @staticmethod
    def darkness_weight(hours: np.ndarray) -> np.ndarray:
        """0 at midday, 1 late evening/early morning (piecewise linear)."""
        weight = np.zeros_like(hours)
        weight = np.where(hours < 6.0, 0.8, weight)
        weight = np.where((hours >= 6.0) & (hours < 9.0), 0.5, weight)
        weight = np.where((hours >= 17.0) & (hours < 20.0), 0.7, weight)
        weight = np.where(hours >= 20.0, 1.0, weight)
        return weight

    def simulate(self, occupancy: BinaryTrace, rng: np.random.Generator) -> PowerTrace:
        hours = (occupancy.times() % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        weight = self.darkness_weight(hours) * occupancy.values
        # Occupants toggle individual fixtures now and then: a piecewise-
        # constant modulation with occasional small level changes.
        # Vectorized port of the original per-sample loop
        # (repro.home._reference.simulate_lighting_loop): uniforms are
        # drawn in chunks sized to the guaranteed remaining consumption
        # (one per sample plus one per level change), trigger samples are
        # located with one vectorized compare per chunk, and the level
        # deltas are reconstructed from the same stream positions the
        # scalar uniform(-0.15, 0.15) calls would have consumed — so the
        # stream and the trace are bitwise-identical to the loop's.
        n = len(hours)
        modulation = np.empty(n)
        level = 0.7
        change_probability = occupancy.period_s / 1800.0  # ~ every 30 min
        buf = rng.uniform(size=n)
        triggers = np.flatnonzero(buf < change_probability)
        pos = 0
        i = 0
        while i < n:
            if pos >= len(buf):
                buf = rng.uniform(size=n - i)
                triggers = np.flatnonzero(buf < change_probability)
                pos = 0
            hit = np.searchsorted(triggers, pos)
            if hit == len(triggers):
                span = len(buf) - pos
                modulation[i : i + span] = level
                i += span
                pos = len(buf)
                continue
            trig = int(triggers[hit])
            j = trig - pos
            modulation[i : i + j] = level
            pos = trig + 1
            if pos >= len(buf):
                # the delta draw spills into a fresh chunk: one delta plus
                # one uniform per remaining sample is still guaranteed
                buf = rng.uniform(size=n - (i + j))
                triggers = np.flatnonzero(buf < change_probability)
                pos = 0
            # uniform(-0.15, 0.15) == -0.15 + 0.3 * u for the same stream u
            delta = -0.15 + 0.3 * buf[pos]
            pos += 1
            level = float(np.clip(level + delta, 0.3, 1.0))
            modulation[i + j] = level
            i += j + 1
        values = self.max_power_w * weight * modulation
        values += rng.normal(0.0, self.noise_w, len(values)) * (values > 0)
        return _to_trace(occupancy, values)
