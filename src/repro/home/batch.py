"""Across-home batched simulation: one numpy pass meters a block of homes.

PR 4 vectorized *within* a home (kernels over one trace); this module
vectorizes *across* homes so a fleet worker can simulate a block of homes
per dispatch instead of one.  The contract is the same as every kernel in
:mod:`repro.ml.kernels`: the batched path must be **bitwise identical** to
the per-home reference — here :func:`repro.home.household.simulate_home`
and :meth:`repro.home.meter.SmartMeter.observe` — and an equivalence test
pins that claim.

What can and cannot be batched without breaking bit-identity:

* Ground truth (occupancy, appliances, water heater) consumes each home's
  private RNG stream sequentially, so it stays a per-home loop in
  reference order (:func:`~repro.home.household.simulate_ground_truth`).
* Metering noise is also an RNG draw, so each home calls
  ``rng.normal(0, std, n)`` exactly as the reference does; dropout homes
  additionally keep the reference LOCF loop.
* Quantization and clipping are deterministic *elementwise* IEEE-754
  arithmetic, so they run once over a stacked ``(homes, samples)`` array:
  ``round(V / q) * q`` and ``maximum(V, 0)`` produce the same bits per
  element whether the operand is one row or a stack of rows.

The fleet's ``--backend batched`` executor
(:mod:`repro.fleet.backends`) rides this to amortize per-job dispatch
overhead: one pool submission simulates a whole block of homes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..timeseries import PowerTrace
from .household import HomeConfig, HomeSimulation, simulate_ground_truth
from .meter import MeterConfig


def observe_block(
    traces: Sequence[PowerTrace],
    configs: Sequence[MeterConfig],
    rngs: Sequence[np.random.Generator],
) -> list[PowerTrace]:
    """Meter many true-power traces in one stacked pass.

    Bitwise-identical to calling ``SmartMeter(cfg).observe(trace, rng)``
    per home (the pinned reference): resampling, noise, and dropout run
    per home with that home's own RNG in reference order; quantization
    and clipping run stacked across every home of equal metered length.
    """
    if not len(traces) == len(configs) == len(rngs):
        raise ValueError("traces, configs, and rngs must align")
    # per-home stage: everything that touches a home's private RNG stream
    rows: list[tuple[PowerTrace, MeterConfig, np.ndarray]] = []
    for trace, cfg, rng in zip(traces, configs, rngs):
        resampled = trace
        if cfg.period_s > trace.period_s:
            resampled = trace.resample(cfg.period_s, reducer="mean")
        elif cfg.period_s < trace.period_s:
            raise ValueError(
                "meter period finer than simulation period; simulate finer"
            )
        values = resampled.values.copy()
        if cfg.noise_std_w > 0:
            values += rng.normal(0.0, cfg.noise_std_w, len(values))
        if cfg.dropout_probability > 0:
            dropped = rng.uniform(size=len(values)) < cfg.dropout_probability
            for i in np.flatnonzero(dropped):
                if i > 0:
                    values[i] = values[i - 1]
        rows.append((resampled, cfg, values))

    # stacked stage: deterministic elementwise arithmetic across homes.
    # Group by (length, quantum) so one stack shares one scalar quantum.
    out: list[PowerTrace | None] = [None] * len(rows)
    groups: dict[tuple[int, float], list[int]] = {}
    for i, (resampled, cfg, values) in enumerate(rows):
        groups.setdefault((len(values), cfg.quantum_w), []).append(i)
    for (_, quantum), members in groups.items():
        stack = np.stack([rows[i][2] for i in members])
        if quantum > 0:
            stack = np.round(stack / quantum) * quantum
        stack = np.maximum(stack, 0.0)
        for row, i in zip(stack, members):
            out[i] = rows[i][0].with_values(row)
    return [trace for trace in out if trace is not None]


def simulate_home_block(
    configs: Sequence[HomeConfig],
    n_days: int,
    rngs: Sequence[np.random.Generator],
) -> list[HomeSimulation]:
    """Simulate a block of homes; bitwise-equal to per-home ``simulate_home``.

    Each home keeps its own RNG stream (``rngs[i]``) and consumes it in
    exactly the reference order; only the meter's deterministic arithmetic
    is batched across the block (:func:`observe_block`).
    """
    if n_days < 1:
        raise ValueError("n_days must be >= 1")
    if len(configs) != len(rngs):
        raise ValueError("configs and rngs must align")
    rngs = [np.random.default_rng(rng) for rng in rngs]
    ground = [
        simulate_ground_truth(config, n_days, rng)
        for config, rng in zip(configs, rngs)
    ]
    metered = observe_block(
        [total for _, _, _, total in ground],
        [config.meter for config in configs],
        rngs,
    )
    return [
        HomeSimulation(
            config=config,
            occupancy=occupancy,
            appliance_traces=traces,
            total=total,
            metered=seen,
            hot_water_draws=draws,
        )
        for config, (occupancy, traces, draws, total), seen in zip(
            configs, ground, metered
        )
    ]
