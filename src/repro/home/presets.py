"""Preset household configurations matching the paper's evaluation homes.

* :func:`home_a` / :func:`home_b` — the two homes of Fig. 1.  Home-A is a
  smaller household peaking around 3 kW; Home-B is a larger, busier one
  reaching 5-6 kW.
* :func:`fig2_home` — a home whose sub-metered circuits include the five
  Fig. 2 devices (toaster, fridge, freezer, dryer, HRV).
* :func:`fig6_home` — a home with an electric 50-gallon water heater, the
  setting for the CHPr experiment.
* :func:`random_home` — a randomized household for the "range of homes"
  NIOM accuracy claim (70-90%, Sec. II-A).
"""

from __future__ import annotations

import numpy as np

from .appliances import (
    ANYTIME,
    EVENING,
    MEALS,
    MORNING,
    NIGHT_LEISURE,
    Appliance,
    CompoundCycleAppliance,
    ContinuousAppliance,
    CyclicAppliance,
    InductiveAppliance,
    LightingAppliance,
    NonLinearAppliance,
    ResistiveAppliance,
    TimeOfDayAffinity,
    UsagePattern,
)
from .household import HomeConfig
from .meter import MeterConfig
from .occupancy import OccupancyConfig, OccupantProfile
from .waterheater import WaterHeaterConfig


def _fridge(power_w: float = 150.0) -> CyclicAppliance:
    return CyclicAppliance(
        "fridge",
        on_power_w=power_w,
        on_minutes=15.0,
        off_minutes=30.0,
        spike_power_w=power_w * 3.0,
    )


def _freezer(power_w: float = 120.0) -> CyclicAppliance:
    return CyclicAppliance(
        "freezer",
        on_power_w=power_w,
        on_minutes=12.0,
        off_minutes=40.0,
        spike_power_w=power_w * 3.0,
    )


def _hrv(power_w: float = 80.0) -> ContinuousAppliance:
    return ContinuousAppliance(
        "hrv", base_power_w=power_w, boost_power_w=power_w * 2.0,
        boosts_per_day=4.0, boost_minutes=30.0,
    )


def _toaster() -> ResistiveAppliance:
    return ResistiveAppliance(
        "toaster",
        UsagePattern(uses_per_day=1.2, duration_minutes=(2.0, 4.0), affinity=MORNING),
        power_w=1050.0,
    )


def _microwave() -> NonLinearAppliance:
    return NonLinearAppliance(
        "microwave",
        UsagePattern(uses_per_day=2.5, duration_minutes=(1.0, 6.0), affinity=MEALS),
        mean_power_w=1400.0,
        fluctuation_w=120.0,
    )


def _dryer() -> CompoundCycleAppliance:
    return CompoundCycleAppliance(
        "dryer",
        UsagePattern(
            uses_per_day=0.6,
            duration_minutes=(40.0, 65.0),
            affinity=TimeOfDayAffinity(((11.0, 0.6, 2.5), (19.0, 0.6, 2.0))),
        ),
        motor_power_w=300.0,
        element_power_w=4800.0,
    )


def _tv(mean_power_w: float = 140.0) -> NonLinearAppliance:
    return NonLinearAppliance(
        "tv",
        UsagePattern(uses_per_day=1.8, duration_minutes=(30.0, 180.0), affinity=NIGHT_LEISURE),
        mean_power_w=mean_power_w,
        fluctuation_w=40.0,
    )


def _cooktop() -> ResistiveAppliance:
    return ResistiveAppliance(
        "cooktop",
        UsagePattern(
            uses_per_day=0.9,
            duration_minutes=(15.0, 45.0),
            affinity=TimeOfDayAffinity(((18.5, 1.0, 1.0),)),
        ),
        power_w=2100.0,
        noise_w=120.0,
    )


def _washer() -> InductiveAppliance:
    return InductiveAppliance(
        "washer",
        UsagePattern(
            uses_per_day=0.4,
            duration_minutes=(30.0, 50.0),
            affinity=TimeOfDayAffinity(((10.5, 1.0, 3.0),)),
        ),
        running_power_w=550.0,
        spike_power_w=1600.0,
    )


def _kettle() -> ResistiveAppliance:
    return ResistiveAppliance(
        "kettle",
        UsagePattern(uses_per_day=2.0, duration_minutes=(3.0, 5.0), affinity=MEALS),
        power_w=1500.0,
    )


def home_a() -> HomeConfig:
    """Fig. 1 Home-A: a modest single-occupant home peaking near 3 kW."""
    return HomeConfig(
        name="home-a",
        appliances=(
            _fridge(140.0),
            _toaster(),
            _kettle(),
            _microwave(),
            _tv(110.0),
            LightingAppliance(max_power_w=260.0),
        ),
        occupancy=OccupancyConfig(
            occupants=(OccupantProfile(leave_hour=8.2, return_hour=17.3),),
        ),
    )


def home_b() -> HomeConfig:
    """Fig. 1 Home-B: a larger two-occupant home reaching 5-6 kW."""
    return HomeConfig(
        name="home-b",
        appliances=(
            _fridge(170.0),
            _freezer(),
            _microwave(),
            _cooktop(),
            _dryer(),
            _washer(),
            _tv(190.0),
            LightingAppliance(max_power_w=420.0),
        ),
        occupancy=OccupancyConfig(
            occupants=(
                OccupantProfile(leave_hour=7.8, return_hour=16.8),
                OccupantProfile(leave_hour=8.8, return_hour=18.4, workday_probability=0.6),
            ),
        ),
    )


FIG2_DEVICES = ("toaster", "fridge", "freezer", "dryer", "hrv")


def fig2_home() -> HomeConfig:
    """Home whose circuits include the five devices of Fig. 2.

    Extra interactive loads (microwave, lighting, TV) are present as the
    confounding background that makes disaggregation of the aggregate hard —
    Fig. 2's caption stresses robustness "to noisy smart meter data".
    """
    return HomeConfig(
        name="fig2-home",
        appliances=(
            _toaster(),
            _fridge(),
            _freezer(),
            _dryer(),
            _hrv(),
            _microwave(),
            _tv(),
            LightingAppliance(max_power_w=300.0),
        ),
        occupancy=OccupancyConfig(
            occupants=(
                OccupantProfile(),
                OccupantProfile(leave_hour=9.0, return_hour=18.5, workday_probability=0.55),
            ),
        ),
    )


def fig6_home() -> HomeConfig:
    """CHPr experiment home: Fig. 6's week-long trace with a 50-gal heater."""
    return HomeConfig(
        name="fig6-home",
        appliances=(
            _fridge(160.0),
            _freezer(),
            _microwave(),
            _cooktop(),
            _dryer(),
            _tv(150.0),
            LightingAppliance(max_power_w=350.0),
        ),
        occupancy=OccupancyConfig(
            # both occupants work regular schedules, so workday daytimes are
            # reliably empty — the clearly-detectable pattern of Fig. 6's
            # top panel (attack MCC ~0.44 before the defense)
            occupants=(
                OccupantProfile(leave_hour=8.0, return_hour=17.5, workday_probability=0.9),
                OccupantProfile(leave_hour=8.5, return_hour=18.0, workday_probability=0.85),
            ),
            # the paper's Fig. 6 week shows daily presence; multi-day
            # absences are a separate (harder) masking problem because an
            # empty home draws no hot water to fund CHPr's bursts
            vacation_probability_per_day=0.0,
        ),
        water_heater=WaterHeaterConfig(),
    )


def random_home(rng: np.random.Generator | int | None = None) -> HomeConfig:
    """A randomized household for population-level NIOM studies."""
    rng = np.random.default_rng(rng)
    appliances: list[Appliance] = [
        _fridge(float(rng.uniform(120.0, 200.0))),
        _microwave(),
        LightingAppliance(max_power_w=float(rng.uniform(180.0, 450.0))),
    ]
    if rng.uniform() < 0.6:
        appliances.append(_freezer(float(rng.uniform(90.0, 150.0))))
    if rng.uniform() < 0.5:
        appliances.append(_hrv(float(rng.uniform(50.0, 110.0))))
    if rng.uniform() < 0.7:
        appliances.append(_tv(float(rng.uniform(90.0, 220.0))))
    if rng.uniform() < 0.6:
        appliances.append(_dryer())
    if rng.uniform() < 0.5:
        appliances.append(_cooktop())
    if rng.uniform() < 0.4:
        appliances.append(_washer())
    if rng.uniform() < 0.5:
        appliances.append(_toaster())

    occupants = [
        OccupantProfile(
            leave_hour=float(rng.uniform(6.5, 9.5)),
            return_hour=float(rng.uniform(15.5, 19.5)),
            workday_probability=float(rng.uniform(0.5, 0.85)),
        )
        for _ in range(int(rng.integers(1, 4)))
    ]
    return HomeConfig(
        name=f"random-home-{rng.integers(1_000_000)}",
        appliances=tuple(appliances),
        occupancy=OccupancyConfig(occupants=tuple(occupants)),
    )


# ---------------------------------------------------------------------------
# Preset registry — the single source of truth for "--home" style choices.
# The CLI subparsers and the fleet specification both draw from this, so a
# new preset registered here is immediately available everywhere.
# ---------------------------------------------------------------------------
PRESETS: dict[str, object] = {
    "home-a": home_a,
    "home-b": home_b,
    "fig2": fig2_home,
    "fig6": fig6_home,
    "random": random_home,
}

# presets whose factory consumes randomness (and therefore takes an rng)
RANDOMIZED_PRESETS = frozenset({"random"})


def preset_names() -> list[str]:
    """Registered home-preset names, in registration order."""
    return list(PRESETS)


def make_preset(
    name: str, rng: np.random.Generator | int | None = None
) -> HomeConfig:
    """Instantiate a preset by name.

    ``rng`` only matters for randomized presets (``random``); fixed presets
    ignore it, so callers can pass one unconditionally.
    """
    if name not in PRESETS:
        raise KeyError(
            f"unknown home preset {name!r}; available: {', '.join(PRESETS)}"
        )
    factory = PRESETS[name]
    if name in RANDOMIZED_PRESETS:
        return factory(rng)
    return factory()
