"""Smart meter models: what the utility (and hence the attacker) observes.

Smart meters do not report the true instantaneous load: they average over a
reporting interval, add measurement noise, and quantize.  Attacks in this
package only ever see the *metered* trace, never the simulator's ground
truth, mirroring the paper's threat model where the adversary is the cloud
service / analytics company holding AMI data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries import PowerTrace


@dataclass(frozen=True)
class MeterConfig:
    """Smart-meter reporting characteristics.

    Parameters
    ----------
    period_s:
        Reporting interval (60 s in Figs. 1/2/6; ablations sweep this).
    noise_std_w:
        Gaussian measurement noise added per report.
    quantum_w:
        Reported values are rounded to this step (0 disables quantization).
    dropout_probability:
        Chance a report is lost and replaced by the previous value
        (last-observation-carried-forward), as real AMI backhauls do.
    """

    period_s: float = 60.0
    noise_std_w: float = 10.0
    quantum_w: float = 1.0
    dropout_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.noise_std_w < 0 or self.quantum_w < 0:
            raise ValueError("noise and quantum must be non-negative")
        if not 0.0 <= self.dropout_probability < 1.0:
            raise ValueError("dropout_probability must be in [0, 1)")


class SmartMeter:
    """Applies a :class:`MeterConfig` to a ground-truth power trace."""

    def __init__(self, config: MeterConfig | None = None) -> None:
        self.config = config or MeterConfig()

    def observe(
        self, true_power: PowerTrace, rng: np.random.Generator | int | None = None
    ) -> PowerTrace:
        """Meter the true load: average to the reporting period, add noise,
        quantize, and (optionally) drop reports."""
        rng = np.random.default_rng(rng)
        cfg = self.config
        trace = true_power
        if cfg.period_s > true_power.period_s:
            trace = true_power.resample(cfg.period_s, reducer="mean")
        elif cfg.period_s < true_power.period_s:
            raise ValueError(
                "meter period finer than simulation period; simulate finer"
            )
        values = trace.values.copy()
        if cfg.noise_std_w > 0:
            values += rng.normal(0.0, cfg.noise_std_w, len(values))
        if cfg.dropout_probability > 0:
            dropped = rng.uniform(size=len(values)) < cfg.dropout_probability
            for i in np.flatnonzero(dropped):
                if i > 0:
                    values[i] = values[i - 1]
        if cfg.quantum_w > 0:
            values = np.round(values / cfg.quantum_w) * cfg.quantum_w
        return trace.with_values(np.maximum(values, 0.0))


class NetMeter(SmartMeter):
    """Net meter for solar homes: reports consumption minus generation.

    Net readings can be negative (export to the grid); this is what the
    SunDance disaggregation attack (Sec. II-B) operates on.
    """

    def observe_net(
        self,
        consumption: PowerTrace,
        generation: PowerTrace,
        rng: np.random.Generator | int | None = None,
    ) -> PowerTrace:
        rng = np.random.default_rng(rng)
        cfg = self.config
        cons = consumption
        gen = generation
        if cfg.period_s > cons.period_s:
            cons = cons.resample(cfg.period_s, reducer="mean")
        if cfg.period_s > gen.period_s:
            gen = gen.resample(cfg.period_s, reducer="mean")
        net = cons - gen
        values = net.values.copy()
        if cfg.noise_std_w > 0:
            values += rng.normal(0.0, cfg.noise_std_w, len(values))
        if cfg.quantum_w > 0:
            values = np.round(values / cfg.quantum_w) * cfg.quantum_w
        return net.with_values(values)
