"""Occupant behavior simulation: ground-truth occupancy schedules.

Produces the binary home/away series that (a) gates interactive appliance
use in the household simulator and (b) serves as ground truth when scoring
NIOM attacks (Figs. 1 and 6) and defenses.

The model is a per-occupant daily schedule: on workdays an occupant leaves
in the morning and returns in the evening (with per-day Gaussian jitter);
on non-workdays they are mostly home with random outings; whole-home
vacations remove everyone for multiple days.  Home-level occupancy is the
OR over occupants, matching the paper's definition ("one indicates at least
one occupant is present").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..timeseries import BinaryTrace, SECONDS_PER_DAY, SECONDS_PER_HOUR


@dataclass(frozen=True)
class OccupantProfile:
    """One occupant's schedule tendencies.

    All hours are local hours-of-day; stds are in hours.
    """

    leave_hour: float = 8.0
    leave_std: float = 0.5
    return_hour: float = 17.5
    return_std: float = 0.75
    workday_probability: float = 0.72  # 5/7 plus occasional days off/workdays
    outing_rate_per_offday: float = 1.5
    outing_hours: tuple[float, float] = (0.5, 3.0)

    def __post_init__(self) -> None:
        if not 0.0 <= self.workday_probability <= 1.0:
            raise ValueError("workday_probability must be in [0, 1]")
        if not 0.0 <= self.leave_hour < 24.0 or not 0.0 <= self.return_hour < 24.0:
            raise ValueError("hours must be in [0, 24)")
        if self.return_hour <= self.leave_hour:
            raise ValueError("return_hour must be after leave_hour")
        lo, hi = self.outing_hours
        if lo <= 0 or hi < lo:
            raise ValueError("invalid outing_hours")


@dataclass(frozen=True)
class OccupancyConfig:
    """Whole-home occupancy configuration."""

    occupants: tuple[OccupantProfile, ...] = (OccupantProfile(),)
    vacation_probability_per_day: float = 0.01
    vacation_days: tuple[int, int] = (2, 7)

    def __post_init__(self) -> None:
        if not self.occupants:
            raise ValueError("need at least one occupant")
        if not 0.0 <= self.vacation_probability_per_day <= 1.0:
            raise ValueError("vacation probability must be in [0, 1]")
        lo, hi = self.vacation_days
        if lo < 1 or hi < lo:
            raise ValueError("invalid vacation_days")


def _simulate_occupant(
    profile: OccupantProfile,
    n_days: int,
    samples_per_day: int,
    period_s: float,
    rng: np.random.Generator,
) -> np.ndarray:
    present = np.ones(n_days * samples_per_day, dtype=int)
    for day in range(n_days):
        base = day * samples_per_day
        if rng.uniform() < profile.workday_probability:
            leave = rng.normal(profile.leave_hour, profile.leave_std)
            back = rng.normal(profile.return_hour, profile.return_std)
            leave = float(np.clip(leave, 0.0, 23.5))
            back = float(np.clip(back, leave + 0.25, 23.9))
            i0 = base + int(leave * SECONDS_PER_HOUR / period_s)
            i1 = base + int(back * SECONDS_PER_HOUR / period_s)
            present[i0:i1] = 0
        else:
            n_outings = rng.poisson(profile.outing_rate_per_offday)
            for _ in range(n_outings):
                start_hour = rng.uniform(8.0, 20.0)
                duration = rng.uniform(*profile.outing_hours)
                i0 = base + int(start_hour * SECONDS_PER_HOUR / period_s)
                i1 = min(
                    base + samples_per_day,
                    i0 + max(1, int(duration * SECONDS_PER_HOUR / period_s)),
                )
                present[i0:i1] = 0
    return present


def simulate_occupancy(
    config: OccupancyConfig,
    n_days: int,
    period_s: float = 60.0,
    rng: np.random.Generator | int | None = None,
) -> BinaryTrace:
    """Simulate home-level occupancy for ``n_days`` epoch days.

    Returns a :class:`BinaryTrace` starting at the epoch with the given
    sampling period.
    """
    if n_days < 1:
        raise ValueError("n_days must be >= 1")
    if SECONDS_PER_DAY % period_s:
        raise ValueError("period_s must divide one day")
    rng = np.random.default_rng(rng)
    samples_per_day = int(SECONDS_PER_DAY / period_s)
    per_occupant = [
        _simulate_occupant(p, n_days, samples_per_day, period_s, rng)
        for p in config.occupants
    ]
    home = np.maximum.reduce(per_occupant)

    # whole-home vacations override everything
    day = 0
    while day < n_days:
        if rng.uniform() < config.vacation_probability_per_day:
            lo, hi = config.vacation_days
            length = int(rng.integers(lo, hi + 1))
            i0 = day * samples_per_day
            i1 = min(len(home), (day + length) * samples_per_day)
            home[i0:i1] = 0
            day += length
        else:
            day += 1
    return BinaryTrace(home, period_s, 0.0)


def occupancy_for_span(
    occupancy: BinaryTrace, t0_s: float, t1_s: float
) -> float:
    """Fraction of ``[t0_s, t1_s)`` during which the home is occupied."""
    part = occupancy.slice_time(t0_s, t1_s)
    return part.fraction_true()
