"""Stable content hashing for household configurations.

The fleet engine caches per-home results on disk keyed by *what was
simulated*; that requires a fingerprint of a :class:`HomeConfig` that is
stable across processes and interpreter restarts (``hash()`` is salted,
``repr()`` of plain classes includes object ids).  The fingerprint walks
the config's object graph — dataclasses, plain attribute-bag objects
(appliances), tuples, dicts, numpy arrays, scalars — into a canonical
JSON document and hashes that.

Two configs fingerprint equal iff they would simulate identically (same
classes, same parameters); renaming a class or changing a default changes
the fingerprint, which is exactly the cache-invalidation behavior we want.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import numpy as np

from .household import HomeConfig


def _canonical(obj) -> object:
    """Reduce an object graph to JSON-encodable canonical form."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips float64 exactly; avoids JSON float formatting drift
        return {"~f": repr(obj)}
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return {"~f": repr(float(obj))}
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest()
        return {"~nd": [str(obj.dtype), list(obj.shape), digest]}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return {"~set": sorted(json.dumps(_canonical(i), sort_keys=True) for i in obj)}
    if isinstance(obj, dict):
        return {
            "~dict": [
                [_canonical(k), _canonical(v)]
                for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
            ]
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"~obj": type(obj).__name__, "fields": {"~dict": sorted(fields.items())}}
    if hasattr(obj, "__dict__"):
        fields = {k: _canonical(v) for k, v in sorted(vars(obj).items())}
        return {"~obj": type(obj).__name__, "fields": {"~dict": sorted(fields.items())}}
    raise TypeError(f"cannot fingerprint {type(obj).__name__!r}")


def fingerprint(obj) -> str:
    """SHA-256 hex digest of an object graph's canonical form."""
    doc = json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(doc.encode()).hexdigest()


def config_fingerprint(config: HomeConfig) -> str:
    """Stable hex fingerprint of a household configuration."""
    return fingerprint(config)
