"""Whole-household simulation: appliances + occupants + meter.

This is the generator behind Figs. 1, 2, and 6: it produces a ground-truth
per-appliance decomposition (for scoring NILM), a ground-truth occupancy
series (for scoring NIOM), and the metered aggregate that attacks actually
see.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..timeseries import BinaryTrace, PowerTrace, zeros_like
from .appliances import Appliance
from .meter import MeterConfig, SmartMeter
from .occupancy import OccupancyConfig, simulate_occupancy
from .waterheater import (
    DrawConfig,
    WaterHeaterConfig,
    generate_draws,
    heater_trace,
    thermostat_power,
)

WATER_HEATER_NAME = "water_heater"


@dataclass(frozen=True)
class HomeConfig:
    """A complete household description.

    ``base_period_s`` is the physics resolution; the meter then coarsens to
    its own reporting period.  If ``water_heater`` is set, an electric water
    heater under baseline thermostat control is added to the home and its
    hot-water demand is recorded so defenses (CHPr) can re-control the same
    demand.
    """

    name: str
    appliances: tuple[Appliance, ...]
    # default_factory, not default instances: class-level instances would
    # be shared by every config ever constructed
    occupancy: OccupancyConfig = field(default_factory=OccupancyConfig)
    meter: MeterConfig = field(default_factory=MeterConfig)
    base_period_s: float = 60.0
    water_heater: WaterHeaterConfig | None = None
    draws: DrawConfig = field(default_factory=DrawConfig)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("home needs a name")
        if self.base_period_s <= 0:
            raise ValueError("base_period_s must be positive")
        names = [a.name for a in self.appliances]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate appliance names in {names}")
        if self.water_heater is not None and WATER_HEATER_NAME in names:
            raise ValueError("water heater configured twice")


@dataclass
class HomeSimulation:
    """The full output of one simulated household.

    Attributes
    ----------
    config:
        The generating configuration.
    occupancy:
        Ground-truth binary occupancy at the base period.
    appliance_traces:
        Ground-truth per-appliance power at the base period (includes the
        water heater under baseline thermostat control, if configured).
    total:
        Ground-truth aggregate (sum of appliance traces).
    metered:
        What the smart meter reports — the only view attacks may use.
    hot_water_draws:
        Per-base-sample hot-water demand in liters (None without a heater).
    """

    config: HomeConfig
    occupancy: BinaryTrace
    appliance_traces: dict[str, PowerTrace]
    total: PowerTrace
    metered: PowerTrace
    hot_water_draws: np.ndarray | None = None

    def aggregate_without(self, *names: str) -> PowerTrace:
        """Ground-truth aggregate excluding the named appliances."""
        unknown = set(names) - set(self.appliance_traces)
        if unknown:
            raise KeyError(f"unknown appliances: {sorted(unknown)}")
        out = zeros_like(self.total)
        for name, trace in self.appliance_traces.items():
            if name not in names:
                out = out + trace
        return out

    def metered_occupancy(self) -> BinaryTrace:
        """Ground-truth occupancy aligned to the metered trace's clock."""
        return self.occupancy.align_to(self.metered)


def simulate_ground_truth(
    config: HomeConfig, n_days: int, rng: np.random.Generator
) -> tuple[BinaryTrace, dict[str, PowerTrace], np.ndarray | None, PowerTrace]:
    """Everything upstream of the meter: occupancy, appliances, aggregate.

    Returns ``(occupancy, appliance_traces, hot_water_draws, total)``.
    This is the per-home half of the pipeline that must stay a sequential
    single-``rng`` flow (every appliance draws from the same stream in
    declaration order); :func:`simulate_home` follows it with the meter,
    and :func:`repro.home.batch.simulate_home_block` follows it with the
    across-home batched meter — both observe byte-identical totals because
    they share this function.
    """
    occupancy = simulate_occupancy(
        config.occupancy, n_days, config.base_period_s, rng
    )
    traces: dict[str, PowerTrace] = {}
    for appliance in config.appliances:
        traces[appliance.name] = appliance.simulate(occupancy, rng)

    draws: np.ndarray | None = None
    if config.water_heater is not None:
        draws = generate_draws(occupancy, rng, config.draws)
        power, _tank = thermostat_power(draws, config.base_period_s, config.water_heater)
        traces[WATER_HEATER_NAME] = heater_trace(power, occupancy)

    total = zeros_like(
        PowerTrace(np.zeros(len(occupancy)), occupancy.period_s, occupancy.start_s)
    )
    for trace in traces.values():
        total = total + trace
    return occupancy, traces, draws, total


def simulate_home(
    config: HomeConfig,
    n_days: int,
    rng: np.random.Generator | int | None = None,
) -> HomeSimulation:
    """Run the household for ``n_days`` and meter it.

    All randomness flows through ``rng``; the same seed reproduces the same
    home bit-for-bit.
    """
    if n_days < 1:
        raise ValueError("n_days must be >= 1")
    rng = np.random.default_rng(rng)
    occupancy, traces, draws, total = simulate_ground_truth(config, n_days, rng)
    metered = SmartMeter(config.meter).observe(total, rng)
    return HomeSimulation(
        config=config,
        occupancy=occupancy,
        appliance_traces=traces,
        total=total,
        metered=metered,
        hot_water_draws=draws,
    )
