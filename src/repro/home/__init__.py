"""Smart-home energy simulation substrate.

Generates the ground-truth data the paper's homes provided: per-appliance
power, whole-home aggregates, occupancy, hot-water demand, and the metered
view an AMI adversary sees.
"""

from .appliances import (
    ANYTIME,
    EVENING,
    MEALS,
    MORNING,
    NIGHT_LEISURE,
    Appliance,
    CompoundCycleAppliance,
    ContinuousAppliance,
    CyclicAppliance,
    InductiveAppliance,
    LightingAppliance,
    NonLinearAppliance,
    ResistiveAppliance,
    TimeOfDayAffinity,
    UsagePattern,
)
from .batch import observe_block, simulate_home_block
from .fingerprint import config_fingerprint, fingerprint
from .household import (
    WATER_HEATER_NAME,
    HomeConfig,
    HomeSimulation,
    simulate_ground_truth,
    simulate_home,
)
from .meter import MeterConfig, NetMeter, SmartMeter
from .occupancy import OccupancyConfig, OccupantProfile, simulate_occupancy
from .presets import (
    FIG2_DEVICES,
    PRESETS,
    fig2_home,
    fig6_home,
    home_a,
    home_b,
    make_preset,
    preset_names,
    random_home,
)
from .waterheater import (
    DrawConfig,
    WaterHeaterConfig,
    WaterHeaterTank,
    generate_draws,
    heater_trace,
    thermostat_power,
)

__all__ = [
    "ANYTIME",
    "EVENING",
    "MEALS",
    "MORNING",
    "NIGHT_LEISURE",
    "Appliance",
    "CompoundCycleAppliance",
    "ContinuousAppliance",
    "CyclicAppliance",
    "InductiveAppliance",
    "LightingAppliance",
    "NonLinearAppliance",
    "ResistiveAppliance",
    "TimeOfDayAffinity",
    "UsagePattern",
    "WATER_HEATER_NAME",
    "HomeConfig",
    "HomeSimulation",
    "observe_block",
    "simulate_ground_truth",
    "simulate_home",
    "simulate_home_block",
    "MeterConfig",
    "NetMeter",
    "SmartMeter",
    "OccupancyConfig",
    "OccupantProfile",
    "simulate_occupancy",
    "FIG2_DEVICES",
    "PRESETS",
    "config_fingerprint",
    "fingerprint",
    "fig2_home",
    "fig6_home",
    "home_a",
    "home_b",
    "make_preset",
    "preset_names",
    "random_home",
    "DrawConfig",
    "WaterHeaterConfig",
    "WaterHeaterTank",
    "generate_draws",
    "heater_trace",
    "thermostat_power",
]
