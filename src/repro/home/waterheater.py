"""Electric water heater thermal model and baseline thermostat control.

CHPr (Combined Heat and Privacy, ref. [25]; Fig. 6 of the paper) works by
re-scheduling *when* an electric water heater draws its energy, exploiting
the tank's large thermal storage.  For the defense's tradeoffs to be honest,
the tank must obey real physics: energy balance between the heating element,
hot-water draws, and standby losses, with comfort violated whenever tank
temperature falls below a minimum delivery temperature.  This module holds
that shared physics; the baseline thermostat controller lives here, and the
CHPr controller lives in :mod:`repro.defenses.chpr`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries import BinaryTrace, PowerTrace, SECONDS_PER_DAY, SECONDS_PER_HOUR

WATER_HEAT_CAPACITY_J_PER_L_K = 4186.0
GALLON_LITERS = 3.785


@dataclass(frozen=True)
class WaterHeaterConfig:
    """Physical tank and element parameters (defaults: a 50-gallon unit)."""

    tank_liters: float = 50.0 * GALLON_LITERS
    element_power_w: float = 4500.0
    setpoint_c: float = 60.0
    deadband_c: float = 3.0
    inlet_c: float = 12.0
    ambient_c: float = 20.0
    min_delivery_c: float = 40.0
    standby_loss_w_per_k: float = 1.8
    modulating: bool = False  # True: element power is continuously variable

    def __post_init__(self) -> None:
        if self.tank_liters <= 0 or self.element_power_w <= 0:
            raise ValueError("tank size and element power must be positive")
        if self.setpoint_c <= self.inlet_c:
            raise ValueError("setpoint must exceed inlet temperature")
        if self.min_delivery_c > self.setpoint_c:
            raise ValueError("min_delivery_c cannot exceed setpoint")
        if self.deadband_c <= 0:
            raise ValueError("deadband must be positive")

    @property
    def thermal_mass_j_per_k(self) -> float:
        return self.tank_liters * WATER_HEAT_CAPACITY_J_PER_L_K

    def storable_energy_kwh(self) -> float:
        """Energy between min delivery temp and setpoint — the CHPr budget."""
        return (
            self.thermal_mass_j_per_k
            * (self.setpoint_c - self.min_delivery_c)
            / 3.6e6
        )


class WaterHeaterTank:
    """Mutable tank state advanced one sample at a time.

    A fully mixed single-node model: draws replace hot water with inlet-
    temperature water, the element adds heat, the jacket leaks heat to
    ambient.  Single-node mixing is the standard simplification in the
    demand-response literature and is conservative for CHPr (a stratified
    tank would store *more* usable heat).
    """

    def __init__(self, config: WaterHeaterConfig, initial_temp_c: float | None = None):
        self.config = config
        self.temp_c = initial_temp_c if initial_temp_c is not None else config.setpoint_c
        self.comfort_violations = 0
        self.samples = 0

    def step(self, dt_s: float, draw_liters: float, element_power_w: float) -> float:
        """Advance one sample; returns the electrical power actually drawn."""
        cfg = self.config
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        if draw_liters < 0:
            raise ValueError("draw_liters cannot be negative")
        power = float(np.clip(element_power_w, 0.0, cfg.element_power_w))
        if not cfg.modulating and 0.0 < power < cfg.element_power_w:
            power = cfg.element_power_w  # relay element: on is full power

        # draw mixing (hot water out, inlet water in)
        if draw_liters > 0:
            frac = min(1.0, draw_liters / cfg.tank_liters)
            self.temp_c += frac * (cfg.inlet_c - self.temp_c)

        # element heat and standby loss
        loss_w = cfg.standby_loss_w_per_k * max(0.0, self.temp_c - cfg.ambient_c)
        net_w = power - loss_w
        self.temp_c += net_w * dt_s / cfg.thermal_mass_j_per_k

        # thermostat ceiling: element cannot push past setpoint
        if self.temp_c > cfg.setpoint_c:
            overshoot_j = (self.temp_c - cfg.setpoint_c) * cfg.thermal_mass_j_per_k
            power = max(0.0, power - overshoot_j / dt_s)
            self.temp_c = cfg.setpoint_c

        self.samples += 1
        if self.temp_c < cfg.min_delivery_c:
            self.comfort_violations += 1
        return power

    @property
    def comfort_violation_fraction(self) -> float:
        return self.comfort_violations / self.samples if self.samples else 0.0


@dataclass(frozen=True)
class DrawConfig:
    """Hot-water demand behaviour.

    Defaults correspond to a small family (~160-200 liters of hot water per
    day): showers morning and evening, frequent sink draws, and occasional
    appliance draws (dishwasher, warm-wash laundry).
    """

    showers_per_occupied_day: float = 2.2
    shower_liters: tuple[float, float] = (40.0, 70.0)
    shower_minutes: float = 8.0
    sink_draws_per_occupied_day: float = 8.0
    sink_liters: tuple[float, float] = (2.0, 8.0)
    appliance_draws_per_day: float = 1.0
    appliance_liters: tuple[float, float] = (15.0, 30.0)


def generate_draws(
    occupancy: BinaryTrace,
    rng: np.random.Generator,
    config: DrawConfig | None = None,
) -> np.ndarray:
    """Per-sample hot-water draw volumes (liters) aligned with occupancy.

    Draws only happen while someone is home; showers favour mornings and
    evenings, sink draws are spread across occupied hours.
    """
    config = config or DrawConfig()
    period = occupancy.period_s
    n = len(occupancy)
    draws = np.zeros(n)
    n_days = max(1, int(np.ceil(occupancy.duration_s / SECONDS_PER_DAY)))

    def place(day: int, hour: float, liters: float, minutes: float) -> None:
        i0 = int((day * SECONDS_PER_DAY + hour * SECONDS_PER_HOUR) / period)
        if i0 >= n or not occupancy.values[i0]:
            return
        n_samples = max(1, int(round(minutes * 60.0 / period)))
        i1 = min(n, i0 + n_samples)
        draws[i0:i1] += liters / (i1 - i0)

    for day in range(n_days):
        for _ in range(rng.poisson(config.showers_per_occupied_day)):
            hour = rng.normal(7.0, 1.0) if rng.uniform() < 0.6 else rng.normal(21.0, 1.2)
            place(day, float(np.clip(hour, 0.0, 23.5)),
                  rng.uniform(*config.shower_liters), config.shower_minutes)
        for _ in range(rng.poisson(config.sink_draws_per_occupied_day)):
            place(day, rng.uniform(6.0, 23.0), rng.uniform(*config.sink_liters), 1.0)
        for _ in range(rng.poisson(config.appliance_draws_per_day)):
            place(
                day,
                rng.uniform(9.0, 21.0),
                rng.uniform(*config.appliance_liters),
                20.0,
            )
    return draws


def thermostat_power(
    draws: np.ndarray,
    period_s: float,
    config: WaterHeaterConfig | None = None,
    initial_temp_c: float | None = None,
) -> tuple[np.ndarray, WaterHeaterTank]:
    """Baseline hysteresis thermostat: heat whenever temp drops below
    (setpoint - deadband), stop at setpoint.

    Returns the per-sample electrical power and the final tank (for
    inspecting comfort).  This is the "original" water-heater load that CHPr
    replaces — note it reacts *immediately* to draws, which is exactly what
    correlates heater activity with occupancy.
    """
    config = config or WaterHeaterConfig()
    tank = WaterHeaterTank(config, initial_temp_c)
    power = np.zeros(len(draws))
    heating = False
    for i, draw in enumerate(draws):
        if tank.temp_c <= config.setpoint_c - config.deadband_c:
            heating = True
        elif tank.temp_c >= config.setpoint_c - 1e-9:
            heating = False
        power[i] = tank.step(period_s, float(draw), config.element_power_w if heating else 0.0)
    return power, tank


def heater_trace(power: np.ndarray, occupancy: BinaryTrace) -> PowerTrace:
    """Wrap per-sample heater power as a trace on the occupancy clock."""
    return PowerTrace(power, occupancy.period_s, occupancy.start_s, "W")
