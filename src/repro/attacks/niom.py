"""NIOM: Non-Intrusive Occupancy Monitoring from smart-meter data.

Sec. II-A of the paper: when a home is occupied, interactive appliance use
raises both the level and the burstiness of total power; when it is empty,
only background loads (fridge, freezer, HRV) remain.  A NIOM detector turns
a metered aggregate into a binary occupancy series, and the paper reports
70-90% accuracy for such detectors across a range of homes (refs. [1],
[14]).

Three detectors are provided, mirroring the families in the literature:

* :class:`ThresholdNIOM` — per-window mean/std thresholds calibrated from
  the night-time (certainly-occupied-but-idle) distribution;
* :class:`ClusterNIOM` — 2-means over window features, the unsupervised
  approach of Kleiminger et al.;
* :class:`HMMNIOM` — a two-state Gaussian HMM over window features, which
  adds temporal smoothing (occupancy persists).

All consume only the metered trace — never simulator ground truth — and
return a :class:`BinaryTrace` on the window clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml import GaussianHMM, KMeans, StandardScaler
from ..timeseries import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    BinaryTrace,
    PowerTrace,
    window_features,
)

DEFAULT_WINDOW_S = 900.0  # 15-minute decision windows, as in ref. [1]
NIGHT_START_HOUR = 23.0
NIGHT_END_HOUR = 6.0


def _window_clock(trace: PowerTrace, window_s: float) -> tuple[int, float]:
    """Effective decision window: never finer than the trace itself.

    Defenses that coarsen the reporting interval can make the visible trace
    coarser than the detector's preferred window; the attacker then simply
    decides at the trace's own granularity.
    """
    window_s = max(window_s, trace.period_s)
    n_windows = int(trace.duration_s // window_s)
    if n_windows < 4:
        raise ValueError("trace too short for occupancy detection")
    return n_windows, window_s


def _apply_night_prior(
    occupied: np.ndarray, window_s: float, start_s: float
) -> np.ndarray:
    """Force late-night windows to occupied.

    The standard NIOM prior (Kleiminger et al.): residents sleep at home,
    so a power signal that looks idle overnight still means "occupied".
    The interesting detection problem — and the one the paper's figures
    evaluate (Fig. 1 spans 8am-11pm) — is the daytime one.
    """
    window_hours = (
        (start_s + np.arange(len(occupied)) * window_s) % SECONDS_PER_DAY
    ) / SECONDS_PER_HOUR
    night = (window_hours >= NIGHT_START_HOUR) | (window_hours < NIGHT_END_HOUR)
    out = occupied.copy()
    out[night] = 1
    return out


@dataclass(frozen=True)
class NIOMResult:
    """Detector output plus the per-window feature matrix used."""

    occupancy: BinaryTrace
    features: np.ndarray


class ThresholdNIOM:
    """Threshold NIOM (Chen et al., BuildSys'13 style).

    Calibrates an "idle home" baseline from the globally quietest windows
    (lowest mean power), then flags a window as occupied if its mean power
    or its variability exceeds the baseline by a multiplicative margin.
    The quietest windows of any home are almost always unoccupied or
    asleep-idle periods, so this is a self-calibrating unsupervised attack.

    Parameters
    ----------
    window_s:
        Decision window span.
    baseline_quantile:
        Fraction of quietest windows treated as the idle baseline.
    mean_margin / std_margin:
        Multiplicative thresholds over the baseline mean/std.
    """

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        baseline_quantile: float = 0.15,
        mean_margin: float = 1.6,
        std_margin: float = 2.5,
        night_prior: bool = False,
    ) -> None:
        if not 0.0 < baseline_quantile < 0.5:
            raise ValueError("baseline_quantile must be in (0, 0.5)")
        if mean_margin <= 1.0 or std_margin <= 1.0:
            raise ValueError("margins must exceed 1.0")
        self.window_s = window_s
        self.baseline_quantile = baseline_quantile
        self.mean_margin = mean_margin
        self.std_margin = std_margin
        self.night_prior = night_prior

    def detect(self, metered: PowerTrace) -> NIOMResult:
        _, window_s = _window_clock(metered, self.window_s)
        features = window_features(metered, window_s)
        means = features[:, 0]
        stds = features[:, 1]
        n_base = max(3, int(len(means) * self.baseline_quantile))
        quiet = np.argsort(means)[:n_base]
        base_mean = float(np.median(means[quiet])) + 1.0
        base_std = float(np.median(stds[quiet])) + 1.0
        occupied = (means > self.mean_margin * base_mean) | (
            stds > self.std_margin * base_std
        )
        occupied = occupied.astype(int)
        if self.night_prior:
            occupied = _apply_night_prior(occupied, window_s, metered.start_s)
        return NIOMResult(
            occupancy=BinaryTrace(occupied, window_s, metered.start_s),
            features=features,
        )


class ClusterNIOM:
    """Unsupervised 2-means NIOM (Kleiminger et al., BuildSys'13 style).

    Clusters window features into two groups and labels the cluster with
    the higher mean power "occupied".
    """

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        night_prior: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.window_s = window_s
        self.night_prior = night_prior
        self._rng = np.random.default_rng(rng)

    def detect(self, metered: PowerTrace) -> NIOMResult:
        _, window_s = _window_clock(metered, self.window_s)
        features = window_features(metered, window_s)
        scaled = StandardScaler().fit_transform(features)
        km = KMeans(2, rng=self._rng).fit(scaled)
        labels = km.predict(scaled)
        mean_power = [features[labels == k, 0].mean() if (labels == k).any() else 0.0 for k in (0, 1)]
        occupied_cluster = int(np.argmax(mean_power))
        occupied = (labels == occupied_cluster).astype(int)
        if self.night_prior:
            occupied = _apply_night_prior(occupied, window_s, metered.start_s)
        return NIOMResult(
            occupancy=BinaryTrace(occupied, window_s, metered.start_s),
            features=features,
        )


class HMMNIOM:
    """Two-state Gaussian HMM NIOM with temporal smoothing.

    Fits an unsupervised two-state HMM to window features; the state with
    the higher emission mean power is "occupied".  The learned sticky
    transitions encode that occupancy persists across windows, which
    suppresses single-window false flips that the memoryless detectors
    make.
    """

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        n_iter: int = 30,
        night_prior: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.window_s = window_s
        self.n_iter = n_iter
        self.night_prior = night_prior
        self._rng = np.random.default_rng(rng)

    def detect(self, metered: PowerTrace) -> NIOMResult:
        _, window_s = _window_clock(metered, self.window_s)
        features = window_features(metered, window_s)
        scaled = StandardScaler().fit_transform(features)
        hmm = GaussianHMM(2, n_iter=self.n_iter, rng=self._rng)
        hmm.fit(scaled)
        states = hmm.decode(scaled)
        mean_power = [
            features[states == k, 0].mean() if (states == k).any() else 0.0
            for k in (0, 1)
        ]
        occupied_state = int(np.argmax(mean_power))
        occupied = (states == occupied_state).astype(int)
        if self.night_prior:
            occupied = _apply_night_prior(occupied, window_s, metered.start_s)
        return NIOMResult(
            occupancy=BinaryTrace(occupied, window_s, metered.start_s),
            features=features,
        )


def score_occupancy_attack(
    detected: BinaryTrace, truth: BinaryTrace
) -> dict[str, float]:
    """Accuracy/MCC of a detector output against ground truth.

    The truth series is resampled onto the detector's window clock by
    majority vote.
    """
    from ..ml import accuracy, mcc

    aligned = truth
    if abs(truth.period_s - detected.period_s) > 1e-9:
        aligned = truth.resample(detected.period_s)
    n = min(len(aligned), len(detected))
    if n == 0:
        raise ValueError("no overlapping samples to score")
    y_true = aligned.values[:n]
    y_pred = detected.values[:n]
    return {
        "accuracy": accuracy(y_true, y_pred),
        "mcc": mcc(y_true, y_pred),
        "detected_fraction": float(y_pred.mean()),
        "true_fraction": float(y_true.mean()),
    }
