"""Behavioral profiling: what disaggregated energy data says about people.

Sec. II-A enumerates the inferences NILM output enables: "whether users
like to eat out and when", "do users eat frozen dinners or prepare fresh
meals" (microwave vs cooktop), "what days of the week do the users do
their laundry", "do they watch a lot of TV", "what time do the occupants go
to bed".  This module turns per-appliance traces (from any NILM backend or
from ground truth) into exactly that behavioral profile — the demonstration
that the privacy harm is concrete, not hypothetical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..timeseries import (
    BinaryTrace,
    PowerTrace,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    TraceError,
)

_ON_THRESHOLD_FRACTION = 0.3


def _on_mask(trace: PowerTrace) -> np.ndarray:
    peak = trace.max()
    if peak <= 0:
        return np.zeros(len(trace), dtype=bool)
    return trace.values > _ON_THRESHOLD_FRACTION * peak


def usage_events_per_day(trace: PowerTrace) -> float:
    """Mean number of distinct on-runs per day."""
    mask = _on_mask(trace)
    starts = int(np.sum(mask[1:] & ~mask[:-1]) + (1 if mask[0] else 0))
    n_days = max(1, trace.duration_s / SECONDS_PER_DAY)
    return starts / n_days


def usage_hours_histogram(trace: PowerTrace) -> np.ndarray:
    """Fraction of the device's on-time falling in each hour-of-day bin."""
    mask = _on_mask(trace)
    hours = trace.hours_of_day()[mask].astype(int)
    counts = np.bincount(hours, minlength=24).astype(float)
    total = counts.sum()
    return counts / total if total > 0 else counts


def active_days_of_week(trace: PowerTrace, threshold_events: int = 1) -> list[int]:
    """Days of the week (0 = epoch day 0's weekday) the device is used.

    "What days of the week do the users do their laundry?"
    """
    mask = _on_mask(trace)
    day_index = (trace.times() // SECONDS_PER_DAY).astype(int)
    events_per_weekday = np.zeros(7)
    weeks_per_weekday = np.zeros(7)
    for day in range(int(day_index.max()) + 1):
        weekday = day % 7
        weeks_per_weekday[weekday] += 1
        day_mask = mask[day_index == day]
        if len(day_mask):
            starts = int(np.sum(day_mask[1:] & ~day_mask[:-1]) + (1 if day_mask[0] else 0))
            if starts >= threshold_events:
                events_per_weekday[weekday] += 1
    active = []
    for weekday in range(7):
        if weeks_per_weekday[weekday] and (
            events_per_weekday[weekday] / weeks_per_weekday[weekday] >= 0.5
        ):
            active.append(weekday)
    return active


@dataclass(frozen=True)
class MealProfile:
    """Cooking behaviour inferred from kitchen appliances."""

    microwave_meals_per_day: float
    cooktop_meals_per_day: float
    eats_out_days_fraction: float

    @property
    def prefers_frozen_dinners(self) -> bool:
        """Microwave-dominated cooking (Sec. II-A's "frozen dinners")."""
        return self.microwave_meals_per_day > 1.5 * self.cooktop_meals_per_day


def meal_profile(
    microwave: PowerTrace | None, cooktop: PowerTrace | None
) -> MealProfile:
    """Infer cooking style; either appliance may be absent (None)."""
    if microwave is None and cooktop is None:
        raise ValueError("need at least one kitchen appliance trace")
    mw_rate = usage_events_per_day(microwave) if microwave is not None else 0.0
    ct_rate = usage_events_per_day(cooktop) if cooktop is not None else 0.0

    # a day with no evening cooking events at all suggests eating out.
    # Windows are anchored at the trace's own clock (``start_s``), not the
    # epoch: ``slice_time`` takes absolute times, so an epoch-anchored
    # window never overlaps a trace recorded later than day zero and every
    # day would wrongly count as eaten-out.
    reference = microwave if microwave is not None else cooktop
    n_days = max(1, int(reference.duration_s // SECONDS_PER_DAY))
    evenings = 0
    days_without_dinner = 0
    for day in range(n_days):
        t0 = reference.start_s + day * SECONDS_PER_DAY + 17 * SECONDS_PER_HOUR
        t1 = reference.start_s + day * SECONDS_PER_DAY + 21 * SECONDS_PER_HOUR
        cooked = False
        seen = False
        for trace in (microwave, cooktop):
            if trace is None:
                continue
            try:
                segment = trace.slice_time(t0, t1)
            except TraceError:
                # this trace simply doesn't cover the evening window
                continue
            seen = True
            if _on_mask(segment).any():
                cooked = True
        if not seen:
            continue
        evenings += 1
        if not cooked:
            days_without_dinner += 1
    return MealProfile(
        microwave_meals_per_day=mw_rate,
        cooktop_meals_per_day=ct_rate,
        eats_out_days_fraction=(
            days_without_dinner / evenings if evenings else 0.0
        ),
    )


def estimated_bedtime_hour(
    occupancy: BinaryTrace, lighting: PowerTrace | None = None
) -> float:
    """Median hour at which evening activity ceases.

    Uses the lighting trace when available (lights-out is the sharpest
    bedtime marker); otherwise falls back to the last occupied-and-active
    evening hour.
    """
    if lighting is not None:
        mask = _on_mask(lighting)
        hours = lighting.hours_of_day()
        n_days = max(1, int(lighting.duration_s // SECONDS_PER_DAY))
        day_idx = (lighting.times() // SECONDS_PER_DAY).astype(int)
    else:
        mask = occupancy.values.astype(bool)
        hours = (occupancy.times() % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        n_days = max(1, int(occupancy.duration_s // SECONDS_PER_DAY))
        day_idx = (occupancy.times() // SECONDS_PER_DAY).astype(int)
    bedtimes = []
    for day in range(n_days):
        in_day = day_idx == day
        evening = in_day & (hours >= 19.0) & mask
        if evening.any():
            bedtimes.append(hours[evening].max())
    if not bedtimes:
        raise ValueError("no evening activity found")
    return float(np.median(bedtimes))


@dataclass(frozen=True)
class HouseholdProfile:
    """The full Sec. II-A behavioral dossier."""

    meals: MealProfile | None
    laundry_weekdays: list[int]
    tv_hours_per_day: float
    bedtime_hour: float
    occupied_fraction: float
    appliance_event_rates: dict[str, float] = field(default_factory=dict)


def build_profile(
    appliance_traces: dict[str, PowerTrace],
    occupancy: BinaryTrace,
) -> HouseholdProfile:
    """Assemble a behavioral profile from disaggregated appliance traces."""
    if not appliance_traces:
        raise ValueError("need at least one appliance trace")
    microwave = appliance_traces.get("microwave")
    cooktop = appliance_traces.get("cooktop")
    meals = None
    if microwave is not None or cooktop is not None:
        meals = meal_profile(microwave, cooktop)

    laundry: list[int] = []
    for name in ("washer", "dryer"):
        if name in appliance_traces:
            laundry = sorted(set(laundry) | set(active_days_of_week(appliance_traces[name])))

    tv_hours = 0.0
    if "tv" in appliance_traces:
        tv = appliance_traces["tv"]
        n_days = max(1.0, tv.duration_s / SECONDS_PER_DAY)
        tv_hours = float(_on_mask(tv).sum() * tv.period_s / SECONDS_PER_HOUR / n_days)

    return HouseholdProfile(
        meals=meals,
        laundry_weekdays=laundry,
        tv_hours_per_day=tv_hours,
        bedtime_hour=estimated_bedtime_hour(occupancy, appliance_traces.get("lighting")),
        occupied_fraction=occupancy.fraction_true(),
        appliance_event_rates={
            name: usage_events_per_day(trace)
            for name, trace in appliance_traces.items()
        },
    )
