"""Privacy attacks on energy IoT data: NIOM, NILM, and profiling."""

from .niom import (
    DEFAULT_WINDOW_S,
    ClusterNIOM,
    HMMNIOM,
    NIOMResult,
    ThresholdNIOM,
    score_occupancy_attack,
)
from .nilm import (
    DisaggregationResult,
    FHMMConfig,
    FHMMDisaggregator,
    HartDisaggregator,
    LoadKind,
    LoadSignature,
    PowerPlayTracker,
    align_truth_to_meter,
    disaggregation_error,
    fig2_signatures,
)
from .profiling import (
    HouseholdProfile,
    MealProfile,
    active_days_of_week,
    build_profile,
    estimated_bedtime_hour,
    meal_profile,
    usage_events_per_day,
    usage_hours_histogram,
)

__all__ = [
    "DEFAULT_WINDOW_S",
    "ClusterNIOM",
    "HMMNIOM",
    "NIOMResult",
    "ThresholdNIOM",
    "score_occupancy_attack",
    "DisaggregationResult",
    "FHMMConfig",
    "FHMMDisaggregator",
    "HartDisaggregator",
    "LoadKind",
    "LoadSignature",
    "PowerPlayTracker",
    "align_truth_to_meter",
    "disaggregation_error",
    "fig2_signatures",
    "HouseholdProfile",
    "MealProfile",
    "active_days_of_week",
    "build_profile",
    "estimated_bedtime_hour",
    "meal_profile",
    "usage_events_per_day",
    "usage_hours_histogram",
]
