"""Hart's event-based NILM (1989, ref. [16]): the classic edge-pair method.

Included as a third point of comparison for the ablation benchmarks:
detect step changes, pair rising with falling edges of matching magnitude,
cluster the pair magnitudes into appliance signatures, and assign clusters
to known appliances by nominal power.  Unsupervised except for the final
nominal-power labeling.
"""

from __future__ import annotations

import numpy as np

from ...ml import KMeans
from ...timeseries import PowerTrace, detect_edges, pair_edges
from .common import DisaggregationResult


class HartDisaggregator:
    """Edge-pair clustering NILM.

    Parameters
    ----------
    appliance_powers:
        Mapping from appliance name to nominal on-power; clusters of edge
        pairs are assigned to the nearest nominal power within
        ``assign_tolerance`` (relative).
    """

    def __init__(
        self,
        appliance_powers: dict[str, float],
        edge_threshold_w: float = 40.0,
        pair_tolerance_w: float = 60.0,
        assign_tolerance: float = 0.35,
        rng=None,
    ) -> None:
        if not appliance_powers:
            raise ValueError("need at least one appliance")
        if any(p <= 0 for p in appliance_powers.values()):
            raise ValueError("appliance powers must be positive")
        self.appliance_powers = dict(appliance_powers)
        self.edge_threshold_w = edge_threshold_w
        self.pair_tolerance_w = pair_tolerance_w
        self.assign_tolerance = assign_tolerance
        self._rng = np.random.default_rng(rng)

    def disaggregate(self, metered: PowerTrace) -> DisaggregationResult:
        edges = detect_edges(metered, min_delta_w=self.edge_threshold_w)
        pairs = pair_edges(edges, tolerance_w=self.pair_tolerance_w)
        estimates = {
            name: np.zeros(len(metered)) for name in self.appliance_powers
        }
        if pairs:
            magnitudes = np.asarray(
                [[(abs(r.delta_w) + abs(f.delta_w)) / 2.0] for r, f in pairs]
            )
            k = min(len(self.appliance_powers) + 1, len(pairs))
            km = KMeans(k, rng=self._rng).fit(magnitudes)
            labels = km.predict(magnitudes)
            # assign each cluster to the nearest nominal appliance power
            cluster_to_name: dict[int, str] = {}
            for cluster in range(k):
                level = float(km.centroids_[cluster, 0])
                best_name, best_rel = None, self.assign_tolerance
                for name, nominal in self.appliance_powers.items():
                    rel = abs(level - nominal) / nominal
                    if rel <= best_rel:
                        best_name, best_rel = name, rel
                if best_name is not None:
                    cluster_to_name[cluster] = best_name
            for (rise, fall), label in zip(pairs, labels):
                name = cluster_to_name.get(int(label))
                if name is None:
                    continue
                level = (abs(rise.delta_w) + abs(fall.delta_w)) / 2.0
                estimates[name][rise.index : fall.index] = level
        return DisaggregationResult(
            {
                name: PowerTrace(values, metered.period_s, metered.start_s, "W")
                for name, values in estimates.items()
            }
        )
