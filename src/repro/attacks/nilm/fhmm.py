"""Conventional FHMM-based NILM: the Fig. 2 baseline.

Follows the REDD methodology of Kolter & Johnson (ref. [19]): each tracked
appliance is modeled as a hidden Markov chain over power levels, *learned
from training data* (sub-metered traces of each appliance, e.g. an
instrumented training week), and disaggregation runs exact Viterbi over the
factorial combination of the chains on the metered aggregate.

The contrast with PowerPlay is the paper's point: the FHMM must (i) learn
its models from data rather than starting from known load physics, and
(ii) explain the *whole* aggregate, so unmodeled background activity
(lighting, microwave, TV) and meter noise corrupt its state estimates —
especially for small loads whose power is within the noise of bigger ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...ml import FactorialHMM, GaussianHMM, fit_appliance_chain
from ...timeseries import PowerTrace
from .common import DisaggregationResult


@dataclass(frozen=True)
class FHMMConfig:
    """Training/inference knobs for the FHMM baseline."""

    states_per_appliance: dict[str, int] | None = None
    default_states: int = 2
    noise_var: float = 2500.0  # meter + unmodeled-load variance (W^2)

    def n_states(self, name: str) -> int:
        if self.states_per_appliance and name in self.states_per_appliance:
            return self.states_per_appliance[name]
        return self.default_states


class FHMMDisaggregator:
    """Train on sub-metered appliance traces, decode aggregates."""

    def __init__(self, config: FHMMConfig | None = None, rng=None) -> None:
        self.config = config or FHMMConfig()
        self._rng = np.random.default_rng(rng)
        self.chains_: dict[str, GaussianHMM] = {}
        self._fhmm: FactorialHMM | None = None

    def fit(self, training_traces: dict[str, PowerTrace]) -> "FHMMDisaggregator":
        """Learn one chain per appliance from its training trace."""
        if not training_traces:
            raise ValueError("need at least one appliance to train on")
        self.chains_ = {}
        for name, trace in training_traces.items():
            self.chains_[name] = fit_appliance_chain(
                trace.values,
                n_states=self.config.n_states(name),
                rng=self._rng.integers(2**31),
            )
        self._fhmm = FactorialHMM(
            list(self.chains_.values()), noise_var=self.config.noise_var
        )
        return self

    def disaggregate(self, metered: PowerTrace) -> DisaggregationResult:
        """Viterbi-decode the aggregate into per-appliance power."""
        if self._fhmm is None:
            raise RuntimeError("FHMMDisaggregator is not fitted")
        powers = self._fhmm.disaggregate(metered.values.reshape(-1, 1))
        estimates = {
            name: PowerTrace(powers[:, j], metered.period_s, metered.start_s, "W")
            for j, name in enumerate(self.chains_)
        }
        return DisaggregationResult(estimates)
