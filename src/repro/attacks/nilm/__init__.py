"""NILM attacks: PowerPlay (model-driven), FHMM (learned), Hart (edges)."""

from .common import DisaggregationResult, align_truth_to_meter, disaggregation_error
from .fhmm import FHMMConfig, FHMMDisaggregator
from .hart import HartDisaggregator
from .powerplay import LoadKind, LoadSignature, PowerPlayTracker, fig2_signatures

__all__ = [
    "DisaggregationResult",
    "align_truth_to_meter",
    "disaggregation_error",
    "FHMMConfig",
    "FHMMDisaggregator",
    "HartDisaggregator",
    "LoadKind",
    "LoadSignature",
    "PowerPlayTracker",
    "fig2_signatures",
]
