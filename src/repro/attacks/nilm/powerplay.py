"""PowerPlay: model-driven real-time load tracking (virtual power meters).

Reproduces Barker et al. (BuildSys'14, ref. [2]), the stronger NILM bar in
Fig. 2.  PowerPlay differs from learning-based NILM in two ways the paper
stresses: (i) it tracks the real-time power of *specific* loads rather than
disaggregating everything, and (ii) it assumes a detailed a-priori *model*
of each tracked load, parameterized by a small number of electrical
characteristics (resistive / inductive / non-linear / cyclical, per
ref. [18]).  Each tracked load gets a "virtual sensor" that scans the
aggregate for that load's identifiable features — edge magnitudes,
durations, duty cycles — and emits the load's estimated power.

The virtual sensors are intentionally feature-based rather than
probabilistic: a fridge's +150 W / -150 W cycle pair with a ~15 min on-time
survives meter noise and unmodeled background activity far better than a
joint generative model does, which is exactly the robustness Fig. 2
demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ...timeseries import Edge, PowerTrace, detect_edges
from .common import DisaggregationResult


class LoadKind(Enum):
    """Electrical load classes from ref. [18]."""

    RESISTIVE = "resistive"
    INDUCTIVE = "inductive"
    NON_LINEAR = "non_linear"
    CYCLIC = "cyclic"
    CONTINUOUS = "continuous"
    COMPOUND = "compound"


@dataclass(frozen=True)
class LoadSignature:
    """An a-priori appliance model, as PowerPlay assumes is known.

    Parameters
    ----------
    name / kind:
        Identity and electrical class.
    on_power_w:
        Steady active power while on (for COMPOUND: the cycling element's
        power; ``motor_power_w`` carries the continuous part).
    power_tolerance:
        Relative tolerance when matching edge magnitudes (e.g. 0.25 accepts
        edges within +/-25% of nominal).
    min_duration_s / max_duration_s:
        On-cycle duration bounds.
    cycle_period_s:
        For CYCLIC loads: nominal full on+off period, used to enforce
        periodicity when claiming cycles.
    nominal_on_s:
        For CYCLIC loads: typical on-cycle duration.  When one edge of a
        cycle is corrupted by a concurrent transition of another load, the
        virtual sensor claims the surviving edge and fills the modeled
        nominal duration — the model-driven recovery that feature-free
        methods cannot do.
    motor_power_w:
        For COMPOUND loads: the continuous motor draw accompanying the
        cycling element.
    base_power_w:
        For CONTINUOUS loads: the always-on draw (and ``on_power_w`` is the
        boosted level, if any).
    """

    name: str
    kind: LoadKind
    on_power_w: float
    power_tolerance: float = 0.25
    min_duration_s: float = 60.0
    max_duration_s: float = 7200.0
    cycle_period_s: float | None = None
    nominal_on_s: float | None = None
    motor_power_w: float = 0.0
    base_power_w: float = 0.0

    def __post_init__(self) -> None:
        if self.on_power_w <= 0:
            raise ValueError("on_power_w must be positive")
        if not 0.0 < self.power_tolerance < 1.0:
            raise ValueError("power_tolerance must be in (0, 1)")
        if self.min_duration_s <= 0 or self.max_duration_s < self.min_duration_s:
            raise ValueError("invalid duration bounds")
        if self.kind is LoadKind.CYCLIC and self.cycle_period_s is None:
            raise ValueError("cyclic loads need cycle_period_s")
        if self.kind is LoadKind.COMPOUND and self.motor_power_w <= 0:
            raise ValueError("compound loads need motor_power_w")

    def matches_magnitude(self, delta_w: float) -> bool:
        target = self.on_power_w + (
            self.motor_power_w if self.kind is LoadKind.COMPOUND else 0.0
        )
        return abs(abs(delta_w) - target) <= self.power_tolerance * target


@dataclass
class _Claim:
    """A matched on-cycle of one signature."""

    start_index: int
    end_index: int
    measured_power_w: float


def _pair_candidates(
    edges: list[Edge],
    used: np.ndarray,
    signature: LoadSignature,
    target: float,
) -> list[tuple[float, int, int]]:
    """Score all feasible (rise, fall) pairings for one signature.

    Broadcast formulation of the nested rise x fall loop kept in
    :mod:`repro.attacks.nilm._reference`: magnitude matching, duration
    bounds and the score expression are the same float64 operations in the
    same association, and ``np.lexsort`` over ``(score, rise, fall)``
    reproduces the tuple-sort order exactly, so the returned list is
    identical to the loop's.
    """
    if not edges:
        return []
    deltas = np.array([e.delta_w for e in edges])
    times = np.array([e.time_s for e in edges])
    free = ~np.asarray(used, dtype=bool)
    match = np.abs(np.abs(deltas) - target) <= signature.power_tolerance * target
    rise_idx = np.flatnonzero((deltas > 0) & free & match)
    fall_idx = np.flatnonzero((deltas <= 0) & free & match)
    if len(rise_idx) == 0 or len(fall_idx) == 0:
        return []
    durations = times[fall_idx][None, :] - times[rise_idx][:, None]
    feasible = (
        (times[fall_idx][None, :] > times[rise_idx][:, None])
        & (durations >= signature.min_duration_s)
        & (durations <= signature.max_duration_s)
    )
    ii, jj = np.nonzero(feasible)
    if len(ii) == 0:
        return []
    r = rise_idx[ii]
    f = fall_idx[jj]
    rise_err = np.abs(np.abs(deltas[r]) - target)
    fall_err = np.abs(np.abs(deltas[f]) - target)
    pair_err = np.abs(deltas[r] + deltas[f])
    scores = ((rise_err + fall_err) + pair_err) / target
    order = np.lexsort((f, r, scores))
    return [(float(scores[k]), int(r[k]), int(f[k])) for k in order]


class PowerPlayTracker:
    """Virtual power meters over an aggregate smart-meter trace.

    Signatures are processed in descending power order so that large,
    unambiguous loads (dryer) claim their edges before small loads (fridge)
    scan what remains — mirroring PowerPlay's prioritization of easily
    identifiable features.
    """

    def __init__(
        self,
        signatures: list[LoadSignature],
        edge_threshold_w: float = 40.0,
        edge_settle_samples: int = 3,
    ) -> None:
        if not signatures:
            raise ValueError("need at least one signature")
        names = [s.name for s in signatures]
        if len(names) != len(set(names)):
            raise ValueError("duplicate signature names")
        self.signatures = sorted(
            signatures, key=lambda s: s.on_power_w + s.motor_power_w, reverse=True
        )
        self.edge_threshold_w = edge_threshold_w
        # median over a few settle samples keeps inductive startup spikes
        # out of the measured steady-state edge magnitude
        self.edge_settle_samples = edge_settle_samples

    # ------------------------------------------------------------------
    def track(self, metered: PowerTrace) -> DisaggregationResult:
        """Run every virtual sensor; returns per-load power estimates."""
        edges = detect_edges(
            metered,
            min_delta_w=self.edge_threshold_w,
            settle_samples=self.edge_settle_samples,
        )
        used = np.zeros(len(edges), dtype=bool)
        estimates: dict[str, PowerTrace] = {}
        for signature in self.signatures:
            if signature.kind is LoadKind.CONTINUOUS:
                estimates[signature.name] = self._track_continuous(
                    metered, signature, edges, used
                )
                continue
            claims = self._claim_cycles(metered, edges, used, signature)
            estimates[signature.name] = self._render(metered, signature, claims)
        return DisaggregationResult(estimates)

    # ------------------------------------------------------------------
    def _claim_cycles(
        self,
        metered: PowerTrace,
        edges: list[Edge],
        used: np.ndarray,
        signature: LoadSignature,
    ) -> list[_Claim]:
        """Best-score rise/fall pairing under the signature's constraints.

        All feasible (rise, fall) candidates are scored by how closely they
        match the modeled magnitude and by rise/fall magnitude agreement;
        pairs are then accepted best-first without reusing edges or
        overlapping in time.  Best-first selection matters in a noisy
        aggregate: a lighting step can fall in a small load's magnitude
        band, and greedy first-come matching would let it steal a cycle.
        """
        period = metered.period_s
        target = signature.on_power_w + (
            signature.motor_power_w if signature.kind is LoadKind.COMPOUND else 0.0
        )
        candidates = _pair_candidates(edges, used, signature, target)

        claimed_spans: list[tuple[int, int]] = []
        claims: list[_Claim] = []
        for _score, i, j in candidates:
            if used[i] or used[j]:
                continue
            start, end = edges[i].index, edges[j].index
            if any(start < e and end > s for s, e in claimed_spans):
                continue  # overlaps a cycle this load is already running
            used[i] = True
            used[j] = True
            claimed_spans.append((start, end))
            claims.append(
                _Claim(
                    start_index=start,
                    end_index=end,
                    measured_power_w=(abs(edges[i].delta_w) + abs(edges[j].delta_w)) / 2.0,
                )
            )
        claims.sort(key=lambda c: c.start_index)

        if signature.kind is LoadKind.CYCLIC and signature.nominal_on_s:
            claims = self._claim_orphans(
                metered, edges, used, signature, claims
            )

        if signature.kind is LoadKind.CYCLIC and signature.cycle_period_s:
            claims = self._enforce_periodicity(claims, period, signature)
        return claims

    def _claim_orphans(
        self,
        metered: PowerTrace,
        edges: list[Edge],
        used: np.ndarray,
        signature: LoadSignature,
        claims: list[_Claim],
    ) -> list[_Claim]:
        """Recover cycles whose partner edge was corrupted.

        A concurrent transition of another load inside the settle window
        shifts one edge's measured magnitude out of the matching band, so
        strict pairing drops the whole cycle.  For cyclic loads the model
        knows the nominal on-duration: an orphan rise (or fall) that
        matches tightly is claimed on its own and filled forward (or
        backward) for the nominal duration.
        """
        period = metered.period_s
        nominal_samples = max(1, int(signature.nominal_on_s / period))
        spans = [(c.start_index, c.end_index) for c in claims]

        def overlaps(start: int, end: int) -> bool:
            return any(start < e and end > s for s, e in spans)

        extra: list[_Claim] = []
        for i, edge in enumerate(edges):
            if used[i] or not signature.matches_magnitude(edge.delta_w):
                continue
            if edge.is_rising:
                start = edge.index
                end = min(len(metered), start + nominal_samples)
            else:
                end = edge.index
                start = max(0, end - nominal_samples)
            if overlaps(start, end):
                continue
            used[i] = True
            spans.append((start, end))
            extra.append(
                _Claim(
                    start_index=start,
                    end_index=end,
                    measured_power_w=abs(edge.delta_w),
                )
            )
        merged = claims + extra
        merged.sort(key=lambda c: c.start_index)
        return merged

    @staticmethod
    def _enforce_periodicity(
        claims: list[_Claim], period_s: float, signature: LoadSignature
    ) -> list[_Claim]:
        """Drop claimed cycles that violate the load's duty-cycle spacing.

        A fridge cannot start a new cooling cycle moments after finishing
        one; a claim starting well before the nominal period has elapsed is
        likely another appliance's edge pair.
        """
        if len(claims) < 2:
            return claims
        min_gap_s = 0.3 * signature.cycle_period_s
        kept: list[_Claim] = [claims[0]]
        for claim in claims[1:]:
            gap = (claim.start_index - kept[-1].start_index) * period_s
            if gap >= min_gap_s:
                kept.append(claim)
        return kept

    def _render(
        self,
        metered: PowerTrace,
        signature: LoadSignature,
        claims: list[_Claim],
    ) -> PowerTrace:
        """Virtual-sensor output: the load's modeled power during claims."""
        values = np.zeros(len(metered))
        for claim in claims:
            if signature.kind is LoadKind.COMPOUND:
                # element cycles under thermostat control on top of the
                # motor; the edge pair brackets one element burst, so fill
                # with motor + element and let adjacent claims tile the run
                values[claim.start_index : claim.end_index] = (
                    signature.motor_power_w + signature.on_power_w
                )
            else:
                level = min(
                    claim.measured_power_w,
                    signature.on_power_w * (1.0 + signature.power_tolerance),
                )
                values[claim.start_index : claim.end_index] = level
        return PowerTrace(values, metered.period_s, metered.start_s, "W")

    def _track_continuous(
        self,
        metered: PowerTrace,
        signature: LoadSignature,
        edges: list[Edge],
        used: np.ndarray,
    ) -> PowerTrace:
        """Always-on loads: the known base draw plus detected boost cycles.

        The virtual sensor reports the modeled base power whenever the
        aggregate supports it (it always does unless the home is
        disconnected).  Boost periods — e.g. an HRV shifting to high speed —
        appear as +/-(on - base) edge pairs and are claimed like any other
        cycle.
        """
        base = signature.base_power_w if signature.base_power_w > 0 else signature.on_power_w
        values = np.full(len(metered), base)
        feasible = metered.values >= 0.8 * base
        values[~feasible] = np.maximum(metered.values[~feasible], 0.0)
        boost = signature.on_power_w - base
        if boost > 40.0:
            boost_signature = LoadSignature(
                name=f"{signature.name}:boost",
                kind=LoadKind.NON_LINEAR,
                on_power_w=boost,
                power_tolerance=signature.power_tolerance,
                min_duration_s=signature.min_duration_s,
                max_duration_s=signature.max_duration_s,
            )
            for claim in self._claim_cycles(metered, edges, used, boost_signature):
                values[claim.start_index : claim.end_index] = signature.on_power_w
        return PowerTrace(values, metered.period_s, metered.start_s, "W")


def fig2_signatures() -> list[LoadSignature]:
    """A-priori models for the five Fig. 2 devices.

    These are the public "load models known a priori" PowerPlay assumes —
    nominal plates and duty cycles, deliberately *not* tuned to any single
    simulated home.
    """
    return [
        LoadSignature(
            name="toaster",
            kind=LoadKind.RESISTIVE,
            on_power_w=1050.0,
            power_tolerance=0.2,
            min_duration_s=60.0,
            max_duration_s=360.0,
        ),
        LoadSignature(
            name="fridge",
            kind=LoadKind.CYCLIC,
            on_power_w=150.0,
            # tolerance tight enough to not claim the freezer's 120 W edges
            power_tolerance=0.12,
            min_duration_s=300.0,
            max_duration_s=2400.0,
            cycle_period_s=45.0 * 60.0,
            nominal_on_s=15.0 * 60.0,
        ),
        LoadSignature(
            name="freezer",
            kind=LoadKind.CYCLIC,
            on_power_w=120.0,
            power_tolerance=0.12,
            min_duration_s=300.0,
            max_duration_s=2400.0,
            cycle_period_s=52.0 * 60.0,
            nominal_on_s=12.0 * 60.0,
        ),
        LoadSignature(
            name="dryer",
            kind=LoadKind.COMPOUND,
            on_power_w=4800.0,
            motor_power_w=300.0,
            power_tolerance=0.15,
            min_duration_s=120.0,
            max_duration_s=900.0,
        ),
        LoadSignature(
            name="hrv",
            kind=LoadKind.CONTINUOUS,
            on_power_w=160.0,
            base_power_w=80.0,
            power_tolerance=0.3,
            min_duration_s=600.0,
            max_duration_s=7200.0,
        ),
    ]
