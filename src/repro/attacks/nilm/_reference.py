"""Pre-vectorization reference for the PowerPlay pairing hot path.

This is the original nested rise x fall candidate loop of
``PowerPlayTracker._claim_cycles``, kept verbatim as reference semantics
for the vectorized :func:`repro.attacks.nilm.powerplay._pair_candidates`
(see ``docs/PERFORMANCE.md``).

The contract is exact: for the same edges, used mask and signature, the
vectorized version must return the same candidate list in the same order.
Scores are built from the same float64 operations in the same association,
and the ``(score, rise_index, fall_index)`` sort key is replicated with
``np.lexsort``, so no tolerance is needed.
``tests/test_kernel_equivalence.py`` pins the production function to this
one; ``benchmarks/bench_kernels.py`` times the pair.
"""

from __future__ import annotations

import numpy as np

from ...timeseries import Edge


def pair_candidates_loop(
    edges: list[Edge],
    used: np.ndarray,
    signature,
    target: float,
) -> list[tuple[float, int, int]]:
    """Original nested-loop candidate scoring of ``_claim_cycles``."""
    candidates: list[tuple[float, int, int]] = []
    rises = [
        (i, e)
        for i, e in enumerate(edges)
        if e.is_rising and not used[i] and signature.matches_magnitude(e.delta_w)
    ]
    falls = [
        (j, e)
        for j, e in enumerate(edges)
        if not e.is_rising and not used[j] and signature.matches_magnitude(e.delta_w)
    ]
    for i, rise in rises:
        for j, fall in falls:
            if fall.time_s <= rise.time_s:
                continue
            duration = fall.time_s - rise.time_s
            if duration < signature.min_duration_s:
                continue
            if duration > signature.max_duration_s:
                break  # falls are time-ordered; all later ones too long
            magnitude_error = (
                abs(abs(rise.delta_w) - target)
                + abs(abs(fall.delta_w) - target)
                + abs(rise.delta_w + fall.delta_w)
            )
            candidates.append((magnitude_error / target, i, j))
    candidates.sort()
    return candidates
