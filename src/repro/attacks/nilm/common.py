"""Shared NILM types and the Fig. 2 error metric."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...timeseries import PowerTrace


@dataclass(frozen=True)
class DisaggregationResult:
    """Per-appliance power estimates inferred from an aggregate trace."""

    estimates: dict[str, PowerTrace]

    def appliance(self, name: str) -> PowerTrace:
        if name not in self.estimates:
            raise KeyError(f"no estimate for appliance {name!r}")
        return self.estimates[name]


def disaggregation_error(estimate: PowerTrace, truth: PowerTrace) -> float:
    """The paper's tracking error factor (Fig. 2).

    Sum of absolute per-sample errors normalized by the device's total
    energy: 0 is perfect tracking; 1 means the errors equal the device's
    own usage (what "always predict zero" scores); values above 1 mean the
    estimate is actively worse than silence.
    """
    n = min(len(estimate), len(truth))
    if n == 0:
        raise ValueError("empty traces")
    if abs(estimate.period_s - truth.period_s) > 1e-9:
        raise ValueError("estimate and truth must share a sampling period")
    est = estimate.values[:n]
    tru = truth.values[:n]
    denominator = float(tru.sum())
    if denominator <= 0.0:
        raise ValueError("device never used in the truth trace")
    return float(np.abs(est - tru).sum() / denominator)


def align_truth_to_meter(truth: PowerTrace, metered: PowerTrace) -> PowerTrace:
    """Resample a base-period ground-truth trace onto the meter clock."""
    out = truth
    if metered.period_s > truth.period_s:
        out = truth.resample(metered.period_s, reducer="mean")
    n = min(len(out), len(metered))
    return PowerTrace(out.values[:n], out.period_s, out.start_s, out.unit)
