"""Pluggable executor backends for the fleet supervisor.

The supervisor in :mod:`repro.fleet.engine` is deliberately agnostic
about *how* a job's bytes move and *how much* work one dispatch carries;
this module owns those two axes:

``serial``
    Force the in-process loop even when ``workers > 1`` — no pool, no
    pickling, no crash/hang guard (retries only).
``process``
    The default: one :class:`~concurrent.futures.ProcessPoolExecutor`
    job per home, results pickled back through the pool's result pipe.
    With ``keep_traces`` the metered :class:`~repro.timeseries.PowerTrace`
    rides along as an explicit pickled :class:`InlinePayload`.
``shmem``
    Same per-home pool dispatch, but the worker writes the metered trace
    into a named ``multiprocessing.shared_memory`` block and ships only a
    :class:`ShmemPayload` descriptor; the supervisor attaches, copies
    out, verifies the trace digest, and unlinks.  Segment names are a
    pure function of ``(run prefix, home index, attempt)``, so after the
    run the supervisor can sweep every candidate name and unlink
    anything a crashed or killed worker left behind
    (:func:`sweep_segments` — the leak detector).
``batched``
    One pool job simulates a whole *block* of homes in a single
    vectorized numpy pass (:func:`repro.home.batch.simulate_home_block`),
    amortizing dispatch/pickling overhead across the block.  Supervision
    (retry/timeout/crash/quarantine) applies at block granularity.

Every backend produces bit-identical per-home results — the
backend-parity test matrix pins home-for-home ``trace_digest`` equality
and byte-identical cache entries across all four.

Telemetry names introduced here: ``fleet.backend.<name>``,
``payload.pack`` / ``payload.recv`` timers, ``payload.bytes``,
``shmem.segments_created`` / ``shmem.bytes_shared`` /
``shmem.leaked_segments``, and ``batch.passes`` /
``batch.homes_per_pass`` counters.
"""

from __future__ import annotations

import os
import pickle
import uuid
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Sequence

import numpy as np

from ..obs import TELEMETRY
from ..timeseries import PowerTrace
from .spec import HomeJob

#: the executor-backend axis, in CLI order
BACKENDS = ("serial", "process", "shmem", "batched")
DEFAULT_BACKEND = "process"

#: how a worker ships a metered trace back to the supervisor
PAYLOAD_CHANNELS = ("none", "direct", "inline", "shmem")


def resolve_backend(name: str) -> str:
    """Validate and normalize a backend name."""
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; available: {list(BACKENDS)}"
        )
    return name


# ----------------------------------------------------------------------
# Payload channels
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InlinePayload:
    """A trace pickled to explicit bytes, riding the result pipe."""

    data: bytes


@dataclass(frozen=True)
class ShmemPayload:
    """Descriptor of a trace parked in a named shared-memory segment.

    Only this (tiny) descriptor crosses the result pipe; the samples stay
    in the segment until the supervisor materializes and unlinks it.
    ``digest`` is the worker-side trace digest, re-checked after the copy
    so a torn or tampered segment can never be mistaken for a result.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str
    period_s: float
    start_s: float
    unit: str
    digest: str
    nbytes: int


def new_run_prefix() -> str:
    """A per-run segment-name prefix, unique across concurrent runs."""
    return f"rf{os.getpid():x}x{uuid.uuid4().hex[:6]}"


def segment_name(prefix: str, index: int, attempt: int) -> str:
    """Deterministic segment name for one (home, attempt) cell.

    Determinism is what makes leak *detection* possible: the supervisor
    can enumerate every name any attempt could have used and sweep them,
    without globbing ``/dev/shm`` (which other processes share).
    """
    return f"{prefix}-{index}-a{attempt}"


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach a just-created segment from the resource tracker.

    ``SharedMemory(create=True)`` registers the name with the
    ``resource_tracker``, which unlinks leftovers when the registering
    process tree exits.  Our segments are owned by the *supervisor's*
    teardown sweep, not by whichever pool worker happened to create them
    — so the creating side unregisters immediately, and the consuming
    side re-registers just before ``unlink()`` (:func:`_track`), whose
    own unconditional unregister then balances the books.  Every
    register is matched by exactly one unregister under both fork
    (shared tracker process) and spawn (per-process trackers).
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001 — tracker API is version-dependent
        pass


def _track(shm: shared_memory.SharedMemory) -> None:
    """Re-register an attached segment so ``unlink()`` can unregister it."""
    try:
        resource_tracker.register(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001 — tracker API is version-dependent
        pass


def pack_trace(
    trace: PowerTrace, channel: str, *, name: str | None = None
) -> InlinePayload | ShmemPayload:
    """Pack a metered trace for the given payload channel (worker side)."""
    if channel == "inline":
        with TELEMETRY.timer("payload.pack"):
            data = pickle.dumps(trace, protocol=pickle.HIGHEST_PROTOCOL)
        TELEMETRY.count("payload.bytes", len(data))
        return InlinePayload(data=data)
    if channel == "shmem":
        if not name:
            raise ValueError("shmem channel needs a segment name")
        from .engine import trace_digest  # function-level: engine imports us

        values = np.ascontiguousarray(trace.values)
        with TELEMETRY.timer("payload.pack"):
            shm = _create_segment(name, values.nbytes)
            try:
                np.ndarray(
                    values.shape, dtype=values.dtype, buffer=shm.buf
                )[:] = values
            finally:
                shm.close()
        TELEMETRY.count("shmem.segments_created")
        TELEMETRY.count("shmem.bytes_shared", values.nbytes)
        TELEMETRY.count("payload.bytes", values.nbytes)
        return ShmemPayload(
            name=name,
            shape=tuple(values.shape),
            dtype=str(values.dtype),
            period_s=trace.period_s,
            start_s=trace.start_s,
            unit=trace.unit,
            digest=trace_digest(trace),
            nbytes=values.nbytes,
        )
    raise ValueError(f"cannot pack for channel {channel!r}")


def _create_segment(name: str, nbytes: int) -> shared_memory.SharedMemory:
    """Create a named segment, reclaiming a stale one of the same name.

    A name collision is possible when a pool died *after* an attempt
    packed its segment but *before* its result was delivered: the
    supervisor requeues such crash victims uncharged, so the retry runs
    under the same attempt number.  The stale segment's content is dead
    (its result never arrived), so unlink-and-recreate is safe.
    """
    try:
        shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
    except FileExistsError:
        stale = shared_memory.SharedMemory(name=name)
        _track(stale)
        stale.close()
        stale.unlink()
        shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
    _untrack(shm)
    return shm


def materialize_trace(payload: InlinePayload | ShmemPayload) -> PowerTrace:
    """Reconstruct a metered trace from its payload (supervisor side).

    Shared-memory payloads are unlinked here — materializing a segment
    consumes it.  The caller is expected to verify the trace digest
    (:meth:`ShmemPayload.digest`) against the result's recorded digest.
    """
    if isinstance(payload, InlinePayload):
        with TELEMETRY.timer("payload.recv"):
            trace = pickle.loads(payload.data)
        if not isinstance(trace, PowerTrace):
            raise TypeError(f"inline payload held {type(trace).__name__}")
        return trace
    if isinstance(payload, ShmemPayload):
        with TELEMETRY.timer("payload.recv"):
            shm = shared_memory.SharedMemory(name=payload.name)
            _track(shm)
            try:
                values = np.array(
                    np.ndarray(
                        payload.shape, dtype=payload.dtype, buffer=shm.buf
                    )
                )
            finally:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:
                    _untrack(shm)
        return PowerTrace(
            values, payload.period_s, payload.start_s, unit=payload.unit
        )
    raise TypeError(f"not a payload: {type(payload).__name__}")


def sweep_segments(
    prefix: str, indices: Sequence[int], max_retries: int
) -> int:
    """Unlink every segment a run could have leaked; returns the count.

    Runs on supervisor teardown.  A segment survives a run only when a
    worker was killed (crash, hang teardown, SIGKILL) between packing and
    result delivery — the sweep enumerates every candidate
    ``(index, attempt)`` name and reclaims the stragglers, so a chaotic
    run can never leak ``/dev/shm`` space.
    """
    leaked = 0
    for index in indices:
        for attempt in range(max_retries + 1):
            name = segment_name(prefix, index, attempt)
            try:
                shm = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            _track(shm)
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                _untrack(shm)
                continue
            leaked += 1
    return leaked


# ----------------------------------------------------------------------
# Batched (across-home) dispatch
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HomeBlockJob:
    """A block of home jobs simulated by one worker dispatch.

    ``index`` is the first member's home index and ``preset`` a readable
    span label — the supervisor's failure bookkeeping sees blocks, and
    the engine expands any block-level failure back into per-home
    :class:`~repro.fleet.engine.HomeFailure` records.
    """

    index: int
    preset: str
    jobs: tuple[HomeJob, ...]
    attempt: int = 0


@dataclass(frozen=True)
class HomeBlockResult:
    """One executed block: per-home results plus the block's telemetry."""

    index: int
    results: tuple
    telemetry: object | None = None


def partition_blocks(
    jobs: Sequence[HomeJob], block_size: int
) -> list[HomeBlockJob]:
    """Chop a job list into order-preserving blocks of ``block_size``."""
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    blocks = []
    for start in range(0, len(jobs), block_size):
        members = tuple(jobs[start : start + block_size])
        blocks.append(
            HomeBlockJob(
                index=members[0].index,
                preset=(
                    f"homes[{members[0].index}..{members[-1].index}]"
                    if len(members) > 1
                    else members[0].preset
                ),
                jobs=members,
            )
        )
    return blocks


def run_home_block(block: HomeBlockJob) -> HomeBlockResult:
    """Simulate, defend, and attack a block of homes.  Runs inside workers.

    The block is the supervision unit: fault injection still fires per
    *home* index (so chaos plans target the same homes on every backend),
    but an injected error fails the whole block's attempt, and retries
    re-run the whole block — bit-identically, because every home keeps
    its own spawned seed streams.
    """
    from ..core.pipeline import evaluate_simulation
    from ..home.batch import simulate_home_block
    from .engine import FLEET_DETECTORS, HomeResult, trace_digest
    from .faults import maybe_inject

    for job in block.jobs:
        maybe_inject(job.index, block.attempt)
    days = {job.days for job in block.jobs}
    if len(days) != 1:
        raise ValueError("a home block must share one simulated duration")
    before = TELEMETRY.snapshot() if TELEMETRY.enabled else None
    results = []
    with TELEMETRY.timer("stage.block"):
        with TELEMETRY.timer("stage.simulate"):
            sims = simulate_home_block(
                [job.config for job in block.jobs],
                days.pop(),
                [np.random.default_rng(job.sim_seed) for job in block.jobs],
            )
        TELEMETRY.count("batch.passes")
        TELEMETRY.count("batch.homes_per_pass", len(block.jobs))
        for job, sim in zip(block.jobs, sims):
            detectors = tuple(
                (name, FLEET_DETECTORS[name]) for name in job.detectors
            )
            with TELEMETRY.timer("stage.job"):
                pipeline = evaluate_simulation(
                    sim,
                    list(job.defenses),
                    np.random.default_rng(job.defense_seed),
                    detectors,
                )
            results.append(
                HomeResult(
                    index=job.index,
                    preset=job.preset,
                    home_name=job.config.name,
                    fingerprint=job.fingerprint,
                    days=job.days,
                    trace_digest=trace_digest(sim.metered),
                    energy_kwh=sim.metered.energy_kwh(),
                    baseline=pipeline.baseline,
                    defenses=pipeline.defenses,
                    metered=sim.metered if job.payload == "direct" else None,
                )
            )
    snapshot = None
    if before is not None:
        snapshot = TELEMETRY.snapshot().minus(before)
        TELEMETRY.restore(before)
    return HomeBlockResult(
        index=block.index, results=tuple(results), telemetry=snapshot
    )
