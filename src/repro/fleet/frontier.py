"""Privacy-utility frontier aggregation for knob sweeps (Sec. III-E).

A sweep cell answers "what happens at *this* dial position of *this*
defense, over *this* seeded population"; the paper's Fig. 6 story is the
resulting *curve* — attack success traded against what the dial costs.
:class:`FrontierReport` reduces each cell's per-home
:class:`~repro.core.evaluation.TradeoffPoint` list into one
:class:`FrontierPoint` carrying population distributions of the four
frontier axes:

* ``mcc`` — worst-case attack MCC (privacy lost to the best detector);
* ``distortion_w`` — load-profile RMSE (what grid analytics lose);
* ``bill_error`` — billing energy error fraction (what the bill drifts);
* ``extra_kwh`` — energy the defense itself burned.

The report also knows the *shape* the knob semantics promise: turning the
dial up must not make the attack better.  :meth:`monotone_violations`
checks that per (defense, seed) series, which is the acceptance gate
``tests/test_sweep.py`` runs against every built-in knob mapping.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from .report import PopulationStats

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (sweep imports us)
    from .sweep import CellResult


@dataclass(frozen=True)
class FrontierPoint:
    """One sweep cell reduced to the frontier's four axes."""

    defense: str
    setting: float
    seed: int
    n_homes: int
    n_failed: int
    mcc: PopulationStats
    distortion_w: PopulationStats
    bill_error: PopulationStats
    extra_kwh: PopulationStats

    def as_dict(self) -> dict:
        return {
            "defense": self.defense,
            "setting": self.setting,
            "seed": self.seed,
            "n_homes": self.n_homes,
            "n_failed": self.n_failed,
            "mcc": self.mcc.as_dict(),
            "distortion_w": self.distortion_w.as_dict(),
            "bill_error": self.bill_error.as_dict(),
            "extra_kwh": self.extra_kwh.as_dict(),
        }


@dataclass(frozen=True)
class FrontierReport:
    """The sweep's deliverable: frontier points plus their sanity checks."""

    points: tuple[FrontierPoint, ...]

    @classmethod
    def from_cells(cls, cells: Iterable["CellResult"]) -> "FrontierReport":
        points = []
        for cell_result in cells:
            homes = cell_result.fleet.homes
            if not homes:
                # a fully failed cell contributes no point; the sweep's
                # failure report carries the post-mortem
                continue
            tradeoffs = [
                home.defenses[cell_result.cell.knob_name] for home in homes
            ]
            points.append(
                FrontierPoint(
                    defense=cell_result.cell.defense,
                    setting=cell_result.cell.setting,
                    seed=cell_result.cell.seed,
                    n_homes=len(homes),
                    n_failed=cell_result.fleet.n_failed,
                    mcc=PopulationStats.of(
                        [t.privacy.worst_case_mcc for t in tradeoffs]
                    ),
                    distortion_w=PopulationStats.of(
                        [t.utility.profile_rmse_w for t in tradeoffs]
                    ),
                    bill_error=PopulationStats.of(
                        [t.utility.energy_error_fraction for t in tradeoffs]
                    ),
                    extra_kwh=PopulationStats.of(
                        [t.extra_energy_kwh for t in tradeoffs]
                    ),
                )
            )
        points.sort(key=lambda p: (p.defense, p.setting, p.seed))
        return cls(points=tuple(points))

    # ------------------------------------------------------------------
    # Frontier-shape checks
    # ------------------------------------------------------------------
    def monotone_violations(self, tolerance: float = 0.05) -> list[str]:
        """Knob semantics check: higher setting must not raise attack MCC.

        MCC estimates are noisy (finite homes, stochastic defenses), so
        each point is compared against the *running minimum* of its
        (defense, seed) series with a tolerance, not against the previous
        point exactly.  Returns human-readable violation descriptions
        (empty = frontier is sane).
        """
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        series: dict[tuple[str, int], list[FrontierPoint]] = {}
        for point in self.points:
            series.setdefault((point.defense, point.seed), []).append(point)
        violations = []
        for (defense, seed), pts in sorted(series.items()):
            running_min = float("inf")
            for point in sorted(pts, key=lambda p: p.setting):
                if point.mcc.mean > running_min + tolerance:
                    violations.append(
                        f"{defense}@{point.setting:g} (seed {seed}): "
                        f"mcc {point.mcc.mean:.3f} exceeds running min "
                        f"{running_min:.3f} + {tolerance:g}"
                    )
                running_min = min(running_min, point.mcc.mean)
        return violations

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {"points": [p.as_dict() for p in self.points]}

    def to_json(self, path: str | Path | None = None) -> str:
        doc = json.dumps(self.as_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(doc + "\n")
        return doc

    @classmethod
    def from_json(cls, path: str | Path) -> "FrontierReport":
        """Round-trip a :meth:`to_json` export back into a report."""
        doc = json.loads(Path(path).read_text())
        points = []
        for row in doc["points"]:
            points.append(
                FrontierPoint(
                    defense=row["defense"],
                    setting=float(row["setting"]),
                    seed=int(row["seed"]),
                    n_homes=int(row["n_homes"]),
                    n_failed=int(row["n_failed"]),
                    mcc=PopulationStats(**row["mcc"]),
                    distortion_w=PopulationStats(**row["distortion_w"]),
                    bill_error=PopulationStats(**row["bill_error"]),
                    extra_kwh=PopulationStats(**row["extra_kwh"]),
                )
            )
        return cls(points=tuple(points))

    CSV_HEADER = (
        "defense", "setting", "seed", "n_homes", "n_failed",
        "mcc_mean", "mcc_median", "mcc_p10", "mcc_p90",
        "distortion_w_mean", "distortion_w_median",
        "bill_error_mean", "bill_error_median",
        "extra_kwh_mean", "extra_kwh_median",
    )

    def csv_rows(self) -> list[list]:
        return [
            [
                p.defense, p.setting, p.seed, p.n_homes, p.n_failed,
                p.mcc.mean, p.mcc.median, p.mcc.p10, p.mcc.p90,
                p.distortion_w.mean, p.distortion_w.median,
                p.bill_error.mean, p.bill_error.median,
                p.extra_kwh.mean, p.extra_kwh.median,
            ]
            for p in self.points
        ]

    def to_csv(self, path: str | Path) -> Path:
        from ..datasets.io import save_rows_csv

        path = Path(path)
        save_rows_csv(path, self.CSV_HEADER, self.csv_rows())
        return path

    def format_table(self) -> str:
        """Aligned text view: one line per frontier point."""
        header = (
            f"{'defense':<12s} {'setting':>7s} {'seed':>4s} "
            f"{'mcc':>6s} {'p90':>6s} {'rmse W':>8s} "
            f"{'bill':>6s} {'kwh':>7s}"
        )
        lines = [header, "-" * len(header)]
        for p in self.points:
            lines.append(
                f"{p.defense:<12s} {p.setting:>7.3f} {p.seed:>4d} "
                f"{p.mcc.mean:>6.3f} {p.mcc.p90:>6.3f} "
                f"{p.distortion_w.mean:>8.1f} "
                f"{p.bill_error.mean:>6.3f} {p.extra_kwh.mean:>7.2f}"
            )
        return "\n".join(lines)
