"""Fleet-scale evaluation: many homes, worker processes, cached cells.

The paper's threat model is utility-scale — an adversary (or an auditing
utility) observes *populations* of homes, not one household.  This package
turns the single-home pipeline into a population instrument:

- :class:`FleetSpec` — declare N homes from the preset registry with
  deterministic per-home ``SeedSequence.spawn`` seeding;
- :class:`FleetRunner` / :func:`run_fleet` — chunked fan-out over a
  process pool with serial fallback and an on-disk result cache;
- :class:`FleetReport` — per-defense population distributions
  (mean/median/p10/p90 of worst-case MCC, utility, energy cost).

Quickstart::

    from repro.fleet import FleetSpec, run_fleet, FleetReport
    result = run_fleet(FleetSpec(n_homes=50, days=3, seed=0), workers=4)
    print(FleetReport.from_result(result).format_table())
"""

from .cache import CACHE_FORMAT_VERSION, CacheStats, ResultCache, job_cache_key
from .engine import (
    FLEET_DETECTORS,
    FleetResult,
    FleetRunner,
    HomeResult,
    run_fleet,
    run_home_job,
    trace_digest,
)
from .report import (
    BASELINE,
    DefenseDistribution,
    FleetReport,
    PopulationStats,
)
from .spec import DEFAULT_FLEET_DETECTORS, FleetSpec, HomeJob

__all__ = [
    "BASELINE",
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "DEFAULT_FLEET_DETECTORS",
    "DefenseDistribution",
    "FLEET_DETECTORS",
    "FleetReport",
    "FleetResult",
    "FleetRunner",
    "FleetSpec",
    "HomeJob",
    "HomeResult",
    "PopulationStats",
    "ResultCache",
    "job_cache_key",
    "run_fleet",
    "run_home_job",
    "trace_digest",
]
