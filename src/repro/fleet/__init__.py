"""Fleet-scale evaluation: many homes, worker processes, cached cells.

The paper's threat model is utility-scale — an adversary (or an auditing
utility) observes *populations* of homes, not one household.  This package
turns the single-home pipeline into a population instrument:

- :class:`FleetSpec` — declare N homes from the preset registry with
  deterministic per-home ``SeedSequence.spawn`` seeding;
- :class:`FleetRunner` / :func:`run_fleet` — *supervised* fan-out over a
  process pool: per-home failure isolation, bounded retries with
  backoff, per-job wall-clock timeouts, pool rebuild after worker
  crashes, streaming writes to an on-disk result cache, and a serial
  fallback for pool-less platforms;
- :class:`FleetReport` — per-defense population distributions
  (mean/median/p10/p90 of worst-case MCC, utility, energy cost) plus
  the sweep's :class:`HomeFailure` records;
- :mod:`repro.fleet.backends` — pluggable executor backends
  (``--backend serial|process|shmem|batched``): shared-memory trace
  passing and across-home batched simulation, every backend pinned
  bit-identical to the others by the backend-parity test matrix;
- :mod:`repro.fleet.faults` — deterministic fault injection (worker
  errors, crashes, hangs) so the recovery paths above are *tested*, not
  trusted;
- :class:`SweepGrid` / :class:`SweepRunner` / :func:`run_sweep` — the
  Sec. III-E knob grid: (defense × knob setting × seed) cells, each one
  fleet run of a single ``name@setting`` parametrized defense, sharded
  with ``--shard i/n`` and resumable through the same cache; reduced by
  :class:`FrontierReport` into privacy-utility frontier points;
- telemetry (``telemetry=True`` / ``repro fleet --telemetry``) — per-stage
  counter/timer snapshots from :mod:`repro.obs`, captured inside each
  worker, merged into fleet totals on :class:`FleetResult` and surfaced in
  :class:`FleetReport`; ``profile_dir=`` dumps per-job cProfile stats.

Quickstart::

    from repro.fleet import FleetSpec, run_fleet, FleetReport
    result = run_fleet(FleetSpec(n_homes=50, days=3, seed=0), workers=4)
    print(FleetReport.from_result(result).format_table())
"""

from .artifacts import (
    Artifact,
    ArtifactError,
    ArtifactRow,
    artifact_from_frontier,
    artifact_from_netpriv,
    artifact_from_stream,
    load_artifact,
)
from .backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    HomeBlockJob,
    HomeBlockResult,
    InlinePayload,
    ShmemPayload,
    materialize_trace,
    new_run_prefix,
    pack_trace,
    partition_blocks,
    resolve_backend,
    run_home_block,
    segment_name,
    sweep_segments,
)
from .cache import CACHE_FORMAT_VERSION, CacheStats, ResultCache, job_cache_key
from .engine import (
    FLEET_DETECTORS,
    FleetResult,
    FleetRunner,
    HomeFailure,
    HomeResult,
    HomeStreamResult,
    JobsResult,
    StreamFleetResult,
    result_digest,
    run_fleet,
    run_home_job,
    run_stream_job,
    trace_digest,
)
from .faults import FAULTS_ENV, FaultInjected, FaultPlan
from .frontier import FrontierPoint, FrontierReport
from .netpriv import (
    NETPRIV_LAN_CONFIGS,
    NetprivFrontierPoint,
    NetprivFrontierReport,
    NetprivGrid,
    NetprivJob,
    NetprivJobResult,
    NetprivSweepResult,
    NetprivSweepRunner,
    netpriv_lan_config,
    run_netpriv_job,
    run_netpriv_sweep,
)
from .report import (
    BASELINE,
    DefenseDistribution,
    FleetReport,
    PopulationStats,
)
from .spec import DEFAULT_FLEET_DETECTORS, FleetSpec, HomeJob
from .sweep import (
    CellResult,
    SweepCell,
    SweepError,
    SweepGrid,
    SweepResult,
    SweepRunner,
    load_grid,
    parse_shard,
    run_sweep,
    shard_cells,
)

__all__ = [
    "Artifact",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "HomeBlockJob",
    "HomeBlockResult",
    "InlinePayload",
    "ShmemPayload",
    "materialize_trace",
    "new_run_prefix",
    "pack_trace",
    "partition_blocks",
    "resolve_backend",
    "run_home_block",
    "segment_name",
    "sweep_segments",
    "ArtifactError",
    "ArtifactRow",
    "artifact_from_frontier",
    "artifact_from_netpriv",
    "artifact_from_stream",
    "load_artifact",
    "BASELINE",
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "CellResult",
    "DEFAULT_FLEET_DETECTORS",
    "DefenseDistribution",
    "FAULTS_ENV",
    "FLEET_DETECTORS",
    "FaultInjected",
    "FaultPlan",
    "FleetReport",
    "FleetResult",
    "FleetRunner",
    "FleetSpec",
    "FrontierPoint",
    "FrontierReport",
    "HomeFailure",
    "HomeJob",
    "HomeResult",
    "HomeStreamResult",
    "JobsResult",
    "NETPRIV_LAN_CONFIGS",
    "NetprivFrontierPoint",
    "NetprivFrontierReport",
    "NetprivGrid",
    "NetprivJob",
    "NetprivJobResult",
    "NetprivSweepResult",
    "NetprivSweepRunner",
    "netpriv_lan_config",
    "run_netpriv_job",
    "run_netpriv_sweep",
    "PopulationStats",
    "ResultCache",
    "StreamFleetResult",
    "SweepCell",
    "SweepError",
    "SweepGrid",
    "SweepResult",
    "SweepRunner",
    "job_cache_key",
    "load_grid",
    "parse_shard",
    "result_digest",
    "run_fleet",
    "run_home_job",
    "run_stream_job",
    "run_sweep",
    "shard_cells",
    "trace_digest",
]
