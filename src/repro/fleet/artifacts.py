"""Uniform claim-facing view over sweep, netpriv, and stream artifacts.

The claims engine (:mod:`repro.claims`) should not care whether a
number came from a ``repro sweep`` frontier, a ``repro netpriv``
arms-race frontier, or a ``repro stream`` session report.  This module
flattens all three into one shape: an :class:`Artifact` holding
:class:`ArtifactRow` cells, each with optional grid coordinates
(defense, setting, seed) and a flat ``metrics`` mapping of dotted names
to floats (``"mcc.mean"``, ``"adaptive_mcc.p90"``,
``"throughput.niom.samples_per_sec"``).

:func:`load_artifact` sniffs the JSON shape and refuses loudly — a
foreign or truncated file raises :class:`ArtifactError` instead of
evaluating to an empty artifact that would let every claim silently
pass.  In-memory reports take the direct constructors
(:func:`artifact_from_frontier`, :func:`artifact_from_netpriv`,
:func:`artifact_from_stream`).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.knob import knob_defense_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.frontier import FrontierReport
    from repro.fleet.netpriv import NetprivFrontierReport
    from repro.stream.session import StreamReport


class ArtifactError(ValueError):
    """An artifact file that cannot be trusted as claim evidence."""


#: Recognised artifact kinds, in sniffing order.
ARTIFACT_KINDS = ("sweep-frontier", "netpriv-frontier", "stream")

_SWEEP_AXES = ("mcc", "distortion_w", "bill_error", "extra_kwh")
_NETPRIV_AXES = (
    "naive_mcc",
    "adaptive_mcc",
    "naive_fingerprint_acc",
    "adaptive_fingerprint_acc",
    "cover_mb_per_day",
    "mean_added_delay_s",
)


@dataclass(frozen=True)
class ArtifactRow:
    """One evaluated cell: coordinates plus flattened numeric metrics.

    Coordinates are ``None`` when the artifact has no such axis — a
    stream report is one session, not a grid cell, so all three are
    ``None`` and only unconstrained selectors match it.
    """

    label: str
    defense: str | None
    setting: float | None
    seed: int | None
    metrics: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class Artifact:
    """A claim-evaluable artifact: its kind, provenance, and rows."""

    kind: str
    source: str
    rows: tuple[ArtifactRow, ...]

    def __post_init__(self) -> None:
        if self.kind not in ARTIFACT_KINDS:
            raise ArtifactError(
                f"{self.source}: unknown artifact kind {self.kind!r}"
            )
        if not self.rows:
            raise ArtifactError(
                f"{self.source}: artifact holds no evaluated cells — "
                "refusing to certify against empty evidence"
            )

    def metric_names(self) -> tuple[str, ...]:
        """Every metric name any row carries, sorted."""
        names: set[str] = set()
        for row in self.rows:
            names.update(row.metrics)
        return tuple(sorted(names))


def _as_float(value: object, where: str) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        v = float(value)
        if math.isnan(v):
            raise ArtifactError(f"{where}: NaN metric value")
        return v
    raise ArtifactError(f"{where}: non-numeric metric value {value!r}")


def _flatten(doc: object, prefix: str, out: dict[str, float], where: str) -> None:
    """Recursively flatten numeric/bool leaves into dotted names.

    Strings and ``None`` leaves are skipped (labels, policies); lists
    are reduced to their length, which turns e.g. a stream report's
    ``failures`` list into a countable ``failures`` metric.
    """
    if isinstance(doc, dict):
        for key, value in doc.items():
            _flatten(value, f"{prefix}{key}.", out, where)
    elif isinstance(doc, (list, tuple)):
        out[prefix.rstrip(".")] = float(len(doc))
    elif isinstance(doc, bool) or isinstance(doc, (int, float)):
        out[prefix.rstrip(".")] = _as_float(doc, where)
    # str / None leaves carry no claimable number


def _cell_label(defense: str, setting: float, seed: int) -> str:
    return f"{knob_defense_name(defense, setting)} seed={seed}"


def _stats_metrics(
    row: dict, axes: tuple[str, ...], where: str
) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for axis in axes:
        stats = row.get(axis)
        if not isinstance(stats, dict) or not stats:
            raise ArtifactError(f"{where}: missing population stats {axis!r}")
        for stat, value in stats.items():
            metrics[f"{axis}.{stat}"] = _as_float(value, f"{where}.{axis}")
    for extra in ("n_homes", "n_lans", "n_failed"):
        if extra in row:
            metrics[extra] = _as_float(value=row[extra], where=where)
    return metrics


def _frontier_rows(
    doc: dict, axes: tuple[str, ...], source: str
) -> tuple[ArtifactRow, ...]:
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        raise ArtifactError(f"{source}: frontier holds no points")
    rows = []
    for i, row in enumerate(points):
        if not isinstance(row, dict):
            raise ArtifactError(f"{source}: point {i} is not an object")
        try:
            defense = str(row["defense"])
            setting = float(row["setting"])
            seed = int(row["seed"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(
                f"{source}: point {i} lacks defense/setting/seed ({exc})"
            ) from exc
        where = f"{source}: point {i}"
        metrics = _stats_metrics(row, axes, where)
        if axes is _NETPRIV_AXES:
            metrics["adaptive_advantage"] = (
                metrics["adaptive_mcc.mean"] - metrics["naive_mcc.mean"]
            )
        rows.append(
            ArtifactRow(
                label=_cell_label(defense, setting, seed),
                defense=defense,
                setting=setting,
                seed=seed,
                metrics=metrics,
            )
        )
    return tuple(rows)


def _stream_rows(doc: dict, source: str) -> tuple[ArtifactRow, ...]:
    metrics: dict[str, float] = {}
    _flatten(doc, "", metrics, source)
    if not metrics:
        raise ArtifactError(f"{source}: stream report carries no numbers")
    return (
        ArtifactRow(
            label=f"stream session ({doc.get('total_samples', '?')} samples)",
            defense=None,
            setting=None,
            seed=None,
            metrics=metrics,
        ),
    )


def artifact_from_dict(doc: object, source: str = "<memory>") -> Artifact:
    """Sniff a decoded JSON document into an :class:`Artifact`.

    Sweep and netpriv frontiers share the ``{"points": [...]}`` shell
    and are told apart by their population-stat axes; a stream report
    is recognised by its ``results`` + ``throughput`` + ``total_samples``
    trio.  Anything else is foreign evidence and raises
    :class:`ArtifactError`.
    """
    if not isinstance(doc, dict):
        raise ArtifactError(f"{source}: artifact must be a JSON object")
    points = doc.get("points")
    if isinstance(points, list):
        if not points or not isinstance(points[0], dict):
            raise ArtifactError(f"{source}: frontier holds no points")
        head = points[0]
        if all(axis in head for axis in _NETPRIV_AXES):
            return Artifact(
                kind="netpriv-frontier",
                source=source,
                rows=_frontier_rows(doc, _NETPRIV_AXES, source),
            )
        if all(axis in head for axis in _SWEEP_AXES):
            return Artifact(
                kind="sweep-frontier",
                source=source,
                rows=_frontier_rows(doc, _SWEEP_AXES, source),
            )
        raise ArtifactError(
            f"{source}: points carry neither the sweep axes "
            f"{_SWEEP_AXES} nor the netpriv axes — foreign frontier?"
        )
    if all(key in doc for key in ("results", "throughput", "total_samples")):
        return Artifact(kind="stream", source=source, rows=_stream_rows(doc, source))
    raise ArtifactError(
        f"{source}: unrecognised artifact shape (want a repro sweep/netpriv "
        "frontier JSON or a repro stream report JSON); top-level keys: "
        f"{sorted(doc)[:8]}"
    )


def load_artifact(path: str | Path) -> Artifact:
    """Read one artifact JSON from disk, sniffing its kind.

    Every failure mode — unreadable file, invalid JSON, foreign shape,
    empty frontier, non-numeric metric — raises :class:`ArtifactError`
    naming the path, so a certification run can never silently treat
    bad evidence as "no violations".
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path}: {exc}") from exc
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"bad JSON in artifact {path}: {exc}") from exc
    return artifact_from_dict(doc, source=str(path))


def artifact_from_frontier(
    report: "FrontierReport", source: str = "<FrontierReport>"
) -> Artifact:
    """Wrap an in-memory sweep :class:`~repro.fleet.frontier.FrontierReport`."""
    return artifact_from_dict(report.as_dict(), source=source)


def artifact_from_netpriv(
    report: "NetprivFrontierReport", source: str = "<NetprivFrontierReport>"
) -> Artifact:
    """Wrap an in-memory :class:`~repro.fleet.netpriv.NetprivFrontierReport`."""
    return artifact_from_dict(report.as_dict(), source=source)


def artifact_from_stream(
    report: "StreamReport", source: str = "<StreamReport>"
) -> Artifact:
    """Wrap an in-memory :class:`~repro.stream.session.StreamReport`."""
    return artifact_from_dict(report.as_dict(), source=source)


__all__ = [
    "ARTIFACT_KINDS",
    "Artifact",
    "ArtifactError",
    "ArtifactRow",
    "artifact_from_dict",
    "artifact_from_frontier",
    "artifact_from_netpriv",
    "artifact_from_stream",
    "load_artifact",
]
