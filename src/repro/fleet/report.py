"""Population-level reduction of per-home fleet results.

A single home's :class:`~repro.core.evaluation.TradeoffPoint` answers "how
exposed is *this* household"; a utility (or an adversary) cares about the
*distribution* over its service territory.  :class:`FleetReport` reduces a
:class:`~repro.fleet.engine.FleetResult` into per-defense population
statistics — mean / median / p10 / p90 / min / max of worst-case attack
MCC, analytics utility, and energy cost — and exports them as aligned
text, JSON, or CSV.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .engine import FleetResult, HomeFailure

BASELINE = "baseline"


@dataclass(frozen=True)
class PopulationStats:
    """Distribution summary of one scalar metric over the fleet."""

    mean: float
    median: float
    p10: float
    p90: float
    min: float
    max: float

    @classmethod
    def of(cls, values) -> "PopulationStats":
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            raise ValueError("no values to summarize")
        return cls(
            mean=float(arr.mean()),
            median=float(np.median(arr)),
            p10=float(np.percentile(arr, 10)),
            p90=float(np.percentile(arr, 90)),
            min=float(arr.min()),
            max=float(arr.max()),
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "mean": self.mean,
            "median": self.median,
            "p10": self.p10,
            "p90": self.p90,
            "min": self.min,
            "max": self.max,
        }


@dataclass(frozen=True)
class DefenseDistribution:
    """One defense's population-wide tradeoff distributions."""

    defense: str
    worst_case_mcc: PopulationStats
    utility: PopulationStats
    extra_energy_kwh: PopulationStats

    def as_dict(self) -> dict:
        return {
            "defense": self.defense,
            "worst_case_mcc": self.worst_case_mcc.as_dict(),
            "utility": self.utility.as_dict(),
            "extra_energy_kwh": self.extra_energy_kwh.as_dict(),
        }


@dataclass(frozen=True)
class FleetReport:
    """The population report: what ``repro fleet`` prints and exports.

    Distributions summarize the homes that *succeeded*; permanently
    failed homes ride along as ``failures`` (with ``n_failed`` and the
    per-failure rows surfaced in the JSON/CSV exports) so a degraded
    sweep is still a complete, honest artifact.
    """

    n_homes: int
    days: int
    seed: int
    mix: tuple[str, ...]
    distributions: dict[str, DefenseDistribution]  # baseline first
    energy_kwh: PopulationStats
    elapsed_s: float
    workers_used: int
    executed: int
    cache: dict | None = None
    failures: tuple[HomeFailure, ...] = ()
    pool_rebuilds: int = 0
    #: telemetry section (present when the run collected it): fleet-level
    #: counter/timer totals plus population stats of per-home stage
    #: durations — see :meth:`telemetry_section`.
    telemetry: dict | None = None

    @property
    def n_failed(self) -> int:
        return len(self.failures)

    @classmethod
    def from_result(cls, result: FleetResult) -> "FleetReport":
        homes = result.homes
        if not homes:
            raise ValueError(
                "fleet result has no successful homes "
                f"({result.n_failed} failed); nothing to summarize"
            )

        def dist(name: str, points) -> DefenseDistribution:
            return DefenseDistribution(
                defense=name,
                worst_case_mcc=PopulationStats.of(
                    [p.privacy.worst_case_mcc for p in points]
                ),
                utility=PopulationStats.of([p.utility.composite() for p in points]),
                extra_energy_kwh=PopulationStats.of(
                    [p.extra_energy_kwh for p in points]
                ),
            )

        distributions = {BASELINE: dist(BASELINE, [h.baseline for h in homes])}
        for name in homes[0].defenses:
            distributions[name] = dist(name, [h.defenses[name] for h in homes])

        telemetry = None
        if result.telemetry is not None:
            telemetry = cls.telemetry_section(result)

        return cls(
            n_homes=len(homes),
            days=result.spec.days,
            seed=result.spec.seed,
            mix=result.spec.mix,
            distributions=distributions,
            energy_kwh=PopulationStats.of([h.energy_kwh for h in homes]),
            elapsed_s=result.elapsed_s,
            workers_used=result.workers_used,
            executed=result.executed,
            cache=(
                result.cache_stats.as_dict()
                if result.cache_stats is not None
                else None
            ),
            failures=result.failures,
            pool_rebuilds=result.pool_rebuilds,
            telemetry=telemetry,
        )

    @staticmethod
    def telemetry_section(result: FleetResult) -> dict:
        """Reduce a run's telemetry to a JSON-ready section.

        ``totals`` are the fleet-level merged counters/timers;
        ``per_home_stage_s`` summarizes the *distribution* of each stage
        timer's per-home seconds across executed homes (cache hits carry
        no snapshot — their compute happened in an earlier run).
        """
        per_home = [h.telemetry for h in result.homes if h.telemetry is not None]
        stage_names = sorted({name for snap in per_home for name in snap.timers})
        per_home_stage_s = {}
        for name in stage_names:
            values = [
                snap.timers[name].total_s
                for snap in per_home
                if name in snap.timers
            ]
            if values:
                per_home_stage_s[name] = PopulationStats.of(values).as_dict()
        return {
            "totals": result.telemetry.as_dict(),
            "per_home_stage_s": per_home_stage_s,
            "homes_with_telemetry": len(per_home),
            "elapsed_s": result.elapsed_s,
            "workers_used": result.workers_used,
        }

    # ------------------------------------------------------------------
    # Comparisons and exports
    # ------------------------------------------------------------------
    def comparable(self, other: "FleetReport") -> bool:
        """True when both reports describe identical population scores.

        Runtime facts (wall-clock, worker count, cache hits) are excluded:
        two runs of the same spec are "the same report" even if one was
        parallel and one was cached.
        """
        return (
            self.n_homes == other.n_homes
            and self.days == other.days
            and self.seed == other.seed
            and self.mix == other.mix
            and self.distributions == other.distributions
            and self.energy_kwh == other.energy_kwh
        )

    def as_dict(self) -> dict:
        return {
            "n_homes": self.n_homes,
            "days": self.days,
            "seed": self.seed,
            "mix": list(self.mix),
            "defenses": [d.as_dict() for d in self.distributions.values()],
            "energy_kwh": self.energy_kwh.as_dict(),
            "elapsed_s": self.elapsed_s,
            "workers_used": self.workers_used,
            "executed": self.executed,
            "cache": self.cache,
            "n_failed": self.n_failed,
            "failures": [f.as_dict() for f in self.failures],
            "pool_rebuilds": self.pool_rebuilds,
            "telemetry": self.telemetry,
        }

    def to_json(self, path: str | Path | None = None) -> str:
        doc = json.dumps(self.as_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(doc + "\n")
        return doc

    CSV_HEADER = (
        "defense",
        "mcc_mean", "mcc_median", "mcc_p10", "mcc_p90",
        "utility_mean", "utility_median", "utility_p10", "utility_p90",
        "extra_kwh_mean", "extra_kwh_median",
    )

    def csv_rows(self) -> list[list]:
        rows: list[list] = []
        for dist in self.distributions.values():
            rows.append(
                [
                    dist.defense,
                    dist.worst_case_mcc.mean, dist.worst_case_mcc.median,
                    dist.worst_case_mcc.p10, dist.worst_case_mcc.p90,
                    dist.utility.mean, dist.utility.median,
                    dist.utility.p10, dist.utility.p90,
                    dist.extra_energy_kwh.mean, dist.extra_energy_kwh.median,
                ]
            )
        return rows

    FAILURE_CSV_HEADER = ("index", "preset", "kind", "attempts", "elapsed_s", "error")

    def failure_csv_rows(self) -> list[list]:
        return [
            [f.index, f.preset, f.kind, f.attempts, f.elapsed_s, f.error]
            for f in self.failures
        ]

    def to_csv(self, path: str | Path) -> list[Path]:
        """Write the defense table; with failures, also ``*.failures.csv``.

        The failure summary gets its own file (rather than ragged rows in
        the main table) so both stay machine-readable.  Returns the paths
        written.
        """
        from ..datasets.io import save_rows_csv

        path = Path(path)
        save_rows_csv(path, self.CSV_HEADER, self.csv_rows())
        written = [path]
        if self.failures:
            failures_path = path.with_suffix(".failures.csv")
            save_rows_csv(
                failures_path, self.FAILURE_CSV_HEADER, self.failure_csv_rows()
            )
            written.append(failures_path)
        return written

    def format_table(self) -> str:
        """Aligned text table of per-defense MCC/utility percentiles."""
        header = (
            f"{'defense':<12s} {'mcc mean':>9s} {'median':>7s} {'p10':>7s} "
            f"{'p90':>7s} {'utility':>8s} {'kwh':>7s}"
        )
        lines = [header, "-" * len(header)]
        for dist in self.distributions.values():
            lines.append(
                f"{dist.defense:<12s} {dist.worst_case_mcc.mean:>9.3f} "
                f"{dist.worst_case_mcc.median:>7.3f} "
                f"{dist.worst_case_mcc.p10:>7.3f} "
                f"{dist.worst_case_mcc.p90:>7.3f} "
                f"{dist.utility.mean:>8.3f} "
                f"{dist.extra_energy_kwh.mean:>7.1f}"
            )
        return "\n".join(lines)
