"""Deterministic fault injection for the fleet engine.

The supervisor's recovery paths — retry, timeout kill, pool rebuild —
only count as *working* if tests can trigger the failures they recover
from.  This module injects three worker-side fault kinds on demand:

``error``
    raise :class:`FaultInjected` inside :func:`~repro.fleet.engine.run_home_job`
    (an ordinary job exception: exercised by retry/backoff);
``crash``
    hard-kill the worker process with ``os._exit`` (no exception, no
    cleanup: exercises ``BrokenProcessPool`` recovery and pool rebuild);
``hang``
    sleep far past any sane deadline (exercises the per-job wall-clock
    timeout and hung-pool teardown).

Injection is **deterministic and seed-driven**: a :class:`FaultPlan`
targets explicit home indices and/or a probabilistic ``rate`` drawn from
``sha256(seed, index, attempt)``, so the same plan fires at the same
(home, attempt) cells on every run, in any worker, under any chunking.
``max_attempt`` bounds how many attempts are sabotaged, which is how a
"flaky" job that fails first-try and succeeds on retry is modelled.

Activation crosses the process boundary through the ``REPRO_FLEET_FAULTS``
environment variable (a JSON-encoded plan), which worker processes
inherit under both fork and spawn.  :class:`~repro.fleet.engine.FleetRunner`
exports it for the duration of a run when given a ``faults=`` plan; it can
also be set by hand around any ``repro fleet`` invocation.

Faults fire *before* the home is simulated, so a job that survives
injection (or is retried past it) produces a byte-identical result to an
uninjected run — the determinism contract the engine tests pin.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass

#: Environment hook read inside workers; JSON of :meth:`FaultPlan.to_json`.
FAULTS_ENV = "REPRO_FLEET_FAULTS"

#: Exit status used by injected worker crashes (visible in pool stderr).
CRASH_EXIT_CODE = 13

FAULT_KINDS = ("error", "crash", "hang")


class FaultInjected(RuntimeError):
    """The exception raised by an injected ``error`` fault."""


@dataclass(frozen=True)
class FaultPlan:
    """Which (home index, attempt) cells to sabotage, and how.

    Parameters
    ----------
    kind:
        One of ``error`` / ``crash`` / ``hang``.
    indices:
        Explicit home indices to target.
    rate:
        Probability in ``[0, 1]`` of targeting any *other* cell; the draw
        is a pure function of ``(seed, index, attempt)``, so it is stable
        across processes and runs.
    seed:
        Entropy for the probabilistic draw.
    max_attempt:
        Inject only while ``attempt <= max_attempt``; ``None`` means every
        attempt (a poison pill).  ``max_attempt=0`` makes a flaky job that
        fails first-try and succeeds on retry.
    hang_s:
        Sleep duration for ``hang`` faults.
    """

    kind: str
    indices: tuple[int, ...] = ()
    rate: float = 0.0
    seed: int = 0
    max_attempt: int | None = None
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        if self.hang_s <= 0:
            raise ValueError("hang_s must be positive")

    def targets(self, index: int, attempt: int) -> bool:
        """True when the plan fires at this (home, attempt) cell."""
        if self.max_attempt is not None and attempt > self.max_attempt:
            return False
        if index in self.indices:
            return True
        if self.rate > 0.0:
            digest = hashlib.sha256(
                f"{self.seed}:{index}:{attempt}".encode()
            ).digest()
            draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
            return draw < self.rate
        return False

    # -- env round-trip -------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "kind": self.kind,
                "indices": list(self.indices),
                "rate": self.rate,
                "seed": self.seed,
                "max_attempt": self.max_attempt,
                "hang_s": self.hang_s,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, doc: str) -> "FaultPlan":
        raw = json.loads(doc)
        return cls(
            kind=raw["kind"],
            indices=tuple(int(i) for i in raw.get("indices", ())),
            rate=float(raw.get("rate", 0.0)),
            seed=int(raw.get("seed", 0)),
            max_attempt=(
                None
                if raw.get("max_attempt") is None
                else int(raw["max_attempt"])
            ),
            hang_s=float(raw.get("hang_s", 3600.0)),
        )


def active_plan() -> FaultPlan | None:
    """The plan exported through :data:`FAULTS_ENV`, if any.

    A malformed value raises rather than silently disarming the harness:
    a chaos test whose faults never fire would pass vacuously.
    """
    doc = os.environ.get(FAULTS_ENV)
    if not doc:
        return None
    return FaultPlan.from_json(doc)


def maybe_inject(index: int, attempt: int) -> None:
    """Fire the active plan's fault for this cell, if it targets it.

    Called at the top of the worker job, before any simulation work, so a
    retried-past fault leaves the home's result byte-identical to an
    uninjected run.
    """
    plan = active_plan()
    if plan is None or not plan.targets(index, attempt):
        return
    if plan.kind == "error":
        raise FaultInjected(
            f"injected error at home {index}, attempt {attempt}"
        )
    if plan.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    time.sleep(plan.hang_s)
