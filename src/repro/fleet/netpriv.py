"""Netpriv arms-race sweeps: defense × dial × seed grids of LAN battles.

The energy-side sweep (:mod:`repro.fleet.sweep`) fans privacy-knob dials
over simulated *meters*; this module fans the Sec. IV traffic defenses
over simulated *LANs*, pitting naive and adaptive attackers
(:func:`repro.netpriv.adaptive.evaluate_arms_race`) against every
``defense@setting`` dial.  The grid rides the same supervised execution
substrate — :meth:`repro.fleet.engine.FleetRunner.run_jobs` provides the
retries, timeouts, crash recovery and telemetry merging — and the
deliverable mirrors :class:`~repro.fleet.frontier.FrontierReport`: a
:class:`NetprivFrontierReport` of population statistics per cell, with
the same running-min monotone-shape gate (turning a defense dial up must
not make the *adaptive* attack better).

Sharding, cell ordering, and ``name@setting`` labels reuse the sweep
module's conventions so ``repro netpriv`` and ``repro sweep`` feel like
the same tool pointed at different threat surfaces.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.knob import knob_defense_name, knob_mapping_names
from ..netpriv.adaptive import ArmsRaceOutcome, evaluate_arms_race
from ..netpriv.devices import DeviceType
from ..netpriv.lan import LanConfig
from ..netpriv.shaping import NETPRIV_KNOB_DOMAIN
from ..obs import TELEMETRY, TelemetrySnapshot
from .engine import FleetRunner, HomeFailure
from .report import PopulationStats
from .sweep import SweepError


def _small_lan() -> LanConfig:
    return LanConfig(
        device_counts={
            DeviceType.CAMERA: 1,
            DeviceType.THERMOSTAT: 1,
            DeviceType.SMART_PLUG: 2,
            DeviceType.HUB: 1,
            DeviceType.LIGHT_BULB: 3,
            DeviceType.VOICE_ASSISTANT: 1,
        }
    )


#: Named LAN compositions a grid can reference (factories, never shared
#: instances).  ``small`` (9 devices) is the CI-smoke composition;
#: ``default`` is the 24-device home of :class:`repro.netpriv.lan.LanConfig`.
NETPRIV_LAN_CONFIGS: dict[str, Callable[[], LanConfig]] = {
    "default": LanConfig,
    "small": _small_lan,
}


def netpriv_lan_config(name: str) -> LanConfig:
    """Instantiate a named LAN composition."""
    if name not in NETPRIV_LAN_CONFIGS:
        raise SweepError(
            f"unknown LAN config {name!r}; "
            f"available: {sorted(NETPRIV_LAN_CONFIGS)}"
        )
    return NETPRIV_LAN_CONFIGS[name]()


@dataclass(frozen=True)
class NetprivCell:
    """One grid point: a dialed traffic defense over one seed's LANs."""

    defense: str
    setting: float
    seed: int

    @property
    def knob_name(self) -> str:
        return knob_defense_name(self.defense, self.setting)

    def label(self) -> str:
        return f"{self.knob_name} seed={self.seed}"


@dataclass(frozen=True)
class NetprivJob:
    """One picklable arms-race experiment: a cell's ``lan_index``-th LAN.

    Carries only primitives; the worker derives its seed stream as
    ``SeedSequence(seed, spawn_key=(lan_index,))``, so within one grid
    ``seed`` the simulated LAN populations are *identical across cells* —
    cells differ only by the dialed defense, exactly what a frontier
    comparison needs (the same property the energy sweep gets from fleet
    seeding).
    """

    index: int
    preset: str  # failure-report label, e.g. "cover@0.5 seed=0 lan=1"
    defense: str
    setting: float
    seed: int
    lan_index: int
    days: int
    lan: str  # NETPRIV_LAN_CONFIGS name
    attempt: int = 0


def run_netpriv_job(job: NetprivJob) -> "NetprivJobResult":
    """Run one arms-race experiment.  Runs inside workers; picklable."""
    before = TELEMETRY.snapshot() if TELEMETRY.enabled else None
    with TELEMETRY.timer("stage.netpriv_job"):
        outcome = evaluate_arms_race(
            job.defense,
            job.setting,
            days=job.days,
            seed=np.random.SeedSequence(job.seed, spawn_key=(job.lan_index,)),
            lan_config=netpriv_lan_config(job.lan),
        )
    snapshot = None
    if before is not None:
        # ship the job's delta; restore the ambient registry (see
        # run_home_job for why the supervisor needs job-free counters)
        snapshot = TELEMETRY.snapshot().minus(before)
        TELEMETRY.restore(before)
    return NetprivJobResult(
        index=job.index,
        preset=job.preset,
        defense=job.defense,
        setting=job.setting,
        seed=job.seed,
        lan_index=job.lan_index,
        outcome=outcome,
        telemetry=snapshot,
    )


@dataclass(frozen=True)
class NetprivJobResult:
    """One executed arms-race job, addressable back to its grid cell."""

    index: int
    preset: str
    defense: str
    setting: float
    seed: int
    lan_index: int
    outcome: ArmsRaceOutcome
    telemetry: TelemetrySnapshot | None = None


@dataclass(frozen=True)
class NetprivGrid:
    """Declarative netpriv sweep: defenses × settings × seeds × LANs.

    ``n_lans`` is the per-cell population size (independent LAN
    simulations sharing the cell's seed stream); ``lan`` names the
    composition in :data:`NETPRIV_LAN_CONFIGS`.  Validation happens here,
    once, not per job deep inside a worker.
    """

    defenses: tuple[str, ...]
    settings: tuple[float, ...]
    seeds: tuple[int, ...] = (0,)
    n_lans: int = 1
    days: int = 2
    lan: str = "small"

    def __post_init__(self) -> None:
        if not self.defenses:
            raise SweepError("grid needs at least one defense")
        if not self.settings:
            raise SweepError("grid needs at least one knob setting")
        if not self.seeds:
            raise SweepError("grid needs at least one seed")
        available = knob_mapping_names(NETPRIV_KNOB_DOMAIN)
        unknown = set(self.defenses) - set(available)
        if unknown:
            raise SweepError(
                f"no netpriv knob mapping for: {sorted(unknown)}; "
                f"available: {available}"
            )
        for s in self.settings:
            if not 0.0 <= s <= 1.0:
                raise SweepError(f"knob setting {s!r} outside [0, 1]")
        if len(set(self.settings)) != len(self.settings):
            raise SweepError("duplicate knob settings in grid")
        if len(set(self.defenses)) != len(self.defenses):
            raise SweepError("duplicate defenses in grid")
        if len(set(self.seeds)) != len(self.seeds):
            raise SweepError("duplicate seeds in grid")
        if self.n_lans < 1:
            raise SweepError("n_lans must be >= 1")
        if self.days < 1:
            raise SweepError("days must be >= 1")
        netpriv_lan_config(self.lan)  # raises on unknown name

    @property
    def n_cells(self) -> int:
        return len(self.defenses) * len(self.settings) * len(self.seeds)

    @property
    def n_jobs(self) -> int:
        return self.n_cells * self.n_lans

    def cells(self) -> list[NetprivCell]:
        """Canonical (defense, sorted setting, seed) order — the shard
        contract, identical on every machine given the same grid."""
        return [
            NetprivCell(defense=d, setting=float(s), seed=int(seed))
            for d in self.defenses
            for s in sorted(self.settings)
            for seed in self.seeds
        ]

    def jobs_for(self, cells: Sequence[NetprivCell]) -> list[NetprivJob]:
        """Flat supervised-job list for a cell subset (e.g. one shard)."""
        jobs = []
        for i, cell in enumerate(cells):
            for lan_index in range(self.n_lans):
                jobs.append(
                    NetprivJob(
                        index=i * self.n_lans + lan_index,
                        preset=f"{cell.label()} lan={lan_index}",
                        defense=cell.defense,
                        setting=cell.setting,
                        seed=cell.seed,
                        lan_index=lan_index,
                        days=self.days,
                        lan=self.lan,
                    )
                )
        return jobs

    def as_dict(self) -> dict:
        return {
            "defenses": list(self.defenses),
            "settings": list(self.settings),
            "seeds": list(self.seeds),
            "n_lans": self.n_lans,
            "days": self.days,
            "lan": self.lan,
        }


@dataclass(frozen=True)
class NetprivFrontierPoint:
    """One cell reduced to the arms-race frontier axes.

    Privacy axes come in naive/adaptive pairs — the gap between them *is*
    the arms race; cost axes are the defense's bandwidth and latency
    price.  Population statistics are over the cell's ``n_lans``
    independent LANs.
    """

    defense: str
    setting: float
    seed: int
    n_lans: int
    n_failed: int
    naive_mcc: PopulationStats
    adaptive_mcc: PopulationStats
    naive_fingerprint_acc: PopulationStats
    adaptive_fingerprint_acc: PopulationStats
    cover_mb_per_day: PopulationStats
    mean_added_delay_s: PopulationStats

    def as_dict(self) -> dict:
        return {
            "defense": self.defense,
            "setting": self.setting,
            "seed": self.seed,
            "n_lans": self.n_lans,
            "n_failed": self.n_failed,
            "naive_mcc": self.naive_mcc.as_dict(),
            "adaptive_mcc": self.adaptive_mcc.as_dict(),
            "naive_fingerprint_acc": self.naive_fingerprint_acc.as_dict(),
            "adaptive_fingerprint_acc": self.adaptive_fingerprint_acc.as_dict(),
            "cover_mb_per_day": self.cover_mb_per_day.as_dict(),
            "mean_added_delay_s": self.mean_added_delay_s.as_dict(),
        }

    @property
    def adaptive_advantage(self) -> float:
        """Mean occupancy-MCC the retrained attacker claws back."""
        return self.adaptive_mcc.mean - self.naive_mcc.mean


_POINT_STATS = (
    "naive_mcc",
    "adaptive_mcc",
    "naive_fingerprint_acc",
    "adaptive_fingerprint_acc",
    "cover_mb_per_day",
    "mean_added_delay_s",
)


@dataclass(frozen=True)
class NetprivFrontierReport:
    """The netpriv sweep's deliverable, shaped like ``FrontierReport``.

    The monotone gate runs on the **adaptive** attacker's occupancy MCC:
    a defense whose dial only defeats the naive attacker has not bought
    privacy, merely obscurity, and the frontier should say so.
    """

    points: tuple[NetprivFrontierPoint, ...]

    @classmethod
    def from_results(
        cls, results: Iterable[NetprivJobResult], failures: Iterable[HomeFailure] = ()
    ) -> "NetprivFrontierReport":
        grouped: dict[tuple[str, float, int], list[NetprivJobResult]] = {}
        for result in results:
            key = (result.defense, result.setting, result.seed)
            grouped.setdefault(key, []).append(result)
        failed = list(failures)
        points = []
        for (defense, setting, seed), cell_results in sorted(grouped.items()):
            outcomes = [r.outcome for r in cell_results]
            label = knob_defense_name(defense, setting)
            n_failed = sum(
                1 for f in failed if f.preset.startswith(f"{label} seed={seed} ")
            )
            points.append(
                NetprivFrontierPoint(
                    defense=defense,
                    setting=setting,
                    seed=seed,
                    n_lans=len(outcomes),
                    n_failed=n_failed,
                    naive_mcc=PopulationStats.of(
                        [o.naive.occupancy_mcc for o in outcomes]
                    ),
                    adaptive_mcc=PopulationStats.of(
                        [o.adaptive.occupancy_mcc for o in outcomes]
                    ),
                    naive_fingerprint_acc=PopulationStats.of(
                        [o.naive.fingerprint_accuracy for o in outcomes]
                    ),
                    adaptive_fingerprint_acc=PopulationStats.of(
                        [o.adaptive.fingerprint_accuracy for o in outcomes]
                    ),
                    cover_mb_per_day=PopulationStats.of(
                        [o.cover_mb_per_day for o in outcomes]
                    ),
                    mean_added_delay_s=PopulationStats.of(
                        [o.mean_added_delay_s for o in outcomes]
                    ),
                )
            )
        return cls(points=tuple(points))

    def monotone_violations(self, tolerance: float = 0.05) -> list[str]:
        """Dial-up must not raise the adaptive attacker's occupancy MCC.

        Same running-min-with-tolerance shape check as
        :meth:`repro.fleet.frontier.FrontierReport.monotone_violations`.
        """
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        series: dict[tuple[str, int], list[NetprivFrontierPoint]] = {}
        for point in self.points:
            series.setdefault((point.defense, point.seed), []).append(point)
        violations = []
        for (defense, seed), pts in sorted(series.items()):
            running_min = float("inf")
            for point in sorted(pts, key=lambda p: p.setting):
                if point.adaptive_mcc.mean > running_min + tolerance:
                    violations.append(
                        f"{defense}@{point.setting:g} (seed {seed}): "
                        f"adaptive mcc {point.adaptive_mcc.mean:.3f} exceeds "
                        f"running min {running_min:.3f} + {tolerance:g}"
                    )
                running_min = min(running_min, point.adaptive_mcc.mean)
        return violations

    def as_dict(self) -> dict:
        return {"points": [p.as_dict() for p in self.points]}

    def to_json(self, path: str | Path | None = None) -> str:
        doc = json.dumps(self.as_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(doc + "\n")
        return doc

    @classmethod
    def from_json(cls, path: str | Path) -> "NetprivFrontierReport":
        """Round-trip a :meth:`to_json` export back into a report."""
        doc = json.loads(Path(path).read_text())
        points = []
        for row in doc["points"]:
            points.append(
                NetprivFrontierPoint(
                    defense=row["defense"],
                    setting=float(row["setting"]),
                    seed=int(row["seed"]),
                    n_lans=int(row["n_lans"]),
                    n_failed=int(row["n_failed"]),
                    **{
                        name: PopulationStats(**row[name])
                        for name in _POINT_STATS
                    },
                )
            )
        return cls(points=tuple(points))

    CSV_HEADER = (
        "defense", "setting", "seed", "n_lans", "n_failed",
        "naive_mcc_mean", "naive_mcc_median",
        "adaptive_mcc_mean", "adaptive_mcc_median", "adaptive_mcc_p90",
        "adaptive_advantage",
        "naive_fp_acc_mean", "adaptive_fp_acc_mean",
        "cover_mb_per_day_mean", "mean_added_delay_s_mean",
    )

    def csv_rows(self) -> list[list]:
        return [
            [
                p.defense, p.setting, p.seed, p.n_lans, p.n_failed,
                p.naive_mcc.mean, p.naive_mcc.median,
                p.adaptive_mcc.mean, p.adaptive_mcc.median, p.adaptive_mcc.p90,
                p.adaptive_advantage,
                p.naive_fingerprint_acc.mean, p.adaptive_fingerprint_acc.mean,
                p.cover_mb_per_day.mean, p.mean_added_delay_s.mean,
            ]
            for p in self.points
        ]

    def to_csv(self, path: str | Path) -> Path:
        from ..datasets.io import save_rows_csv

        path = Path(path)
        save_rows_csv(path, self.CSV_HEADER, self.csv_rows())
        return path

    def format_table(self) -> str:
        """Aligned text view: one line per frontier point."""
        header = (
            f"{'defense':<14s} {'setting':>7s} {'seed':>4s} "
            f"{'naive':>6s} {'adapt':>6s} {'gap':>6s} "
            f"{'fp_n':>5s} {'fp_a':>5s} {'MB/day':>8s} {'delay':>7s}"
        )
        lines = [header, "-" * len(header)]
        for p in self.points:
            lines.append(
                f"{p.defense:<14s} {p.setting:>7.3f} {p.seed:>4d} "
                f"{p.naive_mcc.mean:>6.3f} {p.adaptive_mcc.mean:>6.3f} "
                f"{p.adaptive_advantage:>+6.3f} "
                f"{p.naive_fingerprint_acc.mean:>5.3f} "
                f"{p.adaptive_fingerprint_acc.mean:>5.3f} "
                f"{p.cover_mb_per_day.mean:>8.1f} "
                f"{p.mean_added_delay_s.mean:>7.1f}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class NetprivSweepResult:
    """Everything one netpriv sweep pass (one shard) produced."""

    grid: NetprivGrid
    shard: tuple[int, int]
    results: tuple[NetprivJobResult, ...]
    failures: tuple[HomeFailure, ...]
    elapsed_s: float
    workers_used: int
    pool_rebuilds: int = 0
    telemetry: TelemetrySnapshot | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def frontier(self) -> NetprivFrontierReport:
        return NetprivFrontierReport.from_results(self.results, self.failures)


class NetprivSweepRunner:
    """Execute a :class:`NetprivGrid` (or one shard) under supervision.

    All of the shard's jobs go to :meth:`FleetRunner.run_jobs` as one
    batch, so worker parallelism spans cells (a cell is often a single
    LAN).  ``on_result`` fires per completed job in completion order —
    the CLI's progress line.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        max_retries: int = 2,
        job_timeout: float | None = None,
        fail_fast: bool = False,
        telemetry: bool = False,
        backend: str | None = None,
    ) -> None:
        # netpriv jobs return scalar tables, not traces, so there is no
        # payload for shmem to carry — serial/process/shmem are accepted
        # (and behave identically beyond serial's forced in-process loop)
        # while batched has no block work function here and is refused.
        if backend == "batched":
            raise ValueError(
                "the batched backend only applies to batch energy fleets; "
                "netpriv sweeps accept serial/process/shmem"
            )
        self.runner = FleetRunner(
            workers=workers,
            cache_dir=None,
            max_retries=max_retries,
            job_timeout=job_timeout,
            fail_fast=fail_fast,
            telemetry=telemetry,
            **({} if backend is None else {"backend": backend}),
        )

    def run(
        self,
        grid: NetprivGrid,
        shard: tuple[int, int] = (1, 1),
        on_result: Callable[[NetprivJobResult], None] | None = None,
    ) -> NetprivSweepResult:
        """Run the shard's cells; returns results plus the failure report."""
        from .sweep import shard_cells

        start = time.perf_counter()
        cells = shard_cells(grid.cells(), shard)
        jobs = grid.jobs_for(cells)
        batch = self.runner.run_jobs(jobs, run_netpriv_job, on_result=on_result)
        return NetprivSweepResult(
            grid=grid,
            shard=shard,
            results=tuple(batch.results),
            failures=batch.failures,
            elapsed_s=time.perf_counter() - start,
            workers_used=batch.workers_used,
            pool_rebuilds=batch.pool_rebuilds,
            telemetry=batch.telemetry,
        )


def run_netpriv_sweep(
    grid: NetprivGrid,
    workers: int = 1,
    shard: tuple[int, int] = (1, 1),
    **runner_kwargs,
) -> NetprivSweepResult:
    """One-call convenience mirroring :func:`repro.fleet.sweep.run_sweep`."""
    return NetprivSweepRunner(workers=workers, **runner_kwargs).run(grid, shard)


__all__ = [
    "NETPRIV_LAN_CONFIGS",
    "netpriv_lan_config",
    "NetprivCell",
    "NetprivJob",
    "NetprivJobResult",
    "run_netpriv_job",
    "NetprivGrid",
    "NetprivFrontierPoint",
    "NetprivFrontierReport",
    "NetprivSweepResult",
    "NetprivSweepRunner",
    "run_netpriv_sweep",
]
