"""Supervised fleet execution: fan home jobs out over worker processes.

:func:`run_home_job` is the unit of work — a module-level function of one
picklable :class:`HomeJob`, so ``ProcessPoolExecutor`` can ship it to
workers under either fork or spawn start methods.  :class:`FleetRunner`
drives it with a *supervisor loop* rather than ``pool.map``: every job is
submitted individually and each home succeeds or fails on its own.

Failure isolation semantics (see DESIGN.md "Failure semantics"):

* a job that raises is retried up to ``max_retries`` times with
  exponential backoff, then recorded as a :class:`HomeFailure` — the
  sweep keeps going and returns partial results plus the failure report;
* a worker process that dies (segfault, OOM kill, ``os._exit``) breaks
  the pool; the supervisor rebuilds the pool and requeues only the jobs
  that were in flight, running them one-at-a-time until the culprit is
  identified (innocent bystanders complete, the poison pill exhausts its
  attempts alone);
* a job that exceeds ``job_timeout`` wall-clock seconds has its pool torn
  down (hung workers cannot be cancelled), is charged an attempt, and the
  other in-flight jobs are requeued uncharged;
* results stream into the cache the moment each home completes, so a
  killed sweep resumes from whatever finished.

Determinism: each job carries its own spawned seed streams, so the result
for home *i* is bit-identical whether it ran serially, in any worker,
first-try, after a retry, or came from the cache.  The per-home
``trace_digest`` (SHA-256 of the metered samples) is what the determinism
tests compare.  Fault injection (:mod:`repro.fleet.faults`) fires before
any simulation work, preserving that contract.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable

import numpy as np

from ..attacks.niom import HMMNIOM, ThresholdNIOM
from ..core.evaluation import TradeoffPoint
from ..core.pipeline import evaluate_simulation
from ..home.household import simulate_home
from ..obs import (
    PROFILE_DIR_ENV,
    TELEMETRY,
    TELEMETRY_ENV,
    TelemetrySnapshot,
    maybe_profile,
)
from ..timeseries import PowerTrace
from .backends import (
    DEFAULT_BACKEND,
    HomeBlockJob,
    InlinePayload,
    ShmemPayload,
    materialize_trace,
    new_run_prefix,
    pack_trace,
    partition_blocks,
    resolve_backend,
    run_home_block,
    segment_name,
    sweep_segments,
)
from .cache import CacheStats, ResultCache, job_cache_key
from .faults import FAULTS_ENV, FaultPlan, maybe_inject
from .spec import FleetSpec, HomeJob

#: Name -> detector factory, resolved inside the worker so only names
#: (not closures) ever cross the process boundary.  Mirrors
#: ``core.evaluation.DEFAULT_DETECTORS``.
FLEET_DETECTORS = {
    "threshold-15m": lambda: ThresholdNIOM(night_prior=True),
    "threshold-60m": lambda: ThresholdNIOM(window_s=3600.0, night_prior=True),
    "hmm": lambda: HMMNIOM(rng=0),
}


def trace_digest(trace: PowerTrace) -> str:
    """SHA-256 of a trace's samples and clock — the byte-identity check."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(trace.values).tobytes())
    h.update(repr((trace.period_s, trace.start_s, len(trace))).encode())
    return h.hexdigest()


def result_digest(result: "FleetResult") -> str:
    """SHA-256 over everything numeric a fleet run produced.

    Where :func:`trace_digest` pins one home's *metered samples*, this
    pins the whole run's *scored output*: per-home trace digests plus
    every tradeoff point's full float repr, in home order.  Runtime facts
    (wall-clock, worker count, cache hits, telemetry) are excluded, so
    serial, parallel, and cache-replayed runs of one spec share a digest.
    The golden-regression tests pin these values so kernel and refactor
    PRs can prove bitwise stability at fleet scope, the way
    ``test_kernel_equivalence.py`` does per kernel.
    """
    h = hashlib.sha256()
    for home in result.homes:
        points = [("baseline", home.baseline)] + sorted(home.defenses.items())
        h.update(
            repr(
                (
                    home.index,
                    home.preset,
                    home.fingerprint,
                    home.days,
                    home.trace_digest,
                    home.energy_kwh,
                    [
                        (
                            name,
                            sorted(p.privacy.per_detector_mcc.items()),
                            sorted(p.privacy.per_detector_accuracy.items()),
                            p.utility.energy_error_fraction,
                            p.utility.peak_error_fraction,
                            p.utility.profile_rmse_w,
                            p.extra_energy_kwh,
                            p.comfort_violation_fraction,
                        )
                        for name, p in points
                    ],
                )
            ).encode()
        )
    return h.hexdigest()


@dataclass(frozen=True)
class HomeResult:
    """One home's scored outcome (what the cache stores).

    ``telemetry`` is the job's per-stage counter/timer delta, captured in
    whatever process ran it and shipped back piggybacked on the result.
    It is ``None`` when telemetry is disabled, and always stripped before
    the result enters the cache (a cache entry's bytes must not depend on
    whether the run that produced it was being observed).

    ``metered`` / ``payload`` are the executor-backend trace channel
    (:mod:`repro.fleet.backends`): when the runner asks for traces, the
    metered :class:`~repro.timeseries.PowerTrace` arrives either attached
    directly (serial/batched), as pickled bytes (``inline``), or as a
    shared-memory descriptor (``shmem``) that the supervisor materializes
    and unlinks.  Both are stripped — like ``telemetry`` — before the
    result enters the cache, so entry bytes are backend-invariant.
    """

    index: int
    preset: str
    home_name: str
    fingerprint: str
    days: int
    trace_digest: str
    energy_kwh: float
    baseline: TradeoffPoint
    defenses: dict[str, TradeoffPoint]
    from_cache: bool = False
    telemetry: TelemetrySnapshot | None = None
    metered: PowerTrace | None = None
    payload: InlinePayload | ShmemPayload | None = None


@dataclass(frozen=True)
class HomeFailure:
    """One home's permanent failure record (the sweep's post-mortem row).

    ``kind`` is what gave up: ``error`` (the job raised on every
    attempt), ``crash`` (its worker process died), ``timeout`` (it
    exceeded the per-job wall clock), or ``aborted`` (fail-fast cancelled
    it before a verdict).
    """

    index: int
    preset: str
    kind: str
    error: str
    attempts: int
    elapsed_s: float

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "preset": self.preset,
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
        }


def run_home_job(job: HomeJob) -> HomeResult:
    """Simulate, defend, and attack one home.  Runs inside workers.

    Detector names are validated by :class:`~repro.fleet.spec.FleetSpec`
    and :meth:`FleetRunner.run` *before* dispatch, so workers never pay
    for (or crash on) a misspelled ensemble.  Fault injection, when armed
    via :data:`~repro.fleet.faults.FAULTS_ENV`, fires before any
    simulation work so a retried job reproduces its result exactly.
    """
    maybe_inject(job.index, job.attempt)
    detectors = tuple((name, FLEET_DETECTORS[name]) for name in job.detectors)
    before = TELEMETRY.snapshot() if TELEMETRY.enabled else None
    with maybe_profile(f"home-{job.index:04d}-a{job.attempt}"):
        with TELEMETRY.timer("stage.job"):
            with TELEMETRY.timer("stage.simulate"):
                sim = simulate_home(
                    job.config, job.days, np.random.default_rng(job.sim_seed)
                )
            pipeline = evaluate_simulation(
                sim,
                list(job.defenses),
                np.random.default_rng(job.defense_seed),
                detectors,
            )
            # ship the metered trace over whatever channel the backend
            # chose; "none" ships scalars only (the historical behavior)
            metered = sim.metered if job.payload == "direct" else None
            payload = None
            if job.payload == "inline":
                payload = pack_trace(sim.metered, "inline")
            elif job.payload == "shmem":
                payload = pack_trace(
                    sim.metered,
                    "shmem",
                    name=segment_name(
                        job.payload_prefix, job.index, job.attempt
                    ),
                )
    snapshot = None
    if before is not None:
        # ship the job's delta; restore the ambient registry so the
        # serial path's supervisor-scope counters stay job-free (the
        # supervisor adds job deltas back when it merges fleet totals)
        snapshot = TELEMETRY.snapshot().minus(before)
        TELEMETRY.restore(before)
    return HomeResult(
        index=job.index,
        preset=job.preset,
        home_name=job.config.name,
        fingerprint=job.fingerprint,
        days=job.days,
        trace_digest=trace_digest(sim.metered),
        energy_kwh=sim.metered.energy_kwh(),
        baseline=pipeline.baseline,
        defenses=pipeline.defenses,
        telemetry=snapshot,
        metered=metered,
        payload=payload,
    )


def run_stream_job(
    job: HomeJob,
    chunk_samples: int = 60,
    attacks: tuple[str, ...] = ("edges", "niom"),
    attack_kwargs: dict | None = None,
    guard_policy=None,
) -> "HomeStreamResult":
    """Simulate one home and score it through a guarded streamed session.

    Uses the *same* ``sim_seed`` stream as :func:`run_home_job`, so a
    streamed fleet sees byte-identical metered traces to a batch fleet of
    the same spec — the determinism tests compare ``trace_digest`` values
    across the two paths.  The chunk feed runs through a
    :class:`~repro.stream.guard.FeedGuard` (``guard_policy`` or default —
    off-path on the clean replay, so digests still match), and any plan
    in ``REPRO_STREAM_FAULTS`` degrades the feed exactly as it would a
    single-home CLI run.  The imports are local to keep ``repro.fleet``
    importable without the streaming subsystem loaded.
    """
    from ..attacks.niom import score_occupancy_attack
    from ..stream import (
        FeedGuard,
        StreamClock,
        StreamSession,
        TraceReplaySource,
        active_stream_plan,
        drive_stream,
        make_stream_attack,
    )

    maybe_inject(job.index, job.attempt)
    attack_kwargs = attack_kwargs or {}
    before = TELEMETRY.snapshot() if TELEMETRY.enabled else None
    with TELEMETRY.timer("stage.stream.job"):
        with TELEMETRY.timer("stage.simulate"):
            sim = simulate_home(
                job.config, job.days, np.random.default_rng(job.sim_seed)
            )
        metered = sim.metered
        session = StreamSession(
            StreamClock.of(metered),
            {
                name: make_stream_attack(name, **attack_kwargs.get(name, {}))
                for name in attacks
            },
        )
        guard = FeedGuard(session, guard_policy)
        drive_stream(
            TraceReplaySource(metered),
            guard,
            chunk_samples,
            fault_plan=active_stream_plan(),
        )
        niom_attack = session.attacks.get("niom")
        report = session.finalize(guard=guard)
        niom_score = None
        if niom_attack is not None and "niom" in report.results:
            niom_score = score_occupancy_attack(
                niom_attack.result.occupancy, sim.occupancy
            )
    snapshot = None
    if before is not None:
        snapshot = TELEMETRY.snapshot().minus(before)
        TELEMETRY.restore(before)
    return HomeStreamResult(
        index=job.index,
        preset=job.preset,
        home_name=job.config.name,
        fingerprint=job.fingerprint,
        days=job.days,
        trace_digest=trace_digest(metered),
        total_samples=report.total_samples,
        chunk_samples=chunk_samples,
        results=report.results,
        throughput={name: st.as_dict() for name, st in report.stats.items()},
        niom_score=niom_score,
        telemetry=snapshot,
        attack_failures=report.failures,
        guard=report.guard,
        feed_dead=report.feed_dead,
    )


@dataclass(frozen=True)
class HomeStreamResult:
    """One home's streamed-evaluation outcome.

    ``attack_failures`` / ``guard`` / ``feed_dead`` carry the session's
    degradation record: a home can *complete* while individual attacks
    were quarantined or the feed was scrubbed — :attr:`ok` says whether
    the run was clean end to end.
    """

    index: int
    preset: str
    home_name: str
    fingerprint: str
    days: int
    trace_digest: str
    total_samples: int
    chunk_samples: int
    results: dict[str, dict]
    throughput: dict[str, dict]
    niom_score: dict[str, float] | None = None
    telemetry: TelemetrySnapshot | None = None
    attack_failures: tuple = ()
    guard: dict | None = None
    feed_dead: bool = False

    @property
    def ok(self) -> bool:
        return not self.attack_failures and not self.feed_dead

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "preset": self.preset,
            "home_name": self.home_name,
            "days": self.days,
            "trace_digest": self.trace_digest,
            "total_samples": self.total_samples,
            "chunk_samples": self.chunk_samples,
            "ok": self.ok,
            "results": dict(self.results),
            "throughput": dict(self.throughput),
            "niom_score": self.niom_score,
            "attack_failures": [f.as_dict() for f in self.attack_failures],
            "guard": dict(self.guard) if self.guard is not None else None,
            "feed_dead": self.feed_dead,
        }


@dataclass(frozen=True)
class StreamFleetResult:
    """A fleet scored online: per-home streamed results plus failures."""

    spec: FleetSpec
    homes: list["HomeStreamResult"]
    elapsed_s: float
    workers_used: int
    failures: tuple[HomeFailure, ...] = ()
    pool_rebuilds: int = 0
    telemetry: TelemetrySnapshot | None = None

    @property
    def n_homes(self) -> int:
        return len(self.homes)

    @property
    def ok(self) -> bool:
        """No permanently failed homes *and* every completed home clean."""
        return not self.failures and all(home.ok for home in self.homes)

    def as_dict(self) -> dict:
        return {
            "n_homes": self.n_homes,
            "elapsed_s": self.elapsed_s,
            "workers_used": self.workers_used,
            "ok": self.ok,
            "pool_rebuilds": self.pool_rebuilds,
            "homes": [home.as_dict() for home in self.homes],
            "failures": [f.as_dict() for f in self.failures],
        }


@dataclass(frozen=True)
class FleetResult:
    """Everything one runner pass produced — including its casualties."""

    spec: FleetSpec
    homes: list[HomeResult]
    elapsed_s: float
    workers_used: int
    executed: int
    cache_stats: CacheStats | None = None
    failures: tuple[HomeFailure, ...] = ()
    pool_rebuilds: int = 0
    #: fleet-level totals: supervisor counters (retries, backoff, cache
    #: traffic, pool rebuilds) merged with every executed job's snapshot.
    #: ``None`` unless the runner was created with ``telemetry=True``.
    telemetry: TelemetrySnapshot | None = None

    @property
    def n_homes(self) -> int:
        return len(self.homes)

    @property
    def n_failed(self) -> int:
        return len(self.failures)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass(frozen=True)
class JobsResult:
    """Generic supervised-run result for :meth:`FleetRunner.run_jobs`.

    ``results`` holds whatever the work function returned, ordered by job
    order (permanently failed jobs simply absent — they appear in
    ``failures`` instead).  The energy fleet's :class:`FleetResult` and
    :class:`StreamFleetResult` predate this type; new job families (e.g.
    :mod:`repro.fleet.netpriv`) should build on this instead of cloning
    the supervisor plumbing.
    """

    results: list
    elapsed_s: float
    workers_used: int
    failures: tuple[HomeFailure, ...] = ()
    pool_rebuilds: int = 0
    telemetry: TelemetrySnapshot | None = None

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class _JobState:
    """Supervisor-side bookkeeping for one job's attempts."""

    job: HomeJob
    attempts: int = 0  # failed attempts so far; next try runs as this number
    not_before: float = 0.0  # monotonic backoff gate for the next submit
    started: float = 0.0  # monotonic submit time of the current attempt
    first_start: float | None = None

    def elapsed(self, now: float) -> float:
        return now - (self.first_start if self.first_start is not None else now)


class FleetRunner:
    """Execute a :class:`FleetSpec` under supervision, caching as asked.

    Parameters
    ----------
    workers:
        Process count; ``<= 1`` runs in-process serially (no pool, no
        pickling, and — since the job shares our process — no crash or
        hang protection, only retries).
    chunksize:
        Accepted for API compatibility with the chunked dispatcher this
        engine replaced.  Supervised dispatch submits per-job so each
        home fails independently; batching jobs would couple their fates.
    cache_dir:
        Directory for the content-addressed result cache; ``None``
        disables caching.  Results stream into the cache as they
        complete, so a killed run resumes from what finished.
    max_retries:
        Retries after the first failed attempt (total tries =
        ``max_retries + 1``).
    job_timeout:
        Per-job wall-clock seconds before a running job is declared hung
        and its pool torn down; ``None`` disables.  Only enforced with
        ``workers > 1`` (a hung in-process job cannot be interrupted).
    fail_fast:
        Abort the sweep at the first permanent failure; unfinished homes
        are recorded as ``aborted`` failures.
    retry_backoff_s:
        Base of the exponential backoff (delay before retry *n* is
        ``retry_backoff_s * 2**(n-1)``).  Deterministic — no jitter — so
        runs are reproducible.
    faults:
        Optional :class:`~repro.fleet.faults.FaultPlan` exported through
        the environment for the duration of the run (the test harness's
        hook; production sweeps leave it ``None``).
    stream_faults:
        Optional :class:`~repro.stream.faults.StreamFaultPlan` exported
        through ``REPRO_STREAM_FAULTS`` the same way, degrading every
        streamed job's chunk feed (:meth:`run_streaming` only).
    telemetry:
        Collect per-stage counters and timers (:mod:`repro.obs`): each
        job ships a snapshot back on its result, the supervisor adds its
        own scheduling/cache counters, and the merged totals land on
        ``FleetResult.telemetry``.  Never changes any result — the
        determinism tests pin telemetry-on and -off sweeps to identical
        ``trace_digest``s.
    profile_dir:
        Directory for per-job cProfile dumps (one
        ``home-<index>-a<attempt>.pstats`` per executed job, written by
        whichever process ran it); ``None`` disables profiling.
    backend:
        Executor backend (:data:`repro.fleet.backends.BACKENDS`):
        ``serial`` forces the in-process loop regardless of ``workers``;
        ``process`` is the classic per-job pickling pool; ``shmem``
        ships each home's metered trace back through a named
        shared-memory segment instead of the result pickle; ``batched``
        dispatches blocks of homes that one worker simulates in a
        single vectorized pass.  Every backend produces bit-identical
        results — the backend-parity test matrix pins that claim.  A
        :class:`FleetSpec` carrying its own ``backend`` overrides this.
    keep_traces:
        Attach each home's metered :class:`~repro.timeseries.PowerTrace`
        to its :class:`HomeResult` (``result.metered``).  Off by
        default: the historical contract ships scalars only.  Under the
        ``shmem`` backend the trace always travels (that is the point);
        this flag only controls whether it is retained after the
        supervisor verifies it against ``trace_digest``.
    batch_size:
        Homes per block under the ``batched`` backend; ``None`` picks
        ``min(64, ceil(n_jobs / workers))`` so every worker gets work.
    """

    #: supervisor wake-up period: bounds timeout/backoff enforcement lag
    POLL_S = 0.05
    #: cap on any single backoff sleep
    MAX_BACKOFF_S = 30.0

    def __init__(
        self,
        workers: int = 1,
        chunksize: int = 1,
        cache_dir: str | Path | None = None,
        *,
        max_retries: int = 2,
        job_timeout: float | None = None,
        fail_fast: bool = False,
        retry_backoff_s: float = 0.05,
        faults: FaultPlan | None = None,
        stream_faults=None,
        telemetry: bool = False,
        profile_dir: str | Path | None = None,
        backend: str = DEFAULT_BACKEND,
        keep_traces: bool = False,
        batch_size: int | None = None,
    ) -> None:
        if chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be positive (or None)")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1 (or None)")
        self.backend = resolve_backend(backend)
        self.keep_traces = bool(keep_traces)
        self.batch_size = batch_size
        self.workers = max(1, int(workers))
        self.chunksize = int(chunksize)
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.max_retries = int(max_retries)
        self.job_timeout = job_timeout
        self.fail_fast = bool(fail_fast)
        self.retry_backoff_s = float(retry_backoff_s)
        self.faults = faults
        self.stream_faults = stream_faults
        self.telemetry = bool(telemetry)
        self.profile_dir = Path(profile_dir) if profile_dir is not None else None

    def run(self, spec: FleetSpec) -> FleetResult:
        """Evaluate the whole fleet; per-home results plus failure report."""
        start = time.perf_counter()
        unknown = set(spec.detectors) - set(FLEET_DETECTORS)
        if unknown:
            raise ValueError(
                f"unknown detectors: {sorted(unknown)}; "
                f"available: {sorted(FLEET_DETECTORS)}"
            )
        backend = resolve_backend(spec.backend or self.backend)
        with self._telemetry_scope() as baseline:
            TELEMETRY.count(f"fleet.backend.{backend}")
            jobs = spec.jobs()
            results: dict[int, HomeResult] = {}
            pending: list[HomeJob] = []
            keys: dict[int, str] = {}

            for job in jobs:
                if self.cache is None:
                    pending.append(job)
                    continue
                key = job_cache_key(job)
                keys[job.index] = key
                hit = self.cache.get(key)
                if hit is not None:
                    results[job.index] = replace(hit, from_cache=True)
                else:
                    pending.append(job)

            # pick the trace channel.  shmem always physically ships the
            # trace (that is the backend's job — the supervisor verifies
            # it against trace_digest, then drops it unless keep_traces);
            # other backends only move it when the caller wants it kept.
            if backend == "shmem":
                channel = "shmem"
            elif self.keep_traces:
                channel = "inline" if backend == "process" else "direct"
            else:
                channel = "none"
            prefix = new_run_prefix() if backend == "shmem" else ""
            if channel != "none":
                pending = [
                    replace(job, payload=channel, payload_prefix=prefix)
                    for job in pending
                ]

            def store(result: HomeResult) -> None:
                # streaming sink: cache immediately so a killed run resumes
                result = self._receive(result)
                results[result.index] = result
                if self.cache is not None:
                    # strip telemetry and the trace channel so entry bytes
                    # depend on neither observation nor backend
                    self.cache.put(
                        keys[result.index],
                        replace(
                            result, telemetry=None, metered=None, payload=None
                        ),
                    )

            failures: list[HomeFailure] = []
            workers_used = 1
            rebuilds = 0
            block_snaps: list[TelemetrySnapshot] = []
            try:
                if pending and backend == "batched":
                    blocks = partition_blocks(
                        pending, self._block_size(len(pending))
                    )

                    def store_block(block_result) -> None:
                        if block_result.telemetry is not None:
                            block_snaps.append(block_result.telemetry)
                        for result in block_result.results:
                            store(result)

                    failures, workers_used, rebuilds = self._execute(
                        blocks,
                        store_block,
                        work=run_home_block,
                        backend=backend,
                    )
                    failures = _expand_block_failures(failures, blocks)
                elif pending:
                    failures, workers_used, rebuilds = self._execute(
                        pending, store, backend=backend
                    )
            finally:
                if backend == "shmem" and pending:
                    # teardown sweep: segment names are deterministic, so
                    # every segment a crashed/hung/killed attempt might
                    # have left behind can be reclaimed by construction
                    leaked = sweep_segments(
                        prefix,
                        [job.index for job in pending],
                        self.max_retries,
                    )
                    if leaked:
                        TELEMETRY.count("shmem.leaked_segments", leaked)

            ordered = [
                results[job.index] for job in jobs if job.index in results
            ]
            telemetry = self._collect_telemetry(baseline, ordered, block_snaps)
        return FleetResult(
            spec=spec,
            homes=ordered,
            elapsed_s=time.perf_counter() - start,
            workers_used=workers_used,
            executed=len(pending),
            cache_stats=self.cache.stats if self.cache is not None else None,
            failures=tuple(sorted(failures, key=lambda f: f.index)),
            pool_rebuilds=rebuilds,
            telemetry=telemetry,
        )

    def run_streaming(
        self,
        spec: FleetSpec,
        attacks: tuple[str, ...] = ("edges", "niom"),
        chunk_samples: int = 60,
        attack_kwargs: dict | None = None,
        guard_policy=None,
    ) -> StreamFleetResult:
        """Score the fleet through guarded streamed sessions.

        Streamed jobs now run under the *same* supervisor as batch jobs
        — per-job submit, bounded retries with deterministic backoff,
        per-job timeouts, crash recovery via pool rebuild — because a
        replayed evaluation feed (unlike a live one) can be re-run, and
        a fleet sweep losing a home to a transient worker death is pure
        waste.  What stays different from :meth:`run` is the absence of
        the result cache: streamed reports carry throughput numbers that
        are not content-addressable.  Seeds come from the same spawned
        streams as the batch path, so ``trace_digest`` values match
        :meth:`run` home-for-home; ``guard_policy`` rides to every job's
        :class:`~repro.stream.guard.FeedGuard`.  Each home's
        ``stream.*`` telemetry (gap samples, quarantined values, attack
        failures, checkpoint writes) merges into the fleet totals.
        """
        import functools

        from ..stream import stream_attack_names

        unknown = set(attacks) - set(stream_attack_names())
        if unknown:
            raise ValueError(
                f"unknown stream attacks: {sorted(unknown)}; "
                f"available: {stream_attack_names()}"
            )
        backend = resolve_backend(spec.backend or self.backend)
        if backend == "batched":
            raise ValueError(
                "the batched backend only applies to batch fleets "
                "(FleetRunner.run); streamed sessions are stateful per "
                "home and cannot be vectorized across homes"
            )
        start = time.perf_counter()
        with self._telemetry_scope() as baseline:
            jobs = spec.jobs()
            results: dict[int, HomeStreamResult] = {}
            work = functools.partial(
                run_stream_job,
                chunk_samples=chunk_samples,
                attacks=tuple(attacks),
                attack_kwargs=attack_kwargs,
                guard_policy=guard_policy,
            )

            def store(result: HomeStreamResult) -> None:
                results[result.index] = result

            failures: list[HomeFailure] = []
            workers_used = 1
            rebuilds = 0
            if jobs:
                failures, workers_used, rebuilds = self._execute(
                    jobs, store, work=work, backend=backend
                )
            for _ in failures:
                TELEMETRY.count("fleet.stream_failure")
            ordered = [
                results[job.index] for job in jobs if job.index in results
            ]
            telemetry = self._collect_telemetry(baseline, ordered)
        return StreamFleetResult(
            spec=spec,
            homes=ordered,
            elapsed_s=time.perf_counter() - start,
            workers_used=workers_used,
            failures=tuple(sorted(failures, key=lambda f: f.index)),
            pool_rebuilds=rebuilds,
            telemetry=telemetry,
        )

    def run_jobs(
        self,
        jobs: list,
        work: Callable,
        on_result: Callable[[object], None] | None = None,
    ) -> JobsResult:
        """Run arbitrary picklable jobs under the fleet supervisor.

        The public face of :meth:`_execute` for job families beyond the
        energy fleet (the netpriv arms-race sweep is the first customer).
        Jobs must look enough like :class:`~repro.fleet.spec.HomeJob` for
        the supervisor: an ``index`` field (unique, orders the results),
        a ``preset``-ish label for failure reports, and ``attempt`` as a
        ``dataclasses.replace``-able field.  ``work(job)`` must be
        picklable and return an object with ``index`` and ``telemetry``
        attributes.  Retries, timeouts, crash recovery, backoff, and
        telemetry merging behave exactly as in :meth:`run`; there is no
        result cache.  ``on_result`` (optional) fires as each job
        completes — a progress hook, called in completion order.
        """
        if self.backend == "batched":
            raise ValueError(
                "the batched backend only applies to batch fleets "
                "(FleetRunner.run); generic jobs have no block work "
                "function"
            )
        start = time.perf_counter()
        with self._telemetry_scope() as baseline:
            results: dict[int, object] = {}

            def store(result) -> None:
                results[result.index] = result
                if on_result is not None:
                    on_result(result)

            failures: list[HomeFailure] = []
            workers_used = 1
            rebuilds = 0
            if jobs:
                failures, workers_used, rebuilds = self._execute(
                    jobs, store, work=work, backend=self.backend
                )
            ordered = [
                results[job.index] for job in jobs if job.index in results
            ]
            telemetry = self._collect_telemetry(baseline, ordered)
        return JobsResult(
            results=ordered,
            elapsed_s=time.perf_counter() - start,
            workers_used=workers_used,
            failures=tuple(sorted(failures, key=lambda f: f.index)),
            pool_rebuilds=rebuilds,
            telemetry=telemetry,
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    @contextmanager
    def _env_exported(self):
        """Arm faults/telemetry/profiling through the env for workers.

        Everything a worker process must know beyond its picklable job
        crosses the boundary here, before the pool is built, so it is
        inherited identically under fork and spawn.  The serial path runs
        under the same exports, keeping both paths observably identical.
        """
        wanted: dict[str, str] = {}
        if self.faults is not None:
            wanted[FAULTS_ENV] = self.faults.to_json()
        if self.stream_faults is not None:
            # local import: repro.fleet stays importable without the
            # streaming subsystem loaded
            from ..stream.faults import STREAM_FAULTS_ENV

            wanted[STREAM_FAULTS_ENV] = self.stream_faults.to_json()
        if self.telemetry:
            wanted[TELEMETRY_ENV] = "1"
        if self.profile_dir is not None:
            wanted[PROFILE_DIR_ENV] = str(self.profile_dir)
        if not wanted:
            yield
            return
        previous = {name: os.environ.get(name) for name in wanted}
        os.environ.update(wanted)
        try:
            yield
        finally:
            for name, value in previous.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value

    @contextmanager
    def _telemetry_scope(self):
        """Enable the supervisor-process registry; yield the baseline.

        Yields ``None`` when telemetry is off; otherwise the registry
        snapshot taken at run start, which :meth:`_collect_telemetry`
        subtracts so one runner's totals never bleed into the next.
        """
        if not self.telemetry:
            yield None
            return
        previous = TELEMETRY.enabled
        TELEMETRY.enabled = True
        try:
            yield TELEMETRY.snapshot()
        finally:
            TELEMETRY.enabled = previous

    def _collect_telemetry(
        self,
        baseline: TelemetrySnapshot | None,
        homes: list[HomeResult],
        extra: list[TelemetrySnapshot] | tuple = (),
    ) -> TelemetrySnapshot | None:
        """Supervisor delta + every executed job's snapshot, merged.

        Job deltas are disjoint from the supervisor's (``run_home_job``
        restores the ambient registry after capturing its delta), so the
        merge never double-counts regardless of serial/pool execution.
        ``extra`` carries block-level snapshots from the batched backend
        (dispatch overhead shared by a whole block lives on the block,
        not on any one home).
        """
        if baseline is None:
            return None
        merged = TELEMETRY.snapshot().minus(baseline)
        TELEMETRY.restore(baseline)
        for home in homes:
            if home.telemetry is not None:
                merged = merged.merged(home.telemetry)
        for snap in extra:
            merged = merged.merged(snap)
        return merged

    def _receive(self, result: HomeResult) -> HomeResult:
        """Land one executed result: drain its trace channel.

        An explicit payload (inline pickle or shmem descriptor) is
        materialized — attaching, copying out, and unlinking the segment
        in the shmem case — and integrity-checked against the result's
        own ``trace_digest``.  The trace is then kept or dropped per
        ``keep_traces``.  Runs in the supervisor process, so a segment is
        unlinked the moment its home's result lands.
        """
        metered = result.metered
        if result.payload is not None:
            metered = materialize_trace(result.payload)
            if trace_digest(metered) != result.trace_digest:
                raise RuntimeError(
                    f"home {result.index}: metered trace arriving over "
                    "the payload channel does not match the result's "
                    "trace_digest — shared-memory corruption?"
                )
        if not self.keep_traces:
            metered = None
        if metered is result.metered and result.payload is None:
            return result
        return replace(result, metered=metered, payload=None)

    def _block_size(self, n_jobs: int) -> int:
        """Homes per batched block: explicit, else spread over workers."""
        if self.batch_size is not None:
            return self.batch_size
        return min(64, max(1, -(-n_jobs // max(self.workers, 1))))

    def _execute(
        self,
        jobs: list[HomeJob],
        on_result: Callable[[HomeResult], None],
        work: Callable[[HomeJob], object] = run_home_job,
        backend: str | None = None,
    ) -> tuple[list[HomeFailure], int, int]:
        """Run jobs under supervision; returns (failures, workers, rebuilds).

        ``work`` is the picklable per-job function — :func:`run_home_job`
        for batch fleets, a :func:`run_stream_job` partial for streamed
        ones, :func:`run_home_block` for batched blocks; the supervisor's
        retry/timeout/rebuild machinery is identical either way.  The
        ``serial`` backend forces the in-process loop regardless of
        ``workers``.  Degrades to the serial loop when a pool cannot be
        *started* (restricted sandboxes, missing semaphores); pool
        failures mid-run are handled by the supervisor itself.
        """
        with self._env_exported():
            if backend != "serial" and self.workers > 1 and len(jobs) > 1:
                pool = self._new_pool()
                if pool is not None:
                    failures, rebuilds = self._run_supervised(
                        pool, [_JobState(job) for job in jobs], on_result, work
                    )
                    return failures, self.workers, rebuilds
            failures = self._run_serial(
                [_JobState(job) for job in jobs], on_result, work
            )
            return failures, 1, 0

    def _new_pool(self) -> ProcessPoolExecutor | None:
        try:
            return ProcessPoolExecutor(max_workers=self.workers)
        except (OSError, PermissionError, ImportError):
            return None

    def _backoff(self, attempts: int) -> float:
        return min(
            self.retry_backoff_s * (2 ** max(0, attempts - 1)),
            self.MAX_BACKOFF_S,
        )

    def _charge(
        self,
        state: _JobState,
        kind: str,
        error: str,
        failures: list[HomeFailure],
        now: float,
    ) -> bool:
        """Record a failed attempt; True when the job is out of retries."""
        state.attempts += 1
        TELEMETRY.count(f"fleet.attempt_failed.{kind}")
        if state.attempts > self.max_retries:
            TELEMETRY.count("fleet.permanent_failure")
            failures.append(
                HomeFailure(
                    index=state.job.index,
                    preset=state.job.preset,
                    kind=kind,
                    error=error,
                    attempts=state.attempts,
                    elapsed_s=state.elapsed(now),
                )
            )
            return True
        backoff = self._backoff(state.attempts)
        TELEMETRY.count("fleet.retry")
        TELEMETRY.count("fleet.backoff_wait_s", backoff)
        state.not_before = now + backoff
        return False

    def _abort_rest(
        self,
        states: list[_JobState],
        failures: list[HomeFailure],
        now: float,
        culprit: int,
    ) -> None:
        """fail-fast: mark every unfinished job as aborted."""
        for state in states:
            failures.append(
                HomeFailure(
                    index=state.job.index,
                    preset=state.job.preset,
                    kind="aborted",
                    error=f"aborted by fail-fast after home {culprit} failed",
                    attempts=state.attempts,
                    elapsed_s=state.elapsed(now),
                )
            )

    # -- serial path ----------------------------------------------------
    def _run_serial(
        self,
        states: list[_JobState],
        on_result: Callable[[HomeResult], None],
        work: Callable[[HomeJob], object] = run_home_job,
    ) -> list[HomeFailure]:
        """In-process supervised loop: retries only (no crash/hang guard)."""
        failures: list[HomeFailure] = []
        for position, state in enumerate(states):
            state.first_start = time.monotonic()
            while True:
                try:
                    result = work(
                        replace(state.job, attempt=state.attempts)
                    )
                except Exception as exc:  # noqa: BLE001 — isolate per home
                    now = time.monotonic()
                    if self._charge(state, "error", repr(exc), failures, now):
                        if self.fail_fast:
                            self._abort_rest(
                                states[position + 1 :],
                                failures,
                                now,
                                state.job.index,
                            )
                            return failures
                        break
                    time.sleep(max(0.0, state.not_before - now))
                else:
                    on_result(result)
                    break
        return failures

    # -- supervised pool path -------------------------------------------
    def _run_supervised(
        self,
        pool: ProcessPoolExecutor,
        states: list[_JobState],
        on_result: Callable[[HomeResult], None],
        work: Callable[[HomeJob], object] = run_home_job,
    ) -> tuple[list[HomeFailure], int]:
        """The supervisor loop: per-job submit, isolation, rebuild, retry.

        ``queue`` holds runnable jobs; ``isolation`` holds crash suspects.
        A pool crash with several jobs in flight cannot be attributed to
        one of them, so all of them are quarantined *uncharged* and re-run
        one-at-a-time; a crash with a single job in flight is attributable
        and charges that job alone.  Innocent bystanders therefore always
        complete, and a poison pill exhausts its attempts by itself.
        """
        failures: list[HomeFailure] = []
        queue: list[_JobState] = list(states)
        isolation: list[_JobState] = []
        inflight: dict = {}
        rebuilds = 0

        def submit(state: _JobState) -> None:
            fut = pool.submit(
                work, replace(state.job, attempt=state.attempts)
            )
            state.started = time.monotonic()
            if state.first_start is None:
                state.first_start = state.started
            inflight[fut] = state

        def teardown(kill: bool) -> None:
            # a broken pool's processes are already gone; a hung pool's
            # must be terminated or shutdown would never return
            if kill:
                for proc in list(getattr(pool, "_processes", {}).values()):
                    proc.terminate()
            pool.shutdown(wait=True, cancel_futures=True)

        def rebuild() -> bool:
            nonlocal pool, rebuilds
            rebuilds += 1
            TELEMETRY.count("fleet.pool_rebuild")
            fresh = self._new_pool()
            if fresh is None:
                return False
            pool = fresh
            return True

        try:
            while queue or isolation or inflight:
                now = time.monotonic()

                # fill worker slots; suspects run strictly one-at-a-time.
                # A submit-time BrokenProcessPool puts the state back and
                # lets the in-flight futures (which all carry the broken
                # marker by now) drive the crash handling below.
                pool_broke_on_submit = False
                if isolation:
                    if not inflight and isolation[0].not_before <= now:
                        state = isolation.pop(0)
                        try:
                            submit(state)
                        except BrokenProcessPool:
                            isolation.insert(0, state)
                            pool_broke_on_submit = True
                else:
                    while len(inflight) < self.workers:
                        ready = next(
                            (
                                i
                                for i, s in enumerate(queue)
                                if s.not_before <= now
                            ),
                            None,
                        )
                        if ready is None:
                            break
                        state = queue.pop(ready)
                        try:
                            submit(state)
                        except BrokenProcessPool:
                            queue.insert(0, state)
                            pool_broke_on_submit = True
                            break

                if pool_broke_on_submit and not inflight:
                    # broken pool with nothing running: nobody to blame
                    teardown(kill=False)
                    if not rebuild():
                        failures.extend(
                            self._run_serial(isolation + queue, on_result, work)
                        )
                        return failures, rebuilds
                    continue

                if inflight:
                    done, _ = wait(
                        list(inflight),
                        timeout=self.POLL_S,
                        return_when=FIRST_COMPLETED,
                    )
                else:
                    if not queue and not isolation:
                        break
                    time.sleep(self.POLL_S)
                    done = ()

                crash_victims: list[_JobState] = []
                for fut in done:
                    state = inflight.pop(fut)
                    now = time.monotonic()
                    try:
                        result = fut.result()
                    except BrokenProcessPool:
                        crash_victims.append(state)
                    except Exception as exc:  # noqa: BLE001 — isolate per home
                        if self._charge(
                            state, "error", repr(exc), failures, now
                        ):
                            if self.fail_fast:
                                remaining = (
                                    list(inflight.values())
                                    + crash_victims
                                    + isolation
                                    + queue
                                )
                                teardown(kill=True)
                                self._abort_rest(
                                    remaining, failures, now, state.job.index
                                )
                                return failures, rebuilds
                        else:
                            queue.append(state)
                    else:
                        on_result(result)

                now = time.monotonic()
                if crash_victims:
                    # whatever else was in flight died with the pool too
                    victims = crash_victims + list(inflight.values())
                    inflight.clear()
                    if len(victims) == 1:
                        # attributable: exactly one job was running
                        state = victims[0]
                        if self._charge(
                            state,
                            "crash",
                            "worker process died (BrokenProcessPool)",
                            failures,
                            now,
                        ):
                            if self.fail_fast:
                                teardown(kill=False)
                                self._abort_rest(
                                    isolation + queue,
                                    failures,
                                    now,
                                    state.job.index,
                                )
                                return failures, rebuilds
                        else:
                            isolation.insert(0, state)
                    else:
                        isolation.extend(victims)
                    teardown(kill=False)
                    if not rebuild():
                        # can no longer start pools: finish serially
                        failures.extend(
                            self._run_serial(isolation + queue, on_result, work)
                        )
                        return failures, rebuilds
                    continue

                if self.job_timeout is not None and inflight:
                    hung = {
                        fut: state
                        for fut, state in inflight.items()
                        if now - state.started > self.job_timeout
                    }
                    if hung:
                        # hung workers cannot be cancelled: kill the pool,
                        # charge the hung jobs, requeue innocents uncharged
                        innocents = [
                            state
                            for fut, state in inflight.items()
                            if fut not in hung
                        ]
                        inflight.clear()
                        teardown(kill=True)
                        culprit = None
                        for state in hung.values():
                            if self._charge(
                                state,
                                "timeout",
                                f"job exceeded {self.job_timeout:.1f}s "
                                "wall-clock timeout",
                                failures,
                                now,
                            ):
                                culprit = state.job.index
                            else:
                                queue.append(state)
                        if culprit is not None and self.fail_fast:
                            self._abort_rest(
                                innocents + isolation + queue,
                                failures,
                                now,
                                culprit,
                            )
                            return failures, rebuilds
                        queue[:0] = innocents
                        if not rebuild():
                            failures.extend(
                                self._run_serial(
                                    isolation + queue, on_result, work
                                )
                            )
                            return failures, rebuilds
            return failures, rebuilds
        finally:
            pool.shutdown(wait=True, cancel_futures=True)


def _expand_block_failures(
    failures: list[HomeFailure], blocks: list[HomeBlockJob]
) -> list[HomeFailure]:
    """A permanently failed block failed every home in it: one row each.

    The supervisor records failures against the block's identity (its
    first member's index, a ``homes[i..j]`` preset span); the fleet-level
    failure report promises per-home rows, so each block failure expands
    into one :class:`HomeFailure` per member job.
    """
    by_index = {block.index: block for block in blocks}
    expanded: list[HomeFailure] = []
    for failure in failures:
        block = by_index.get(failure.index)
        if block is None:
            expanded.append(failure)
            continue
        for job in block.jobs:
            expanded.append(
                replace(failure, index=job.index, preset=job.preset)
            )
    return expanded


def run_fleet(
    spec: FleetSpec,
    workers: int = 1,
    chunksize: int = 1,
    cache_dir: str | Path | None = None,
    **supervisor: object,
) -> FleetResult:
    """One-call convenience: ``FleetRunner(...).run(spec)``.

    Keyword arguments beyond the first three (``max_retries``,
    ``job_timeout``, ``fail_fast``, ``retry_backoff_s``, ``faults``,
    ``telemetry``, ``profile_dir``, ``backend``, ``keep_traces``,
    ``batch_size``) are forwarded to :class:`FleetRunner`.
    """
    return FleetRunner(workers, chunksize, cache_dir, **supervisor).run(spec)
