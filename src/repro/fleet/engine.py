"""Chunked fleet execution: fan home jobs out over worker processes.

:func:`run_home_job` is the unit of work — a module-level function of one
picklable :class:`HomeJob`, so ``ProcessPoolExecutor`` can ship it to
workers under either fork or spawn start methods.  :class:`FleetRunner`
drives it: resolve the spec into jobs, satisfy what it can from the
result cache, batch the misses to a process pool (``chunksize`` controls
how many jobs ride per IPC round-trip), and fall back to in-process
serial execution when ``workers <= 1`` or the platform cannot start a
pool (restricted sandboxes, missing semaphores).

Determinism: each job carries its own spawned seed streams, so the result
for home *i* is bit-identical whether it ran serially, in any worker, in
any chunk, or came from the cache.  The per-home ``trace_digest`` (SHA-256
of the metered samples) is what the determinism tests compare.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from ..attacks.niom import HMMNIOM, ThresholdNIOM
from ..core.evaluation import TradeoffPoint
from ..core.pipeline import evaluate_simulation
from ..home.household import simulate_home
from ..timeseries import PowerTrace
from .cache import CacheStats, ResultCache, job_cache_key
from .spec import FleetSpec, HomeJob

#: Name -> detector factory, resolved inside the worker so only names
#: (not closures) ever cross the process boundary.  Mirrors
#: ``core.evaluation.DEFAULT_DETECTORS``.
FLEET_DETECTORS = {
    "threshold-15m": lambda: ThresholdNIOM(night_prior=True),
    "threshold-60m": lambda: ThresholdNIOM(window_s=3600.0, night_prior=True),
    "hmm": lambda: HMMNIOM(rng=0),
}


def trace_digest(trace: PowerTrace) -> str:
    """SHA-256 of a trace's samples and clock — the byte-identity check."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(trace.values).tobytes())
    h.update(repr((trace.period_s, trace.start_s, len(trace))).encode())
    return h.hexdigest()


@dataclass(frozen=True)
class HomeResult:
    """One home's scored outcome (what the cache stores)."""

    index: int
    preset: str
    home_name: str
    fingerprint: str
    days: int
    trace_digest: str
    energy_kwh: float
    baseline: TradeoffPoint
    defenses: dict[str, TradeoffPoint]
    from_cache: bool = False


def run_home_job(job: HomeJob) -> HomeResult:
    """Simulate, defend, and attack one home.  Runs inside workers."""
    unknown = set(job.detectors) - set(FLEET_DETECTORS)
    if unknown:
        raise KeyError(f"unknown detectors: {sorted(unknown)}")
    detectors = tuple((name, FLEET_DETECTORS[name]) for name in job.detectors)
    sim = simulate_home(job.config, job.days, np.random.default_rng(job.sim_seed))
    pipeline = evaluate_simulation(
        sim,
        list(job.defenses),
        np.random.default_rng(job.defense_seed),
        detectors,
    )
    return HomeResult(
        index=job.index,
        preset=job.preset,
        home_name=job.config.name,
        fingerprint=job.fingerprint,
        days=job.days,
        trace_digest=trace_digest(sim.metered),
        energy_kwh=sim.metered.energy_kwh(),
        baseline=pipeline.baseline,
        defenses=pipeline.defenses,
    )


@dataclass(frozen=True)
class FleetResult:
    """Everything one runner pass produced."""

    spec: FleetSpec
    homes: list[HomeResult]
    elapsed_s: float
    workers_used: int
    executed: int
    cache_stats: CacheStats | None = None

    @property
    def n_homes(self) -> int:
        return len(self.homes)


class FleetRunner:
    """Execute a :class:`FleetSpec`, caching and parallelizing as asked.

    Parameters
    ----------
    workers:
        Process count; ``<= 1`` runs in-process serially (no pool, no
        pickling).
    chunksize:
        Jobs batched per worker dispatch (larger amortizes IPC for many
        small homes).
    cache_dir:
        Directory for the content-addressed result cache; ``None``
        disables caching.
    """

    def __init__(
        self,
        workers: int = 1,
        chunksize: int = 1,
        cache_dir: str | Path | None = None,
    ) -> None:
        if chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.workers = max(1, int(workers))
        self.chunksize = int(chunksize)
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None

    def run(self, spec: FleetSpec) -> FleetResult:
        """Evaluate the whole fleet and return ordered per-home results."""
        start = time.perf_counter()
        jobs = spec.jobs()
        results: dict[int, HomeResult] = {}
        pending: list[HomeJob] = []
        keys: dict[int, str] = {}

        for job in jobs:
            if self.cache is None:
                pending.append(job)
                continue
            key = job_cache_key(job)
            keys[job.index] = key
            hit = self.cache.get(key)
            if hit is not None:
                results[job.index] = replace(hit, from_cache=True)
            else:
                pending.append(job)

        workers_used = 1
        if pending:
            fresh, workers_used = self._execute(pending)
            for result in fresh:
                results[result.index] = result
                if self.cache is not None:
                    self.cache.put(keys[result.index], result)

        ordered = [results[job.index] for job in jobs]
        return FleetResult(
            spec=spec,
            homes=ordered,
            elapsed_s=time.perf_counter() - start,
            workers_used=workers_used,
            executed=len(pending),
            cache_stats=self.cache.stats if self.cache is not None else None,
        )

    def _execute(self, jobs: list[HomeJob]) -> tuple[list[HomeResult], int]:
        """Run jobs on a process pool, degrading to serial on any failure
        to *start* the pool (results from a started pool are trusted)."""
        if self.workers > 1 and len(jobs) > 1:
            try:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    out = list(
                        pool.map(run_home_job, jobs, chunksize=self.chunksize)
                    )
                return out, self.workers
            except (OSError, PermissionError, ImportError, BrokenProcessPool):
                # restricted platforms (no /dev/shm, no fork, no semaphores);
                # a genuine job error re-raises identically from the serial
                # path below, so nothing is masked
                pass
        return [run_home_job(job) for job in jobs], 1


def run_fleet(
    spec: FleetSpec,
    workers: int = 1,
    chunksize: int = 1,
    cache_dir: str | Path | None = None,
) -> FleetResult:
    """One-call convenience: ``FleetRunner(...).run(spec)``."""
    return FleetRunner(workers, chunksize, cache_dir).run(spec)
