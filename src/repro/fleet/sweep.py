"""Declarative privacy-knob sweeps over the fleet (the Sec. III-E grid).

:func:`~repro.core.knob.sweep_knob` dials one home along one axis; the
paper's knob story is population-scale — how does the frontier look over
a service territory, per mechanism, per dial position?  A
:class:`SweepGrid` declares that grid — (defense × knob setting × fleet
seed) over a fixed home population — and :class:`SweepRunner` executes
it as a sequence of :class:`~repro.fleet.spec.FleetSpec` runs on the
existing fault-tolerant :class:`~repro.fleet.engine.FleetRunner`.

Design choices that make the grid cheap and resumable:

* **One cell = one fleet run with a single parametrized defense.**  The
  cell's defense travels as the string ``name@setting``
  (:func:`~repro.core.knob.knob_defense_name`), which flows through
  pickled :class:`~repro.fleet.spec.HomeJob`\\ s and into the
  content-addressed cache key untouched — so the sweep inherits the
  fleet cache at per-(home, cell) granularity with zero cache-format
  changes.  A killed sweep, rerun over the same ``cache_dir``, replays
  finished homes from disk and executes only the remainder.
* **Shards are a pure function of the cell list.**  ``--shard i/n``
  takes cells ``i-1::n`` of the deterministic cell ordering
  (:meth:`SweepGrid.cells`), so *n* machines sharing nothing but the
  grid file partition the work exactly, and any shard can be re-run
  alone.
* **Telemetry is merged per cell, then across the sweep** via
  :func:`repro.obs.merge_snapshots`; each
  :class:`CellResult` keeps its own snapshot so a cell's cost stays
  attributable.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..core.knob import knob_defense_name, knob_mapping_names
from ..obs import TelemetrySnapshot, merge_snapshots
from .backends import DEFAULT_BACKEND
from .engine import FleetResult, FleetRunner
from .frontier import FrontierReport
from .spec import DEFAULT_FLEET_DETECTORS, FleetSpec


class SweepError(ValueError):
    """A malformed grid, shard, or grid file."""


@dataclass(frozen=True)
class SweepCell:
    """One point of the grid: a dialed defense over one seeded fleet."""

    defense: str
    setting: float
    seed: int

    @property
    def knob_name(self) -> str:
        """The ``name@setting`` string the fleet (and its cache) sees."""
        return knob_defense_name(self.defense, self.setting)

    def label(self) -> str:
        return f"{self.knob_name} seed={self.seed}"


@dataclass(frozen=True)
class SweepGrid:
    """The declarative sweep: which dials, which positions, which fleet.

    Every combination of ``defenses`` × ``settings`` × ``seeds`` becomes
    one :class:`SweepCell`; all cells share the same home population
    shape (``n_homes``, ``days``, ``mix``, ``detectors``).  Within one
    ``seed`` the *homes* are identical across cells (fleet seeding is a
    pure function of the fleet seed), so cells differ only by the dialed
    defense — which is exactly what a frontier comparison needs.
    """

    defenses: tuple[str, ...]
    settings: tuple[float, ...]
    n_homes: int = 20
    days: int = 1
    seeds: tuple[int, ...] = (0,)
    mix: tuple[str, ...] = ("random",)
    detectors: tuple[str, ...] = DEFAULT_FLEET_DETECTORS
    #: executor backend for every cell's fleet run (``None`` defers to
    #: the runner); excluded from cache keys like FleetSpec.backend
    backend: str | None = None

    def __post_init__(self) -> None:
        if not self.defenses:
            raise SweepError("grid needs at least one defense")
        if not self.settings:
            raise SweepError("grid needs at least one knob setting")
        if not self.seeds:
            raise SweepError("grid needs at least one seed")
        unknown = set(self.defenses) - set(knob_mapping_names())
        if unknown:
            raise SweepError(
                f"no knob mapping for: {sorted(unknown)}; "
                f"available: {knob_mapping_names()}"
            )
        for s in self.settings:
            if not 0.0 <= s <= 1.0:
                raise SweepError(f"knob setting {s!r} outside [0, 1]")
        if len(set(self.settings)) != len(self.settings):
            raise SweepError("duplicate knob settings in grid")
        if len(set(self.defenses)) != len(self.defenses):
            raise SweepError("duplicate defenses in grid")
        if len(set(self.seeds)) != len(self.seeds):
            raise SweepError("duplicate seeds in grid")
        # population-shape validation is delegated to FleetSpec, once,
        # here — not per cell deep inside a shard on another machine
        self.cell_spec(SweepCell(self.defenses[0], self.settings[0], self.seeds[0]))

    @property
    def n_cells(self) -> int:
        return len(self.defenses) * len(self.settings) * len(self.seeds)

    def cells(self) -> list[SweepCell]:
        """All cells in the canonical (defense, setting, seed) order.

        The order is part of the sweep's contract: shards slice it, so
        it must be identical on every machine given the same grid.
        """
        return [
            SweepCell(defense=d, setting=float(s), seed=int(seed))
            for d in self.defenses
            for s in sorted(self.settings)
            for seed in self.seeds
        ]

    def cell_spec(self, cell: SweepCell) -> FleetSpec:
        """The fleet run computing one cell."""
        return FleetSpec(
            n_homes=self.n_homes,
            days=self.days,
            seed=cell.seed,
            mix=self.mix,
            defenses=(cell.knob_name,),
            detectors=self.detectors,
            backend=self.backend,
        )

    def as_dict(self) -> dict:
        return {
            "defenses": list(self.defenses),
            "settings": list(self.settings),
            "n_homes": self.n_homes,
            "days": self.days,
            "seeds": list(self.seeds),
            "mix": list(self.mix),
            "detectors": list(self.detectors),
            "backend": self.backend,
        }


_GRID_KEYS = {
    "defenses", "settings", "n_homes", "days", "seeds", "mix", "detectors",
    "backend",
}


def load_grid(path: str | Path) -> SweepGrid:
    """Read a grid from a small TOML or JSON file.

    The file holds exactly the :meth:`SweepGrid.as_dict` keys (all
    optional except ``defenses`` and ``settings``); extension picks the
    parser.  TOML needs no dependency — :mod:`tomllib` ships with the
    interpreter.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SweepError(f"cannot read grid file {path}: {exc}") from exc
    if path.suffix == ".toml":
        import tomllib

        try:
            doc = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SweepError(f"bad TOML in {path}: {exc}") from exc
    elif path.suffix == ".json":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SweepError(f"bad JSON in {path}: {exc}") from exc
    else:
        raise SweepError(
            f"grid file {path} must end in .toml or .json"
        )
    if not isinstance(doc, dict):
        raise SweepError(f"grid file {path} must hold a table/object")
    unknown = set(doc) - _GRID_KEYS
    if unknown:
        raise SweepError(
            f"unknown grid keys in {path}: {sorted(unknown)}; "
            f"known: {sorted(_GRID_KEYS)}"
        )
    missing = {"defenses", "settings"} - set(doc)
    if missing:
        raise SweepError(f"grid file {path} missing keys: {sorted(missing)}")
    kwargs: dict = {}
    for key, value in doc.items():
        if key in ("n_homes", "days"):
            kwargs[key] = int(value)
        elif key == "backend":
            kwargs[key] = str(value) if value is not None else None
        elif key == "settings":
            kwargs[key] = tuple(float(v) for v in value)
        elif key == "seeds":
            kwargs[key] = tuple(int(v) for v in value)
        else:
            kwargs[key] = tuple(str(v) for v in value)
    try:
        return SweepGrid(**kwargs)
    except (TypeError, ValueError) as exc:
        raise SweepError(f"bad grid in {path}: {exc}") from exc


def parse_shard(text: str) -> tuple[int, int]:
    """Parse and validate a ``--shard i/n`` argument."""
    head, sep, tail = text.partition("/")
    if not sep:
        raise SweepError(f"shard must look like i/n, got {text!r}")
    try:
        index, total = int(head), int(tail)
    except ValueError:
        raise SweepError(f"shard must be two integers i/n, got {text!r}") from None
    if total < 1 or not 1 <= index <= total:
        raise SweepError(
            f"shard index must satisfy 1 <= i <= n, got {index}/{total}"
        )
    return index, total


def shard_cells(
    cells: Sequence[SweepCell], shard: tuple[int, int]
) -> list[SweepCell]:
    """Round-robin slice of the canonical cell order for shard ``(i, n)``.

    Round-robin (``cells[i-1::n]``) rather than contiguous blocks so each
    shard spans the whole grid — expensive settings spread evenly instead
    of landing on one machine.
    """
    index, total = shard
    if total < 1 or not 1 <= index <= total:
        raise SweepError(
            f"shard index must satisfy 1 <= i <= n, got {index}/{total}"
        )
    return list(cells[index - 1 :: total])


@dataclass(frozen=True)
class CellResult:
    """One executed cell: its fleet result plus attributable telemetry."""

    cell: SweepCell
    fleet: FleetResult

    @property
    def telemetry(self) -> TelemetrySnapshot | None:
        return self.fleet.telemetry


@dataclass(frozen=True)
class SweepResult:
    """Everything one sweep pass (one shard) produced."""

    grid: SweepGrid
    shard: tuple[int, int]
    cells: tuple[CellResult, ...]
    elapsed_s: float
    executed: int  # fleet jobs actually run (not replayed from cache)
    #: sweep-level totals: every cell's fleet telemetry merged; ``None``
    #: unless the runner collected telemetry
    telemetry: TelemetrySnapshot | None = None

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def n_failed_homes(self) -> int:
        return sum(c.fleet.n_failed for c in self.cells)

    @property
    def ok(self) -> bool:
        return all(c.fleet.ok for c in self.cells)

    def frontier(self) -> FrontierReport:
        return FrontierReport.from_cells(self.cells)


class SweepRunner:
    """Execute a :class:`SweepGrid` (or one shard of it) cell by cell.

    Construction mirrors :class:`~repro.fleet.engine.FleetRunner` — the
    same worker pool, cache directory, and supervision knobs apply to
    every cell.  One underlying runner instance is reused across cells
    so cache statistics accumulate over the whole sweep.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: str | Path | None = None,
        *,
        max_retries: int = 2,
        job_timeout: float | None = None,
        fail_fast: bool = False,
        telemetry: bool = False,
        profile_dir: str | Path | None = None,
        backend: str = DEFAULT_BACKEND,
    ) -> None:
        self.runner = FleetRunner(
            workers,
            cache_dir=cache_dir,
            max_retries=max_retries,
            job_timeout=job_timeout,
            fail_fast=fail_fast,
            telemetry=telemetry,
            profile_dir=profile_dir,
            backend=backend,
        )

    def run(
        self,
        grid: SweepGrid,
        shard: tuple[int, int] = (1, 1),
        on_cell=None,
    ) -> SweepResult:
        """Run this shard's cells in order; per-cell results accumulate.

        ``on_cell`` (optional callable of one :class:`CellResult`) fires
        as each cell completes — the CLI's progress hook.
        """
        start = time.perf_counter()
        cells = shard_cells(grid.cells(), shard)
        results: list[CellResult] = []
        executed = 0
        for cell in cells:
            fleet = self.runner.run(grid.cell_spec(cell))
            executed += fleet.executed
            result = CellResult(cell=cell, fleet=fleet)
            results.append(result)
            if on_cell is not None:
                on_cell(result)
        snapshots = [r.telemetry for r in results if r.telemetry is not None]
        telemetry = merge_snapshots(snapshots) if snapshots else None
        return SweepResult(
            grid=grid,
            shard=shard,
            cells=tuple(results),
            elapsed_s=time.perf_counter() - start,
            executed=executed,
            telemetry=telemetry,
        )


def run_sweep(
    grid: SweepGrid,
    shard: tuple[int, int] = (1, 1),
    workers: int = 1,
    cache_dir: str | Path | None = None,
    **supervisor: object,
) -> SweepResult:
    """One-call convenience: ``SweepRunner(...).run(grid, shard)``."""
    return SweepRunner(workers, cache_dir, **supervisor).run(grid, shard)
