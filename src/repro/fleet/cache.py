"""Content-addressed on-disk cache for per-home fleet results.

A cache entry is keyed by *everything that determines the result*: the
home config fingerprint, the simulated duration, the exact seed streams,
the defense list, and the detector ensemble (plus a format version so
stale entries from older layouts are ignored, not misread).  Re-running a
sweep therefore only pays for cells that actually changed; widening a
fleet, adding a defense, or bumping ``days`` recomputes exactly the new
cells.

Entries are stored as ``<cache_dir>/<k[:2]>/<key>.pkl`` (two-level fanout
keeps directories small at fleet scale) and written atomically via a
temp-file rename, so a crashed worker can never leave a torn entry that a
later run would trust.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path

import sys

import numpy as np

from ..obs import TELEMETRY
from .spec import HomeJob

#: bump when HomeResult's layout (or anything scoring-relevant that the
#: key can't see) changes, invalidating every existing entry at once.
#: v2: entries are wrapped in a versioned envelope so reads can verify
#: *what* they loaded, not just that it unpickled.
#: v3: HomeResult grew a telemetry field (always stored as None so cache
#: bytes are identical whether or not telemetry was collected).
#: v4: HomeResult grew metered/payload trace-channel fields (both always
#: stored as None so cache bytes are identical under every backend).
CACHE_FORMAT_VERSION = 4


def _seed_state(seq: np.random.SeedSequence) -> list:
    """The parts of a SeedSequence that determine its stream."""
    entropy = seq.entropy
    if isinstance(entropy, (list, tuple)):
        entropy = [int(e) for e in entropy]
    else:
        entropy = int(entropy)
    return [entropy, [int(k) for k in seq.spawn_key], int(seq.pool_size)]


def job_cache_key(job: HomeJob) -> str:
    """Deterministic hex key for one home's (config, seeds, scoring) cell."""
    doc = json.dumps(
        {
            "version": CACHE_FORMAT_VERSION,
            "config": job.fingerprint,
            "days": job.days,
            "sim_seed": _seed_state(job.sim_seed),
            "defense_seed": _seed_state(job.defense_seed),
            "defenses": list(job.defenses),
            "detectors": list(job.detectors),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(doc.encode()).hexdigest()


def _canonical(obj, memo: dict):
    """Rebuild an object graph with by-value sharing, for stable pickles.

    Pickle memoizes by *identity*: two equal strings are written once if
    they are the same object, twice if not.  Which equal objects share
    identity depends on the execution path that produced the result — a
    serial run's :class:`~repro.fleet.engine.HomeResult` shares string
    objects with its job, while a pool worker's result was restructured
    by the pipe round-trip.  Rebuilding the graph with equal immutables
    deduplicated (in deterministic field/insertion order) makes the
    cache entry's bytes a pure function of its *values*, so every
    executor backend writes the identical entry — a property the
    backend-parity tests pin byte for byte.
    """
    if obj is None or isinstance(obj, (bool, int, float)):
        return obj
    if isinstance(obj, (str, bytes)):
        # intern plain strings: pickle also emits the *attribute-name*
        # keys of dataclass ``__dict__`` state, which are interned — a
        # value string equal to a field name must be the same object on
        # every path or the memo-reference structure diverges
        if type(obj) is str:
            obj = sys.intern(obj)
        return memo.setdefault((type(obj), obj), obj)
    if isinstance(obj, tuple):
        rebuilt = tuple(_canonical(v, memo) for v in obj)
        try:
            return memo.setdefault((tuple, rebuilt), rebuilt)
        except TypeError:  # unhashable member — sharing can't matter
            return rebuilt
    if isinstance(obj, list):
        return [_canonical(v, memo) for v in obj]
    if isinstance(obj, dict):
        return {
            _canonical(k, memo): _canonical(v, memo) for k, v in obj.items()
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return type(obj)(
            **{
                f.name: _canonical(getattr(obj, f.name), memo)
                for f in dataclasses.fields(obj)
            }
        )
    return obj


@dataclass
class CacheStats:
    """Hit/miss accounting for one runner pass.

    ``corrupt`` counts the subset of misses caused by entries that *exist*
    but could not be trusted (torn pickle, wrong object type) — distinct
    from both plain misses (no file) and ``stale`` entries written by an
    older cache format.  Corrupt entries keep miss semantics so a sweep
    can never be poisoned or aborted by cache rot, but the rot itself is
    no longer silent: it surfaces in fleet reports and telemetry.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    stale: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "stale": self.stale,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """Pickle-backed store of per-home results under one directory."""

    def __init__(self, cache_dir: str | Path) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """Cached :class:`~repro.fleet.engine.HomeResult` for ``key``, or None.

        Anything short of a well-formed envelope holding a ``HomeResult``
        of the current format version is treated as a miss: unreadable
        files, torn/truncated pickles, *and* corrupt-but-loadable objects
        (wrong type, stale envelope).  A cache read must never be able to
        poison — or abort — a sweep; but unlike a plain miss (no file),
        untrustworthy entries are *classified* — ``corrupt`` for rot,
        ``stale`` for old formats — and counted in both ``stats`` and the
        telemetry registry so silent cache rot shows up in fleet reports.
        """
        from .engine import HomeResult  # function-level: engine imports us

        path = self._path(key)
        with TELEMETRY.timer("cache.read"):
            try:
                with path.open("rb") as handle:
                    value = pickle.load(handle)
            except FileNotFoundError:
                return self._miss()
            except Exception:  # noqa: BLE001 — torn/unreadable entry
                return self._miss(corrupt=True)
            if not isinstance(value, dict):
                return self._miss(corrupt=True)
            if value.get("format") != CACHE_FORMAT_VERSION:
                return self._miss(stale=True)
            result = value.get("result")
            if not isinstance(result, HomeResult):
                return self._miss(corrupt=True)
            self.stats.hits += 1
            TELEMETRY.count("cache.hit")
            return result

    def _miss(self, corrupt: bool = False, stale: bool = False):
        self.stats.misses += 1
        TELEMETRY.count("cache.miss")
        if corrupt:
            self.stats.corrupt += 1
            TELEMETRY.count("cache.corrupt_entry")
        if stale:
            self.stats.stale += 1
            TELEMETRY.count("cache.stale_entry")
        return None

    def put(self, key: str, value) -> None:
        """Atomically store ``value`` under ``key`` in a versioned envelope."""
        path = self._path(key)
        with TELEMETRY.timer("cache.write"):
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
            # canonical copy: entry bytes depend only on values, never on
            # which execution path (backend, pipe, retry) built the graph
            envelope = {
                "format": CACHE_FORMAT_VERSION,
                "result": _canonical(value, {}),
            }
            with tmp.open("wb") as handle:
                pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        self.stats.stores += 1
        TELEMETRY.count("cache.store")

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*/*.pkl"))
