"""Fleet specification: which homes to evaluate, and how they are seeded.

A :class:`FleetSpec` describes a population of homes drawn from the preset
registry (including ``random``, which synthesizes a new household per
slot).  Seeding uses ``np.random.SeedSequence.spawn``: the fleet's root
sequence spawns one child per home, and each child spawns three dedicated
streams (config synthesis, home simulation, defense randomness).  Spawned
children are a pure function of ``(root entropy, home index)``, so

* results are bitwise-identical regardless of worker count or chunking,
  because no stream is shared between homes; and
* any single home can be rebuilt in isolation (:meth:`FleetSpec.job`)
  without simulating the homes before it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..home.fingerprint import config_fingerprint
from ..home.household import HomeConfig
from ..home.presets import make_preset, preset_names
from ..obs import TELEMETRY

#: Detector ensemble evaluated against every home (mirrors
#: ``core.evaluation.DEFAULT_DETECTORS`` by name).
DEFAULT_FLEET_DETECTORS = ("threshold-15m", "threshold-60m", "hmm")


def _home_seed(root_seed: int, index: int) -> np.random.SeedSequence:
    """Child ``index`` of ``SeedSequence(root_seed)``, built in O(1).

    ``SeedSequence.spawn`` children differ from their parent only by the
    appended spawn key, so child *i* of the root is simply
    ``SeedSequence(root_seed, spawn_key=(i,))``.  A test pins this
    equivalence against an actual ``spawn`` call.
    """
    return np.random.SeedSequence(root_seed, spawn_key=(index,))


@dataclass(frozen=True)
class HomeJob:
    """One home's unit of fleet work — fully picklable.

    ``sim_seed`` and ``defense_seed`` are independent spawned streams; the
    worker never needs the fleet root.  ``fingerprint`` identifies the
    *config content* (not the slot), so two slots that synthesized the
    same home would share cache entries if their seeds also matched.

    ``attempt`` is supervisor bookkeeping: the retry ordinal the job is
    running as (0 = first try).  It is deliberately *excluded* from the
    cache key — a retried home is the same cell — and does not influence
    the simulation seeds, so retries reproduce results bit-identically.
    The fault-injection layer keys on it to model flaky-then-healthy jobs.

    ``payload`` / ``payload_prefix`` are executor-backend plumbing
    (:mod:`repro.fleet.backends`): which channel the worker should use to
    ship the metered trace back (``none`` / ``direct`` / ``inline`` /
    ``shmem``) and, for shared memory, the run's segment-name prefix.
    Like ``attempt``, both are excluded from the cache key and can never
    influence results — only how the result's bytes travel.
    """

    index: int
    preset: str
    config: HomeConfig
    fingerprint: str
    days: int
    sim_seed: np.random.SeedSequence
    defense_seed: np.random.SeedSequence
    defenses: tuple[str, ...]
    detectors: tuple[str, ...] = DEFAULT_FLEET_DETECTORS
    attempt: int = 0
    payload: str = "none"
    payload_prefix: str = ""


@dataclass(frozen=True)
class FleetSpec:
    """A population of homes to simulate, defend, and attack.

    Parameters
    ----------
    n_homes:
        Population size.
    days:
        Simulated days per home.
    seed:
        Root entropy for the whole fleet.
    mix:
        Preset names cycled over the population (home *i* uses
        ``mix[i % len(mix)]``).  Defaults to all-random homes.
    defenses:
        Registered defense names to sweep; ``None`` means all registered.
    detectors:
        NIOM detector names from the fleet detector table.
    backend:
        Executor-backend hint (:data:`repro.fleet.backends.BACKENDS`);
        ``None`` defers to the runner's own backend.  Excluded from the
        cache key — every backend produces bit-identical results, so a
        cell computed under one backend is a valid hit under any other.
    """

    n_homes: int
    days: int = 3
    seed: int = 0
    mix: tuple[str, ...] = ("random",)
    defenses: tuple[str, ...] | None = None
    detectors: tuple[str, ...] = DEFAULT_FLEET_DETECTORS
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.n_homes < 1:
            raise ValueError("n_homes must be >= 1")
        if self.days < 1:
            raise ValueError("days must be >= 1")
        if not self.mix:
            raise ValueError("mix needs at least one preset")
        unknown = set(self.mix) - set(preset_names())
        if unknown:
            raise ValueError(
                f"unknown presets in mix: {sorted(unknown)}; "
                f"available: {preset_names()}"
            )
        if not self.detectors:
            raise ValueError("need at least one detector")
        # validate detector names once, here, instead of letting every
        # worker raise KeyError mid-dispatch (function-level import: the
        # engine imports this module at its top level)
        from .engine import FLEET_DETECTORS

        unknown = set(self.detectors) - set(FLEET_DETECTORS)
        if unknown:
            raise ValueError(
                f"unknown detectors: {sorted(unknown)}; "
                f"available: {sorted(FLEET_DETECTORS)}"
            )
        if self.backend is not None:
            from .backends import resolve_backend

            resolve_backend(self.backend)

    def resolved_defenses(self) -> tuple[str, ...]:
        if self.defenses is not None:
            return self.defenses
        from ..core.registry import defense_names

        return tuple(defense_names())

    def job(self, index: int) -> HomeJob:
        """Build home ``index``'s job in isolation (O(1) in fleet size)."""
        if not 0 <= index < self.n_homes:
            raise IndexError(f"home index {index} outside [0, {self.n_homes})")
        return self._job_from_child(index, _home_seed(self.seed, index))

    def jobs(self) -> list[HomeJob]:
        """All jobs, seeded by spawning the root sequence once per home.

        Job construction synthesizes every home's config (non-trivial for
        ``random`` homes), so it is a telemetry stage of its own:
        supervisor-side ``stage.spec`` time never shows up inside any
        worker's ``stage.job``.
        """
        children = np.random.SeedSequence(self.seed).spawn(self.n_homes)
        with TELEMETRY.timer("stage.spec"):
            built = [
                self._job_from_child(i, child)
                for i, child in enumerate(children)
            ]
        TELEMETRY.count("fleet.jobs_built", len(built))
        return built

    def _job_from_child(
        self, index: int, child: np.random.SeedSequence
    ) -> HomeJob:
        config_seed, sim_seed, defense_seed = child.spawn(3)
        preset = self.mix[index % len(self.mix)]
        config = make_preset(preset, np.random.default_rng(config_seed))
        return HomeJob(
            index=index,
            preset=preset,
            config=config,
            fingerprint=config_fingerprint(config),
            days=self.days,
            sim_seed=sim_seed,
            defense_seed=defense_seed,
            defenses=self.resolved_defenses(),
            detectors=self.detectors,
        )
