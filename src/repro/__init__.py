"""repro — Private Memoirs of IoT Devices (ICDCS 2018), reproduced.

A complete implementation of the attacks, defenses, and substrates from
Chen, Bovornkeeratiroj, Irwin & Shenoy, "Private Memoirs of IoT Devices:
Safeguarding User Privacy in the IoT Era":

- :mod:`repro.home` — smart-home energy simulation (appliances, occupants,
  smart meters);
- :mod:`repro.solar` — PV generation, weather, and the SunSpot/Weatherman
  localization and SunDance disaggregation attacks;
- :mod:`repro.attacks` — NIOM occupancy detection, NILM (PowerPlay, FHMM,
  Hart), and behavioral profiling;
- :mod:`repro.defenses` — CHPr, battery load-hiding, differential privacy,
  ZKP billing, local services, and obfuscation baselines;
- :mod:`repro.netpriv` — IoT LAN traffic, device fingerprinting,
  compromised-device threats, and the smart gateway;
- :mod:`repro.core` — the evaluation pipeline and the user-controllable
  privacy knob;
- :mod:`repro.fleet` — parallel multi-home fleet simulation with result
  caching and population-level attack/defense reports;
- :mod:`repro.claims` — declarative privacy claims evaluated against
  sweep/netpriv/stream artifacts into certification reports;
- :mod:`repro.ml` / :mod:`repro.timeseries` — the from-scratch ML and
  time-series substrates everything rests on;
- :mod:`repro.datasets` — seeded datasets for every figure.

Quickstart::

    from repro.core import run_pipeline
    result = run_pipeline(rng=0)
    print(result.baseline.privacy.worst_case_mcc)
    for name, point in result.defenses.items():
        print(name, point.summary())
"""

__version__ = "1.0.0"

from . import attacks, claims, core, datasets, defenses, fleet, home, metrics, ml, netpriv, solar, timeseries

__all__ = [
    "attacks",
    "claims",
    "core",
    "datasets",
    "defenses",
    "fleet",
    "home",
    "metrics",
    "ml",
    "netpriv",
    "solar",
    "timeseries",
    "__version__",
]
