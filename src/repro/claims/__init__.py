"""Privacy claims: declarative verdicts over sweep artifacts.

This package turns measurement artifacts into certifications.  A claim
file (TOML/JSON, see :func:`repro.core.claims.load_claims`) states what
an acceptable configuration looks like — "worst-case MCC across every
registered attacker stays <= 0.3 once the dial passes 0.5", "p90
billing error stays under 1%", "the dial is monotone within tolerance
0.05" — and :func:`evaluate_claims` checks those statements against any
mix of ``repro sweep``, ``repro netpriv``, and ``repro stream`` JSON
artifacts (loaded via :mod:`repro.fleet.artifacts`), producing a
:class:`ClaimsReport` with per-claim verdicts, two-way coverage, and
Markdown/JSON certification output.  The ``repro claims`` CLI is a thin
shell over this package; ``docs/CLAIMS.md`` is the operator guide.
"""

from repro.core.claims import (
    Claim,
    ClaimSet,
    ClaimsError,
    Selector,
    Span,
    load_claims,
)
from repro.claims.engine import evaluate_claim, evaluate_claims
from repro.claims.report import (
    EXIT_FAIL,
    EXIT_INCONCLUSIVE,
    EXIT_OK,
    EXIT_USAGE,
    CellCoverage,
    ClaimVerdict,
    ClaimsReport,
)

__all__ = [
    "Claim",
    "ClaimSet",
    "ClaimsError",
    "Selector",
    "Span",
    "load_claims",
    "evaluate_claim",
    "evaluate_claims",
    "CellCoverage",
    "ClaimVerdict",
    "ClaimsReport",
    "EXIT_FAIL",
    "EXIT_INCONCLUSIVE",
    "EXIT_OK",
    "EXIT_USAGE",
]
