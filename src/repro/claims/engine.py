"""Evaluate a claim set against artifacts into a certification report.

The engine is pure bookkeeping over the flattened shapes the rest of
the stack produces: :class:`~repro.core.claims.Claim` objects from
:mod:`repro.core.claims` on one side,
:class:`~repro.fleet.artifacts.Artifact` rows on the other.  For each
claim it resolves the selector to a set of rows, the metric patterns to
concrete metric names per row, and then applies the claim's semantics:

* **threshold** — every resolved (row, metric) value must satisfy
  ``op bound``; one failing check fails the claim and is recorded as a
  violation line naming the cell, metric, value, and bound.
* **monotone** — resolved rows are grouped into dial series per
  (artifact, defense, seed, metric) and each series must be
  non-increasing within ``tolerance`` under the same running-minimum
  rule as :meth:`repro.fleet.frontier.FrontierReport.monotone_violations`.

A claim that resolves to nothing is **inconclusive**, never a silent
pass: "selector matched no cells" when no row has the right
coordinates, "no matched cell carries metric ..." when rows matched but
none exposes the metric, and "no dial series with >= 2 settings" when a
monotone claim cannot see the dial move.  Inconclusive claims surface
in coverage as untested — the report's exit code distinguishes them
from both success and failure.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.claims import CLAIM_OPS, Claim, ClaimSet, resolve_metrics
from repro.fleet.artifacts import Artifact, ArtifactRow

from repro.claims.report import CellCoverage, ClaimVerdict, ClaimsReport

_EXACT_TOL = 1e-9


def _cell_id(artifact: Artifact, row: ArtifactRow) -> str:
    return f"{artifact.source} :: {row.label}"


def _match_rows(
    claim: Claim, artifacts: Sequence[Artifact]
) -> list[tuple[Artifact, ArtifactRow]]:
    return [
        (artifact, row)
        for artifact in artifacts
        for row in artifact.rows
        if claim.where.matches(row.defense, row.setting, row.seed)
    ]


def _eval_threshold(
    claim: Claim, matched: list[tuple[Artifact, ArtifactRow]]
) -> ClaimVerdict:
    compare = CLAIM_OPS[claim.op]
    covered: list[str] = []
    violations: list[str] = []
    checks = 0
    for artifact, row in matched:
        names = resolve_metrics(claim, sorted(row.metrics))
        if not names:
            continue
        covered.append(_cell_id(artifact, row))
        for name in names:
            checks += 1
            value = row.metrics[name]
            if not compare(value, claim.bound):
                violations.append(
                    f"{_cell_id(artifact, row)}: {name} = {value:.6g} "
                    f"violates {claim.op} {claim.bound:g}"
                )
    if not covered:
        reason = (
            "selector matched no cells"
            if not matched
            else "no matched cell carries metric "
            + ", ".join(claim.metrics)
        )
        return ClaimVerdict(claim=claim, verdict="inconclusive", reason=reason)
    return ClaimVerdict(
        claim=claim,
        verdict="fail" if violations else "pass",
        covered=tuple(covered),
        violations=tuple(violations),
        checks=checks,
    )


def _eval_monotone(
    claim: Claim, matched: list[tuple[Artifact, ArtifactRow]]
) -> ClaimVerdict:
    # Series key: (artifact, defense, seed, metric) -> [(setting, value, cell)]
    series: dict[tuple[str, str, int, str], list[tuple[float, float, str]]] = {}
    covered: list[str] = []
    for artifact, row in matched:
        if row.defense is None or row.setting is None or row.seed is None:
            continue  # a coordinate-free cell cannot sit on a dial series
        names = resolve_metrics(claim, sorted(row.metrics))
        if not names:
            continue
        cell = _cell_id(artifact, row)
        covered.append(cell)
        for name in names:
            key = (artifact.source, row.defense, row.seed, name)
            series.setdefault(key, []).append(
                (row.setting, row.metrics[name], cell)
            )
    if not covered:
        reason = (
            "selector matched no cells"
            if not matched
            else "no matched cell carries metric "
            + ", ".join(claim.metrics)
        )
        return ClaimVerdict(claim=claim, verdict="inconclusive", reason=reason)
    violations: list[str] = []
    checks = 0
    seen_series = False
    for (source, defense, seed, metric), pts in sorted(series.items()):
        settings = {s for s, _, _ in pts}
        if len(settings) < 2:
            continue
        seen_series = True
        running_min = float("inf")
        for setting, value, cell in sorted(pts):
            checks += 1
            if value > running_min + claim.tolerance + _EXACT_TOL:
                violations.append(
                    f"{cell}: {metric} = {value:.6g} exceeds running min "
                    f"{running_min:.6g} + tolerance {claim.tolerance:g} "
                    f"(defense {defense}, seed {seed})"
                )
            running_min = min(running_min, value)
    if not seen_series:
        return ClaimVerdict(
            claim=claim,
            verdict="inconclusive",
            reason="no dial series with >= 2 settings",
            covered=tuple(covered),
        )
    return ClaimVerdict(
        claim=claim,
        verdict="fail" if violations else "pass",
        covered=tuple(covered),
        violations=tuple(violations),
        checks=checks,
    )


def evaluate_claim(
    claim: Claim, artifacts: Sequence[Artifact]
) -> ClaimVerdict:
    """Evaluate one claim against the supplied artifacts."""
    matched = _match_rows(claim, artifacts)
    if claim.kind == "threshold":
        return _eval_threshold(claim, matched)
    return _eval_monotone(claim, matched)


def evaluate_claims(
    claim_set: ClaimSet, artifacts: Sequence[Artifact]
) -> ClaimsReport:
    """Evaluate every claim and assemble the certification report.

    Coverage is recorded both ways: each verdict carries the cells that
    tested it, and the report lists every artifact cell with the claim
    ids that constrained it — so "which claims does nothing exercise"
    and "which measurements does nothing certify" are both one lookup.
    """
    artifacts = list(artifacts)
    verdicts = tuple(evaluate_claim(c, artifacts) for c in claim_set.claims)
    by_cell: dict[str, list[str]] = {
        _cell_id(a, row): [] for a in artifacts for row in a.rows
    }
    for verdict in verdicts:
        for cell in verdict.covered:
            by_cell[cell].append(verdict.claim.id)
    coverage = tuple(
        CellCoverage(cell=cell, claim_ids=tuple(ids))
        for cell, ids in by_cell.items()
    )
    summaries = tuple(
        {"source": a.source, "kind": a.kind, "cells": len(a.rows)}
        for a in artifacts
    )
    return ClaimsReport(
        title=claim_set.title,
        verdicts=verdicts,
        coverage=coverage,
        artifacts=summaries,
    )


__all__ = ["evaluate_claim", "evaluate_claims"]
