"""Verdicts, coverage accounting, and the certification report.

The deliverable of a claims run is a :class:`ClaimsReport`: one
:class:`ClaimVerdict` per claim (pass / fail / inconclusive-with-reason),
plus two-way coverage — which artifact cells each claim actually
exercised, and which cells no claim constrains at all.  The report
renders as a terminal table (:meth:`ClaimsReport.format_table`), a JSON
document (:meth:`ClaimsReport.to_json`), and a certification-style
Markdown document (:meth:`ClaimsReport.to_markdown`), and carries the
process exit code the ``repro claims`` CLI returns.

Exit-code contract (mirrors fleet health, with inconclusive split out):

* ``0`` — every claim passed;
* ``1`` — at least one claim failed;
* ``3`` — no failures, but at least one claim was inconclusive
  (untested claims are not certified claims);
* ``2`` is reserved for usage / malformed-input errors and is raised
  by the CLI, never by this report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.claims import Claim

#: Verdict values, in display-severity order.
VERDICTS = ("fail", "inconclusive", "pass")

EXIT_OK = 0
EXIT_FAIL = 1
EXIT_USAGE = 2
EXIT_INCONCLUSIVE = 3


@dataclass(frozen=True)
class ClaimVerdict:
    """One claim's outcome against the supplied evidence.

    ``covered`` lists the cells (``"<source> :: <label>"``) whose
    metrics the claim actually constrained; ``violations`` holds one
    human-readable line per failed check; ``checks`` counts individual
    metric comparisons performed.
    """

    claim: Claim
    verdict: str
    reason: str = ""
    covered: tuple[str, ...] = ()
    violations: tuple[str, ...] = ()
    checks: int = 0

    def __post_init__(self) -> None:
        if self.verdict not in VERDICTS:
            raise ValueError(f"unknown verdict {self.verdict!r}")

    def as_dict(self) -> dict:
        return {
            "id": self.claim.id,
            "title": self.claim.title,
            "statement": self.claim.statement(),
            "verdict": self.verdict,
            "reason": self.reason,
            "checks": self.checks,
            "covered_cells": list(self.covered),
            "violations": list(self.violations),
        }


@dataclass(frozen=True)
class CellCoverage:
    """One artifact cell and the claims that constrained it."""

    cell: str
    claim_ids: tuple[str, ...]

    def as_dict(self) -> dict:
        return {"cell": self.cell, "claims": list(self.claim_ids)}


@dataclass(frozen=True)
class ClaimsReport:
    """Everything a certification run produced, ready to render."""

    title: str
    verdicts: tuple[ClaimVerdict, ...]
    coverage: tuple[CellCoverage, ...]
    artifacts: tuple[dict, ...] = field(default_factory=tuple)

    @property
    def n_pass(self) -> int:
        return sum(1 for v in self.verdicts if v.verdict == "pass")

    @property
    def n_fail(self) -> int:
        return sum(1 for v in self.verdicts if v.verdict == "fail")

    @property
    def n_inconclusive(self) -> int:
        return sum(1 for v in self.verdicts if v.verdict == "inconclusive")

    @property
    def uncovered_claims(self) -> tuple[str, ...]:
        """Claims no artifact cell exercised — gaps in the evidence."""
        return tuple(v.claim.id for v in self.verdicts if not v.covered)

    @property
    def uncovered_cells(self) -> tuple[str, ...]:
        """Cells no claim constrains — gaps in the claim set."""
        return tuple(c.cell for c in self.coverage if not c.claim_ids)

    @property
    def certified(self) -> bool:
        """True only when every claim passed on real coverage."""
        return self.n_fail == 0 and self.n_inconclusive == 0

    @property
    def exit_code(self) -> int:
        if self.n_fail:
            return EXIT_FAIL
        if self.n_inconclusive:
            return EXIT_INCONCLUSIVE
        return EXIT_OK

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "title": self.title,
            "summary": {
                "claims": len(self.verdicts),
                "pass": self.n_pass,
                "fail": self.n_fail,
                "inconclusive": self.n_inconclusive,
                "certified": self.certified,
                "exit_code": self.exit_code,
                "uncovered_claims": list(self.uncovered_claims),
                "uncovered_cells": list(self.uncovered_cells),
            },
            "artifacts": list(self.artifacts),
            "claims": [v.as_dict() for v in self.verdicts],
            "coverage": [c.as_dict() for c in self.coverage],
        }

    def to_json(self, path: str | Path | None = None) -> str:
        doc = json.dumps(self.as_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(doc + "\n")
        return doc

    def format_table(self) -> str:
        """Compact fixed-width verdict table for the terminal."""
        header = f"{'verdict':<13} {'id':<28} statement"
        lines = [header, "-" * len(header)]
        order = {name: i for i, name in enumerate(VERDICTS)}
        for v in sorted(self.verdicts, key=lambda v: order[v.verdict]):
            mark = {"pass": "PASS", "fail": "FAIL", "inconclusive": "INCONCL"}[
                v.verdict
            ]
            tail = v.claim.statement()
            if v.verdict == "inconclusive" and v.reason:
                tail += f"  [{v.reason}]"
            lines.append(f"{mark:<13} {v.claim.id:<28} {tail}")
        lines.append(
            f"{len(self.verdicts)} claims: {self.n_pass} pass, "
            f"{self.n_fail} fail, {self.n_inconclusive} inconclusive; "
            f"{len(self.uncovered_cells)} uncovered cells"
        )
        return "\n".join(lines)

    def to_markdown(self, path: str | Path | None = None) -> str:
        """Render the certification report as a Markdown document."""
        badge = "CERTIFIED" if self.certified else (
            "NOT CERTIFIED" if self.n_fail else "INCOMPLETE"
        )
        out = [
            f"# Certification report — {self.title}",
            "",
            f"**Status: {badge}** — {self.n_pass} pass, {self.n_fail} fail, "
            f"{self.n_inconclusive} inconclusive "
            f"(exit code {self.exit_code}).",
            "",
            "## Evidence",
            "",
        ]
        if self.artifacts:
            out.append("| artifact | kind | cells |")
            out.append("| --- | --- | ---: |")
            for art in self.artifacts:
                out.append(
                    f"| `{art.get('source', '?')}` | {art.get('kind', '?')} "
                    f"| {art.get('cells', '?')} |"
                )
        else:
            out.append("_No artifacts supplied._")
        out += ["", "## Verdicts", ""]
        out.append("| verdict | claim | statement | cells | detail |")
        out.append("| --- | --- | --- | ---: | --- |")
        order = {name: i for i, name in enumerate(VERDICTS)}
        for v in sorted(self.verdicts, key=lambda v: order[v.verdict]):
            detail = v.reason if v.verdict == "inconclusive" else (
                f"{len(v.violations)} violation(s)" if v.violations
                else f"{v.checks} checks ok"
            )
            out.append(
                f"| **{v.verdict.upper()}** | `{v.claim.id}` "
                f"| `{v.claim.statement()}` | {len(v.covered)} | {detail} |"
            )
        failing = [v for v in self.verdicts if v.violations]
        if failing:
            out += ["", "## Violations", ""]
            for v in failing:
                out.append(f"- `{v.claim.id}` — {v.claim.title}")
                for line in v.violations:
                    out.append(f"  - {line}")
        out += ["", "## Coverage", ""]
        if self.uncovered_claims:
            out.append(
                "Claims with **no covering cell** (the grid never "
                "exercised them): "
                + ", ".join(f"`{c}`" for c in self.uncovered_claims)
            )
        else:
            out.append("Every claim was exercised by at least one cell.")
        out.append("")
        if self.uncovered_cells:
            out.append(
                "Cells **no claim constrains** (measured but uncertified): "
                + ", ".join(f"`{c}`" for c in self.uncovered_cells)
            )
        else:
            out.append("Every artifact cell is constrained by some claim.")
        out.append("")
        doc = "\n".join(out)
        if path is not None:
            Path(path).write_text(doc)
        return doc


__all__ = [
    "EXIT_FAIL",
    "EXIT_INCONCLUSIVE",
    "EXIT_OK",
    "EXIT_USAGE",
    "CellCoverage",
    "ClaimVerdict",
    "ClaimsReport",
    "VERDICTS",
]
