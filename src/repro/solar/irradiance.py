"""Solar geometry: declination, equation of time, sun position, day length.

This is the astronomy that makes SunSpot (Sec. II-B) work: sunrise and
sunset times at a site are a deterministic function of its latitude and
longitude (plus the date), so a generation trace that reveals when panels
start and stop producing reveals where they are.  The same formulas are used
by the PV simulator (forward direction) and the SunSpot attack (inverse
direction), which is legitimate — they are public astronomy, not shared
simulator state.

Conventions: simulation epoch day 0 is January 1st; trace timestamps are
UTC seconds since the epoch; solar formulas use the day-of-year.  The
Spencer (1971) Fourier expansions are used for declination and the equation
of time.
"""

from __future__ import annotations

import math

import numpy as np

from ..timeseries import SECONDS_PER_DAY, SECONDS_PER_HOUR

SOLAR_CONSTANT_W_M2 = 1361.0


def day_of_year(time_s: np.ndarray | float) -> np.ndarray:
    """Day-of-year (1-based, wrapping after 365) for epoch timestamps."""
    day_index = np.floor(np.asarray(time_s, dtype=float) / SECONDS_PER_DAY)
    return (day_index % 365) + 1


def _day_angle(n: np.ndarray) -> np.ndarray:
    return 2.0 * np.pi * (n - 1) / 365.0


def declination_rad(n: np.ndarray | float) -> np.ndarray:
    """Solar declination (radians) by Spencer's Fourier series."""
    g = _day_angle(np.asarray(n, dtype=float))
    return (
        0.006918
        - 0.399912 * np.cos(g)
        + 0.070257 * np.sin(g)
        - 0.006758 * np.cos(2 * g)
        + 0.000907 * np.sin(2 * g)
        - 0.002697 * np.cos(3 * g)
        + 0.00148 * np.sin(3 * g)
    )


def equation_of_time_minutes(n: np.ndarray | float) -> np.ndarray:
    """Equation of time (minutes, apparent minus mean solar time)."""
    g = _day_angle(np.asarray(n, dtype=float))
    return 229.18 * (
        0.000075
        + 0.001868 * np.cos(g)
        - 0.032077 * np.sin(g)
        - 0.014615 * np.cos(2 * g)
        - 0.040849 * np.sin(2 * g)
    )


def solar_time_hours(time_s: np.ndarray, lon_deg: float) -> np.ndarray:
    """Apparent solar time (hours) at longitude ``lon_deg`` for UTC times."""
    time_s = np.asarray(time_s, dtype=float)
    utc_hours = (time_s % SECONDS_PER_DAY) / SECONDS_PER_HOUR
    n = day_of_year(time_s)
    eot_h = equation_of_time_minutes(n) / 60.0
    return (utc_hours + lon_deg / 15.0 + eot_h) % 24.0


def hour_angle_rad(time_s: np.ndarray, lon_deg: float) -> np.ndarray:
    """Hour angle (radians): zero at solar noon, positive in the afternoon."""
    return (solar_time_hours(time_s, lon_deg) - 12.0) * np.pi / 12.0


def sun_position(
    time_s: np.ndarray, lat_deg: float, lon_deg: float
) -> tuple[np.ndarray, np.ndarray]:
    """Sun (elevation, azimuth) in radians at the given UTC times.

    Azimuth is measured from north, clockwise (east = pi/2).
    """
    time_s = np.asarray(time_s, dtype=float)
    lat = math.radians(lat_deg)
    dec = declination_rad(day_of_year(time_s))
    ha = hour_angle_rad(time_s, lon_deg)
    sin_el = np.sin(lat) * np.sin(dec) + np.cos(lat) * np.cos(dec) * np.cos(ha)
    sin_el = np.clip(sin_el, -1.0, 1.0)
    el = np.arcsin(sin_el)
    cos_el = np.cos(el)
    with np.errstate(divide="ignore", invalid="ignore"):
        cos_az = (np.sin(dec) - np.sin(lat) * sin_el) / np.maximum(
            np.cos(lat) * cos_el, 1e-9
        )
    az = np.arccos(np.clip(cos_az, -1.0, 1.0))
    az = np.where(ha > 0, 2.0 * np.pi - az, az)  # afternoon sun is in the west
    return el, az


def sunrise_sunset_utc_hours(
    day_index: int, lat_deg: float, lon_deg: float
) -> tuple[float, float] | None:
    """Sunrise and sunset (UTC hours in the site's epoch day) or None.

    Returns None for polar day/night.  Times may fall outside [0, 24) for
    longitudes far from the prime meridian; callers compare them against the
    same convention from observed traces.
    """
    n = float(day_index % 365 + 1)
    lat = math.radians(lat_deg)
    dec = float(declination_rad(n))
    cos_omega = -math.tan(lat) * math.tan(dec)
    if cos_omega < -1.0 or cos_omega > 1.0:
        return None
    omega0 = math.acos(cos_omega)  # half day length in radians
    eot_h = float(equation_of_time_minutes(n)) / 60.0
    noon_utc = 12.0 - lon_deg / 15.0 - eot_h
    half_day_h = omega0 * 12.0 / math.pi
    return noon_utc - half_day_h, noon_utc + half_day_h


def day_length_hours(day_index: int, lat_deg: float) -> float | None:
    """Length of daylight at a latitude (independent of longitude)."""
    result = sunrise_sunset_utc_hours(day_index, lat_deg, 0.0)
    if result is None:
        return None
    sunrise, sunset = result
    return sunset - sunrise


def clearsky_ghi_w_m2(elevation_rad: np.ndarray) -> np.ndarray:
    """Clear-sky global horizontal irradiance from sun elevation.

    The Haurwitz-style empirical model: GHI = 1098 sin(el) exp(-0.057/sin(el)),
    a good continental average without needing an atmosphere simulation.
    """
    sin_el = np.maximum(np.sin(np.asarray(elevation_rad, dtype=float)), 0.0)
    with np.errstate(divide="ignore", over="ignore"):
        ghi = 1098.0 * sin_el * np.exp(-0.057 / np.maximum(sin_el, 1e-6))
    return np.where(sin_el > 0.0, ghi, 0.0)
