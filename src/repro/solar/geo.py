"""Geodesy helpers: sites, distances, and search grids."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class LatLon:
    """A point on the globe in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude {self.lat} outside [-90, 90]")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude {self.lon} outside [-180, 180]")


def haversine_km(a: LatLon, b: LatLon) -> float:
    """Great-circle distance between two points in kilometres."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def grid_around(
    center: LatLon, half_span_deg: float, n_per_side: int
) -> list[LatLon]:
    """A square lat/lon grid centred on ``center`` (clipped to valid range)."""
    if half_span_deg <= 0 or n_per_side < 2:
        raise ValueError("need positive span and at least 2 points per side")
    lats = np.linspace(center.lat - half_span_deg, center.lat + half_span_deg, n_per_side)
    lons = np.linspace(center.lon - half_span_deg, center.lon + half_span_deg, n_per_side)
    points = []
    for lat in lats:
        for lon in lons:
            points.append(
                LatLon(float(np.clip(lat, -89.9, 89.9)), float(np.clip(lon, -179.9, 179.9)))
            )
    return points
