"""PV array simulation: the generation traces solar IoT monitors upload.

Produces per-site generation with the properties the localization attacks
depend on: production gated by the sun being above the (possibly
obstructed) horizon, a plane-of-array geometry factor that depends on panel
tilt/azimuth, cloud modulation from the shared :class:`WeatherField`, and
monitor noise.  Sites with skewed panel azimuth or horizon obstructions are
the realistic "hard" sites that make SunSpot's error spike for a few
sites in Fig. 5 while Weatherman stays accurate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..timeseries import PowerTrace, SECONDS_PER_DAY
from .geo import LatLon
from .irradiance import clearsky_ghi_w_m2, sun_position
from .weather import WeatherField


@dataclass(frozen=True)
class PVArrayConfig:
    """A rooftop PV installation.

    ``azimuth_deg`` follows compass convention (180 = due south, the
    northern-hemisphere optimum).  ``horizon_east_deg`` / ``west`` model
    obstructions (trees, hills, neighbouring roofs): the direct beam is
    blocked until the sun clears that elevation on the respective side.
    """

    capacity_w: float = 6000.0
    tilt_deg: float = 30.0
    azimuth_deg: float = 180.0
    derate: float = 0.82
    horizon_east_deg: float = 0.0
    horizon_west_deg: float = 0.0
    noise_w: float = 15.0
    diffuse_fraction: float = 0.18

    def __post_init__(self) -> None:
        if self.capacity_w <= 0:
            raise ValueError("capacity_w must be positive")
        if not 0.0 <= self.tilt_deg <= 90.0:
            raise ValueError("tilt must be in [0, 90] degrees")
        if not 0.0 < self.derate <= 1.0:
            raise ValueError("derate must be in (0, 1]")
        if self.horizon_east_deg < 0 or self.horizon_west_deg < 0:
            raise ValueError("horizon obstructions cannot be negative")
        if not 0.0 <= self.diffuse_fraction <= 1.0:
            raise ValueError("diffuse_fraction must be in [0, 1]")


@dataclass(frozen=True)
class SolarSite:
    """A monitored solar installation at a location."""

    site_id: str
    location: LatLon
    array: PVArrayConfig = field(default_factory=PVArrayConfig)


def _panel_normal(tilt_deg: float, azimuth_deg: float) -> np.ndarray:
    tilt = math.radians(tilt_deg)
    az = math.radians(azimuth_deg)
    # ENU components of the panel normal
    return np.asarray(
        [math.sin(tilt) * math.sin(az), math.sin(tilt) * math.cos(az), math.cos(tilt)]
    )


def simulate_generation(
    site: SolarSite,
    n_days: int,
    period_s: float = 60.0,
    weather: WeatherField | None = None,
    rng: np.random.Generator | int | None = None,
    start_day: int = 0,
) -> PowerTrace:
    """Simulate the site's AC generation trace.

    Physics: clear-sky GHI from sun elevation, split into direct + diffuse;
    the direct beam is projected onto the panel plane and blocked below the
    local horizon; the whole sky is attenuated by cloud transmittance; the
    result is scaled by capacity and system derate, clipped at capacity
    (inverter limit), and read out with monitor noise.
    """
    if n_days < 1:
        raise ValueError("n_days must be >= 1")
    if period_s <= 0 or SECONDS_PER_DAY % period_s:
        raise ValueError("period_s must divide one day")
    rng = np.random.default_rng(rng)
    cfg = site.array
    n = int(n_days * SECONDS_PER_DAY / period_s)
    start_s = start_day * SECONDS_PER_DAY
    times = start_s + np.arange(n) * period_s

    elevation, azimuth = sun_position(times, site.location.lat, site.location.lon)
    ghi = clearsky_ghi_w_m2(elevation)
    direct = (1.0 - cfg.diffuse_fraction) * ghi
    diffuse = cfg.diffuse_fraction * ghi

    # plane-of-array projection of the direct beam
    sun_vec = np.stack(
        [
            np.cos(elevation) * np.sin(azimuth),
            np.cos(elevation) * np.cos(azimuth),
            np.sin(elevation),
        ],
        axis=1,
    )
    normal = _panel_normal(cfg.tilt_deg, cfg.azimuth_deg)
    poa_factor = np.maximum(sun_vec @ normal, 0.0)
    # normalize so a sun-tracking reference would be 1: divide by sin(el)
    with np.errstate(divide="ignore", invalid="ignore"):
        beam_on_panel = np.where(
            elevation > 0.0, direct * poa_factor / np.maximum(np.sin(elevation), 0.05), 0.0
        )

    # horizon obstruction blocks the direct beam (diffuse survives)
    elevation_deg = np.degrees(elevation)
    in_east = np.degrees(azimuth) < 180.0
    blocked = np.where(
        in_east,
        elevation_deg < cfg.horizon_east_deg,
        elevation_deg < cfg.horizon_west_deg,
    )
    beam_on_panel = np.where(blocked, 0.0, beam_on_panel)

    irradiance = beam_on_panel + diffuse
    if weather is not None:
        irradiance = irradiance * weather.transmittance(site.location, times)

    # reference irradiance 1000 W/m^2 defines nameplate capacity
    power = cfg.capacity_w * cfg.derate * irradiance / 1000.0
    power = np.minimum(power, cfg.capacity_w)
    power = np.where(elevation > 0.0, power, 0.0)
    if cfg.noise_w > 0:
        power = power + rng.normal(0.0, cfg.noise_w, n) * (power > 0)
    return PowerTrace(np.maximum(power, 0.0), period_s, start_s, "W")


def fig5_sites(rng: np.random.Generator | int | None = None) -> list[SolarSite]:
    """Ten solar sites "in different states" for the Fig. 5 experiment.

    Most are well-behaved south-facing arrays; a few have skewed azimuths or
    horizon obstructions, reproducing the sites where SunSpot's solar
    signature is biased (its Fig. 5 outliers) while Weatherman still
    localizes them.
    """
    rng = np.random.default_rng(rng if rng is not None else 5)
    locations = [
        LatLon(42.39, -72.53),   # Massachusetts
        LatLon(40.01, -105.27),  # Colorado
        LatLon(30.27, -97.74),   # Texas
        LatLon(47.61, -122.33),  # Washington
        LatLon(33.45, -112.07),  # Arizona
        LatLon(41.88, -87.63),   # Illinois
        LatLon(35.78, -78.64),   # North Carolina
        LatLon(44.98, -93.27),   # Minnesota
        LatLon(36.17, -115.14),  # Nevada
        LatLon(28.54, -81.38),   # Florida
    ]
    sites = []
    for i, loc in enumerate(locations):
        # jitter so sites do not sit exactly on weather-station lattice points
        loc = LatLon(
            loc.lat + float(rng.uniform(-0.3, 0.3)),
            loc.lon + float(rng.uniform(-0.3, 0.3)),
        )
        if i in (3, 7):  # the hard sites: skewed panels and blocked horizons
            array = PVArrayConfig(
                capacity_w=float(rng.uniform(4000, 9000)),
                azimuth_deg=float(rng.choice([115.0, 245.0])),
                tilt_deg=35.0,
                horizon_east_deg=float(rng.uniform(8.0, 14.0)),
                horizon_west_deg=float(rng.uniform(0.0, 4.0)),
            )
        else:
            array = PVArrayConfig(
                capacity_w=float(rng.uniform(4000, 9000)),
                azimuth_deg=float(rng.uniform(172.0, 188.0)),
                tilt_deg=float(rng.uniform(20.0, 35.0)),
            )
        sites.append(SolarSite(f"site-{i + 1:02d}", loc, array))
    return sites
