"""Solar substrate and location-privacy attacks.

Forward direction: astronomically correct PV generation under a coherent
synthetic weather field.  Inverse direction: the SunSpot (solar signature)
and Weatherman (weather signature) localization attacks of Fig. 5 and the
SunDance net-meter disaggregation of Sec. II-B.
"""

from .disaggregation import DisaggregationEstimate, SunDance
from .generation import PVArrayConfig, SolarSite, fig5_sites, simulate_generation
from .geo import EARTH_RADIUS_KM, LatLon, grid_around, haversine_km
from .irradiance import (
    clearsky_ghi_w_m2,
    day_length_hours,
    day_of_year,
    declination_rad,
    equation_of_time_minutes,
    solar_time_hours,
    sun_position,
    sunrise_sunset_utc_hours,
)
from .sunspot import (
    DayObservation,
    LocalizationResult,
    SunSpot,
    extract_day_observations,
    predicted_crossings,
)
from .weather import (
    Octave,
    WeatherConfig,
    WeatherField,
    WeatherStation,
    WeatherStationDB,
)
from .weatherman import CloudProxy, Weatherman, cloud_proxy_from_generation

__all__ = [
    "DisaggregationEstimate",
    "SunDance",
    "PVArrayConfig",
    "SolarSite",
    "fig5_sites",
    "simulate_generation",
    "EARTH_RADIUS_KM",
    "LatLon",
    "grid_around",
    "haversine_km",
    "clearsky_ghi_w_m2",
    "day_length_hours",
    "day_of_year",
    "declination_rad",
    "equation_of_time_minutes",
    "solar_time_hours",
    "sun_position",
    "sunrise_sunset_utc_hours",
    "DayObservation",
    "LocalizationResult",
    "SunSpot",
    "extract_day_observations",
    "predicted_crossings",
    "Octave",
    "WeatherConfig",
    "WeatherField",
    "WeatherStation",
    "WeatherStationDB",
    "CloudProxy",
    "Weatherman",
    "cloud_proxy_from_generation",
]
