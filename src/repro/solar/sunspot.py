"""SunSpot: localizing a solar array from its generation trace alone.

Reproduces the attack of Chen et al. (BuildSys'16, ref. [4]) described in
Sec. II-B: the times at which panels start and stop generating encode
sunrise and sunset, which are a deterministic function of latitude and
longitude.  The attack extracts apparent sunrise/sunset per day from the
trace and then searches for the (lat, lon) whose astronomical
sunrise/sunset best matches them across many days.

Panels do not produce exactly at astronomical sunrise — there is a turn-on
threshold and low-sun attenuation — so the fit includes a nuisance
parameter ``el0``: the sun elevation at which production effectively starts.
Sites with skewed panel azimuth or obstructed horizons violate the
east/west symmetry this model assumes, which biases the estimate; those are
the high-error sites in Fig. 5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..timeseries import PowerTrace, SECONDS_PER_DAY, SECONDS_PER_HOUR
from .geo import LatLon, haversine_km
from .irradiance import declination_rad, equation_of_time_minutes


@dataclass(frozen=True)
class DayObservation:
    """Apparent production start/end (UTC hours) for one trace day."""

    day_index: int
    start_utc_h: float
    end_utc_h: float


@dataclass(frozen=True)
class LocalizationResult:
    """Outcome of a localization attack."""

    estimate: LatLon
    observations_used: int
    cost: float

    def error_km(self, truth: LatLon) -> float:
        return haversine_km(self.estimate, truth)


def extract_day_observations(
    generation: PowerTrace,
    threshold_fraction: float = 0.005,
    min_daily_peak_fraction: float = 0.25,
    sustain_samples: int = 5,
) -> list[DayObservation]:
    """Apparent sunrise/sunset per day from a generation trace.

    A day's production start/end are the first/last runs of at least
    ``sustain_samples`` consecutive samples exceeding ``threshold_fraction``
    of the *trace-wide* peak.  Two details matter for accuracy:

    * the threshold must be global, not per-day — daily peaks grow from
      winter to summer, so a per-day threshold corresponds to a seasonally
      drifting turn-on elevation, which biases the latitude fit;
    * the threshold must be *low* (just above monitor noise, hence the
      sustained-run requirement).  Near the horizon a south-facing panel
      sees only diffuse light in summer (the sun rises behind the panel
      plane) but some direct beam in winter; a high threshold therefore
      compresses apparent summer day length by hours.  At a low threshold
      the crossing is diffuse-dominated year-round, and diffuse irradiance
      depends only on sun elevation.

    Heavily overcast days (peak below ``min_daily_peak_fraction`` of the
    trace-wide peak) are discarded — their apparent sunrise says more than
    clouds than astronomy.

    Days are sliced on *local solar* boundaries, not UTC ones: for sites far
    from the prime meridian the solar day straddles the UTC date line, so a
    UTC-day slice would wrap production around midnight.  The local offset
    is estimated from the trace itself (the circular mean of
    production-weighted time of day approximates solar noon); reported
    crossing hours keep the UTC convention and may lie outside [0, 24),
    matching :func:`predicted_crossings`.
    """
    if not 0.0 < threshold_fraction < 1.0:
        raise ValueError("threshold_fraction must be in (0, 1)")
    trace_peak = generation.max()
    if trace_peak <= 0:
        return []

    # coarse solar-noon estimate (UTC hours) via circular mean
    hours = generation.hours_of_day()
    angles = hours / 24.0 * 2.0 * np.pi
    weights = generation.values
    noon_angle = math.atan2(
        float((weights * np.sin(angles)).sum()),
        float((weights * np.cos(angles)).sum()),
    )
    noon_utc_h = (noon_angle / (2.0 * np.pi) * 24.0) % 24.0

    period = generation.period_s
    samples_per_day = int(round(SECONDS_PER_DAY / period))
    observations: list[DayObservation] = []
    first_day = int(generation.start_s // SECONDS_PER_DAY)
    window_offset_s = (noon_utc_h - 12.0) * SECONDS_PER_HOUR
    for day in range(first_day, first_day + generation.num_days() + 1):
        w0 = day * SECONDS_PER_DAY + window_offset_s
        i0 = int(math.ceil((w0 - generation.start_s) / period))
        i1 = i0 + samples_per_day
        if i0 < 0 or i1 > len(generation):
            continue  # window not fully covered by the trace
        values = generation.values[i0:i1]
        peak = values.max()
        if peak < min_daily_peak_fraction * trace_peak:
            continue
        above = values > threshold_fraction * trace_peak
        sustained = _sustained_runs(above, sustain_samples)
        idx = np.flatnonzero(sustained)
        if len(idx) < 10:
            continue
        base_s = generation.start_s + i0 * period - day * SECONDS_PER_DAY
        start_h = (base_s + idx[0] * period) / SECONDS_PER_HOUR
        end_h = (base_s + idx[-1] * period) / SECONDS_PER_HOUR
        observations.append(DayObservation(day, float(start_h), float(end_h)))
    return observations


def envelope_observations(
    observations: list[DayObservation], window_days: int = 10
) -> list[DayObservation]:
    """Collapse per-day observations to their clear-sky envelope.

    Clouds can only *delay* the apparent production start and *advance* the
    apparent end — never the reverse — so within a window of nearby days
    (over which astronomy changes little) the day with the *longest*
    apparent production span is the least cloud-biased one.  Keeping that
    single day (with its own day index, so the start/end pair stays
    astronomically consistent) de-biases the fit on realistically cloudy
    traces.
    """
    if window_days < 1:
        raise ValueError("window_days must be >= 1")
    if not observations:
        return []
    out: list[DayObservation] = []
    first = observations[0].day_index
    by_window: dict[int, list[DayObservation]] = {}
    for obs in observations:
        by_window.setdefault((obs.day_index - first) // window_days, []).append(obs)
    for group in by_window.values():
        out.append(max(group, key=lambda o: o.end_utc_h - o.start_utc_h))
    out.sort(key=lambda o: o.day_index)
    return out


def envelope_edge_observations(
    observations: list[DayObservation], window_days: int = 10
) -> tuple[list[tuple[int, float]], list[tuple[int, float]]]:
    """Per-window clear-sky *edges*: earliest rise and latest set separately.

    Clouds can only delay the apparent rise and advance the apparent set,
    and a window's clearest dawn and clearest dusk usually fall on
    *different* days.  Since the location fit scores rise and set residuals
    independently, each edge can keep its own day index (staying
    astronomically consistent) — capturing a clean dawn even in windows
    with no single fully clear day.  Returns ``(rise_obs, set_obs)`` as
    lists of ``(day_index, utc_hour)``.
    """
    if window_days < 1:
        raise ValueError("window_days must be >= 1")
    if not observations:
        return [], []
    first = observations[0].day_index
    by_window: dict[int, list[DayObservation]] = {}
    for obs in observations:
        by_window.setdefault((obs.day_index - first) // window_days, []).append(obs)
    rises: list[tuple[int, float]] = []
    sets: list[tuple[int, float]] = []
    for group in by_window.values():
        earliest = min(group, key=lambda o: o.start_utc_h)
        latest = max(group, key=lambda o: o.end_utc_h)
        rises.append((earliest.day_index, earliest.start_utc_h))
        sets.append((latest.day_index, latest.end_utc_h))
    rises.sort()
    sets.sort()
    return rises, sets


def _sustained_runs(mask: np.ndarray, min_run: int) -> np.ndarray:
    """True only where ``mask`` holds for at least ``min_run`` consecutive
    samples (suppresses single-sample noise spikes at dawn/dusk)."""
    if min_run <= 1:
        return mask
    out = np.zeros_like(mask)
    run_start = None
    for i, value in enumerate(mask):
        if value and run_start is None:
            run_start = i
        elif not value and run_start is not None:
            if i - run_start >= min_run:
                out[run_start:i] = True
            run_start = None
    if run_start is not None and len(mask) - run_start >= min_run:
        out[run_start:] = True
    return out


def predicted_crossings(
    day_index: np.ndarray,
    lat_deg: float,
    lon_deg: float,
    el0_deg: float | np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Predicted UTC hours at which the sun crosses elevation ``el0_deg``.

    ``el0_deg`` may be per-day (an array aligned with ``day_index``) to
    model a seasonally varying production threshold.  Vectorized over days;
    entries are NaN where the sun never reaches el0 (polar night at that
    threshold).
    """
    n = (np.asarray(day_index) % 365) + 1
    lat = math.radians(lat_deg)
    dec = declination_rad(n)
    el0 = np.radians(np.asarray(el0_deg, dtype=float))
    cos_omega = (np.sin(el0) - math.sin(lat) * np.sin(dec)) / (
        math.cos(lat) * np.cos(dec)
    )
    omega = np.arccos(np.clip(cos_omega, -1.0, 1.0))
    invalid = (cos_omega < -1.0) | (cos_omega > 1.0)
    eot_h = equation_of_time_minutes(n) / 60.0
    noon_utc = 12.0 - lon_deg / 15.0 - eot_h
    half_day = omega * 12.0 / np.pi
    rise = np.where(invalid, np.nan, noon_utc - half_day)
    sset = np.where(invalid, np.nan, noon_utc + half_day)
    return rise, sset


def predicted_crossings_physical(
    day_index: np.ndarray,
    lat_deg: float,
    lon_deg: float,
    threshold_c: float,
    beam_boost: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Predicted production start/end under a physical dawn model.

    Production starts when the plane-of-array irradiance of a south-facing
    panel crosses a threshold:

        GHI(el) * (1 + B * cot(el) * max(0, -cos(az_sun))) = C

    where ``C`` (``threshold_c``, in W/m^2-equivalent units) encodes the
    monitor's turn-on threshold relative to system size and ``B``
    (``beam_boost``) the direct-beam boost a tilted south-facing panel
    receives when the sun rises south of east (winter).  This captures why
    the effective turn-on *elevation* is higher in summer (diffuse-only
    dawn) than in winter — the physics a fixed-elevation model misses.
    The crossing is solved by bisection on the hour angle, vectorized over
    days.  Returns (rise, set) UTC hours; NaN where no crossing exists.
    """
    n = (np.asarray(day_index) % 365) + 1
    lat = math.radians(lat_deg)
    dec = declination_rad(n)
    sin_lat, cos_lat = math.sin(lat), math.cos(lat)
    sin_dec, cos_dec = np.sin(dec), np.cos(dec)

    def proxy(omega: np.ndarray) -> np.ndarray:
        """Plane-of-array proxy at hour angle ``omega`` (morning side)."""
        sin_el = sin_lat * sin_dec + cos_lat * cos_dec * np.cos(omega)
        sin_el = np.clip(sin_el, -1.0, 1.0)
        el = np.arcsin(sin_el)
        cos_el = np.cos(el)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            ghi = 1098.0 * np.maximum(sin_el, 0.0) * np.exp(
                -0.057 / np.maximum(sin_el, 1e-6)
            )
            cos_az = (sin_dec - sin_lat * sin_el) / np.maximum(cos_lat * cos_el, 1e-9)
            cos_az = np.clip(cos_az, -1.0, 1.0)
            cot_el = cos_el / np.maximum(sin_el, 1e-6)
            boost = 1.0 + beam_boost * cot_el * np.maximum(0.0, -cos_az)
        return np.where(sin_el > 0.0, ghi * boost, 0.0)

    # bracket: horizon hour angle (el = 0) down to el = 15 degrees
    cos_w_hor = np.clip(-np.tan(lat) * np.tan(dec), -1.0, 1.0)
    w_hor = np.arccos(cos_w_hor)
    el_hi = math.radians(15.0)
    cos_w_hi = (math.sin(el_hi) - sin_lat * sin_dec) / (cos_lat * cos_dec)
    w_hi = np.arccos(np.clip(cos_w_hi, -1.0, 1.0))
    invalid = (cos_w_hi > 1.0) | (cos_w_hi < -1.0) | (proxy(w_hi) < threshold_c)

    lo, hi = w_hi.copy(), w_hor.copy()  # proxy(lo) >= C >= proxy(hi)
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        above = proxy(mid) >= threshold_c
        lo = np.where(above, mid, lo)
        hi = np.where(above, hi, mid)
    omega_c = 0.5 * (lo + hi)

    eot_h = equation_of_time_minutes(n) / 60.0
    noon_utc = 12.0 - lon_deg / 15.0 - eot_h
    half = omega_c * 12.0 / np.pi
    rise = np.where(invalid, np.nan, noon_utc - half)
    sset = np.where(invalid, np.nan, noon_utc + half)
    return rise, sset


class SunSpot:
    """The SunSpot localization attack.

    Parameters
    ----------
    search_center / search_half_span_deg:
        Initial search region (defaults cover the continental US).
    refine_levels:
        Hierarchical grid-search depth; each level shrinks the span 3.3x,
        so 5 levels from 25 degrees resolves to ~0.03 degrees (~3 km),
        after which a continuous Nelder-Mead polish takes over.
    threshold_candidates / beam_boost_candidates:
        Grids for the dawn-model nuisance parameters of
        :func:`predicted_crossings_physical`.
    envelope_window_days:
        Days per clearest-day selection window (see
        :func:`envelope_observations`).
    """

    def __init__(
        self,
        search_center: LatLon = LatLon(38.0, -96.0),
        search_half_span_deg: float = 30.0,
        grid_per_side: int = 9,
        refine_levels: int = 4,
        threshold_candidates: tuple[float, ...] = (5.0, 12.0, 25.0, 50.0),
        beam_boost_candidates: tuple[float, ...] = (0.0, 0.4, 0.8, 1.2, 1.6),
        envelope_window_days: int = 10,
    ) -> None:
        if refine_levels < 1 or grid_per_side < 3:
            raise ValueError("need >=1 refine level and >=3 grid points per side")
        self.search_center = search_center
        self.search_half_span_deg = search_half_span_deg
        self.grid_per_side = grid_per_side
        self.refine_levels = refine_levels
        self.threshold_candidates = threshold_candidates
        self.beam_boost_candidates = beam_boost_candidates
        self.envelope_window_days = envelope_window_days

    @staticmethod
    def _cost(
        edge_observations: tuple[list[tuple[int, float]], list[tuple[int, float]]],
        lat: float,
        lon: float,
        threshold_c: float,
        beam_boost: float,
    ) -> float:
        rise_obs, set_obs = edge_observations
        loss = 0.0
        # Clouds are one-sided — they can only delay the observed start and
        # advance the observed end — so residuals are scored with a pinball
        # (quantile) loss that fits the clear-sky envelope rather than the
        # cloud-shifted bulk.
        q = 0.25
        for obs, side in ((rise_obs, 0), (set_obs, 1)):
            days = np.asarray([d for d, _ in obs])
            hours = np.asarray([h for _, h in obs])
            rise, sset = predicted_crossings_physical(
                days, lat, lon, threshold_c, beam_boost
            )
            predicted = rise if side == 0 else sset
            valid = ~np.isnan(predicted)
            if valid.sum() < max(3, len(days) // 2):
                return float("inf")
            if side == 0:
                resid = hours[valid] - predicted[valid]  # >= 0 when cloud-free
            else:
                resid = predicted[valid] - hours[valid]  # >= 0 when cloud-free
            loss += float(np.where(resid >= 0.0, q * resid, (1.0 - q) * -resid).mean())
        return loss

    def localize(self, generation: PowerTrace) -> LocalizationResult:
        """Run the attack on a generation trace."""
        daily = extract_day_observations(generation)
        observations = envelope_edge_observations(daily, self.envelope_window_days)
        if min(len(observations[0]), len(observations[1])) < 5:
            raise ValueError(
                f"only {len(observations[0])} usable windows; need at least 5"
            )
        box = self.search_half_span_deg
        lat_lo, lat_hi = self.search_center.lat - box, self.search_center.lat + box
        lon_lo, lon_hi = self.search_center.lon - box, self.search_center.lon + box
        center = self.search_center
        half_span = self.search_half_span_deg
        best = (float("inf"), center.lat, center.lon, self.threshold_candidates[0], 0.0)
        for _level in range(self.refine_levels):
            lats = np.linspace(center.lat - half_span, center.lat + half_span, self.grid_per_side)
            lons = np.linspace(center.lon - half_span, center.lon + half_span, self.grid_per_side)
            lats = np.clip(lats, max(lat_lo, -66.0), min(lat_hi, 66.0))
            lons = np.clip(lons, max(lon_lo, -179.9), min(lon_hi, 179.9))
            for lat in lats:
                for lon in lons:
                    for c in self.threshold_candidates:
                        for b in self.beam_boost_candidates:
                            cost = self._cost(observations, float(lat), float(lon), c, b)
                            if cost < best[0]:
                                best = (cost, float(lat), float(lon), c, b)
            center = LatLon(best[1], best[2])
            half_span /= 3.3
        polished = self._polish(observations, best)
        return LocalizationResult(
            estimate=LatLon(polished[1], polished[2]),
            observations_used=len(observations[0]),
            cost=polished[0],
        )

    def _polish(
        self,
        observations: tuple[list[tuple[int, float]], list[tuple[int, float]]],
        best: tuple[float, float, float, float, float],
    ) -> tuple[float, float, float]:
        """Continuous refinement of (lat, lon, C, B) around the grid optimum."""
        from scipy.optimize import minimize

        def objective(theta: np.ndarray) -> float:
            lat, lon, c, b = theta
            if not (-66.0 <= lat <= 66.0) or not (-180.0 <= lon <= 180.0):
                return 1e6
            if c <= 0.5 or b < 0.0:
                return 1e6
            return self._cost(observations, lat, lon, c, b)

        result = minimize(
            objective,
            x0=np.asarray([best[1], best[2], best[3], best[4]]),
            method="Nelder-Mead",
            options={"xatol": 1e-4, "fatol": 1e-10, "maxiter": 3000},
        )
        if result.fun < best[0]:
            return (float(result.fun), float(result.x[0]), float(result.x[1]))
        return best[:3]
