"""Synthetic continent-scale weather: a smooth cloud-cover field.

Weatherman (Sec. II-B, ref. [5]) localizes a solar array by correlating
dips in its generation with cloud cover at candidate locations, using
publicly available weather data.  For that attack to be reproducible we
need a weather process that is (i) *spatially coherent* — nearby places see
similar skies, so correlation decays smoothly with distance, (ii) has
*fine-scale structure* — so the correlation peak is sharp enough to localize
to kilometres, and (iii) is *queryable anywhere*, like the public weather
databases the paper assumes.

The field is multi-octave value noise over (lat, lon, time): deterministic
hash noise on a lattice, smoothly interpolated, summed over three octaves
(synoptic systems ~4 deg/day, mesoscale ~0.8 deg/6 h, convective
~0.2 deg/2 h).  It is seeded, so the simulator and the "public weather
service" are guaranteed to describe the same skies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries import SECONDS_PER_HOUR
from .geo import LatLon

_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _hash01(ix: np.ndarray, iy: np.ndarray, it: np.ndarray, seed: int) -> np.ndarray:
    """Deterministic lattice hash -> uniform [0, 1) (splitmix64-style)."""
    with np.errstate(over="ignore"):
        h = (
            ix.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
            ^ iy.astype(np.uint64) * np.uint64(0xC2B2AE3D27D4EB4F)
            ^ it.astype(np.uint64) * np.uint64(0x165667B19E3779F9)
            ^ np.uint64(seed)
        )
        h ^= h >> np.uint64(30)
        h *= _MIX1
        h ^= h >> np.uint64(27)
        h *= _MIX2
        h ^= h >> np.uint64(31)
    return (h >> np.uint64(11)).astype(np.float64) / float(1 << 53)


def _smoothstep(x: np.ndarray) -> np.ndarray:
    return x * x * (3.0 - 2.0 * x)


def _value_noise(
    x: np.ndarray, y: np.ndarray, t: np.ndarray, seed: int
) -> np.ndarray:
    """Trilinearly interpolated hash noise at continuous lattice coords."""
    x0 = np.floor(x).astype(np.int64)
    y0 = np.floor(y).astype(np.int64)
    t0 = np.floor(t).astype(np.int64)
    fx = _smoothstep(x - x0)
    fy = _smoothstep(y - y0)
    ft = _smoothstep(t - t0)

    def corner(dx: int, dy: int, dt: int) -> np.ndarray:
        return _hash01(
            (x0 + dx).astype(np.uint64),
            (y0 + dy).astype(np.uint64),
            (t0 + dt).astype(np.uint64),
            seed,
        )

    c000, c100 = corner(0, 0, 0), corner(1, 0, 0)
    c010, c110 = corner(0, 1, 0), corner(1, 1, 0)
    c001, c101 = corner(0, 0, 1), corner(1, 0, 1)
    c011, c111 = corner(0, 1, 1), corner(1, 1, 1)
    x00 = c000 + (c100 - c000) * fx
    x10 = c010 + (c110 - c010) * fx
    x01 = c001 + (c101 - c001) * fx
    x11 = c011 + (c111 - c011) * fx
    y0v = x00 + (x10 - x00) * fy
    y1v = x01 + (x11 - x01) * fy
    return y0v + (y1v - y0v) * ft


@dataclass(frozen=True)
class Octave:
    """One spatial/temporal scale of cloud structure."""

    space_deg: float
    time_hours: float
    weight: float
    # eastward advection: weather moves, which decorrelates time at a point
    drift_deg_per_hour: float = 0.0


DEFAULT_OCTAVES = (
    Octave(space_deg=5.0, time_hours=30.0, weight=0.55, drift_deg_per_hour=0.25),
    Octave(space_deg=0.9, time_hours=7.0, weight=0.30, drift_deg_per_hour=0.12),
    Octave(space_deg=0.18, time_hours=2.0, weight=0.15, drift_deg_per_hour=0.0),
)


@dataclass(frozen=True)
class WeatherConfig:
    """Cloud-field parameters.

    ``regional_weight`` scales a *static* very-low-frequency component of
    mean cloudiness: real climates differ by region (the US Southwest is
    far drier than the Pacific Northwest), which both modulates how often a
    solar site sees clear days and gives Weatherman a coarse regional
    signal, as in the real datasets.
    """

    seed: int = 2018
    mean_cloud: float = 0.45
    amplitude: float = 1.3
    # Real sky cover is bimodal — hours are mostly either clear or
    # overcast, not permanently 40% cloudy.  The contrast gain saturates
    # the smooth noise field at both ends, producing clear spells and
    # overcast spells; without it, generation is barely modulated and the
    # weather-signature attack has nothing to correlate against.
    contrast: float = 2.2
    regional_weight: float = 0.35
    regional_space_deg: float = 14.0
    octaves: tuple[Octave, ...] = DEFAULT_OCTAVES

    def __post_init__(self) -> None:
        if not 0.0 <= self.mean_cloud <= 1.0:
            raise ValueError("mean_cloud must be in [0, 1]")
        if self.regional_weight < 0:
            raise ValueError("regional_weight cannot be negative")
        if self.contrast <= 0:
            raise ValueError("contrast must be positive")
        if not self.octaves:
            raise ValueError("need at least one octave")


class WeatherField:
    """The ground-truth sky: cloud cover anywhere, any time, in [0, 1]."""

    def __init__(self, config: WeatherConfig | None = None) -> None:
        self.config = config or WeatherConfig()

    def cloud_cover(self, site: LatLon, times_s: np.ndarray) -> np.ndarray:
        """Cloud-cover fraction at ``site`` for each UTC timestamp."""
        times_s = np.asarray(times_s, dtype=float)
        total = np.zeros_like(times_s)
        hours = times_s / SECONDS_PER_HOUR
        for i, octave in enumerate(self.config.octaves):
            lon_drifted = site.lon + octave.drift_deg_per_hour * hours
            x = lon_drifted / octave.space_deg
            y = np.full_like(times_s, site.lat / octave.space_deg)
            t = hours / octave.time_hours
            total += octave.weight * (
                _value_noise(x, y, t, self.config.seed + 101 * i) - 0.5
            )
        mean = self.config.mean_cloud
        if self.config.regional_weight > 0:
            scale = self.config.regional_space_deg
            regional = _value_noise(
                np.asarray([site.lon / scale]),
                np.asarray([site.lat / scale]),
                np.asarray([0.0]),
                self.config.seed + 7777,
            )[0]
            mean = mean + self.config.regional_weight * (regional - 0.5)
        raw = mean + self.config.amplitude * total
        cloud = 0.5 + self.config.contrast * (raw - 0.5)
        return np.clip(cloud, 0.0, 1.0)

    def transmittance(self, site: LatLon, times_s: np.ndarray) -> np.ndarray:
        """Fraction of clear-sky irradiance that reaches the ground.

        The standard cloud-cover attenuation: heavy overcast still passes
        ~15% diffuse light (Kasten-Czeplak form).
        """
        cloud = self.cloud_cover(site, times_s)
        return 1.0 - 0.75 * cloud**3.4


@dataclass(frozen=True)
class WeatherStation:
    """A named public weather station reporting hourly cloud cover."""

    station_id: str
    location: LatLon


class WeatherStationDB:
    """The attacker's view of the weather: a public station network.

    Stations sit on a regular grid; :meth:`readings` returns a station's
    hourly cloud series.  :meth:`cloud_at` exposes the interpolating "public
    weather API" Weatherman's refinement stage uses (the paper assumes
    "detailed weather data is publicly available throughout the world").
    """

    def __init__(
        self,
        field: WeatherField,
        lat_range: tuple[float, float] = (25.0, 49.0),
        lon_range: tuple[float, float] = (-124.0, -67.0),
        spacing_deg: float = 1.0,
    ) -> None:
        if spacing_deg <= 0:
            raise ValueError("spacing must be positive")
        self.field = field
        self.stations: list[WeatherStation] = []
        lats = np.arange(lat_range[0], lat_range[1] + 1e-9, spacing_deg)
        lons = np.arange(lon_range[0], lon_range[1] + 1e-9, spacing_deg)
        for lat in lats:
            for lon in lons:
                sid = f"ST{lat:+06.1f}{lon:+07.1f}"
                self.stations.append(WeatherStation(sid, LatLon(float(lat), float(lon))))

    def __len__(self) -> int:
        return len(self.stations)

    def readings(self, station: WeatherStation, times_s: np.ndarray) -> np.ndarray:
        return self.field.cloud_cover(station.location, times_s)

    def cloud_at(self, point: LatLon, times_s: np.ndarray) -> np.ndarray:
        return self.field.cloud_cover(point, times_s)
