"""SunDance-style black-box solar disaggregation of net-meter data.

Sec. II-B: utilities see only *net* meter data (consumption minus solar
generation), and anonymize it before sharing.  SunDance (ref. [21]) shows
the split can be recovered: solar generation has a rigid structure (a
clear-sky envelope shaped by astronomy, modulated by weather), so the
negative, sun-shaped component of net data can be separated from the
positive, human-shaped load.  The recovered consumption is then open to
NIOM/NILM, and the recovered generation to SunSpot/Weatherman — the chained
privacy attack the paper warns about.

The algorithm here follows SunDance's black-box recipe:

1. estimate the night-time base load from samples where the sun is
   certainly down (the envelope of generation is zero there);
2. estimate the site's *clear-sky generation envelope* per time-of-day as
   the largest (base load - net) ever observed at that slot — some day was
   clear;
3. per sample, estimate transmittance either from a weather service (if
   the site was first localized) or from the day's own generation deficit,
   and multiply it into the envelope;
4. consumption = net + estimated generation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries import PowerTrace, SECONDS_PER_DAY
from .geo import LatLon
from .weather import WeatherStationDB


@dataclass(frozen=True)
class DisaggregationEstimate:
    """Recovered generation/consumption split of a net-meter trace."""

    generation: PowerTrace
    consumption: PowerTrace
    envelope_w: np.ndarray  # clear-sky generation by time-of-day slot
    base_load_w: float


class SunDance:
    """Black-box net-meter disaggregator.

    Parameters
    ----------
    location / weather:
        Optional: if the site has been localized (e.g. by Weatherman) and a
        public weather service is available, per-sample transmittance comes
        from the weather; otherwise it is inferred from the trace itself.
    envelope_quantile:
        Quantile of (base - net) used for the clear-sky envelope; slightly
        below 1.0 for robustness to spikes.
    """

    def __init__(
        self,
        location: LatLon | None = None,
        weather: WeatherStationDB | None = None,
        envelope_quantile: float = 0.98,
        smoothing_slots: int = 3,
    ) -> None:
        if not 0.5 < envelope_quantile <= 1.0:
            raise ValueError("envelope_quantile must be in (0.5, 1]")
        if (location is None) != (weather is None):
            raise ValueError("location and weather must be provided together")
        self.location = location
        self.weather = weather
        self.envelope_quantile = envelope_quantile
        self.smoothing_slots = smoothing_slots

    def disaggregate(self, net: PowerTrace) -> DisaggregationEstimate:
        slots_per_day = int(round(SECONDS_PER_DAY / net.period_s))
        n_days = len(net) // slots_per_day
        if n_days < 7:
            raise ValueError(f"need at least 7 whole days of net data, got {n_days}")
        grid = net.values[: n_days * slots_per_day].reshape(n_days, slots_per_day)

        # 1. night base load: median net over the slots where net is never
        #    much below its own median (i.e. no solar ever subtracts there)
        slot_min = grid.min(axis=0)
        overall_median = float(np.median(grid))
        night_slots = slot_min > overall_median - 0.1 * max(abs(overall_median), 100.0)
        if night_slots.sum() < slots_per_day // 8:
            # fall back: darkest sixth of the day by slot minimum
            order = np.argsort(slot_min)[::-1]
            night_slots = np.zeros(slots_per_day, dtype=bool)
            night_slots[order[: slots_per_day // 6]] = True
        base_load = float(np.median(grid[:, night_slots]))

        # 2. clear-sky envelope per slot
        deficit = base_load - grid  # positive where solar pushes net down
        envelope = np.quantile(deficit, self.envelope_quantile, axis=0)
        envelope = np.maximum(envelope, 0.0)
        if self.smoothing_slots > 1:
            kernel = np.ones(self.smoothing_slots) / self.smoothing_slots
            envelope = np.convolve(envelope, kernel, mode="same")

        # 3. per-sample transmittance
        n_used = n_days * slots_per_day
        slot_idx = np.tile(np.arange(slots_per_day), n_days)
        env_t = envelope[slot_idx]
        times = net.times()[:n_used]
        if self.weather is not None and self.location is not None:
            cloud = self.weather.cloud_at(self.location, times)
            transmittance = 1.0 - 0.75 * cloud**3.4
        else:
            with np.errstate(divide="ignore", invalid="ignore"):
                raw = (base_load - net.values[:n_used]) / np.maximum(env_t, 1.0)
            transmittance = np.clip(raw, 0.0, 1.0)
            # weather varies slowly relative to appliance events: smooth it so
            # load spikes do not masquerade as passing clouds
            window = max(1, int(1800.0 / net.period_s))
            kernel = np.ones(window) / window
            transmittance = np.convolve(transmittance, kernel, mode="same")

        generation = env_t * transmittance
        generation[env_t <= 0.0] = 0.0

        gen_trace = PowerTrace(generation, net.period_s, net.start_s, "W")
        consumption = net.values[:n_used] + generation
        cons_trace = PowerTrace(
            np.maximum(consumption, 0.0), net.period_s, net.start_s, "W"
        )
        return DisaggregationEstimate(
            generation=gen_trace,
            consumption=cons_trace,
            envelope_w=envelope,
            base_load_w=base_load,
        )
