"""Weatherman: localizing a solar array via its weather signature.

Reproduces Chen & Irwin (BigData'17, ref. [5]), Sec. II-B: cloud cover is
location-specific and public, so the *pattern of generation dips* at a site
correlates most strongly with the weather at the site's true location.
Works on much coarser data than SunSpot (Fig. 5 uses 1-hour data) and is
robust to panel orientation and horizon effects, because it matches
weather-driven *changes* rather than the absolute solar geometry.

Two stages:

1. **Station scan** — correlate the site's cloudiness proxy against every
   public weather station's hourly series; the best station puts the site
   within one grid cell.
2. **Refinement** — hierarchical grid search around that station using the
   interpolating public weather API, sharpening the estimate to kilometres.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries import PowerTrace, SECONDS_PER_DAY, SECONDS_PER_HOUR
from .geo import LatLon
from .sunspot import LocalizationResult
from .weather import WeatherStationDB


@dataclass(frozen=True)
class CloudProxy:
    """The site's inferred cloudiness series on an hourly clock."""

    times_s: np.ndarray
    values: np.ndarray  # in [0, 1]: 0 = clear, 1 = fully attenuated


def cloud_proxy_from_generation(
    generation: PowerTrace,
    min_envelope_fraction: float = 0.3,
    envelope_window_days: int = 31,
) -> CloudProxy:
    """Infer per-hour cloudiness without knowing the site's location.

    The clear-sky envelope at each (day, hour-of-day) slot is the maximum
    generation observed at that hour within a +/-15-day window — some
    nearby day will be clear, and a *local* window is essential because
    clear-sky output drifts with the season (a year-global envelope would
    make every clear winter noon look 60% overcast).  The ratio of actual
    to envelope estimates transmittance; one minus that is the cloud
    proxy.  Slots whose local envelope is small (night, dawn, dusk) are
    excluded — they carry geometry, not weather.
    """
    from scipy.ndimage import maximum_filter1d

    hourly = generation.resample(SECONDS_PER_HOUR, reducer="mean")
    n_per_day = int(SECONDS_PER_DAY // SECONDS_PER_HOUR)
    n_days = len(hourly) // n_per_day
    if n_days < 10:
        raise ValueError(f"need at least 10 whole days of data, got {n_days}")
    grid = hourly.values[: n_days * n_per_day].reshape(n_days, n_per_day)
    envelope = maximum_filter1d(grid, size=envelope_window_days, axis=0, mode="nearest")
    peak = envelope.max()
    if peak <= 0:
        raise ValueError("generation trace is all zero")
    usable = envelope > min_envelope_fraction * peak
    ratio = np.clip(grid[usable] / envelope[usable], 0.0, 1.0)
    times = hourly.times()[: n_days * n_per_day].reshape(n_days, n_per_day)
    return CloudProxy(
        times_s=times[usable].ravel(),
        values=(1.0 - ratio).ravel(),
    )


def _weather_attenuation(cloud: np.ndarray) -> np.ndarray:
    """Map cloud cover to the attenuation a PV panel experiences.

    Must be monotone in cloud cover; using the same Kasten-Czeplak form as
    the simulator is fair because it is a published empirical law, not a
    simulator secret.
    """
    return 0.75 * np.asarray(cloud) ** 3.4


def _correlation(a: np.ndarray, b: np.ndarray) -> float:
    if len(a) < 3:
        return -1.0
    sa, sb = a.std(), b.std()
    if sa < 1e-12 or sb < 1e-12:
        return -1.0
    return float(np.corrcoef(a, b)[0, 1])


class Weatherman:
    """The Weatherman localization attack."""

    def __init__(
        self,
        stations: WeatherStationDB,
        refine_levels: int = 5,
        refine_grid: int = 7,
        refine_initial_span_deg: float = 1.0,
        top_stations: int = 3,
    ) -> None:
        if refine_levels < 0 or refine_grid < 3:
            raise ValueError("invalid refinement parameters")
        self.stations = stations
        self.refine_levels = refine_levels
        self.refine_grid = refine_grid
        self.refine_initial_span_deg = refine_initial_span_deg
        self.top_stations = top_stations

    def _score(self, proxy: CloudProxy, point: LatLon) -> float:
        cloud = self.stations.cloud_at(point, proxy.times_s)
        return _correlation(proxy.values, _weather_attenuation(cloud))

    def localize(self, generation: PowerTrace) -> LocalizationResult:
        """Run the attack on (typically 1-hour) generation data."""
        proxy = cloud_proxy_from_generation(generation)

        # stage 1: scan the public station network
        scored: list[tuple[float, LatLon]] = []
        for station in self.stations.stations:
            cloud = self.stations.readings(station, proxy.times_s)
            corr = _correlation(proxy.values, _weather_attenuation(cloud))
            scored.append((corr, station.location))
        scored.sort(key=lambda pair: pair[0], reverse=True)
        best_corr, best_loc = scored[0]
        if best_corr <= 0.0:
            raise ValueError("no station correlates with the generation trace")

        # seed refinement from the correlation-weighted top stations
        top = scored[: self.top_stations]
        weights = np.asarray([max(c, 0.0) ** 2 for c, _ in top])
        if weights.sum() > 0:
            lat = float(sum(w * p.lat for w, (_, p) in zip(weights, top)) / weights.sum())
            lon = float(sum(w * p.lon for w, (_, p) in zip(weights, top)) / weights.sum())
            center = LatLon(lat, lon)
        else:
            center = best_loc

        # stage 2: hierarchical refinement against the weather API
        best = (self._score(proxy, center), center)
        half_span = self.refine_initial_span_deg
        for _level in range(self.refine_levels):
            lats = np.linspace(center.lat - half_span, center.lat + half_span, self.refine_grid)
            lons = np.linspace(center.lon - half_span, center.lon + half_span, self.refine_grid)
            for lat in lats:
                for lon in lons:
                    point = LatLon(float(np.clip(lat, -89.9, 89.9)), float(np.clip(lon, -179.9, 179.9)))
                    score = self._score(proxy, point)
                    if score > best[0]:
                        best = (score, point)
            center = best[1]
            half_span /= 2.8
        return LocalizationResult(
            estimate=best[1],
            observations_used=len(proxy.values),
            cost=-best[0],
        )
