"""Battery-based load hiding (Sec. III-B, refs. [26], [27]).

Unlike CHPr, a battery can both *absorb* and *supply* power, so it can
flatten the metered signal directly — at the cost of buying and wearing a
battery.  Two classic algorithms are implemented:

* :class:`NILLDefense` — Non-Intrusive Load Leveling (McLaughlin et al.,
  CCS'11): hold the meter at a constant target; when the battery saturates,
  step the target and continue.
* :class:`SteppedDefense` — stepping/quantization (Yang et al., CCS'12):
  the meter may only report integer multiples of a step size, so small
  appliance edges (the NILM features) vanish into the quantizer.

Both respect a physical battery model with capacity, power limits, and
round-trip efficiency, and report the extra energy burned in conversion
losses — the "high cost to install and maintain" the paper contrasts with
CHPr's free storage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries import PowerTrace
from .base import DefenseOutcome, TraceDefense


@dataclass(frozen=True)
class BatteryConfig:
    """A stationary home battery."""

    capacity_wh: float = 3000.0
    max_charge_w: float = 3000.0
    max_discharge_w: float = 3000.0
    efficiency: float = 0.9  # round-trip, applied on charge
    initial_soc: float = 0.5

    def __post_init__(self) -> None:
        if self.capacity_wh <= 0:
            raise ValueError("capacity must be positive")
        if self.max_charge_w <= 0 or self.max_discharge_w <= 0:
            raise ValueError("power limits must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        if not 0.0 <= self.initial_soc <= 1.0:
            raise ValueError("initial_soc must be in [0, 1]")


class Battery:
    """Mutable battery state; positive power = discharging to the home."""

    def __init__(self, config: BatteryConfig) -> None:
        self.config = config
        self.energy_wh = config.capacity_wh * config.initial_soc
        self.losses_wh = 0.0

    @property
    def soc(self) -> float:
        return self.energy_wh / self.config.capacity_wh

    def step(self, requested_w: float, dt_s: float) -> float:
        """Attempt to (dis)charge; returns the power actually delivered.

        Positive ``requested_w`` discharges (reduces metered load),
        negative charges (increases metered load).
        """
        cfg = self.config
        dt_h = dt_s / 3600.0
        if requested_w >= 0:
            power = min(requested_w, cfg.max_discharge_w, self.energy_wh / dt_h if dt_h else 0.0)
            self.energy_wh -= power * dt_h
        else:
            room_wh = cfg.capacity_wh - self.energy_wh
            power = -min(-requested_w, cfg.max_charge_w, room_wh / (cfg.efficiency * dt_h) if dt_h else 0.0)
            stored = -power * dt_h * cfg.efficiency
            self.energy_wh += stored
            self.losses_wh += -power * dt_h * (1.0 - cfg.efficiency)
        return power


class NILLDefense(TraceDefense):
    """Non-Intrusive Load Leveling: hold the meter at a flat target.

    The target starts at the trace's trailing mean; whenever the battery
    hits empty/full the target steps up/down so the battery can recover.
    The meter sees long flat stretches punctuated by target steps — almost
    no appliance features survive.
    """

    name = "nill"

    def __init__(self, battery: BatteryConfig | None = None, window_s: float = 3600.0):
        self.battery_config = battery or BatteryConfig()
        self.window_s = window_s

    def apply(self, true_load, rng=None) -> DefenseOutcome:
        battery = Battery(self.battery_config)
        values = true_load.values
        period = true_load.period_s
        visible = np.empty_like(values)
        target = float(values[: max(1, int(self.window_s / period))].mean())
        demand_ema = target
        alpha = min(1.0, period / self.window_s)
        for i, demand in enumerate(values):
            demand_ema = (1.0 - alpha) * demand_ema + alpha * demand
            # positive request discharges to pull the meter down to target
            requested = demand - target
            delivered = battery.step(requested, period)
            visible[i] = max(demand - delivered, 0.0)
            # saturation: nudge the target toward the running demand level
            # so the battery recovers — gently, or the target steps
            # themselves become a bigger signal than the load they hide
            if battery.soc <= 0.05 and target < demand_ema * 1.1:
                target = demand_ema * 1.15 + 100.0
            elif battery.soc >= 0.95 and target > demand_ema * 0.9:
                target = max(demand_ema * 0.85 - 50.0, 0.0)
        out = true_load.with_values(visible)
        return DefenseOutcome(
            visible=out,
            extra_energy_kwh=battery.losses_wh / 1000.0,
            utility_distortion=self._distortion(out, true_load),
        )


class SteppedDefense(TraceDefense):
    """Stepping battery privacy: meter readings quantized to a step grid.

    The battery covers the difference between true demand and the nearest
    feasible step level at or above recent demand; readings change rarely
    and only by whole steps, which removes the edge features NILM needs
    while bounding battery throughput.
    """

    name = "stepped"

    def __init__(
        self,
        battery: BatteryConfig | None = None,
        step_w: float = 500.0,
    ) -> None:
        if step_w <= 0:
            raise ValueError("step_w must be positive")
        self.battery_config = battery or BatteryConfig()
        self.step_w = step_w

    def apply(self, true_load, rng=None) -> DefenseOutcome:
        battery = Battery(self.battery_config)
        values = true_load.values
        period = true_load.period_s
        visible = np.empty_like(values)
        level = float(np.ceil(values[0] / self.step_w)) * self.step_w
        for i, demand in enumerate(values):
            # choose the step level nearest demand that the battery can bridge
            desired = float(np.ceil(demand / self.step_w)) * self.step_w
            if battery.soc < 0.1:
                desired += self.step_w  # charge up while we can
            elif battery.soc > 0.9:
                desired = max(desired - self.step_w, 0.0)
            # hysteresis: keep the current level while it remains feasible
            if abs(level - demand) <= self.step_w and 0.1 <= battery.soc <= 0.9:
                desired = level
            level = desired
            requested = demand - level  # discharge if demand above level
            delivered = battery.step(requested, period)
            visible[i] = max(demand - delivered, 0.0)
        out = true_load.with_values(visible)
        return DefenseOutcome(
            visible=out,
            extra_energy_kwh=battery.losses_wh / 1000.0,
            utility_distortion=self._distortion(out, true_load),
        )
