"""Defenses against energy-data privacy attacks (Sec. III of the paper)."""

from .base import DefenseOutcome, IdentityDefense, TraceDefense
from .battery import Battery, BatteryConfig, NILLDefense, SteppedDefense
from .chpr import CHPrConfig, CHPrController, CHPrTraceDefense, apply_chpr
from .dp import DPConfig, LaplaceReleaseDefense, dp_aggregate_consumption, laplace_noise
from .local import LocalAnalyticsHub, ScheduleRecommendation, SharedPayload
from .smoothing import CoarseningDefense, NoiseInjectionDefense, SmoothingDefense
from .zkp import (
    BillProof,
    Commitment,
    OpeningProof,
    PedersenParams,
    PrivateMeter,
    UtilityVerifier,
)

__all__ = [
    "DefenseOutcome",
    "IdentityDefense",
    "TraceDefense",
    "Battery",
    "BatteryConfig",
    "NILLDefense",
    "SteppedDefense",
    "CHPrConfig",
    "CHPrController",
    "CHPrTraceDefense",
    "apply_chpr",
    "DPConfig",
    "LaplaceReleaseDefense",
    "dp_aggregate_consumption",
    "laplace_noise",
    "LocalAnalyticsHub",
    "ScheduleRecommendation",
    "SharedPayload",
    "CoarseningDefense",
    "NoiseInjectionDefense",
    "SmoothingDefense",
    "BillProof",
    "Commitment",
    "OpeningProof",
    "PedersenParams",
    "PrivateMeter",
    "UtilityVerifier",
]
