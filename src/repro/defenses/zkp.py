"""Privacy-preserving smart-meter billing with cryptographic commitments.

Reproduces the approach of "Private Memoirs of a Smart Meter"
(Molina-Markham et al., BuildSys'10, ref. [29]) and its follow-up on
low-cost microcontrollers (FC'12, ref. [30]), which Sec. III-C summarizes:
the meter keeps fine-grained readings local, publishes only *commitments*
to them, and answers billing queries with a verifiable proof — so the
utility can check the bill without ever seeing the consumption profile
that NIOM/NILM would mine.

Construction: Pedersen commitments over the order-q subgroup of Z_p* for a
safe prime p (the RFC 3526 1536-bit MODP group).  For reading m with
blinding r, ``C = g^m h^r mod p``.  Commitments are

* *hiding* — C is uniform regardless of m, so published commitments leak
  nothing (no occupancy, no appliances);
* *additively homomorphic* — ``prod C_i^{t_i} = g^{sum t_i m_i} h^{sum t_i r_i}``,
  so a time-of-use bill ``B = sum t_i m_i`` can be verified by opening only
  the aggregate;
* *binding* — a meter cannot open the aggregate to a different (cheaper)
  bill without solving discrete log.

A Schnorr proof (Fiat-Shamir) of knowledge of an opening is included for
spot-check audits of individual intervals.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..timeseries import PowerTrace

# RFC 3526, 1536-bit MODP group: p is a safe prime (p = 2q + 1)
_P_HEX = (
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"
)
P = int(_P_HEX, 16)
Q = (P - 1) // 2


def _hash_to_group(label: bytes) -> int:
    """Derive a subgroup element with unknown discrete log (square of a hash)."""
    digest = b""
    counter = 0
    while len(digest) < 256:
        digest += hashlib.sha256(label + counter.to_bytes(4, "big")).digest()
        counter += 1
    value = int.from_bytes(digest, "big") % P
    return pow(value, 2, P)  # squaring lands in the order-q subgroup


@dataclass(frozen=True)
class PedersenParams:
    """Public commitment parameters (p, q, g, h)."""

    p: int = P
    q: int = Q
    g: int = 4  # 4 = 2^2 is a generator of the order-q subgroup
    h: int = _hash_to_group(b"repro-pedersen-h")

    def commit(self, value: int, blinding: int) -> int:
        if not 0 <= value < self.q:
            raise ValueError("value out of range")
        return (pow(self.g, value, self.p) * pow(self.h, blinding % self.q, self.p)) % self.p


@dataclass(frozen=True)
class Commitment:
    """A published commitment to one metering interval."""

    index: int
    value_c: int


@dataclass(frozen=True)
class BillProof:
    """Meter's response to a billing query: the bill and aggregate blinding."""

    bill: int
    aggregate_blinding: int


@dataclass(frozen=True)
class OpeningProof:
    """Schnorr proof of knowledge of (value, blinding) for one commitment."""

    commitment_t: int
    response_value: int
    response_blinding: int


class PrivateMeter:
    """The meter side: holds readings locally, publishes only commitments."""

    def __init__(
        self,
        params: PedersenParams | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.params = params or PedersenParams()
        self._rng = np.random.default_rng(rng)
        self._readings: list[int] = []
        self._blindings: list[int] = []
        self.commitments: list[Commitment] = []

    def _random_scalar(self) -> int:
        # 256 random bits is far beyond the statistical-hiding requirement
        words = self._rng.integers(0, 2**32, size=8, dtype=np.uint64)
        value = 0
        for w in words:
            value = (value << 32) | int(w)
        return value % self.params.q

    def record(self, reading_wh: int) -> Commitment:
        """Record one interval's consumption; publish its commitment."""
        if reading_wh < 0:
            raise ValueError("readings cannot be negative")
        blinding = self._random_scalar()
        c = self.params.commit(int(reading_wh), blinding)
        commitment = Commitment(index=len(self._readings), value_c=c)
        self._readings.append(int(reading_wh))
        self._blindings.append(blinding)
        self.commitments.append(commitment)
        return commitment

    def record_trace(self, trace: PowerTrace) -> list[Commitment]:
        """Commit to every interval of a power trace (Wh per interval)."""
        wh = trace.values * trace.period_s / 3600.0
        return [self.record(int(round(v))) for v in wh]

    def billing_response(self, tariffs: list[int]) -> BillProof:
        """Answer a time-of-use billing query over all recorded intervals.

        ``tariffs[i]`` is the (integer) price weight of interval i; the
        response reveals only the total bill, not any reading.
        """
        if len(tariffs) != len(self._readings):
            raise ValueError("tariff vector length mismatch")
        if any(t < 0 for t in tariffs):
            raise ValueError("tariffs cannot be negative")
        bill = sum(t * m for t, m in zip(tariffs, self._readings))
        blinding = sum(t * r for t, r in zip(tariffs, self._blindings)) % self.params.q
        return BillProof(bill=bill, aggregate_blinding=blinding)

    def prove_opening(self, index: int) -> OpeningProof:
        """Schnorr proof of knowledge of the opening of commitment ``index``.

        Reveals *that* the meter knows a valid opening without revealing
        the reading — used for audits.
        """
        params = self.params
        m, r = self._readings[index], self._blindings[index]
        k_m, k_r = self._random_scalar(), self._random_scalar()
        t = (pow(params.g, k_m, params.p) * pow(params.h, k_r, params.p)) % params.p
        challenge = _fiat_shamir(params, self.commitments[index].value_c, t)
        return OpeningProof(
            commitment_t=t,
            response_value=(k_m + challenge * m) % params.q,
            response_blinding=(k_r + challenge * r) % params.q,
        )


def _fiat_shamir(params: PedersenParams, commitment: int, t: int) -> int:
    payload = b"|".join(
        str(x).encode() for x in (params.p, params.g, params.h, commitment, t)
    )
    return int.from_bytes(hashlib.sha256(payload).digest(), "big") % params.q


class UtilityVerifier:
    """The utility side: verifies bills and audits from public data only."""

    def __init__(self, params: PedersenParams | None = None) -> None:
        self.params = params or PedersenParams()

    def verify_bill(
        self,
        commitments: list[Commitment],
        tariffs: list[int],
        proof: BillProof,
    ) -> bool:
        """Check ``prod C_i^{t_i} == g^bill h^blinding``."""
        if len(commitments) != len(tariffs):
            raise ValueError("commitments/tariffs length mismatch")
        params = self.params
        aggregate = 1
        for commitment, tariff in zip(commitments, tariffs):
            aggregate = (aggregate * pow(commitment.value_c, tariff, params.p)) % params.p
        expected = (
            pow(params.g, proof.bill, params.p)
            * pow(params.h, proof.aggregate_blinding, params.p)
        ) % params.p
        return aggregate == expected

    def verify_opening(self, commitment: Commitment, proof: OpeningProof) -> bool:
        """Check a Schnorr opening-knowledge proof."""
        params = self.params
        challenge = _fiat_shamir(params, commitment.value_c, proof.commitment_t)
        left = (
            pow(params.g, proof.response_value, params.p)
            * pow(params.h, proof.response_blinding, params.p)
        ) % params.p
        right = (
            proof.commitment_t * pow(commitment.value_c, challenge, params.p)
        ) % params.p
        return left == right
