"""Non-physical obfuscation baselines: smoothing and coarsening.

Sec. III-B mentions smoothing alongside noise injection as studied
obfuscations.  These transforms need no hardware but are *not free*: they
directly distort what the utility sees (bad for grid analytics) and, unlike
CHPr/batteries, a real meter reports actual consumption, so these model a
privacy-aware meter/firmware rather than a physical defense.  They serve as
ablation baselines for the privacy/utility frontier.
"""

from __future__ import annotations

import numpy as np

from ..timeseries import PowerTrace
from .base import DefenseOutcome, TraceDefense


class SmoothingDefense(TraceDefense):
    """Moving-average smoothing: removes bursts, keeps energy."""

    name = "smoothing"

    def __init__(self, window_s: float = 3600.0) -> None:
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.window_s = window_s

    def apply(self, true_load, rng=None) -> DefenseOutcome:
        window = max(1, int(self.window_s / true_load.period_s))
        kernel = np.ones(window) / window
        smoothed = np.convolve(true_load.values, kernel, mode="same")
        visible = true_load.with_values(smoothed)
        return DefenseOutcome(
            visible=visible,
            utility_distortion=self._distortion(visible, true_load),
        )


class CoarseningDefense(TraceDefense):
    """Report only coarse intervals (what an opt-out meter would send)."""

    name = "coarsening"

    def __init__(self, report_period_s: float = 3600.0) -> None:
        if report_period_s <= 0:
            raise ValueError("period must be positive")
        self.report_period_s = report_period_s

    def apply(self, true_load, rng=None) -> DefenseOutcome:
        visible = true_load.resample(self.report_period_s, reducer="mean")
        reference = visible  # energy-preserving; distortion is within-interval
        upsampled = np.repeat(
            visible.values, int(self.report_period_s / true_load.period_s)
        )
        n = min(len(upsampled), len(true_load))
        distortion = float(np.abs(upsampled[:n] - true_load.values[:n]).mean())
        return DefenseOutcome(visible=visible, utility_distortion=distortion)


class NoiseInjectionDefense(TraceDefense):
    """Additive random noise (a virtual noise load), clipped at zero.

    Models a noise-injecting appliance/firmware; ``extra_energy_kwh``
    accounts for the mean added consumption when ``physical=True`` (a real
    load can only add power, so the noise is folded to be non-negative).
    """

    name = "noise"

    def __init__(self, std_w: float = 300.0, physical: bool = True) -> None:
        if std_w < 0:
            raise ValueError("std cannot be negative")
        self.std_w = std_w
        self.physical = physical

    def apply(self, true_load, rng=None) -> DefenseOutcome:
        rng = np.random.default_rng(rng)
        noise = rng.normal(0.0, self.std_w, len(true_load))
        if self.physical:
            noise = np.abs(noise)  # a real load can only consume
        visible_values = np.maximum(true_load.values + noise, 0.0)
        visible = true_load.with_values(visible_values)
        extra_kwh = (
            float(noise.mean() * true_load.duration_s / 3.6e6) if self.physical else 0.0
        )
        return DefenseOutcome(
            visible=visible,
            extra_energy_kwh=max(extra_kwh, 0.0),
            utility_distortion=self._distortion(visible, true_load),
        )
