"""Differential privacy for energy data releases (Sec. III-A).

The paper notes DP fits the *release* setting: a utility publishing
anonymized datasets, or answering aggregate queries, where individuals must
not be identifiable — while being the wrong tool against a cloud service
that already knows who you are.  Two mechanisms are provided:

* :class:`LaplaceReleaseDefense` — per-home trace release: coarsen to a
  reporting interval and add Laplace noise calibrated to a per-interval
  sensitivity.  High epsilon preserves analytics; low epsilon destroys the
  NIOM/NILM features (and the analytics with them) — the bluntness the
  paper criticizes, made measurable.
* :func:`dp_aggregate_consumption` — the setting where DP shines: a
  district-level average over many homes, where the noise needed to hide
  any one home is tiny relative to the aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries import PowerTrace
from .base import DefenseOutcome, TraceDefense


def laplace_noise(
    scale: float, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Zero-mean Laplace noise with the given scale (b parameter)."""
    if scale < 0:
        raise ValueError("scale cannot be negative")
    if scale == 0:
        return np.zeros(size)
    return rng.laplace(0.0, scale, size)


@dataclass(frozen=True)
class DPConfig:
    """Release parameters.

    ``epsilon`` is the per-interval privacy budget; ``sensitivity_w`` is
    the maximum influence any protected activity can have on one reported
    interval (e.g. the largest appliance's power).  Laplace scale is
    sensitivity / epsilon.
    """

    epsilon: float = 1.0
    sensitivity_w: float = 2000.0
    release_period_s: float = 900.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if self.sensitivity_w <= 0:
            raise ValueError("sensitivity must be positive")
        if self.release_period_s <= 0:
            raise ValueError("release period must be positive")

    @property
    def noise_scale_w(self) -> float:
        return self.sensitivity_w / self.epsilon


class LaplaceReleaseDefense(TraceDefense):
    """Release a DP-noised, coarsened version of a home's trace."""

    name = "dp-laplace"

    def __init__(self, config: DPConfig | None = None) -> None:
        self.config = config or DPConfig()

    def apply(self, true_load, rng=None) -> DefenseOutcome:
        rng = np.random.default_rng(rng)
        cfg = self.config
        coarse = true_load
        if cfg.release_period_s > true_load.period_s:
            coarse = true_load.resample(cfg.release_period_s, reducer="mean")
        noised = coarse.values + laplace_noise(cfg.noise_scale_w, len(coarse), rng)
        visible = PowerTrace(
            np.maximum(noised, 0.0), coarse.period_s, coarse.start_s, coarse.unit
        )
        reference = (
            true_load.resample(cfg.release_period_s, reducer="mean")
            if cfg.release_period_s > true_load.period_s
            else true_load
        )
        return DefenseOutcome(
            visible=visible,
            utility_distortion=self._distortion(visible, reference),
        )


def dp_aggregate_consumption(
    homes: list[PowerTrace],
    epsilon: float,
    sensitivity_w: float,
    rng: np.random.Generator | int | None = None,
) -> PowerTrace:
    """DP release of the *average* consumption across many homes.

    Adding Laplace(sensitivity / (epsilon * n)) to the mean gives
    epsilon-DP with respect to any single home changing by up to
    ``sensitivity_w`` — and the error shrinks as 1/n, which is why
    grid-scale analytics survive DP while per-home analytics do not.
    """
    if not homes:
        raise ValueError("need at least one home")
    if epsilon <= 0 or sensitivity_w <= 0:
        raise ValueError("epsilon and sensitivity must be positive")
    rng = np.random.default_rng(rng)
    n = min(len(h) for h in homes)
    stack = np.vstack([h.values[:n] for h in homes])
    mean = stack.mean(axis=0)
    scale = sensitivity_w / (epsilon * len(homes))
    noised = mean + laplace_noise(scale, n, rng)
    first = homes[0]
    return PowerTrace(np.maximum(noised, 0.0), first.period_s, first.start_s, first.unit)
