"""CHPr — Combined Heat and Privacy (Chen et al., PerCom'14, ref. [25]).

The Fig. 6 defense: an electric water heater must inject roughly the same
thermal energy every day regardless of *when*, so its controller can
reschedule heating to mask the occupancy side-channel at (nearly) zero
cost.  Concretely, NIOM keys on periods of low, flat demand; CHPr watches
the rest-of-home load and, whenever it looks unoccupied, heats water in
bursty on/off patterns that mimic interactive appliance activity — storing
the heat in the tank.  When the home is genuinely busy the heater stays
quiet, recovering tank headroom.

Physical honesty is enforced by the shared tank model
(:class:`repro.home.waterheater.WaterHeaterTank`): the controller cannot
inject energy into a full tank, must keep delivery temperature above the
comfort minimum, and must serve the household's actual hot-water draws.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..home.household import WATER_HEATER_NAME, HomeSimulation
from ..home.waterheater import WaterHeaterConfig, WaterHeaterTank, thermostat_power
from ..timeseries import SECONDS_PER_DAY, SECONDS_PER_HOUR, PowerTrace
from .base import DefenseOutcome, TraceDefense


@dataclass(frozen=True)
class CHPrConfig:
    """Controller parameters.

    ``target_mean_w`` / ``target_std_w`` describe what "occupied-looking"
    demand is; CHPr injects heater load whenever the rest-of-home signal
    falls below both.  Bursts are randomized in length and level so the
    injected signal has the variance NIOM looks for, not just the level.
    """

    window_s: float = 900.0
    target_mean_w: float = 450.0
    target_std_w: float = 150.0
    # masked windows get their mean raised by a draw from this range,
    # mimicking the spread of genuinely busy windows
    mask_mean_range_w: tuple[float, float] = (250.0, 900.0)
    burst_power_fraction: tuple[float, float] = (0.45, 1.0)
    comfort_margin_c: float = 3.0
    headroom_margin_c: float = 0.5
    # Mask only waking hours: an idle signal overnight reads as "occupants
    # asleep" whether or not anyone is home, so spending tank budget there
    # is wasted.  This is how a 50-gal tank stretches to cover a full day.
    mask_start_hour: float = 6.5
    mask_end_hour: float = 23.5
    # Optional fixed daily preheat windows ahead of the morning/evening
    # draw peaks.  Because they run at the same clock time every day,
    # occupied or not, they carry no occupancy information.  They trade
    # masking budget for comfort margin; off by default because the
    # masking bursts themselves keep the tank warm enough in practice.
    preheat_hours: tuple[tuple[float, float], ...] = ()
    # Preheat only up to min_delivery + this buffer (NOT to setpoint):
    # enough margin to absorb a shower, while leaving the tank headroom
    # that funds masking bursts.
    preheat_buffer_c: float = 14.0

    def __post_init__(self) -> None:
        if self.target_mean_w <= 0 or self.target_std_w <= 0:
            raise ValueError("targets must be positive")
        if not 0.0 <= self.mask_start_hour < self.mask_end_hour <= 24.0:
            raise ValueError("invalid masking hours")
        for lo, hi in (self.mask_mean_range_w, self.burst_power_fraction):
            if lo <= 0 or hi < lo:
                raise ValueError("invalid (lo, hi) range")


class CHPrController:
    """Streaming controller: decides heater power sample by sample."""

    def __init__(
        self,
        heater: WaterHeaterConfig,
        config: CHPrConfig | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        # CHPr modulates the heating rate, so force a modulating element
        self.heater = WaterHeaterConfig(
            tank_liters=heater.tank_liters,
            element_power_w=heater.element_power_w,
            setpoint_c=heater.setpoint_c,
            deadband_c=heater.deadband_c,
            inlet_c=heater.inlet_c,
            ambient_c=heater.ambient_c,
            min_delivery_c=heater.min_delivery_c,
            standby_loss_w_per_k=heater.standby_loss_w_per_k,
            modulating=True,
        )
        self.config = config or CHPrConfig()
        self._rng = np.random.default_rng(rng)

    def control(
        self, rest_of_home: PowerTrace, draws: np.ndarray
    ) -> tuple[np.ndarray, WaterHeaterTank]:
        """Compute per-sample heater power for the whole horizon.

        ``rest_of_home`` is everything the meter sees except the heater;
        ``draws`` is the hot-water demand (liters per sample).

        The controller works window by window on the same cadence a NIOM
        detector does: for every *quiet* window (low mean, low variance —
        what the attacker reads as "unoccupied") inside the masking hours,
        it injects a heater burst sized so the window's statistics land in
        the distribution of genuinely busy windows.  Burst energy is
        bounded by the tank's thermal headroom, so the masking budget is
        exactly the heat the household will consume anyway.
        """
        if len(draws) != len(rest_of_home):
            raise ValueError("draws and load must have equal length")
        cfg = self.config
        period = rest_of_home.period_s
        tank = WaterHeaterTank(self.heater)
        samples_per_window = max(1, int(cfg.window_s / period))
        window_h = cfg.window_s / 3600.0

        values = rest_of_home.values
        hours = rest_of_home.hours_of_day()
        n = len(values)
        power = np.zeros(n)
        temps = np.zeros(n)

        plan_power = 0.0  # requested burst level for the current window
        plan_start = 0
        plan_end = 0
        for i in range(n):
            if i % samples_per_window == 0:
                plan_power = 0.0
                w = values[i : i + samples_per_window]
                quiet = (
                    cfg.mask_start_hour <= hours[i] < cfg.mask_end_hour
                    and w.mean() < cfg.target_mean_w
                    and w.std() < cfg.target_std_w
                )
                headroom_kwh = (
                    (self.heater.setpoint_c - cfg.headroom_margin_c - tank.temp_c)
                    * self.heater.thermal_mass_j_per_k
                    / 3.6e6
                )
                if quiet and headroom_kwh > 0.02:
                    # target window mean drawn from the busy-window range,
                    # but paced so the tank's remaining headroom lasts the
                    # whole masking day: an unpaced controller burns the
                    # budget by mid-morning and leaves every afternoon
                    # window visibly idle
                    remaining_h = max(1.0, cfg.mask_end_hour - hours[i])
                    pacing_kwh = headroom_kwh * (window_h / remaining_h) * 2.0
                    target_add_w = self._rng.uniform(*cfg.mask_mean_range_w)
                    energy_kwh = min(
                        target_add_w * window_h / 1000.0, pacing_kwh, headroom_kwh
                    )
                    lo, hi = cfg.burst_power_fraction
                    level = self.heater.element_power_w * self._rng.uniform(lo, hi)
                    burst_samples = max(
                        1, int(round(energy_kwh * 3.6e6 / level / period))
                    )
                    burst_samples = min(burst_samples, samples_per_window)
                    offset = int(
                        self._rng.integers(0, samples_per_window - burst_samples + 1)
                    )
                    plan_power = level
                    plan_start = i + offset
                    plan_end = plan_start + burst_samples

            must_heat = tank.temp_c <= self.heater.min_delivery_c + cfg.comfort_margin_c
            preheat_target = min(
                self.heater.min_delivery_c + cfg.preheat_buffer_c,
                self.heater.setpoint_c - self.heater.deadband_c,
            )
            preheating = (
                any(lo <= hours[i] < hi for lo, hi in cfg.preheat_hours)
                and tank.temp_c < preheat_target
            )
            if must_heat or preheating:
                requested = self.heater.element_power_w
            elif plan_start <= i < plan_end:
                requested = plan_power
            else:
                requested = 0.0
            power[i] = tank.step(period, float(draws[i]), requested)
            temps[i] = tank.temp_c
        #: per-sample tank temperature of the last run — what the invariant
        #: suite checks against the physical bounds (inlet <= T <= setpoint)
        self.last_temps_c = temps
        return power, tank


def apply_chpr(
    sim: HomeSimulation,
    config: CHPrConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> DefenseOutcome:
    """Re-run a simulated home's water heater under CHPr control.

    Returns the CHPr-metered view (rest of home + CHPr heater) along with
    the extra energy relative to the baseline thermostat and any comfort
    violations.  Requires the home to have been simulated with a water
    heater (:func:`repro.home.presets.fig6_home`).
    """
    if sim.hot_water_draws is None or sim.config.water_heater is None:
        raise ValueError("home was not simulated with a water heater")
    rest = sim.aggregate_without(WATER_HEATER_NAME)
    controller = CHPrController(sim.config.water_heater, config, rng)
    chpr_power, tank = controller.control(rest, sim.hot_water_draws)

    baseline_power, _ = thermostat_power(
        sim.hot_water_draws, rest.period_s, sim.config.water_heater
    )
    visible_true = rest.with_values(rest.values + chpr_power)
    from ..home.meter import SmartMeter

    metered = SmartMeter(sim.config.meter).observe(visible_true, rng)
    period_h = rest.period_s / 3600.0
    extra_kwh = float((chpr_power.sum() - baseline_power.sum()) * period_h / 1000.0)
    return DefenseOutcome(
        visible=metered,
        extra_energy_kwh=extra_kwh,
        comfort_violation_fraction=tank.comfort_violation_fraction,
        utility_distortion=float(np.abs(chpr_power - baseline_power).mean()),
    )


#: Fixed daily hot-water schedule of the retrofit adapter: (hour, liters,
#: minutes).  Clock-anchored and identical every day, so the draws carry no
#: occupancy information of their own (unlike the simulator's
#: occupancy-coupled draws, which only a full :class:`HomeSimulation` has).
RETROFIT_DRAW_SCHEDULE: tuple[tuple[float, float, float], ...] = (
    (7.2, 48.0, 8.0),  # morning shower
    (12.5, 6.0, 2.0),  # midday sink draw
    (18.7, 8.0, 2.0),  # dinner sink draw
    (21.0, 42.0, 8.0),  # evening shower
)


class CHPrTraceDefense(TraceDefense):
    """CHPr as a sweepable :class:`TraceDefense` — the retrofit view.

    :func:`apply_chpr` is the faithful Fig. 6 experiment, but it needs a
    full :class:`HomeSimulation` (sub-metered heater, real draw events),
    which the generic defense registry and the privacy-knob sweep engine
    cannot provide — they only see a metered trace.  This adapter closes
    that gap with the *retrofit* interpretation: the home is assumed to
    own an electric water heater whose thermostat-driven load is embedded
    in ``true_load``, drawing hot water on the fixed daily schedule
    :data:`RETROFIT_DRAW_SCHEDULE`.  CHPr then *reschedules* that load::

        visible = max(true_load - thermostat_power + chpr_power, 0)

    so the meter sees the thermostat's reactive bursts replaced by CHPr's
    occupancy-masking ones.  Energy is conserved up to the tank's physics
    (``extra_energy_kwh`` reports the difference), and the shared
    :class:`~repro.home.waterheater.WaterHeaterTank` model still enforces
    temperature bounds and comfort, so the adapter cannot promise more
    masking than a real tank could fund.

    ``strength`` scales the masking burst budget (the knob's dial for
    CHPr): at 1.0 bursts target the full busy-window range, at lower
    values proportionally gentler injections.
    """

    name = "chpr"

    def __init__(
        self,
        heater: WaterHeaterConfig | None = None,
        config: CHPrConfig | None = None,
        strength: float = 1.0,
    ) -> None:
        if not 0.0 < strength <= 1.0:
            raise ValueError("strength must be in (0, 1]")
        self.heater = heater or WaterHeaterConfig()
        self.strength = strength
        self.config = config or CHPrConfig(
            mask_mean_range_w=(250.0 * strength, 900.0 * strength),
        )
        #: diagnostics from the last ``apply`` call (tank for comfort and
        #: temperature-bound checks, controller for ``last_temps_c``)
        self.last_tank: WaterHeaterTank | None = None
        self.last_controller: CHPrController | None = None

    def _draws(self, true_load: PowerTrace) -> np.ndarray:
        """Per-sample draw volumes (liters) on the trace's own clock."""
        n = len(true_load)
        period = true_load.period_s
        draws = np.zeros(n)
        first_day = int(np.floor(true_load.start_s / SECONDS_PER_DAY))
        last_day = int(np.ceil(true_load.end_s / SECONDS_PER_DAY))
        for day in range(first_day, last_day + 1):
            for hour, liters, minutes in RETROFIT_DRAW_SCHEDULE:
                t = day * SECONDS_PER_DAY + hour * SECONDS_PER_HOUR
                i0 = int(round((t - true_load.start_s) / period))
                if not 0 <= i0 < n:
                    continue
                i1 = min(n, i0 + max(1, int(round(minutes * 60.0 / period))))
                draws[i0:i1] += liters / (i1 - i0)
        return draws

    def apply(self, true_load, rng=None) -> DefenseOutcome:
        rng = np.random.default_rng(rng)
        period = true_load.period_s
        draws = self._draws(true_load)
        baseline_power, _ = thermostat_power(draws, period, self.heater)
        controller = CHPrController(self.heater, self.config, rng)
        chpr_power, tank = controller.control(true_load, draws)
        visible = true_load.with_values(
            np.maximum(true_load.values - baseline_power + chpr_power, 0.0)
        )
        self.last_tank = tank
        self.last_controller = controller
        period_h = period / 3600.0
        extra_kwh = float(
            (chpr_power.sum() - baseline_power.sum()) * period_h / 1000.0
        )
        return DefenseOutcome(
            visible=visible,
            extra_energy_kwh=extra_kwh,
            comfort_violation_fraction=tank.comfort_violation_fraction,
            utility_distortion=self._distortion(visible, true_load),
        )
