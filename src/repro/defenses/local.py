"""Local IoT services (Sec. III-D): keep the data, ship the model.

The principle behind the cryptographic approach generalized: if raw data
never leaves the home, there is nothing for the cloud to mine.  The local
hub stores the fine-grained trace, runs analytics *locally* (including
models the cloud ships down), and exposes only coarse, purpose-limited
aggregates.  The privacy claim is testable: the shared payload is too
coarse for NIOM/NILM (see the test suite), while the hub still delivers
the service's functionality (billing totals, schedule recommendations,
locally evaluated cloud models).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..timeseries import PowerTrace, SECONDS_PER_DAY, daily_profile


@dataclass(frozen=True)
class SharedPayload:
    """Everything the hub is willing to send upstream.

    Deliberately coarse: energy totals and a few-bin average daily shape
    across the whole period — enough for billing and fleet analytics.  Note
    the honest caveat: even an *average* daily profile leaks the
    household's typical schedule (commute hours); what it cannot leak is
    any specific day's occupancy — vacations, sick days, who was home last
    Tuesday — which is the per-day information NIOM extracts from raw
    traces.
    """

    total_energy_kwh: float
    daily_energy_kwh: tuple[float, ...]
    mean_daily_profile_w: tuple[float, ...]  # few bins, averaged over weeks

    def as_trace(self) -> PowerTrace:
        """The adversary's best reconstruction: the average daily profile
        tiled over the reporting period (what an attacker would have to
        run NIOM on)."""
        days = max(1, len(self.daily_energy_kwh))
        bins = len(self.mean_daily_profile_w)
        values = np.tile(np.asarray(self.mean_daily_profile_w), days)
        return PowerTrace(values, 86400.0 / bins, 0.0, "W")


@dataclass
class ScheduleRecommendation:
    """A thermostat-style schedule derived locally."""

    setback_start_hour: int
    setback_end_hour: int
    rationale: str


class LocalAnalyticsHub:
    """A home hub that owns the raw data and answers purpose-limited queries."""

    def __init__(self, trace: PowerTrace) -> None:
        if len(trace) == 0:
            raise ValueError("empty trace")
        self._trace = trace

    # -- functionality the service still gets --------------------------------
    def total_energy_kwh(self) -> float:
        return self._trace.energy_kwh()

    def bill_cents(self, cents_per_kwh: float) -> float:
        """Billing needs only the total — computed locally."""
        if cents_per_kwh < 0:
            raise ValueError("tariff cannot be negative")
        return self.total_energy_kwh() * cents_per_kwh

    def recommend_schedule(self) -> ScheduleRecommendation:
        """Derive a setback schedule from the local daily profile.

        This is the smart-thermostat use case: the *insight* (when the home
        is typically idle) is computed at home; only the resulting schedule
        would ever need to leave.
        """
        profile = daily_profile(self._trace, bins_per_day=24)
        threshold = 0.6 * float(np.median(profile[profile > 0])) if profile.any() else 0.0
        idle = profile < threshold
        # longest idle run between 6h and 22h
        best_start, best_len = 8, 0
        run_start, run_len = None, 0
        for hour in range(6, 22):
            if idle[hour]:
                if run_start is None:
                    run_start, run_len = hour, 0
                run_len += 1
                if run_len > best_len:
                    best_start, best_len = run_start, run_len
            else:
                run_start = None
        if best_len == 0:
            best_start, best_len = 9, 7  # default workday setback
        return ScheduleRecommendation(
            setback_start_hour=best_start,
            setback_end_hour=best_start + best_len,
            rationale="locally computed idle window",
        )

    def evaluate_cloud_model(self, model, features: np.ndarray) -> np.ndarray:
        """Run a cloud-shipped model locally (the transfer-learning path).

        The model object comes from the cloud; the features come from local
        data; only ``model.predict``'s *outputs* exist to be shared.
        """
        return model.predict(features)

    # -- what actually leaves the home ---------------------------------------
    def shared_payload(self) -> SharedPayload:
        trace = self._trace
        # one bucket per started day, so a trailing partial day's energy is
        # reported rather than silently dropped; every slice is clamped to
        # the trace span and therefore always overlaps — no handler needed
        # (``sum(daily) == total_energy_kwh`` up to float rounding).
        n_days = max(1, int(math.ceil(trace.duration_s / SECONDS_PER_DAY)))
        daily = []
        for day in range(n_days):
            t0 = trace.start_s + day * SECONDS_PER_DAY
            t1 = min(t0 + SECONDS_PER_DAY, trace.end_s)
            daily.append(trace.slice_time(t0, t1).energy_kwh())
        return SharedPayload(
            total_energy_kwh=trace.energy_kwh(),
            daily_energy_kwh=tuple(daily),
            mean_daily_profile_w=tuple(daily_profile(trace, 6)),
        )
