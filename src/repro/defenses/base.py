"""Common defense interface.

Sec. III of the paper surveys defenses that transform what leaves the home:
obfuscation (CHPr, batteries), differential privacy, cryptographic billing,
and local services.  They share a shape — given the home's true demand (and
sometimes a physical resource), produce the externally visible trace — so
all defenses implement :class:`TraceDefense` and report their operating
cost, which is what the paper's privacy/functionality/cost tradeoff needs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..timeseries import PowerTrace


@dataclass(frozen=True)
class DefenseOutcome:
    """What a defense produced.

    Attributes
    ----------
    visible:
        The trace the meter now reports (what the adversary sees).
    extra_energy_kwh:
        Additional energy consumed by the defense itself (0 for free
        defenses like CHPr, positive for battery losses or noise loads).
    comfort_violation_fraction:
        Fraction of time a physical constraint (e.g. hot-water delivery)
        was violated; a usable defense keeps this near zero.
    utility_distortion:
        Mean absolute difference (W) between the visible trace and the true
        one — a proxy for how much legitimate grid analytics are damaged.
    """

    visible: PowerTrace
    extra_energy_kwh: float = 0.0
    comfort_violation_fraction: float = 0.0
    utility_distortion: float = 0.0


class TraceDefense(ABC):
    """A transformation of the home's metered view."""

    #: human-readable identifier used by the registry and the knob
    name: str = "defense"

    @abstractmethod
    def apply(
        self, true_load: PowerTrace, rng: np.random.Generator | int | None = None
    ) -> DefenseOutcome:
        """Produce the externally visible trace for the given true load."""

    @staticmethod
    def _distortion(visible: PowerTrace, true_load: PowerTrace) -> float:
        n = min(len(visible), len(true_load))
        return float(np.abs(visible.values[:n] - true_load.values[:n]).mean())


class IdentityDefense(TraceDefense):
    """The do-nothing defense: the meter reports the true load unchanged.

    It anchors the privacy-utility frontier (knob setting 0, the "all
    value, no privacy" end of Sec. III-E's dial) and gives the invariant
    suite its calibration point: zero distortion, zero cost, zero comfort
    impact — by construction, not by accident.
    """

    name = "identity"

    def apply(self, true_load, rng=None) -> DefenseOutcome:
        return DefenseOutcome(visible=true_load)
