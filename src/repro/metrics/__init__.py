"""Domain metrics used across the experiments.

Thin, documented wrappers tying each paper metric to its implementation:
MCC (Fig. 6), the disaggregation error factor (Fig. 2), and localization
distance in km (Fig. 5).
"""

from ..attacks.nilm.common import disaggregation_error
from ..ml.metrics import accuracy, f1_score, macro_f1, mcc, precision, recall
from ..solar.geo import haversine_km

__all__ = [
    "disaggregation_error",
    "accuracy",
    "f1_score",
    "macro_f1",
    "mcc",
    "precision",
    "recall",
    "haversine_km",
]
