"""Deterministic feed-fault injection for the streaming engine.

The :class:`~repro.stream.guard.FeedGuard`'s recovery paths — value
quarantine, gap handling, duplicate/late rejection, the max-gap
watchdog — only count as *working* if tests can produce the dirty feeds
they guard against.  This module degrades a tagged chunk stream
(``(at, chunk)`` pairs from :func:`~repro.stream.source.tagged_chunks`)
with four transport-fault kinds:

``dropout``
    the chunk never arrives (the guard sees a clock gap);
``corrupt``
    some samples are replaced with NaN / ``inf`` / negative power
    (exercises the value-quarantine policies);
``duplicate``
    the chunk is delivered twice with the same ``at`` (exercises
    duplicate rejection);
``stall``
    the chunk is held back and delivered ``stall_chunks`` chunks late
    (the guard first sees a gap at its position, then rejects the
    stale delivery).

Injection is **deterministic and seed-driven**, mirroring
:mod:`repro.fleet.faults`: whether a fault fires at ``chunk_index`` is a
pure function of ``sha256(seed, chunk_index, kind)``, so the same plan
degrades the same chunks on every run, which is what lets the chaos
tests pin byte-identical degraded outputs across two runs.  Corrupt
sample positions are drawn from the same digest, so even *which* samples
go bad is reproducible.

Activation can cross a process boundary through ``REPRO_STREAM_FAULTS``
(a JSON-encoded plan), the streaming twin of ``REPRO_FLEET_FAULTS`` —
read by :func:`~repro.fleet.engine.run_stream_job` inside fleet workers
and by the ``repro stream`` CLI.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

#: Environment hook; JSON of :meth:`StreamFaultPlan.to_json`.
STREAM_FAULTS_ENV = "REPRO_STREAM_FAULTS"

STREAM_FAULT_KINDS = ("dropout", "corrupt", "duplicate", "stall")

CORRUPT_KINDS = ("nan", "inf", "negative")


@dataclass(frozen=True)
class StreamFaultPlan:
    """Which chunks to degrade, and how.

    Each fault kind has an independent rate in ``[0, 1]``; whether kind
    ``k`` fires at chunk ``i`` is drawn from ``sha256(seed:i:k)``.  A
    chunk can suffer several faults at once (a corrupt duplicate is a
    realistic transport pathology).  ``corrupt_fraction`` is the share
    of samples poisoned within a corrupted chunk (at least one), and
    ``corrupt_kind`` what they become.  ``stall_chunks`` is how many
    subsequent chunks overtake a stalled one.
    """

    seed: int = 0
    dropout_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    stall_rate: float = 0.0
    corrupt_fraction: float = 0.25
    corrupt_kind: str = "nan"
    stall_chunks: int = 2

    def __post_init__(self) -> None:
        for name in (
            "dropout_rate",
            "corrupt_rate",
            "duplicate_rate",
            "stall_rate",
            "corrupt_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.corrupt_kind not in CORRUPT_KINDS:
            raise ValueError(
                f"corrupt_kind must be one of {CORRUPT_KINDS}, "
                f"got {self.corrupt_kind!r}"
            )
        if self.stall_chunks < 1:
            raise ValueError("stall_chunks must be >= 1")

    def _draw(self, chunk_index: int, kind: str) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{chunk_index}:{kind}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def targets(self, chunk_index: int, kind: str) -> bool:
        """True when fault ``kind`` fires at ``chunk_index``."""
        if kind not in STREAM_FAULT_KINDS:
            raise ValueError(f"unknown stream fault kind {kind!r}")
        rate = getattr(self, f"{kind}_rate")
        if rate <= 0.0:
            return False
        return self._draw(chunk_index, kind) < rate

    def corrupt(self, chunk_index: int, values: np.ndarray) -> np.ndarray:
        """A poisoned copy of ``values`` (which samples, from the digest)."""
        n = len(values)
        if n == 0:
            return values
        n_bad = max(1, int(round(n * self.corrupt_fraction)))
        digest = hashlib.sha256(
            f"{self.seed}:{chunk_index}:positions".encode()
        ).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "big"))
        positions = rng.choice(n, size=min(n_bad, n), replace=False)
        out = values.copy()
        if self.corrupt_kind == "nan":
            out[positions] = np.nan
        elif self.corrupt_kind == "inf":
            out[positions] = np.inf
        else:
            out[positions] = -np.abs(out[positions]) - 1.0
        return out

    # -- env round-trip -------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "dropout_rate": self.dropout_rate,
                "corrupt_rate": self.corrupt_rate,
                "duplicate_rate": self.duplicate_rate,
                "stall_rate": self.stall_rate,
                "corrupt_fraction": self.corrupt_fraction,
                "corrupt_kind": self.corrupt_kind,
                "stall_chunks": self.stall_chunks,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, doc: str) -> "StreamFaultPlan":
        raw = json.loads(doc)
        return cls(
            seed=int(raw.get("seed", 0)),
            dropout_rate=float(raw.get("dropout_rate", 0.0)),
            corrupt_rate=float(raw.get("corrupt_rate", 0.0)),
            duplicate_rate=float(raw.get("duplicate_rate", 0.0)),
            stall_rate=float(raw.get("stall_rate", 0.0)),
            corrupt_fraction=float(raw.get("corrupt_fraction", 0.25)),
            corrupt_kind=str(raw.get("corrupt_kind", "nan")),
            stall_chunks=int(raw.get("stall_chunks", 2)),
        )


def active_stream_plan() -> StreamFaultPlan | None:
    """The plan exported through :data:`STREAM_FAULTS_ENV`, if any.

    A malformed value raises rather than silently disarming the
    harness: a chaos test whose faults never fire would pass vacuously.
    """
    doc = os.environ.get(STREAM_FAULTS_ENV)
    if not doc:
        return None
    return StreamFaultPlan.from_json(doc)


def inject_stream_faults(
    feed: Iterable[tuple[int, np.ndarray]], plan: StreamFaultPlan
) -> Iterator[tuple[int, np.ndarray]]:
    """Degrade a tagged chunk feed according to ``plan``.

    Yields ``(at, chunk)`` pairs in delivery order — which, with stalls,
    is no longer clock order.  Stalled chunks still pending at the end
    of the feed are delivered last (a real buffer flushing on close);
    their lateness is the guard's problem, by design.
    """
    stalled: list[tuple[int, int, np.ndarray]] = []  # (due, at, chunk)
    delivered = 0
    for index, (at, chunk) in enumerate(feed):
        if plan.targets(index, "dropout"):
            continue
        if plan.targets(index, "corrupt"):
            chunk = plan.corrupt(index, chunk)
        if plan.targets(index, "stall"):
            stalled.append((delivered + plan.stall_chunks, at, chunk))
            continue
        delivered += 1
        yield at, chunk
        if plan.targets(index, "duplicate"):
            delivered += 1
            yield at, chunk
        due_now = [s for s in stalled if s[0] <= delivered]
        if due_now:
            stalled = [s for s in stalled if s[0] > delivered]
            for _, late_at, late_chunk in due_now:
                delivered += 1
                yield late_at, late_chunk
    for _, late_at, late_chunk in sorted(stalled):
        yield late_at, late_chunk
