"""Incremental edge detection and Hart pairing with exact seam contracts.

The batch :func:`repro.timeseries.detect_edges` looks both backward and
forward around each candidate: a step at sample ``i`` needs up to
``settle_samples`` of history for its pre-level median and up to
``settle_samples`` of *future* for its post-level median.  A streaming
detector therefore cannot decide a candidate the moment it arrives — it
must carry seam state across chunk boundaries:

* the trailing ``2 * settle_samples`` raw samples (enough history for the
  pre-window of any still-pending candidate);
* the candidates whose post-windows are not yet full (``index +
  settle_samples > samples seen``), finalized once enough future arrives
  or the stream closes (where the batch pass truncates too).

With that carry, :class:`StreamingEdgeDetector` emits **bitwise-identical
edges to the whole-trace pass for every chunking** — including chunk size
1 — because every median is computed over exactly the float64 values the
batch slice holds.  The equivalence is pinned by
``tests/test_stream.py`` across chunk sizes and seam-straddling cases.

:class:`StreamingHartPairer` carries the other seam state of Hart's
method: rising edges whose falling partner has not arrived yet stay in
the open set across pushes, reproducing :func:`repro.timeseries.pair_edges`
greedy decisions exactly.
"""

from __future__ import annotations

import numpy as np

from ..obs import TELEMETRY
from ..timeseries import Edge
from .source import StreamClock


class StreamingEdgeDetector:
    """Push-based edge detection, bitwise-equal to the batch pass.

    Parameters mirror :func:`repro.timeseries.detect_edges`.  Use
    :meth:`push` for each arriving chunk (returns the edges finalized by
    that chunk) and :meth:`finalize` at end-of-stream (returns the edges
    whose post-windows the stream's end truncates, exactly as the batch
    pass truncates windows at the end of the array).
    """

    def __init__(
        self, min_delta_w: float = 30.0, settle_samples: int = 1
    ) -> None:
        if min_delta_w <= 0:
            raise ValueError("min_delta_w must be positive")
        if settle_samples < 1:
            raise ValueError("settle_samples must be >= 1")
        self.min_delta_w = float(min_delta_w)
        self.settle_samples = int(settle_samples)
        self._clock = StreamClock(1.0)
        self._carry = np.empty(0)
        self._total = 0
        self._pending: list[int] = []
        self._edges: list[Edge] = []
        self._finalized = False

    # ------------------------------------------------------------------
    # Stream protocol
    # ------------------------------------------------------------------
    def open(self, clock: StreamClock) -> None:
        self._clock = clock

    def push(self, values: np.ndarray) -> list[Edge]:
        """Consume one chunk; return the edges it allowed us to finalize."""
        if self._finalized:
            raise RuntimeError("stream already finalized")
        values = np.asarray(values, dtype=float)
        if values.ndim != 1:
            raise ValueError("chunks must be 1-D sample arrays")
        if len(values) == 0:
            return []
        old_total = self._total
        work = (
            np.concatenate([self._carry, values])
            if len(self._carry)
            else values
        )
        base = old_total - len(self._carry)
        new_total = old_total + len(values)

        # scan the newly decidable candidate positions: a global index i is
        # a candidate when |v[i] - v[i-1]| crosses the threshold, decidable
        # once v[i] exists.  Previous pushes scanned up to old_total - 1.
        # The base + 1 floor also requires the predecessor v[i-1] to be
        # held in ``work`` — equivalent to the old max(1, old_total) on
        # every contiguous path, and the reason the first post-resync
        # sample (whose predecessor died with the discontinuity) can
        # never become a candidate.
        lo = max(base + 1, old_total)
        j0 = lo - base
        if j0 < len(work):
            diffs = np.abs(work[j0:] - work[j0 - 1 : len(work) - 1])
            for j in np.flatnonzero(diffs >= self.min_delta_w):
                self._pending.append(base + j0 + int(j))

        # finalize candidates whose post-window is now full
        emitted: list[Edge] = []
        still_pending: list[int] = []
        for gi in self._pending:
            if gi + self.settle_samples <= new_total:
                edge = self._finalize_candidate(gi, work, base, new_total)
                if edge is not None:
                    emitted.append(edge)
            else:
                still_pending.append(gi)
        self._pending = still_pending
        self._edges.extend(emitted)

        # clamp to what ``work`` actually holds: after a resync the wall
        # clock (new_total) runs ahead of the buffered history, and a
        # min(new_total, ...) bound would slice with a negative start —
        # silently shedding carry the pre-windows still need.  On every
        # contiguous path len(work) >= min(new_total, 2 * settle), so the
        # two bounds agree bitwise there.
        keep = min(len(work), 2 * self.settle_samples)
        self._carry = work[len(work) - keep :].copy() if keep else np.empty(0)
        self._total = new_total
        TELEMETRY.count("stream.edges.candidates", len(emitted))
        return emitted

    def finalize(self) -> list[Edge]:
        """Close the stream: decide pending candidates at the true end.

        The batch pass truncates a candidate's post-window at the array
        end (``hi = min(n, i + settle)``); the same truncation applies
        here, so the union of all :meth:`push` returns plus this call is
        the exact batch edge list.
        """
        if self._finalized:
            return []
        self._finalized = True
        base = self._total - len(self._carry)
        tail: list[Edge] = []
        for gi in self._pending:
            edge = self._finalize_candidate(gi, self._carry, base, self._total)
            if edge is not None:
                tail.append(edge)
        self._pending = []
        self._edges.extend(tail)
        return tail

    def resync(self, gap_samples: int = 0) -> None:
        """Reset seam state at a feed discontinuity.

        Pending candidates (whose settle windows would span the gap) and
        the carried history are discarded — their medians would mix pre-
        and post-gap power levels, producing edges no batch pass over
        either segment would emit.  ``gap_samples`` advances the sample
        counter so post-gap edge indices and times stay on the wall
        clock.  Already-finalized edges are kept.
        """
        if self._finalized:
            raise RuntimeError("stream already finalized")
        if gap_samples < 0:
            raise ValueError("gap_samples must be >= 0")
        self._pending = []
        self._carry = np.empty(0)
        self._total += int(gap_samples)

    @property
    def edges(self) -> list[Edge]:
        """Every edge finalized so far, in index order."""
        return list(self._edges)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _finalize_candidate(
        self, gi: int, work: np.ndarray, base: int, total: int
    ) -> Edge | None:
        s = self.settle_samples
        local = gi - base
        # clamp the pre-window at ``base`` — on the contiguous path the
        # carry always holds >= settle_samples of history (no-op there);
        # after a resync the history before the discontinuity is gone, so
        # the pre-median is honestly computed over what survives.
        lo = max(0, gi - s, base) - base
        hi = min(total, gi + s) - base
        if lo >= local or local >= hi:
            # no surviving pre- or post-window (only reachable if seam
            # bookkeeping sheds history): better no edge than a NaN edge
            return None
        pre = float(np.median(work[lo:local]))
        post = float(np.median(work[local:hi]))
        delta = post - pre
        if abs(delta) < self.min_delta_w:
            return None
        return Edge(
            index=gi,
            time_s=self._clock.start_s + gi * self._clock.period_s,
            delta_w=delta,
            pre_w=pre,
            post_w=post,
        )

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "min_delta_w": self.min_delta_w,
            "settle_samples": self.settle_samples,
            "clock": self._clock.as_dict(),
            "carry": self._carry.copy(),
            "total": self._total,
            "pending": list(self._pending),
            "edges": list(self._edges),
            "finalized": self._finalized,
        }

    def load_state(self, state: dict) -> None:
        if (
            state["min_delta_w"] != self.min_delta_w
            or state["settle_samples"] != self.settle_samples
        ):
            raise ValueError("state was saved with different parameters")
        self._clock = StreamClock(**state["clock"])
        self._carry = np.asarray(state["carry"], dtype=float).copy()
        self._total = int(state["total"])
        self._pending = list(state["pending"])
        self._edges = list(state["edges"])
        self._finalized = bool(state["finalized"])


class StreamingHartPairer:
    """Incremental rise/fall matching over a finalized edge stream.

    Replays :func:`repro.timeseries.pair_edges` greedy policy one edge at
    a time: each falling edge matches the most recent unmatched rising
    edge within ``tolerance_w`` (and ``max_gap_s``, when set).  The open
    rising edges are the seam state — an appliance switched on in one
    chunk pairs with its off-edge chunks later, exactly as the batch pass
    pairs them over the whole trace.
    """

    def __init__(
        self, tolerance_w: float = 50.0, max_gap_s: float | None = None
    ) -> None:
        self.tolerance_w = float(tolerance_w)
        self.max_gap_s = max_gap_s
        self._open_rises: list[Edge] = []
        self._pairs: list[tuple[Edge, Edge]] = []

    def feed(self, edges: list[Edge]) -> list[tuple[Edge, Edge]]:
        """Consume newly finalized edges; return the pairs they closed."""
        closed: list[tuple[Edge, Edge]] = []
        for edge in edges:
            if edge.is_rising:
                self._open_rises.append(edge)
                continue
            best: Edge | None = None
            for rise in reversed(self._open_rises):
                if (
                    self.max_gap_s is not None
                    and edge.time_s - rise.time_s > self.max_gap_s
                ):
                    # same early termination as pair_edges: older rises
                    # only have larger gaps
                    break
                if abs(rise.delta_w + edge.delta_w) <= self.tolerance_w:
                    best = rise
                    break
            if best is not None:
                self._open_rises.remove(best)
                closed.append((best, edge))
        self._pairs.extend(closed)
        return closed

    def finalize(self) -> list[tuple[Edge, Edge]]:
        """All pairs ordered by rise time (the batch output order)."""
        return sorted(self._pairs, key=lambda p: p[0].time_s)

    def resync(self, gap_samples: int = 0) -> None:
        """Drop the open rising edges at a feed discontinuity.

        An appliance that switched on before the gap may have switched
        off *inside* it; pairing its rise with a post-gap fall would
        fabricate a run-length no batch pass over a continuous trace
        could produce.  Completed pairs are kept.
        """
        del gap_samples  # pairing state carries no sample clock
        self._open_rises = []

    @property
    def open_rises(self) -> list[Edge]:
        """Rising edges still waiting for a falling partner."""
        return list(self._open_rises)

    def state_dict(self) -> dict:
        return {
            "tolerance_w": self.tolerance_w,
            "max_gap_s": self.max_gap_s,
            "open_rises": list(self._open_rises),
            "pairs": list(self._pairs),
        }

    def load_state(self, state: dict) -> None:
        if (
            state["tolerance_w"] != self.tolerance_w
            or state["max_gap_s"] != self.max_gap_s
        ):
            raise ValueError("state was saved with different parameters")
        self._open_rises = list(state["open_rises"])
        self._pairs = list(state["pairs"])
