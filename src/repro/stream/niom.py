"""Online NIOM: rolling-window occupancy statistics over a live feed.

:class:`StreamingThresholdNIOM` mirrors
:class:`repro.attacks.ThresholdNIOM` exactly.  The feature extraction is
incremental — each completed decision window's (mean, std, range, edge
count) row is computed the moment its last sample arrives, from the same
contiguous float64 block the batch reshape sees, so the accumulated
feature matrix is bitwise-identical to :func:`repro.timeseries.window_features`
for every chunking.  The calibration step (quietest-windows baseline)
is *global* in the batch attack — it ranks all windows — so the final
labels are produced at :meth:`finalize`, bitwise-equal to the batch
``detect``.  While the stream is live, :meth:`provisional_occupancy`
applies the same calibration to the windows seen so far, which is what an
online observer actually has.

Seam state carried across pushes: the partial window buffer (fewer than
``block`` samples) and the accumulated feature rows.
"""

from __future__ import annotations

import numpy as np

from ..attacks.niom import NIOMResult, _apply_night_prior
from ..obs import TELEMETRY
from ..timeseries import BinaryTrace
from .source import StreamClock


class StreamingThresholdNIOM:
    """Push-based :class:`~repro.attacks.ThresholdNIOM`.

    Parameters match the batch attack.  ``open`` fixes the window clock,
    ``push`` consumes sample chunks in O(chunk), ``finalize`` runs the
    global quiet-baseline calibration and returns the same
    :class:`~repro.attacks.niom.NIOMResult` the batch attack returns.
    """

    def __init__(
        self,
        window_s: float = 900.0,
        baseline_quantile: float = 0.15,
        mean_margin: float = 1.6,
        std_margin: float = 2.5,
        night_prior: bool = False,
    ) -> None:
        if not 0.0 < baseline_quantile < 0.5:
            raise ValueError("baseline_quantile must be in (0, 0.5)")
        if mean_margin <= 1.0 or std_margin <= 1.0:
            raise ValueError("margins must exceed 1.0")
        self.window_s = float(window_s)
        self.baseline_quantile = baseline_quantile
        self.mean_margin = mean_margin
        self.std_margin = std_margin
        self.night_prior = night_prior
        self._clock = StreamClock(1.0)
        self._eff_window_s = self.window_s
        self._block = 1
        self._buffer = np.empty(0)
        self._rows: list[np.ndarray] = []
        self._total = 0
        self._opened = False

    # ------------------------------------------------------------------
    # Stream protocol
    # ------------------------------------------------------------------
    def open(self, clock: StreamClock) -> None:
        self._clock = clock
        # Same clamp as the batch _window_clock: never decide finer than
        # the feed itself (a coarsened defense output stays decidable).
        self._eff_window_s = max(self.window_s, clock.period_s)
        self._block = int(round(self._eff_window_s / clock.period_s))
        if self._block < 1:
            raise ValueError("window shorter than one sample period")
        self._opened = True

    def push(self, values: np.ndarray) -> int:
        """Consume a chunk; return the number of windows completed by it."""
        if not self._opened:
            raise RuntimeError("open() must be called before push()")
        values = np.asarray(values, dtype=float)
        if len(values) == 0:
            return 0
        self._total += len(values)
        work = (
            np.concatenate([self._buffer, values])
            if len(self._buffer)
            else values
        )
        n_complete = len(work) // self._block
        for w in range(n_complete):
            block = work[w * self._block : (w + 1) * self._block]
            self._rows.append(self._feature_row(block))
        self._buffer = work[n_complete * self._block :].copy()
        TELEMETRY.count("stream.niom.windows", n_complete)
        return n_complete

    def finalize(self) -> NIOMResult:
        """Global calibration over all windows — the exact batch output."""
        duration_s = self._total * self._clock.period_s
        if int(duration_s // self._eff_window_s) < 4:
            raise ValueError("trace too short for occupancy detection")
        features = np.stack(self._rows)
        means = features[:, 0]
        stds = features[:, 1]
        n_base = max(3, int(len(means) * self.baseline_quantile))
        quiet = np.argsort(means)[:n_base]
        base_mean = float(np.median(means[quiet])) + 1.0
        base_std = float(np.median(stds[quiet])) + 1.0
        occupied = (means > self.mean_margin * base_mean) | (
            stds > self.std_margin * base_std
        )
        occupied = occupied.astype(int)
        if self.night_prior:
            occupied = _apply_night_prior(
                occupied, self._eff_window_s, self._clock.start_s
            )
        return NIOMResult(
            occupancy=BinaryTrace(
                occupied, self._eff_window_s, self._clock.start_s
            ),
            features=features,
        )

    def provisional_occupancy(self) -> np.ndarray | None:
        """Labels an online observer would hold *right now*.

        Applies the quiet-baseline calibration to the windows completed so
        far.  Returns ``None`` until at least four windows exist (the same
        floor the batch attack enforces for a whole trace).  Early labels
        may be revised by later, quieter windows shifting the baseline —
        that revision is inherent to self-calibrating NIOM, not a streaming
        artifact, and :meth:`finalize` always converges to the batch answer.
        """
        if len(self._rows) < 4:
            return None
        features = np.stack(self._rows)
        means = features[:, 0]
        stds = features[:, 1]
        n_base = max(3, int(len(means) * self.baseline_quantile))
        quiet = np.argsort(means)[:n_base]
        base_mean = float(np.median(means[quiet])) + 1.0
        base_std = float(np.median(stds[quiet])) + 1.0
        occupied = (means > self.mean_margin * base_mean) | (
            stds > self.std_margin * base_std
        )
        occupied = occupied.astype(int)
        if self.night_prior:
            occupied = _apply_night_prior(
                occupied, self._eff_window_s, self._clock.start_s
            )
        return occupied

    def resync(self, gap_samples: int = 0) -> None:
        """Reset seam state at a feed discontinuity.

        The partial feature window is discarded — completing it with
        post-gap samples would compute window statistics over a block
        that never existed on the wall clock.  ``gap_samples`` advances
        the sample counter so :meth:`finalize`'s duration floor stays
        wall-clock-true; completed feature rows are kept (the window
        grid therefore resumes at the next sample, shifted by whatever
        the gap consumed — documented, not hidden).
        """
        if gap_samples < 0:
            raise ValueError("gap_samples must be >= 0")
        self._buffer = np.empty(0)
        self._total += int(gap_samples)

    @property
    def n_windows(self) -> int:
        return len(self._rows)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _feature_row(block: np.ndarray) -> np.ndarray:
        # One row of repro.timeseries.window_features, over the identical
        # contiguous float64 block the batch reshape addresses — every
        # reduction therefore returns bitwise-identical values.
        mean = block.mean()
        std = block.std()
        rng = block.max() - block.min()
        diffs = np.abs(np.diff(block))
        threshold = 2.0 * max(std, 1.0)
        edge_count = float((diffs > threshold).sum())
        return np.array([mean, std, rng, edge_count])

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "window_s": self.window_s,
            "baseline_quantile": self.baseline_quantile,
            "mean_margin": self.mean_margin,
            "std_margin": self.std_margin,
            "night_prior": self.night_prior,
            "clock": self._clock.as_dict(),
            "buffer": self._buffer.copy(),
            "rows": [r.copy() for r in self._rows],
            "total": self._total,
            "opened": self._opened,
        }

    def load_state(self, state: dict) -> None:
        for key in (
            "window_s",
            "baseline_quantile",
            "mean_margin",
            "std_margin",
            "night_prior",
        ):
            if state[key] != getattr(self, key):
                raise ValueError("state was saved with different parameters")
        self._clock = StreamClock(**state["clock"])
        self._opened = bool(state["opened"])
        if self._opened:
            self.open(self._clock)
        self._buffer = np.asarray(state["buffer"], dtype=float).copy()
        self._rows = [np.asarray(r, dtype=float).copy() for r in state["rows"]]
        self._total = int(state["total"])
