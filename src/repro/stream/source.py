"""Chunk sources feeding a :class:`~repro.stream.session.StreamSession`.

The streaming engine's data model is deliberately thin: a source owns a
:class:`StreamClock` (the fixed sampling grid a real meter feed arrives
on) and yields plain float64 sample chunks.  Keeping chunks as bare numpy
arrays — not :class:`~repro.timeseries.PowerTrace` objects — matters for
throughput: at chunk size 1 the per-push cost must be dominated by attack
state updates, not object construction.

Two sources cover the evaluation workloads:

* :class:`TraceReplaySource` — replay any finished trace (simulator
  output or a ``load_trace_csv`` import) as a live feed, the controlled
  setting every streamed-vs-batch equivalence test uses;
* :class:`simulated_meter_source` — simulate a home and replay its
  metered trace, keeping the occupancy ground truth for scoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..timeseries import BinaryTrace, PowerTrace


@dataclass(frozen=True)
class StreamClock:
    """The sampling grid a stream's chunks arrive on.

    Matches the ``(period, start, unit)`` annotation of a
    :class:`~repro.timeseries.PowerTrace`: sample ``i`` of the stream
    covers absolute time ``start_s + i * period_s``.
    """

    period_s: float
    start_s: float = 0.0
    unit: str = "W"

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError(f"period_s must be positive, got {self.period_s}")

    @classmethod
    def of(cls, trace: PowerTrace) -> "StreamClock":
        return cls(trace.period_s, trace.start_s, trace.unit)

    def as_dict(self) -> dict:
        return {
            "period_s": self.period_s,
            "start_s": self.start_s,
            "unit": self.unit,
        }


def iter_chunks(values: np.ndarray, chunk_samples: int) -> Iterator[np.ndarray]:
    """Split ``values`` into consecutive chunks of ``chunk_samples``.

    The final chunk may be shorter; every sample is yielded exactly once
    (a replayed stream must cover the trace, unlike the windowed views
    used by batch feature extraction which drop partial tails).
    """
    if chunk_samples < 1:
        raise ValueError("chunk_samples must be >= 1")
    for i in range(0, len(values), chunk_samples):
        yield values[i : i + chunk_samples]


def tagged_chunks(
    values: np.ndarray, chunk_samples: int
) -> Iterator[tuple[int, np.ndarray]]:
    """Like :func:`iter_chunks`, but each chunk carries the absolute
    sample index of its first sample — the coordinate a
    :class:`~repro.stream.guard.FeedGuard` judges ordering by, and the
    handle the fault injector reorders and delays."""
    if chunk_samples < 1:
        raise ValueError("chunk_samples must be >= 1")
    for i in range(0, len(values), chunk_samples):
        yield i, values[i : i + chunk_samples]


@dataclass(frozen=True)
class TraceReplaySource:
    """Replay a finished trace as a sequence of sample chunks."""

    trace: PowerTrace

    @property
    def clock(self) -> StreamClock:
        return StreamClock.of(self.trace)

    def chunks(self, chunk_samples: int) -> Iterator[np.ndarray]:
        return iter_chunks(self.trace.values, chunk_samples)

    def __len__(self) -> int:
        return len(self.trace)


@dataclass(frozen=True)
class SimulatedMeterSource:
    """A simulated home replayed as a live meter feed.

    Carries the simulation's occupancy ground truth so a session's NIOM
    output can be scored after the fact — the attack itself never sees it.
    """

    metered: PowerTrace
    occupancy: BinaryTrace
    home_name: str

    @property
    def clock(self) -> StreamClock:
        return StreamClock.of(self.metered)

    def chunks(self, chunk_samples: int) -> Iterator[np.ndarray]:
        return iter_chunks(self.metered.values, chunk_samples)

    def __len__(self) -> int:
        return len(self.metered)


def simulated_meter_source(
    preset: str, days: int, seed: int
) -> SimulatedMeterSource:
    """Simulate ``preset`` for ``days`` and wrap it as a replayable feed."""
    from ..home import make_preset, simulate_home

    sim = simulate_home(make_preset(preset, seed), days, rng=seed)
    return SimulatedMeterSource(
        metered=sim.metered,
        occupancy=sim.occupancy,
        home_name=sim.config.name,
    )
