"""FeedGuard: admission control between a chunk source and a session.

Real meter feeds are dirty in ways PR 6's replay sources never are:
samples arrive as NaN/inf after collector hiccups, negative after CT
miswiring, chunks get duplicated by at-least-once transports, delivered
late after buffering, or simply never arrive.  :class:`FeedGuard` sits
between the source and the :class:`~repro.stream.session.StreamSession`
and turns that mess into the clean contiguous sample stream the attack
adapters' bitwise contracts assume.

The guard's coordinate system is the :class:`~repro.stream.source.StreamClock`
sample grid: every chunk carries an absolute index ``at`` of its first
sample (``None`` means "next expected"), and the guard keeps a cursor —
the next index it expects.  Comparing ``at`` to the cursor classifies the
chunk:

* ``at == cursor`` — in order; scrub values and deliver.
* ``at + len <= cursor`` — a duplicate (or fully late) chunk; rejected.
* ``at < cursor < at + len`` — a partial overlap; the already-delivered
  prefix is trimmed and the novel suffix delivered.
* ``at > cursor`` — a gap of ``at - cursor`` samples, handled by the
  configured gap policy (and checked against the max-gap watchdog).

**Clean-feed invariance** is the load-bearing property: when every chunk
arrives in order with finite non-negative values, the guard forwards the
*same array objects* untouched — no copy, no modification — so every
streamed-vs-batch bitwise equivalence pin holds with the guard in place.
The only clean-path cost is one ``isfinite``/sign scan per chunk
(measured in ``benchmarks/bench_stream_degradation.py``).

Duplicate rejection doubles as the resume mechanism: after a checkpoint
restore the cursor sits mid-stream, so replaying the feed from the start
makes the guard reject the already-consumed prefix and trim the chunk
that straddles the checkpoint — delivering exactly the unseen suffix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import TELEMETRY

#: Allowed ``GuardPolicy.value_policy`` settings.
VALUE_POLICIES = ("drop", "hold-last", "zero-fill")

#: Allowed ``GuardPolicy.gap_policy`` settings.
GAP_POLICIES = ("hold", "fill", "resync")


class FeedDead(RuntimeError):
    """The max-gap watchdog declared the feed dead.

    Raised by :meth:`FeedGuard.push` when a gap exceeds
    ``GuardPolicy.max_gap_samples``.  The guard records the verdict in
    its stats; callers finalize what they have and report ``feed_dead``.
    """


@dataclass(frozen=True)
class GuardPolicy:
    """How a :class:`FeedGuard` treats bad values and clock gaps.

    ``value_policy`` handles non-finite / negative-power samples:

    * ``"drop"`` — remove them (the delivered chunk shrinks; the guard's
      wall clock still advances over the dropped samples);
    * ``"hold-last"`` — replace each with the most recent good value
      (0.0 before any good sample);
    * ``"zero-fill"`` — replace each with 0.0.

    ``gap_policy`` handles ``at > cursor``:

    * ``"hold"`` — deliver post-gap chunks contiguously (the attacks'
      sample clock falls behind the wall clock by the gap);
    * ``"fill"`` — synthesize the gap as held-last-value samples and
      deliver those first (wall-clock-true, but the filled plateau is
      invented data);
    * ``"resync"`` — explicitly reset every attack's seam state via
      :meth:`StreamSession.resync` and advance their sample counters by
      the gap, so nothing decodes across the discontinuity and post-gap
      timestamps stay wall-clock-true.

    ``max_gap_samples`` arms the watchdog: a gap strictly larger than
    this declares the feed dead (:class:`FeedDead`).  ``None`` disables
    it.  All defaults are off-path on a clean feed.
    """

    value_policy: str = "hold-last"
    gap_policy: str = "resync"
    max_gap_samples: int | None = None

    def __post_init__(self) -> None:
        if self.value_policy not in VALUE_POLICIES:
            raise ValueError(
                f"value_policy must be one of {VALUE_POLICIES}, "
                f"got {self.value_policy!r}"
            )
        if self.gap_policy not in GAP_POLICIES:
            raise ValueError(
                f"gap_policy must be one of {GAP_POLICIES}, "
                f"got {self.gap_policy!r}"
            )
        if self.max_gap_samples is not None and self.max_gap_samples < 1:
            raise ValueError("max_gap_samples must be >= 1 (or None)")

    def as_dict(self) -> dict:
        return {
            "value_policy": self.value_policy,
            "gap_policy": self.gap_policy,
            "max_gap_samples": self.max_gap_samples,
        }


@dataclass
class GuardStats:
    """What the guard did to the feed, for reports and telemetry."""

    chunks: int = 0
    delivered_samples: int = 0
    quarantined_values: int = 0
    gaps: int = 0
    gap_samples: int = 0
    filled_samples: int = 0
    resyncs: int = 0
    rejected_chunks: int = 0
    rejected_samples: int = 0
    trimmed_samples: int = 0
    feed_dead: bool = False

    def as_dict(self) -> dict:
        return {
            "chunks": self.chunks,
            "delivered_samples": self.delivered_samples,
            "quarantined_values": self.quarantined_values,
            "gaps": self.gaps,
            "gap_samples": self.gap_samples,
            "filled_samples": self.filled_samples,
            "resyncs": self.resyncs,
            "rejected_chunks": self.rejected_chunks,
            "rejected_samples": self.rejected_samples,
            "trimmed_samples": self.trimmed_samples,
            "feed_dead": self.feed_dead,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "GuardStats":
        return cls(**{k: d[k] for k in cls().as_dict()})


class FeedGuard:
    """Validate and scrub chunks before they reach a session.

    ``sink`` is anything with the session push protocol: ``push(values)``
    plus ``resync(gap_samples)`` (only required when the gap policy is
    ``"resync"``).  In practice it is a
    :class:`~repro.stream.session.StreamSession`.
    """

    def __init__(self, sink, policy: GuardPolicy | None = None) -> None:
        self.sink = sink
        self.policy = policy or GuardPolicy()
        self.stats = GuardStats()
        self._cursor = 0
        self._last_value = 0.0

    @property
    def position(self) -> int:
        """The absolute sample index the guard expects next."""
        return self._cursor

    def push(self, values: np.ndarray, at: int | None = None) -> int:
        """Admit one chunk; return the number of samples delivered.

        ``at`` is the absolute sample index of ``values[0]`` on the
        stream clock; ``None`` means the chunk is next-in-order.  Raises
        :class:`FeedDead` when a gap trips the max-gap watchdog (the
        chunk itself is *not* delivered — the feed is already declared
        dead at that point).
        """
        if self.stats.feed_dead:
            raise FeedDead("feed already declared dead")
        values = np.asarray(values, dtype=float)
        if values.ndim != 1:
            raise ValueError("chunks must be 1-D sample arrays")
        self.stats.chunks += 1
        n = len(values)
        if n == 0:
            return 0
        if at is None:
            at = self._cursor
        at = int(at)
        if at < 0:
            raise ValueError("chunk index must be >= 0")

        # -- duplicate / late ------------------------------------------
        if at < self._cursor:
            if at + n <= self._cursor:
                self.stats.rejected_chunks += 1
                self.stats.rejected_samples += n
                TELEMETRY.count("stream.rejected_chunks")
                return 0
            trim = self._cursor - at
            values = values[trim:]
            at = self._cursor
            n = len(values)
            self.stats.trimmed_samples += trim

        # -- gap --------------------------------------------------------
        if at > self._cursor:
            gap = at - self._cursor
            self.stats.gaps += 1
            self.stats.gap_samples += gap
            TELEMETRY.count("stream.gap_samples", gap)
            max_gap = self.policy.max_gap_samples
            if max_gap is not None and gap > max_gap:
                self.stats.feed_dead = True
                TELEMETRY.count("stream.feed_dead")
                raise FeedDead(
                    f"gap of {gap} samples exceeds max_gap_samples={max_gap}"
                )
            if self.policy.gap_policy == "resync":
                self.sink.resync(gap)
                self.stats.resyncs += 1
                TELEMETRY.count("stream.resyncs")
            elif self.policy.gap_policy == "fill":
                fill = np.full(gap, self._last_value)
                self.sink.push(fill)
                self.stats.filled_samples += gap
                self.stats.delivered_samples += gap
            # "hold": deliver contiguously; nothing to do.
            self._cursor = at

        # -- value scrub ------------------------------------------------
        # Wall clock advances over the pre-scrub length: a "drop" policy
        # shortens what the attacks see, never what the guard expects.
        self._cursor += n
        bad = ~np.isfinite(values) | (values < 0)
        n_bad = int(bad.sum())
        if n_bad:
            self.stats.quarantined_values += n_bad
            TELEMETRY.count("stream.quarantined_values", n_bad)
            if self.policy.value_policy == "drop":
                values = values[~bad]
            elif self.policy.value_policy == "zero-fill":
                values = np.where(bad, 0.0, values)
            else:  # hold-last: forward-fill from the last good sample
                ext = np.concatenate(([self._last_value], values))
                good = np.flatnonzero(np.isfinite(ext) & (ext >= 0))
                idx = np.zeros(len(ext), dtype=int)
                idx[good] = good
                np.maximum.accumulate(idx, out=idx)
                values = ext[idx][1:]
        # Clean path falls through with the original array object — the
        # bitwise streamed-vs-batch pins depend on that.

        if len(values):
            self._last_value = float(values[-1])
            self.sink.push(values)
            self.stats.delivered_samples += len(values)
        return len(values)

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "policy": self.policy.as_dict(),
            "cursor": self._cursor,
            "last_value": self._last_value,
            "stats": self.stats.as_dict(),
        }

    def load_state(self, state: dict) -> None:
        if state["policy"] != self.policy.as_dict():
            raise ValueError("state was saved with a different guard policy")
        self._cursor = int(state["cursor"])
        self._last_value = float(state["last_value"])
        self.stats = GuardStats.from_dict(state["stats"])
