"""StreamSession: fan one chunk feed into every registered online attack.

A :class:`StreamSession` owns a set of named attack adapters, pushes each
arriving chunk through all of them (timed under ``stage.stream.<name>``
telemetry), and produces a :class:`StreamReport` with per-attack results
and throughput.  Attacks are constructed through the
:data:`STREAM_ATTACKS` registry so sessions can be rebuilt by name — the
basis of both the CLI and mid-stream resume
(:meth:`StreamSession.state_dict` / :meth:`StreamSession.from_state`).

The session adds *no* numerical behavior of its own: every correctness
property (chunk-size invariance, batch equivalence) lives in the attack
objects in :mod:`repro.stream.edges` / ``.niom`` / ``.decode``; the
session only routes samples and observes time.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from ..obs import TELEMETRY
from .decode import (
    StreamingFHMMDecoder,
    StreamingHMMDecoder,
    signature_fhmm,
    two_state_power_hmm,
)
from .edges import StreamingEdgeDetector, StreamingHartPairer
from .guard import FeedDead, FeedGuard, GuardPolicy
from .niom import StreamingThresholdNIOM
from .source import StreamClock


# ---------------------------------------------------------------------------
# Attack adapters: a uniform open/push/finalize/state protocol
# ---------------------------------------------------------------------------
class EdgeStreamAttack:
    """Edge detection + Hart pairing as one streamed attack."""

    def __init__(
        self,
        min_delta_w: float = 30.0,
        settle_samples: int = 1,
        tolerance_w: float = 50.0,
    ) -> None:
        self.params = {
            "min_delta_w": min_delta_w,
            "settle_samples": settle_samples,
            "tolerance_w": tolerance_w,
        }
        self.detector = StreamingEdgeDetector(min_delta_w, settle_samples)
        self.pairer = StreamingHartPairer(tolerance_w)

    def open(self, clock: StreamClock) -> None:
        self.detector.open(clock)

    def push(self, values: np.ndarray) -> None:
        self.pairer.feed(self.detector.push(values))

    def finalize(self) -> dict:
        self.pairer.feed(self.detector.finalize())
        self.edges = self.detector.edges
        self.pairs = self.pairer.finalize()
        rising = sum(1 for e in self.edges if e.is_rising)
        return {
            "n_edges": len(self.edges),
            "n_rising": rising,
            "n_pairs": len(self.pairs),
            "n_open_rises": len(self.pairer.open_rises),
        }

    def resync(self, gap_samples: int = 0) -> None:
        self.detector.resync(gap_samples)
        self.pairer.resync(gap_samples)

    def state_dict(self) -> dict:
        return {
            "detector": self.detector.state_dict(),
            "pairer": self.pairer.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.detector.load_state(state["detector"])
        self.pairer.load_state(state["pairer"])


class NIOMStreamAttack:
    """Online threshold NIOM as a streamed attack."""

    def __init__(
        self, window_s: float = 900.0, night_prior: bool = False
    ) -> None:
        self.params = {"window_s": window_s, "night_prior": night_prior}
        self.niom = StreamingThresholdNIOM(
            window_s=window_s, night_prior=night_prior
        )

    def open(self, clock: StreamClock) -> None:
        self.niom.open(clock)

    def push(self, values: np.ndarray) -> None:
        self.niom.push(values)

    def finalize(self) -> dict:
        self.result = self.niom.finalize()
        occ = self.result.occupancy.values
        return {
            "n_windows": len(occ),
            "occupied_fraction": float(occ.mean()),
        }

    def resync(self, gap_samples: int = 0) -> None:
        self.niom.resync(gap_samples)

    def state_dict(self) -> dict:
        return self.niom.state_dict()

    def load_state(self, state: dict) -> None:
        self.niom.load_state(state)


class HMMStreamAttack:
    """Online two-state activity decoding as a streamed attack."""

    def __init__(self, lag: int = 0) -> None:
        self.params = {"lag": lag}
        self.decoder = StreamingHMMDecoder(two_state_power_hmm(), lag=lag)

    def open(self, clock: StreamClock) -> None:
        self.decoder.open(clock)

    def push(self, values: np.ndarray) -> None:
        self.decoder.push(values)

    def finalize(self) -> dict:
        self.decoder.finalize()
        labels = self.decoder.labels
        return {
            "n_labeled": len(labels),
            "active_fraction": float((labels == 1).mean())
            if len(labels)
            else 0.0,
            "log_likelihood": self.decoder.log_likelihood(),
        }

    def resync(self, gap_samples: int = 0) -> None:
        self.decoder.resync(gap_samples)

    def state_dict(self) -> dict:
        return self.decoder.state_dict()

    def load_state(self, state: dict) -> None:
        self.decoder.load_state(state)


class FHMMStreamAttack:
    """Online signature-based NILM disaggregation as a streamed attack."""

    def __init__(self, lag: int = 0) -> None:
        self.params = {"lag": lag}
        self.decoder = StreamingFHMMDecoder(signature_fhmm(), lag=lag)

    def open(self, clock: StreamClock) -> None:
        self.decoder.open(clock)

    def push(self, values: np.ndarray) -> None:
        self.decoder.push(values)

    def finalize(self) -> dict:
        self.decoder.finalize()
        states = self.decoder.states
        on_fraction = (
            (states > 0).mean(axis=0).tolist() if len(states) else []
        )
        return {
            "n_labeled": int(len(states)),
            "chain_on_fraction": on_fraction,
            "log_likelihood": self.decoder.log_likelihood(),
        }

    def resync(self, gap_samples: int = 0) -> None:
        self.decoder.resync(gap_samples)

    def state_dict(self) -> dict:
        return self.decoder.state_dict()

    def load_state(self, state: dict) -> None:
        self.decoder.load_state(state)


#: Registry of streamed attacks: name -> adapter factory.  The CLI, the
#: fleet streaming mode, and session resume all construct through this.
STREAM_ATTACKS: dict[str, Callable[..., object]] = {
    "edges": EdgeStreamAttack,
    "niom": NIOMStreamAttack,
    "hmm": HMMStreamAttack,
    "fhmm": FHMMStreamAttack,
}


def make_stream_attack(name: str, **kwargs):
    """Construct a registered streamed attack by name.

    The registry name is stamped on the adapter (``registry_name``) so
    :meth:`StreamSession.state_dict` can record it directly instead of
    probing the registry with ``isinstance`` — which misidentifies
    subclasses and breaks outright for non-class factories.
    """
    try:
        factory = STREAM_ATTACKS[name]
    except KeyError:
        known = ", ".join(sorted(STREAM_ATTACKS))
        raise KeyError(f"unknown stream attack {name!r} (known: {known})")
    attack = factory(**kwargs)
    attack.registry_name = name
    return attack


def stream_attack_names() -> list[str]:
    return sorted(STREAM_ATTACKS)


# ---------------------------------------------------------------------------
# Session
# ---------------------------------------------------------------------------
@dataclass
class AttackStats:
    """Wall-clock accounting for one attack within a session."""

    samples: int = 0
    pushes: int = 0
    seconds: float = 0.0

    @property
    def samples_per_sec(self) -> float:
        return self.samples / self.seconds if self.seconds > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "samples": self.samples,
            "pushes": self.pushes,
            "seconds": self.seconds,
            "samples_per_sec": self.samples_per_sec,
        }


@dataclass(frozen=True)
class AttackFailure:
    """One attack adapter quarantined mid-session.

    ``stage`` names the protocol call that raised (``push`` /
    ``resync`` / ``finalize``), ``at_sample`` the session sample count
    when it did.  The exception itself is flattened to a string so the
    record stays picklable across the fleet boundary.
    """

    name: str
    stage: str
    error: str
    at_sample: int

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "stage": self.stage,
            "error": self.error,
            "at_sample": self.at_sample,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AttackFailure":
        return cls(d["name"], d["stage"], d["error"], int(d["at_sample"]))


@dataclass(frozen=True)
class StreamReport:
    """Outcome of a streamed evaluation: results, health, throughput."""

    total_samples: int
    chunk_samples: int
    duration_s: float
    results: dict[str, dict]
    stats: dict[str, AttackStats]
    failures: tuple[AttackFailure, ...] = ()
    guard: dict | None = None

    @property
    def feed_dead(self) -> bool:
        """True when the guard's max-gap watchdog gave up on the feed."""
        return bool((self.guard or {}).get("feed_dead", False))

    @property
    def ok(self) -> bool:
        """Healthy run: every attack finished and the feed stayed alive."""
        return not self.failures and not self.feed_dead

    def as_dict(self) -> dict:
        return {
            "total_samples": self.total_samples,
            "chunk_samples": self.chunk_samples,
            "duration_s": self.duration_s,
            "ok": self.ok,
            "results": dict(self.results),
            "throughput": {
                name: st.as_dict() for name, st in self.stats.items()
            },
            "failures": [f.as_dict() for f in self.failures],
            "guard": dict(self.guard) if self.guard is not None else None,
        }


class StreamSession:
    """Push one chunk feed through a set of named online attacks.

    A misbehaving adapter never takes the session down: any exception
    from an attack's ``push`` / ``resync`` / ``finalize`` quarantines
    that attack (recorded as an :class:`AttackFailure` on the report's
    ``failures``) while the remaining attacks keep consuming — the same
    per-job isolation contract the fleet supervisor gives home jobs.
    """

    def __init__(self, clock: StreamClock, attacks: dict[str, object]) -> None:
        if not attacks:
            raise ValueError("need at least one attack")
        self.clock = clock
        self.attacks = dict(attacks)
        self._stats = {name: AttackStats() for name in self.attacks}
        self._total = 0
        self._finalized = False
        self._quarantined: dict[str, AttackFailure] = {}
        for attack in self.attacks.values():
            attack.open(clock)

    def _quarantine(self, name: str, stage: str, exc: Exception) -> None:
        self._quarantined[name] = AttackFailure(
            name=name,
            stage=stage,
            error=f"{type(exc).__name__}: {exc}",
            at_sample=self._total,
        )
        TELEMETRY.count("stream.attack_failures")

    def push(self, values: np.ndarray) -> None:
        """Feed one chunk to every healthy attack, timing each one."""
        if self._finalized:
            raise RuntimeError("session already finalized")
        values = np.asarray(values, dtype=float)
        n = len(values)
        with TELEMETRY.timer("stage.stream.push"):
            for name, attack in self.attacks.items():
                if name in self._quarantined:
                    continue
                start = time.perf_counter()
                try:
                    with TELEMETRY.timer(f"stage.stream.{name}"):
                        attack.push(values)
                except Exception as exc:
                    self._quarantine(name, "push", exc)
                    continue
                stat = self._stats[name]
                stat.seconds += time.perf_counter() - start
                stat.samples += n
                stat.pushes += 1
        self._total += n
        TELEMETRY.count("stream.samples", n)

    def resync(self, gap_samples: int = 0) -> None:
        """Reset every healthy attack's seam state at a discontinuity.

        ``gap_samples`` advances the session's sample count so the
        report duration stays wall-clock-true over the gap.
        """
        if self._finalized:
            raise RuntimeError("session already finalized")
        if gap_samples < 0:
            raise ValueError("gap_samples must be >= 0")
        for name, attack in self.attacks.items():
            if name in self._quarantined:
                continue
            try:
                attack.resync(gap_samples)
            except Exception as exc:
                self._quarantine(name, "resync", exc)
        self._total += int(gap_samples)

    def finalize(self, guard: "FeedGuard | None" = None) -> StreamReport:
        """Close every healthy attack and assemble the report.

        ``guard`` optionally attaches the feed guard's stats to the
        report (and its feed-dead verdict to the health contract).
        """
        if self._finalized:
            raise RuntimeError("session already finalized")
        self._finalized = True
        results = {}
        for name, attack in self.attacks.items():
            if name in self._quarantined:
                continue
            try:
                with TELEMETRY.timer(f"stage.stream.{name}"):
                    results[name] = attack.finalize()
            except Exception as exc:
                self._quarantine(name, "finalize", exc)
        duration = self._total * self.clock.period_s
        return StreamReport(
            total_samples=self._total,
            chunk_samples=0,  # set by run_stream; sessions are chunk-agnostic
            duration_s=duration,
            results=results,
            stats=dict(self._stats),
            failures=tuple(self._quarantined.values()),
            guard=guard.stats.as_dict() if guard is not None else None,
        )

    @property
    def total_samples(self) -> int:
        return self._total

    @property
    def failures(self) -> tuple[AttackFailure, ...]:
        """Attacks quarantined so far, in quarantine order."""
        return tuple(self._quarantined.values())

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable mid-stream state (picklable; arrays + plain data).

        Captures the registry name, constructor params, and internal state
        of every attack, so :meth:`from_state` can rebuild an equivalent
        session with no reference to the original objects.
        """
        attacks = {}
        for name, attack in self.attacks.items():
            reg_name = getattr(attack, "registry_name", None)
            if reg_name is None:
                # Adapter built directly, not via make_stream_attack:
                # exact-type match only (isinstance would claim
                # subclasses for the wrong registry entry).
                for rn, factory in STREAM_ATTACKS.items():
                    if type(attack) is factory:
                        reg_name = rn
                        break
            if reg_name is None:
                raise KeyError(
                    f"attack {name!r} ({type(attack).__name__}) is not a "
                    "registered stream attack; cannot serialize"
                )
            attacks[name] = {
                "registry": reg_name,
                "params": dict(attack.params),
                # A quarantined attack's internals may be mid-raise
                # garbage; its state is not worth carrying.
                "state": None
                if name in self._quarantined
                else attack.state_dict(),
            }
        return {
            "clock": self.clock.as_dict(),
            "total": self._total,
            "attacks": attacks,
            "failures": [f.as_dict() for f in self._quarantined.values()],
            "stats": {
                name: (st.samples, st.pushes, st.seconds)
                for name, st in self._stats.items()
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamSession":
        clock = StreamClock(**state["clock"])
        attacks = {
            name: make_stream_attack(spec["registry"], **spec["params"])
            for name, spec in state["attacks"].items()
        }
        session = cls(clock, attacks)
        for name, spec in state["attacks"].items():
            if spec["state"] is not None:
                session.attacks[name].load_state(spec["state"])
        session._total = int(state["total"])
        for record in state.get("failures", []):
            failure = AttackFailure.from_dict(record)
            session._quarantined[failure.name] = failure
        for name, (samples, pushes, seconds) in state["stats"].items():
            session._stats[name] = AttackStats(samples, pushes, seconds)
        return session


def drive_stream(
    source,
    guard: FeedGuard,
    chunk_samples: int = 60,
    fault_plan=None,
    checkpointer=None,
    kill_after: int | None = None,
) -> bool:
    """Replay ``source`` through ``guard``; return True if the feed died.

    Chunks are tagged with their absolute sample index before entering
    the guard, so an optional ``fault_plan``
    (:class:`~repro.stream.faults.StreamFaultPlan`) can drop, corrupt,
    duplicate, or stall them and the guard sees exactly what a degraded
    transport would deliver.  ``checkpointer`` is offered the session
    after every admitted chunk.  ``kill_after`` hard-kills the process
    (``os._exit(137)``) once the guard's position reaches that sample —
    the deterministic SIGKILL stand-in the kill-and-resume tests drive.
    """
    feed = _tagged(source, chunk_samples)
    if fault_plan is not None:
        from .faults import inject_stream_faults

        feed = inject_stream_faults(feed, fault_plan)
    try:
        for at, chunk in feed:
            guard.push(chunk, at=at)
            if checkpointer is not None:
                checkpointer.maybe_write(guard.sink, guard)
            if kill_after is not None and guard.position >= kill_after:
                import os

                os._exit(137)
    except FeedDead:
        return True
    return False


def _tagged(source, chunk_samples: int):
    at = 0
    for chunk in source.chunks(chunk_samples):
        yield at, chunk
        at += len(chunk)


def run_stream(
    source,
    attacks: Iterable[str] = ("edges", "niom"),
    chunk_samples: int = 60,
    attack_kwargs: dict[str, dict] | None = None,
    guard_policy: GuardPolicy | None = None,
    fault_plan=None,
) -> StreamReport:
    """Replay ``source`` through a fresh guarded session.

    ``attack_kwargs`` optionally maps attack name to constructor kwargs
    (e.g. ``{"hmm": {"lag": 120}}``).  Every run goes through a
    :class:`~repro.stream.guard.FeedGuard` (default policy unless
    ``guard_policy`` is given) — on a clean feed the guard is off-path
    by construction, and on a degraded one (``fault_plan``) the report's
    ``guard`` / ``failures`` fields say what happened.
    """
    attack_kwargs = attack_kwargs or {}
    built = {
        name: make_stream_attack(name, **attack_kwargs.get(name, {}))
        for name in attacks
    }
    session = StreamSession(source.clock, built)
    guard = FeedGuard(session, guard_policy)
    drive_stream(source, guard, chunk_samples, fault_plan=fault_plan)
    report = session.finalize(guard=guard)
    return dataclasses.replace(report, chunk_samples=chunk_samples)
