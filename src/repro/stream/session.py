"""StreamSession: fan one chunk feed into every registered online attack.

A :class:`StreamSession` owns a set of named attack adapters, pushes each
arriving chunk through all of them (timed under ``stage.stream.<name>``
telemetry), and produces a :class:`StreamReport` with per-attack results
and throughput.  Attacks are constructed through the
:data:`STREAM_ATTACKS` registry so sessions can be rebuilt by name — the
basis of both the CLI and mid-stream resume
(:meth:`StreamSession.state_dict` / :meth:`StreamSession.from_state`).

The session adds *no* numerical behavior of its own: every correctness
property (chunk-size invariance, batch equivalence) lives in the attack
objects in :mod:`repro.stream.edges` / ``.niom`` / ``.decode``; the
session only routes samples and observes time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from ..obs import TELEMETRY
from .decode import (
    StreamingFHMMDecoder,
    StreamingHMMDecoder,
    signature_fhmm,
    two_state_power_hmm,
)
from .edges import StreamingEdgeDetector, StreamingHartPairer
from .niom import StreamingThresholdNIOM
from .source import StreamClock


# ---------------------------------------------------------------------------
# Attack adapters: a uniform open/push/finalize/state protocol
# ---------------------------------------------------------------------------
class EdgeStreamAttack:
    """Edge detection + Hart pairing as one streamed attack."""

    def __init__(
        self,
        min_delta_w: float = 30.0,
        settle_samples: int = 1,
        tolerance_w: float = 50.0,
    ) -> None:
        self.params = {
            "min_delta_w": min_delta_w,
            "settle_samples": settle_samples,
            "tolerance_w": tolerance_w,
        }
        self.detector = StreamingEdgeDetector(min_delta_w, settle_samples)
        self.pairer = StreamingHartPairer(tolerance_w)

    def open(self, clock: StreamClock) -> None:
        self.detector.open(clock)

    def push(self, values: np.ndarray) -> None:
        self.pairer.feed(self.detector.push(values))

    def finalize(self) -> dict:
        self.pairer.feed(self.detector.finalize())
        self.edges = self.detector.edges
        self.pairs = self.pairer.finalize()
        rising = sum(1 for e in self.edges if e.is_rising)
        return {
            "n_edges": len(self.edges),
            "n_rising": rising,
            "n_pairs": len(self.pairs),
            "n_open_rises": len(self.pairer.open_rises),
        }

    def state_dict(self) -> dict:
        return {
            "detector": self.detector.state_dict(),
            "pairer": self.pairer.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.detector.load_state(state["detector"])
        self.pairer.load_state(state["pairer"])


class NIOMStreamAttack:
    """Online threshold NIOM as a streamed attack."""

    def __init__(
        self, window_s: float = 900.0, night_prior: bool = False
    ) -> None:
        self.params = {"window_s": window_s, "night_prior": night_prior}
        self.niom = StreamingThresholdNIOM(
            window_s=window_s, night_prior=night_prior
        )

    def open(self, clock: StreamClock) -> None:
        self.niom.open(clock)

    def push(self, values: np.ndarray) -> None:
        self.niom.push(values)

    def finalize(self) -> dict:
        self.result = self.niom.finalize()
        occ = self.result.occupancy.values
        return {
            "n_windows": len(occ),
            "occupied_fraction": float(occ.mean()),
        }

    def state_dict(self) -> dict:
        return self.niom.state_dict()

    def load_state(self, state: dict) -> None:
        self.niom.load_state(state)


class HMMStreamAttack:
    """Online two-state activity decoding as a streamed attack."""

    def __init__(self, lag: int = 0) -> None:
        self.params = {"lag": lag}
        self.decoder = StreamingHMMDecoder(two_state_power_hmm(), lag=lag)

    def open(self, clock: StreamClock) -> None:
        self.decoder.open(clock)

    def push(self, values: np.ndarray) -> None:
        self.decoder.push(values)

    def finalize(self) -> dict:
        self.decoder.finalize()
        labels = self.decoder.labels
        return {
            "n_labeled": len(labels),
            "active_fraction": float((labels == 1).mean())
            if len(labels)
            else 0.0,
            "log_likelihood": self.decoder.log_likelihood(),
        }

    def state_dict(self) -> dict:
        return self.decoder.state_dict()

    def load_state(self, state: dict) -> None:
        self.decoder.load_state(state)


class FHMMStreamAttack:
    """Online signature-based NILM disaggregation as a streamed attack."""

    def __init__(self, lag: int = 0) -> None:
        self.params = {"lag": lag}
        self.decoder = StreamingFHMMDecoder(signature_fhmm(), lag=lag)

    def open(self, clock: StreamClock) -> None:
        self.decoder.open(clock)

    def push(self, values: np.ndarray) -> None:
        self.decoder.push(values)

    def finalize(self) -> dict:
        self.decoder.finalize()
        states = self.decoder.states
        on_fraction = (
            (states > 0).mean(axis=0).tolist() if len(states) else []
        )
        return {
            "n_labeled": int(len(states)),
            "chain_on_fraction": on_fraction,
            "log_likelihood": self.decoder.log_likelihood(),
        }

    def state_dict(self) -> dict:
        return self.decoder.state_dict()

    def load_state(self, state: dict) -> None:
        self.decoder.load_state(state)


#: Registry of streamed attacks: name -> adapter factory.  The CLI, the
#: fleet streaming mode, and session resume all construct through this.
STREAM_ATTACKS: dict[str, Callable[..., object]] = {
    "edges": EdgeStreamAttack,
    "niom": NIOMStreamAttack,
    "hmm": HMMStreamAttack,
    "fhmm": FHMMStreamAttack,
}


def make_stream_attack(name: str, **kwargs):
    """Construct a registered streamed attack by name."""
    try:
        factory = STREAM_ATTACKS[name]
    except KeyError:
        known = ", ".join(sorted(STREAM_ATTACKS))
        raise KeyError(f"unknown stream attack {name!r} (known: {known})")
    return factory(**kwargs)


def stream_attack_names() -> list[str]:
    return sorted(STREAM_ATTACKS)


# ---------------------------------------------------------------------------
# Session
# ---------------------------------------------------------------------------
@dataclass
class AttackStats:
    """Wall-clock accounting for one attack within a session."""

    samples: int = 0
    pushes: int = 0
    seconds: float = 0.0

    @property
    def samples_per_sec(self) -> float:
        return self.samples / self.seconds if self.seconds > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "samples": self.samples,
            "pushes": self.pushes,
            "seconds": self.seconds,
            "samples_per_sec": self.samples_per_sec,
        }


@dataclass(frozen=True)
class StreamReport:
    """Outcome of a streamed evaluation: results plus throughput."""

    total_samples: int
    chunk_samples: int
    duration_s: float
    results: dict[str, dict]
    stats: dict[str, AttackStats]

    def as_dict(self) -> dict:
        return {
            "total_samples": self.total_samples,
            "chunk_samples": self.chunk_samples,
            "duration_s": self.duration_s,
            "results": dict(self.results),
            "throughput": {
                name: st.as_dict() for name, st in self.stats.items()
            },
        }


class StreamSession:
    """Push one chunk feed through a set of named online attacks."""

    def __init__(self, clock: StreamClock, attacks: dict[str, object]) -> None:
        if not attacks:
            raise ValueError("need at least one attack")
        self.clock = clock
        self.attacks = dict(attacks)
        self._stats = {name: AttackStats() for name in self.attacks}
        self._total = 0
        self._finalized = False
        for attack in self.attacks.values():
            attack.open(clock)

    def push(self, values: np.ndarray) -> None:
        """Feed one chunk to every attack, timing each independently."""
        if self._finalized:
            raise RuntimeError("session already finalized")
        values = np.asarray(values, dtype=float)
        n = len(values)
        with TELEMETRY.timer("stage.stream.push"):
            for name, attack in self.attacks.items():
                start = time.perf_counter()
                with TELEMETRY.timer(f"stage.stream.{name}"):
                    attack.push(values)
                stat = self._stats[name]
                stat.seconds += time.perf_counter() - start
                stat.samples += n
                stat.pushes += 1
        self._total += n
        TELEMETRY.count("stream.samples", n)

    def finalize(self) -> StreamReport:
        """Close every attack and assemble the report."""
        if self._finalized:
            raise RuntimeError("session already finalized")
        self._finalized = True
        results = {}
        for name, attack in self.attacks.items():
            with TELEMETRY.timer(f"stage.stream.{name}"):
                results[name] = attack.finalize()
        duration = self._total * self.clock.period_s
        return StreamReport(
            total_samples=self._total,
            chunk_samples=0,  # set by run_stream; sessions are chunk-agnostic
            duration_s=duration,
            results=results,
            stats=dict(self._stats),
        )

    @property
    def total_samples(self) -> int:
        return self._total

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable mid-stream state (picklable; arrays + plain data).

        Captures the registry name, constructor params, and internal state
        of every attack, so :meth:`from_state` can rebuild an equivalent
        session with no reference to the original objects.
        """
        attacks = {}
        for name, attack in self.attacks.items():
            reg_name = next(
                rn
                for rn, factory in STREAM_ATTACKS.items()
                if isinstance(attack, factory)
            )
            attacks[name] = {
                "registry": reg_name,
                "params": dict(attack.params),
                "state": attack.state_dict(),
            }
        return {
            "clock": self.clock.as_dict(),
            "total": self._total,
            "attacks": attacks,
            "stats": {
                name: (st.samples, st.pushes, st.seconds)
                for name, st in self._stats.items()
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamSession":
        clock = StreamClock(**state["clock"])
        attacks = {
            name: make_stream_attack(spec["registry"], **spec["params"])
            for name, spec in state["attacks"].items()
        }
        session = cls(clock, attacks)
        for name, spec in state["attacks"].items():
            session.attacks[name].load_state(spec["state"])
        session._total = int(state["total"])
        for name, (samples, pushes, seconds) in state["stats"].items():
            session._stats[name] = AttackStats(samples, pushes, seconds)
        return session


def run_stream(
    source,
    attacks: Iterable[str] = ("edges", "niom"),
    chunk_samples: int = 60,
    attack_kwargs: dict[str, dict] | None = None,
) -> StreamReport:
    """Replay ``source`` through a fresh session of the named attacks.

    ``attack_kwargs`` optionally maps attack name to constructor kwargs
    (e.g. ``{"hmm": {"lag": 120}}``).
    """
    attack_kwargs = attack_kwargs or {}
    built = {
        name: make_stream_attack(name, **attack_kwargs.get(name, {}))
        for name in attacks
    }
    session = StreamSession(source.clock, built)
    for chunk in source.chunks(chunk_samples):
        session.push(chunk)
    report = session.finalize()
    return StreamReport(
        total_samples=report.total_samples,
        chunk_samples=chunk_samples,
        duration_s=report.duration_s,
        results=report.results,
        stats=report.stats,
    )
