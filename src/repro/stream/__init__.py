"""repro.stream — online attack evaluation over live meter feeds.

The paper's threat model is an observer watching a smart-meter feed *as
it arrives*.  This package turns every batch attack family in the repo
into a push-based online evaluator with explicit seam contracts:

* :mod:`~repro.stream.source` — chunk feeds (trace replay, simulated
  meter) on a fixed :class:`StreamClock`;
* :mod:`~repro.stream.edges` — incremental edge detection and Hart
  pairing, bitwise-equal to the batch pass for any chunking;
* :mod:`~repro.stream.niom` — online threshold NIOM with incremental
  window features, bitwise-equal batch finalize;
* :mod:`~repro.stream.decode` — filtering / bounded-lag HMM and FHMM
  decoding on the sequential forward kernel;
* :mod:`~repro.stream.session` — :class:`StreamSession` fan-out,
  the :data:`STREAM_ATTACKS` registry, throughput reporting, resume.
"""

from .decode import (
    StreamingFHMMDecoder,
    StreamingHMMDecoder,
    signature_fhmm,
    two_state_power_hmm,
)
from .edges import StreamingEdgeDetector, StreamingHartPairer
from .niom import StreamingThresholdNIOM
from .session import (
    STREAM_ATTACKS,
    AttackStats,
    EdgeStreamAttack,
    FHMMStreamAttack,
    HMMStreamAttack,
    NIOMStreamAttack,
    StreamReport,
    StreamSession,
    make_stream_attack,
    run_stream,
    stream_attack_names,
)
from .source import (
    SimulatedMeterSource,
    StreamClock,
    TraceReplaySource,
    iter_chunks,
    simulated_meter_source,
)

__all__ = [
    "STREAM_ATTACKS",
    "AttackStats",
    "EdgeStreamAttack",
    "FHMMStreamAttack",
    "HMMStreamAttack",
    "NIOMStreamAttack",
    "SimulatedMeterSource",
    "StreamClock",
    "StreamReport",
    "StreamSession",
    "StreamingEdgeDetector",
    "StreamingFHMMDecoder",
    "StreamingHMMDecoder",
    "StreamingHartPairer",
    "StreamingThresholdNIOM",
    "TraceReplaySource",
    "iter_chunks",
    "make_stream_attack",
    "run_stream",
    "simulated_meter_source",
    "stream_attack_names",
    "two_state_power_hmm",
    "signature_fhmm",
]
