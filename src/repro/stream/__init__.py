"""repro.stream — online attack evaluation over live meter feeds.

The paper's threat model is an observer watching a smart-meter feed *as
it arrives*.  This package turns every batch attack family in the repo
into a push-based online evaluator with explicit seam contracts:

* :mod:`~repro.stream.source` — chunk feeds (trace replay, simulated
  meter) on a fixed :class:`StreamClock`;
* :mod:`~repro.stream.edges` — incremental edge detection and Hart
  pairing, bitwise-equal to the batch pass for any chunking;
* :mod:`~repro.stream.niom` — online threshold NIOM with incremental
  window features, bitwise-equal batch finalize;
* :mod:`~repro.stream.decode` — filtering / bounded-lag HMM and FHMM
  decoding on the sequential forward kernel;
* :mod:`~repro.stream.session` — :class:`StreamSession` fan-out,
  the :data:`STREAM_ATTACKS` registry, throughput reporting, attack
  quarantine, resume;
* :mod:`~repro.stream.guard` — :class:`FeedGuard` admission control
  for dirty feeds (value quarantine, gap policies, duplicate/late
  rejection, max-gap watchdog);
* :mod:`~repro.stream.checkpoint` — periodic versioned checkpoints so
  a killed run resumes bitwise-identically;
* :mod:`~repro.stream.faults` — deterministic feed-fault injection
  (dropout / corrupt / duplicate / stall) for chaos testing.
"""

from .checkpoint import (
    STREAM_CHECKPOINT_VERSION,
    Checkpointer,
    has_checkpoint,
    load_checkpoint,
)
from .decode import (
    StreamingFHMMDecoder,
    StreamingHMMDecoder,
    signature_fhmm,
    two_state_power_hmm,
)
from .edges import StreamingEdgeDetector, StreamingHartPairer
from .faults import (
    STREAM_FAULTS_ENV,
    StreamFaultPlan,
    active_stream_plan,
    inject_stream_faults,
)
from .guard import FeedDead, FeedGuard, GuardPolicy, GuardStats
from .niom import StreamingThresholdNIOM
from .session import (
    STREAM_ATTACKS,
    AttackFailure,
    AttackStats,
    EdgeStreamAttack,
    FHMMStreamAttack,
    HMMStreamAttack,
    NIOMStreamAttack,
    StreamReport,
    StreamSession,
    drive_stream,
    make_stream_attack,
    run_stream,
    stream_attack_names,
)
from .source import (
    SimulatedMeterSource,
    StreamClock,
    TraceReplaySource,
    iter_chunks,
    simulated_meter_source,
    tagged_chunks,
)

__all__ = [
    "STREAM_ATTACKS",
    "STREAM_CHECKPOINT_VERSION",
    "STREAM_FAULTS_ENV",
    "AttackFailure",
    "AttackStats",
    "Checkpointer",
    "EdgeStreamAttack",
    "FHMMStreamAttack",
    "FeedDead",
    "FeedGuard",
    "GuardPolicy",
    "GuardStats",
    "HMMStreamAttack",
    "NIOMStreamAttack",
    "SimulatedMeterSource",
    "StreamClock",
    "StreamFaultPlan",
    "StreamReport",
    "StreamSession",
    "StreamingEdgeDetector",
    "StreamingFHMMDecoder",
    "StreamingHMMDecoder",
    "StreamingHartPairer",
    "StreamingThresholdNIOM",
    "TraceReplaySource",
    "active_stream_plan",
    "drive_stream",
    "has_checkpoint",
    "inject_stream_faults",
    "iter_chunks",
    "load_checkpoint",
    "make_stream_attack",
    "run_stream",
    "simulated_meter_source",
    "stream_attack_names",
    "tagged_chunks",
    "two_state_power_hmm",
    "signature_fhmm",
]
