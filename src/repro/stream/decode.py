"""Streaming HMM/FHMM decoding: filtering plus bounded-lag smoothing.

Batch NILM decoding is *smoothing*: every label conditions on the whole
trace (Viterbi, or forward-backward posteriors).  A live observer cannot
wait for the whole trace; the streaming decoders here run the forward
recursion incrementally (:func:`repro.ml.kernels.forward_filter_chunk`)
and emit labels under one of two disciplines:

* **filtering** (``lag=0``) — label sample ``t`` from ``alpha_hat[t]``,
  the posterior given observations up to ``t``, emitted the moment the
  sample arrives;
* **bounded-lag smoothing** (``lag=L > 0``) — hold a sample back until
  ``L`` further samples have arrived, then label it from a backward pass
  over a ``2L`` look-ahead window.  Labels stream out ``L`` samples
  behind the feed but recover most of the accuracy full smoothing gets.

Chunk-size invariance is exact in both modes: the forward recursion is
the sequential kernel (bitwise chunk-invariant by construction), the
emission rows and scaling shifts are row-local, and the bounded-lag
emission schedule depends only on the *total sample count*, never on
where chunk boundaries fall.  The per-sample normalizers and shifts are
accumulated and summed once at :meth:`finalize`, so the reported
log-likelihood is also bitwise chunk-invariant (an incremental ``+=``
would reassociate the sum differently per chunking).

What is *not* exact is filtering/bounded-lag versus batch smoothing —
that gap is inherent to online inference, is documented here, and is
pinned by tolerance tests in ``tests/test_stream.py``:

* with ``lag >= n`` the finalize-time backward pass reduces to the batch
  forward-backward, and posteriors match ``kernels.estep_loop`` gammas
  bitwise;
* with modest lag (>= a few typical dwell times) label agreement with
  batch smoothing is high (>= 0.95 on the tested workloads);
* FHMM streamed labels are posterior argmaxes, compared against batch
  *Viterbi* paths (>= 0.9 agreement tested) — MAP-per-sample and MAP-path
  are different estimators, another documented gap.
"""

from __future__ import annotations

import numpy as np

from ..ml import FactorialHMM, GaussianHMM
from ..ml import kernels
from ..obs import TELEMETRY
from .source import StreamClock


class StreamingHMMDecoder:
    """Incremental Gaussian-HMM state decoding over a power feed.

    Parameters
    ----------
    hmm:
        A fitted (or hand-parameterized) single-feature :class:`GaussianHMM`
        over raw power samples.
    lag:
        Smoothing lag ``L`` in samples.  ``0`` emits pure filtering labels;
        larger values hold each label back ``L`` samples and smooth it over
        a ``2L`` window.  ``lag >= len(stream)`` reproduces batch smoothing
        exactly.
    keep_history:
        Keep every forward row (``alpha_hat``) and normalizer for test
        introspection via :attr:`alpha_history`.  Off by default — the
        decoder then holds only the O(lag) live window plus the O(n)
        normalizer/shift scalars needed for the final log-likelihood.
    """

    def __init__(
        self, hmm: GaussianHMM, lag: int = 0, keep_history: bool = False
    ) -> None:
        hmm._check_fitted()
        if hmm.means_.shape[1] != 1:
            raise ValueError("streaming decoder requires a single-feature HMM")
        if lag < 0:
            raise ValueError("lag must be >= 0")
        self.hmm = hmm
        self.lag = int(lag)
        self.keep_history = keep_history
        self._alpha_prev: np.ndarray | None = None
        self._total = 0
        self._emit = 0  # samples labeled so far
        k = hmm.n_states
        self._alpha_buf = np.empty((0, k))  # rows [emit, total)
        self._b_buf = np.empty((0, k))
        self._c_buf = np.empty(0)
        self._c_chunks: list[np.ndarray] = []
        self._shift_chunks: list[np.ndarray] = []
        self._labels: list[np.ndarray] = []
        self._alpha_history: list[np.ndarray] = []

    # ------------------------------------------------------------------
    # Stream protocol
    # ------------------------------------------------------------------
    def open(self, clock: StreamClock) -> None:
        self._clock = clock

    def push(self, values: np.ndarray) -> np.ndarray:
        """Consume a chunk; return the labels it released (may be empty)."""
        values = np.asarray(values, dtype=float)
        if len(values) == 0:
            return np.empty(0, dtype=int)
        X = values.reshape(-1, 1)
        # Row-local emissions and shifts: each row depends only on its own
        # sample, so the (b, shift) values are chunking-independent.
        log_b = self.hmm._emission_logprob(X)
        shift = log_b.max(axis=1)
        b = np.exp(log_b - shift[:, None])
        alpha, c = kernels.forward_filter_chunk(
            self.hmm.startprob_, self.hmm.transmat_, b, self._alpha_prev
        )
        self._alpha_prev = alpha[-1].copy()
        self._total += len(values)
        self._c_chunks.append(c)
        self._shift_chunks.append(shift)
        if self.keep_history:
            self._alpha_history.append(alpha.copy())
        self._alpha_buf = np.concatenate([self._alpha_buf, alpha])
        self._b_buf = np.concatenate([self._b_buf, b])
        self._c_buf = np.concatenate([self._c_buf, c])
        out = self._emit_ready()
        TELEMETRY.count("stream.hmm.samples", len(values))
        return out

    def finalize(self) -> np.ndarray:
        """Label the held-back tail with the exact suffix backward pass."""
        if self._emit >= self._total:
            return np.empty(0, dtype=int)
        # beta = 1 at the true last sample is the batch boundary condition,
        # so the final block is smoothed exactly as a batch pass smooths it.
        labels = self._smooth_block(self._total - self._emit)
        self._labels.append(labels)
        self._advance(self._total - self._emit)
        self._emit = self._total
        return labels

    def resync(self, gap_samples: int = 0) -> np.ndarray:
        """Treat a feed discontinuity as a segment boundary.

        The held-back samples are labeled with a backward pass whose
        ``beta = 1`` boundary sits at the last pre-gap sample — exactly
        the end-of-stream condition, so the pre-gap segment is smoothed
        as if it were a complete trace rather than silently decoded
        across the gap.  The forward recursion then restarts from the
        model's ``startprob_`` at the next sample.  Returns the labels
        the flush released.
        """
        del gap_samples  # labels are indexed by consumed sample, not clock
        pending = self._total - self._emit
        released = np.empty(0, dtype=int)
        if pending > 0:
            released = self._smooth_block(pending)
            self._labels.append(released)
            self._advance(pending)
            self._emit = self._total
        self._alpha_prev = None
        return released

    @property
    def labels(self) -> np.ndarray:
        """Every label emitted so far, in sample order."""
        if not self._labels:
            return np.empty(0, dtype=int)
        return np.concatenate(self._labels)

    @property
    def alpha_history(self) -> np.ndarray:
        """All forward rows (requires ``keep_history=True``)."""
        if not self.keep_history:
            raise RuntimeError("constructed with keep_history=False")
        if not self._alpha_history:
            return np.empty((0, self.hmm.n_states))
        return np.concatenate(self._alpha_history)

    def log_likelihood(self) -> float:
        """Log-likelihood of everything pushed so far.

        Summed once over the stored per-sample normalizers and shifts, in
        index order — the same reduction the batch pass performs — so the
        value is bitwise chunk-invariant.
        """
        if not self._c_chunks:
            return 0.0
        c = np.concatenate(self._c_chunks)
        shift = np.concatenate(self._shift_chunks)
        return float(np.log(c).sum() + shift.sum())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _emit_ready(self) -> np.ndarray:
        """Emit every label whose look-ahead window is now full."""
        if self.lag == 0:
            # filtering: argmax of the forward posterior, immediately
            pending = self._total - self._emit
            labels = np.argmax(self._alpha_buf[:pending], axis=1)
            self._labels.append(labels)
            self._advance(pending)
            self._emit = self._total
            return labels
        released: list[np.ndarray] = []
        # Block schedule: the block [emit, emit + L) is released the moment
        # total >= emit + 2L.  Both the trigger and the smoothing window
        # [emit, emit + 2L) are functions of sample counts only, so the
        # schedule — and every released label — is chunking-independent.
        while self._total - self._emit >= 2 * self.lag:
            labels = self._smooth_block(2 * self.lag)[: self.lag]
            released.append(labels)
            self._labels.append(labels)
            self._advance(self.lag)
            self._emit += self.lag
        if released:
            return np.concatenate(released)
        return np.empty(0, dtype=int)

    def _smooth_block(self, window: int) -> np.ndarray:
        """Backward pass over buffer rows [0, window), beta = 1 at its end.

        Identical arithmetic to :func:`kernels.backward_scaled_loop` over
        that window; the resulting posteriors are ``alpha * beta``
        argmaxes.  Normalization of gamma is skipped — argmax over a row
        is unchanged by a positive row scale.
        """
        a = self.hmm.transmat_
        b = self._b_buf[:window]
        c = self._c_buf[:window]
        alpha = self._alpha_buf[:window]
        k = a.shape[0]
        beta = np.empty((window, k))
        beta[-1] = 1.0
        for t in range(window - 2, -1, -1):
            beta[t] = (a @ (b[t + 1] * beta[t + 1])) / c[t + 1]
        return np.argmax(alpha * beta, axis=1)

    def _advance(self, n: int) -> None:
        self._alpha_buf = self._alpha_buf[n:]
        self._b_buf = self._b_buf[n:]
        self._c_buf = self._c_buf[n:]

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "lag": self.lag,
            "alpha_prev": None
            if self._alpha_prev is None
            else self._alpha_prev.copy(),
            "total": self._total,
            "emit": self._emit,
            "alpha_buf": self._alpha_buf.copy(),
            "b_buf": self._b_buf.copy(),
            "c_buf": self._c_buf.copy(),
            "c_chunks": [c.copy() for c in self._c_chunks],
            "shift_chunks": [s.copy() for s in self._shift_chunks],
            "labels": [l.copy() for l in self._labels],
        }

    def load_state(self, state: dict) -> None:
        if state["lag"] != self.lag:
            raise ValueError("state was saved with different parameters")
        ap = state["alpha_prev"]
        self._alpha_prev = None if ap is None else np.asarray(ap).copy()
        self._total = int(state["total"])
        self._emit = int(state["emit"])
        self._alpha_buf = np.asarray(state["alpha_buf"]).copy()
        self._b_buf = np.asarray(state["b_buf"]).copy()
        self._c_buf = np.asarray(state["c_buf"]).copy()
        self._c_chunks = [np.asarray(c).copy() for c in state["c_chunks"]]
        self._shift_chunks = [
            np.asarray(s).copy() for s in state["shift_chunks"]
        ]
        self._labels = [np.asarray(l).copy() for l in state["labels"]]


class StreamingFHMMDecoder:
    """Incremental factorial-HMM disaggregation over an aggregate feed.

    Runs the same filtering / bounded-lag machinery as
    :class:`StreamingHMMDecoder` on the FHMM's *joint* state space, then
    maps each emitted joint label to per-chain states and per-chain power
    estimates (the chain's emission mean, clipped at zero, exactly as the
    batch :meth:`~repro.ml.FactorialHMM.disaggregate` maps them).
    """

    def __init__(
        self, fhmm: FactorialHMM, lag: int = 0, keep_history: bool = False
    ) -> None:
        self.fhmm = fhmm
        # An adapter HMM over the joint space lets the scalar decoder drive
        # the recursion; emissions are overridden below because the FHMM's
        # joint emission density is its own (aggregate-sum) form.
        joint = GaussianHMM(fhmm.n_joint_states)
        joint.startprob_ = fhmm._startprob
        joint.transmat_ = fhmm._transmat
        joint.means_ = fhmm._means.reshape(-1, 1)
        joint.variances_ = fhmm._variances.reshape(-1, 1)
        joint._emission_logprob = lambda X: fhmm._emission_logprob(X[:, 0])
        self._decoder = StreamingHMMDecoder(
            joint, lag=lag, keep_history=keep_history
        )

    def open(self, clock: StreamClock) -> None:
        self._decoder.open(clock)

    def push(self, values: np.ndarray) -> np.ndarray:
        """Consume a chunk; return released per-chain states ``(m, n_chains)``."""
        joint_labels = self._decoder.push(values)
        TELEMETRY.count("stream.fhmm.samples", len(np.atleast_1d(values)))
        return self.fhmm._joint_states[joint_labels]

    def finalize(self) -> np.ndarray:
        return self.fhmm._joint_states[self._decoder.finalize()]

    def resync(self, gap_samples: int = 0) -> np.ndarray:
        """Segment-boundary flush at a discontinuity (see the HMM decoder)."""
        return self.fhmm._joint_states[self._decoder.resync(gap_samples)]

    @property
    def states(self) -> np.ndarray:
        """All released per-chain states so far, shape ``(m, n_chains)``."""
        return self.fhmm._joint_states[self._decoder.labels]

    def powers(self) -> np.ndarray:
        """Per-chain power estimates for the released samples."""
        states = self.states
        n, m = states.shape
        out = np.empty((n, m))
        for j, chain in enumerate(self.fhmm.chains):
            out[:, j] = chain.means_[states[:, j], 0]
        return np.maximum(out, 0.0)

    def log_likelihood(self) -> float:
        return self._decoder.log_likelihood()

    def state_dict(self) -> dict:
        return self._decoder.state_dict()

    def load_state(self, state: dict) -> None:
        self._decoder.load_state(state)


# ---------------------------------------------------------------------------
# Hand-built model constructors for online attacks
# ---------------------------------------------------------------------------
def two_state_power_hmm(
    idle_w: float = 150.0,
    active_w: float = 900.0,
    idle_std_w: float = 120.0,
    active_std_w: float = 500.0,
    stay: float = 0.97,
) -> GaussianHMM:
    """A hand-parameterized idle/active HMM over raw power samples.

    Streaming evaluation needs a model *before* the trace exists, so the
    online decoder attack uses fixed, physically motivated parameters
    rather than Baum-Welch (which is inherently batch).  State 0 is idle
    (background load), state 1 active.
    """
    hmm = GaussianHMM(2)
    return hmm.set_parameters(
        startprob=np.array([0.6, 0.4]),
        transmat=np.array([[stay, 1.0 - stay], [1.0 - stay, stay]]),
        means=np.array([[idle_w], [active_w]]),
        variances=np.array([[idle_std_w**2], [active_std_w**2]]),
    )


def signature_fhmm(
    appliance_w: dict[str, float] | None = None,
    base_w: float = 120.0,
    noise_var: float = 2500.0,
    stay: float = 0.98,
) -> FactorialHMM:
    """A factorial HMM from known on-power signatures.

    Models the online NILM adversary of the paper's threat model: the
    attacker knows typical appliance wattages (public spec sheets) and
    composes two-state (off/on) chains without any training trace.  A
    constant ``base_w`` chain absorbs the always-on background load.
    """
    if appliance_w is None:
        appliance_w = {"fridge": 150.0, "heater": 1500.0, "oven": 2200.0}
    chains = []
    base = GaussianHMM(1)
    base.set_parameters(
        startprob=np.array([1.0]),
        transmat=np.array([[1.0]]),
        means=np.array([[base_w]]),
        variances=np.array([[50.0**2]]),
    )
    chains.append(base)
    for watts in appliance_w.values():
        chain = GaussianHMM(2)
        chain.set_parameters(
            startprob=np.array([0.8, 0.2]),
            transmat=np.array([[stay, 1.0 - stay], [1.0 - stay, stay]]),
            means=np.array([[0.0], [watts]]),
            variances=np.array([[25.0**2], [(0.1 * watts) ** 2 + 1.0]]),
        )
        chains.append(chain)
    return FactorialHMM(chains, noise_var=noise_var)
