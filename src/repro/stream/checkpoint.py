"""Periodic checkpointing for long-running stream sessions.

A collector scoring a live feed for months *will* be killed — deploys,
OOMs, power cuts.  :class:`Checkpointer` writes the full mid-stream
state (:meth:`StreamSession.state_dict` plus the
:class:`~repro.stream.guard.FeedGuard` cursor) to disk every
``every_samples`` admitted samples, in the same trust model as the fleet
cache: a versioned pickle envelope written atomically via temp-file
rename, so a crash mid-write can never leave a torn checkpoint a resume
would trust.

Resume is deliberately dumb: :func:`load_checkpoint` rebuilds the
session and guard, and the caller replays the feed *from the start*.
The restored guard cursor makes the guard reject the already-consumed
prefix as duplicates and trim the chunk straddling the checkpoint, so
the attacks see exactly the unseen suffix — which is why a killed and
resumed run finishes bitwise-identical to an uninterrupted one (pinned
in ``tests/test_stream_guard.py`` and the CLI kill-and-resume drive).
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from ..obs import TELEMETRY

#: bump when the envelope layout or the session/guard state schema
#: changes; older checkpoints are then refused with a clear error
#: instead of being misread into a half-restored session.
STREAM_CHECKPOINT_VERSION = 1

_CHECKPOINT_NAME = "stream_checkpoint.pkl"


def checkpoint_path(directory: str | Path) -> Path:
    """Where a checkpoint lives inside ``directory``."""
    return Path(directory) / _CHECKPOINT_NAME


def has_checkpoint(directory: str | Path) -> bool:
    """True when ``directory`` holds a checkpoint file."""
    return checkpoint_path(directory).is_file()


class Checkpointer:
    """Write session+guard state every N admitted samples."""

    def __init__(self, directory: str | Path, every_samples: int = 3600) -> None:
        if every_samples < 1:
            raise ValueError("every_samples must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.every_samples = int(every_samples)
        self.writes = 0
        self._last_position = -1

    def maybe_write(self, session, guard) -> bool:
        """Write when the guard advanced ``every_samples`` since the last
        write; return True when a checkpoint was written."""
        position = guard.position
        if (
            self._last_position >= 0
            and position - self._last_position < self.every_samples
        ):
            return False
        if position == self._last_position:
            return False
        self.write(session, guard)
        return True

    def write(self, session, guard) -> None:
        """Unconditionally persist the current state (atomic replace)."""
        path = checkpoint_path(self.directory)
        envelope = {
            "format": STREAM_CHECKPOINT_VERSION,
            "kind": "stream-checkpoint",
            "session": session.state_dict(),
            "guard": guard.state_dict(),
        }
        with TELEMETRY.timer("stream.checkpoint_write"):
            tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
            with tmp.open("wb") as handle:
                pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        self._last_position = guard.position
        self.writes += 1
        TELEMETRY.count("stream.checkpoint_writes")


def load_checkpoint(directory: str | Path) -> tuple[dict, dict]:
    """Load ``(session_state, guard_state)`` from ``directory``.

    Raises ``FileNotFoundError`` when no checkpoint exists and
    ``ValueError`` for torn, foreign, or stale-format files — a resume
    must fail loudly rather than continue from a state it can't trust.
    """
    path = checkpoint_path(directory)
    with path.open("rb") as handle:
        try:
            envelope = pickle.load(handle)
        except Exception as exc:  # noqa: BLE001 — torn/unreadable file
            raise ValueError(f"unreadable checkpoint {path}: {exc}") from exc
    if (
        not isinstance(envelope, dict)
        or envelope.get("kind") != "stream-checkpoint"
    ):
        raise ValueError(f"{path} is not a stream checkpoint")
    if envelope.get("format") != STREAM_CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint format {envelope.get('format')!r} != "
            f"{STREAM_CHECKPOINT_VERSION} (stale checkpoint; delete it)"
        )
    return envelope["session"], envelope["guard"]
