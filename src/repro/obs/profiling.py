"""Opt-in cProfile capture for fleet worker stages.

Telemetry answers "how long did each stage take"; profiling answers "why".
:func:`maybe_profile` wraps a block in :class:`cProfile.Profile` and dumps
a ``.pstats`` file per invocation into a target directory — but only when
a directory is configured, so the default path costs one dict lookup.

The directory crosses the process boundary through :data:`PROFILE_DIR_ENV`
(the same env-inheritance trick as fault injection and telemetry), so
``repro fleet --profile DIR`` profiles every worker job no matter which
process runs it.  Inspect the dumps with::

    python -m pstats DIR/home-0003-a0.pstats
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

#: Directory for per-job ``.pstats`` dumps; unset/empty disables profiling.
PROFILE_DIR_ENV = "REPRO_PROFILE_DIR"


def active_profile_dir() -> Path | None:
    """The profile dump directory exported through the env, if any."""
    raw = os.environ.get(PROFILE_DIR_ENV)
    return Path(raw) if raw else None


@contextmanager
def maybe_profile(name: str, directory: str | Path | None = None):
    """Profile the enclosed block into ``<dir>/<name>.pstats``.

    ``directory`` defaults to the env-configured dump dir; when neither is
    set the block runs unobserved and nothing touches the filesystem.
    Yields the live :class:`cProfile.Profile` (or ``None`` when disabled).
    """
    directory = Path(directory) if directory is not None else active_profile_dir()
    if directory is None:
        yield None
        return
    import cProfile

    profile = cProfile.Profile()
    profile.enable()
    try:
        yield profile
    finally:
        profile.disable()
        directory.mkdir(parents=True, exist_ok=True)
        profile.dump_stats(str(directory / f"{name}.pstats"))
