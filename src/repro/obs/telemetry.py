"""Structured telemetry: named counters and monotonic stage timers.

The fleet engine (and every future perf PR) needs to know where time
goes — simulate vs. defend vs. attack vs. cache traffic — without
changing any result.  This module provides that substrate:

* a :class:`Telemetry` registry of float counters and
  ``(count, total seconds)`` timers, guarded by a lock so instrumented
  code may be called from any thread;
* **picklable, mergeable snapshots** (:class:`TelemetrySnapshot`): each
  worker process owns its own registry, captures a per-job delta, and
  ships it back piggybacked on the job result; the supervisor merges the
  deltas into fleet-level totals.  Merging is commutative and
  associative, so the aggregate is independent of completion order;
* a **zero-overhead disabled mode**: the module-level :data:`TELEMETRY`
  registry starts disabled, every ``count`` call is a single attribute
  check, and ``timer`` never reads the clock.  Telemetry can never
  perturb results either way — it only ever observes wall-clock and
  event counts, never randomness.

Process boundary: enablement crosses into workers through the
:data:`TELEMETRY_ENV` environment variable (inherited under both fork
and spawn), exactly like the fault-injection layer's plan.

Names are free-form, but the fleet's established vocabulary is:

* ``stage.*`` timers — ``stage.spec`` (job construction),
  ``stage.job`` / ``stage.simulate`` (per home), ``stage.block``
  (one batched dispatch), ``stage.stream.job``;
* ``cache.*`` — ``cache.read`` / ``cache.write`` timers plus
  hit/miss/store/corrupt/stale counters;
* ``fleet.*`` — supervisor counters (``fleet.retry``,
  ``fleet.pool_rebuild``, ``fleet.attempt_failed.<kind>``,
  ``fleet.permanent_failure``, ``fleet.backoff_wait_s``,
  ``fleet.jobs_built``) and ``fleet.backend.<name>`` marking which
  executor backend ran the sweep;
* ``payload.*`` — trace-channel cost (:mod:`repro.fleet.backends`):
  ``payload.pack`` / ``payload.recv`` timers and ``payload.bytes``;
* ``shmem.*`` — ``shmem.segments_created``, ``shmem.bytes_shared``,
  and ``shmem.leaked_segments`` (teardown sweep reclaims — zero on a
  clean run);
* ``batch.*`` — ``batch.passes`` and ``batch.homes_per_pass`` for the
  across-home batched backend.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Set to a non-empty value (other than "0") to enable the module-level
#: registry at import time — how the fleet engine arms worker processes.
TELEMETRY_ENV = "REPRO_TELEMETRY"


@dataclass(frozen=True)
class TimerStat:
    """One named timer's aggregate: invocation count and total seconds.

    Deliberately *not* carrying min/max: a ``(count, total)`` pair is the
    largest timer state that stays exact under both merging (addition)
    and delta-taking (subtraction); per-home spread comes from comparing
    whole snapshots across homes instead.
    """

    count: int = 0
    total_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def merged(self, other: "TimerStat") -> "TimerStat":
        return TimerStat(self.count + other.count, self.total_s + other.total_s)

    def minus(self, earlier: "TimerStat") -> "TimerStat":
        return TimerStat(
            self.count - earlier.count, max(0.0, self.total_s - earlier.total_s)
        )

    def as_dict(self) -> dict:
        return {"count": self.count, "total_s": self.total_s, "mean_s": self.mean_s}


_EMPTY_TIMER = TimerStat()


@dataclass(frozen=True)
class TelemetrySnapshot:
    """A picklable point-in-time copy of a registry's state.

    Snapshots form a commutative monoid under :meth:`merged` with the
    empty snapshot as identity, and support :meth:`minus` for windowed
    deltas (state at job end minus state at job start).
    """

    counters: dict[str, float] = field(default_factory=dict)
    timers: dict[str, TimerStat] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not self.counters and not self.timers

    def merged(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0.0) + value
        timers = dict(self.timers)
        for name, stat in other.timers.items():
            timers[name] = timers.get(name, _EMPTY_TIMER).merged(stat)
        return TelemetrySnapshot(counters, timers)

    def minus(self, earlier: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """The activity that happened after ``earlier`` was taken."""
        counters = {}
        for name, value in self.counters.items():
            delta = value - earlier.counters.get(name, 0.0)
            if delta:
                counters[name] = delta
        timers = {}
        for name, stat in self.timers.items():
            delta = stat.minus(earlier.timers.get(name, _EMPTY_TIMER))
            if delta.count or delta.total_s:
                timers[name] = delta
        return TelemetrySnapshot(counters, timers)

    def as_dict(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers": {
                name: stat.as_dict() for name, stat in sorted(self.timers.items())
            },
        }


def merge_snapshots(snapshots) -> TelemetrySnapshot:
    """Fold any iterable of snapshots into one (order-independent)."""
    merged = TelemetrySnapshot()
    for snap in snapshots:
        merged = merged.merged(snap)
    return merged


class Telemetry:
    """A process-local registry of named counters and timers.

    Instrumented library code calls :meth:`count` and :meth:`timer`
    unconditionally; both are near-free while ``enabled`` is False.  The
    supervisor/worker protocol is snapshot-based: take a snapshot before
    a unit of work, another after, and ship ``after.minus(before)``.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._timer_counts: dict[str, int] = {}
        self._timer_totals: dict[str, float] = {}

    def count(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    @contextmanager
    def timer(self, name: str):
        """Time the enclosed block under ``name`` (no-op when disabled)."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self._timer_counts[name] = self._timer_counts.get(name, 0) + 1
                self._timer_totals[name] = (
                    self._timer_totals.get(name, 0.0) + elapsed
                )

    def snapshot(self) -> TelemetrySnapshot:
        with self._lock:
            return TelemetrySnapshot(
                counters=dict(self._counters),
                timers={
                    name: TimerStat(count, self._timer_totals.get(name, 0.0))
                    for name, count in self._timer_counts.items()
                },
            )

    def restore(self, snapshot: TelemetrySnapshot) -> None:
        """Reset the registry's state to exactly ``snapshot``."""
        with self._lock:
            self._counters = dict(snapshot.counters)
            self._timer_counts = {
                name: stat.count for name, stat in snapshot.timers.items()
            }
            self._timer_totals = {
                name: stat.total_s for name, stat in snapshot.timers.items()
            }

    def reset(self) -> None:
        self.restore(TelemetrySnapshot())


def _enabled_from_env() -> bool:
    return os.environ.get(TELEMETRY_ENV, "") not in ("", "0")


#: The registry instrumented library code records into.  One per process;
#: worker processes inherit enablement through :data:`TELEMETRY_ENV`.
TELEMETRY = Telemetry(enabled=_enabled_from_env())
