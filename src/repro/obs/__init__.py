"""Observability substrate: structured telemetry and worker profiling.

``repro.obs`` is the layer every perf and scaling claim cites numbers
from.  It has two deliberately small parts:

* :mod:`repro.obs.telemetry` — a process-local registry of named
  counters and stage timers with picklable, mergeable snapshots (workers
  capture per-job deltas; the supervisor merges them into fleet totals);
* :mod:`repro.obs.profiling` — opt-in cProfile capture dumping per-job
  ``.pstats`` files.

Both are off by default and arm across process boundaries via
environment variables, so instrumented library code never needs to know
whether it is running in a worker, the supervisor, or a plain script.
"""

from .profiling import PROFILE_DIR_ENV, active_profile_dir, maybe_profile
from .telemetry import (
    TELEMETRY,
    TELEMETRY_ENV,
    Telemetry,
    TelemetrySnapshot,
    TimerStat,
    merge_snapshots,
)

__all__ = [
    "PROFILE_DIR_ENV",
    "TELEMETRY",
    "TELEMETRY_ENV",
    "Telemetry",
    "TelemetrySnapshot",
    "TimerStat",
    "active_profile_dir",
    "maybe_profile",
    "merge_snapshots",
]
