"""End-to-end experiment pipeline: home -> defense -> attacks -> scores.

The convenience layer that the examples and benchmarks share: simulate (or
accept) a home, run a set of named defenses over its metered trace, attack
every visible trace with the NIOM ensemble, and return one
:class:`TradeoffPoint` per defense (plus the undefended baseline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..defenses.base import DefenseOutcome
from ..home.household import HomeSimulation, simulate_home
from ..home.presets import home_b
from ..obs import TELEMETRY
from .evaluation import DEFAULT_DETECTORS, TradeoffPoint, evaluate_defense_outcome
from .registry import make_defense


@dataclass(frozen=True)
class PipelineResult:
    """Scores for the baseline and every requested defense."""

    baseline: TradeoffPoint
    defenses: dict[str, TradeoffPoint]

    def mcc_reduction(self, defense: str) -> float:
        """Factor by which the defense reduced worst-case attack MCC."""
        after = self.defenses[defense].privacy.worst_case_mcc
        before = self.baseline.privacy.worst_case_mcc
        if after <= 0:
            return float("inf") if before > 0 else 1.0
        return before / after


def evaluate_simulation(
    sim: HomeSimulation,
    defense_names: list[str] | None = None,
    rng: np.random.Generator | int | None = None,
    detectors=DEFAULT_DETECTORS,
) -> PipelineResult:
    """Score the baseline and every requested defense on one simulation.

    This is the process-safe core of :func:`run_pipeline`: a plain
    module-level function of picklable arguments (plus detector factories),
    so fleet worker processes can import and call it directly.
    """
    rng = np.random.default_rng(rng)
    if defense_names is None:
        from .registry import defense_names as all_names

        defense_names = all_names()

    occupancy = sim.occupancy
    metered = sim.metered
    baseline_outcome = DefenseOutcome(visible=metered)
    with TELEMETRY.timer("stage.attack"):
        baseline = evaluate_defense_outcome(
            "baseline", baseline_outcome, metered, occupancy, detectors
        )
    results: dict[str, TradeoffPoint] = {}
    for name in defense_names:
        defense = make_defense(name)
        with TELEMETRY.timer("stage.defend"):
            outcome = defense.apply(metered, rng)
        with TELEMETRY.timer("stage.attack"):
            results[name] = evaluate_defense_outcome(
                name, outcome, metered, occupancy, detectors
            )
    return PipelineResult(baseline=baseline, defenses=results)


def run_pipeline(
    sim: HomeSimulation | None = None,
    defense_names: list[str] | None = None,
    n_days: int = 7,
    rng: np.random.Generator | int | None = None,
    detectors=DEFAULT_DETECTORS,
) -> PipelineResult:
    """Evaluate defenses on a simulated home.

    With no arguments: simulate the Fig. 1 Home-B for a week and sweep all
    registered defenses.
    """
    rng = np.random.default_rng(rng)
    if sim is None:
        sim = simulate_home(home_b(), n_days, rng)
    return evaluate_simulation(sim, defense_names, rng, detectors)
