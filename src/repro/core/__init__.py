"""Core: evaluation pipeline, privacy knob, and registries."""

from .evaluation import (
    DEFAULT_DETECTORS,
    PrivacyScore,
    TradeoffPoint,
    UtilityScore,
    analytics_utility,
    evaluate_defense_outcome,
    occupancy_privacy,
)
from .knob import (
    KnobStage,
    PrivacyKnob,
    knob_defense,
    knob_defense_name,
    knob_domains,
    knob_mapping,
    knob_mapping_names,
    parse_knob_name,
    register_knob_mapping,
    sweep_knob,
)
from .pipeline import PipelineResult, evaluate_simulation, run_pipeline
from .registry import (
    RegistryError,
    defense_names,
    make_defense,
    make_niom_attack,
    niom_attack_names,
    register_defense,
    register_niom_attack,
)

__all__ = [
    "DEFAULT_DETECTORS",
    "PrivacyScore",
    "TradeoffPoint",
    "UtilityScore",
    "analytics_utility",
    "evaluate_defense_outcome",
    "occupancy_privacy",
    "KnobStage",
    "PrivacyKnob",
    "knob_defense",
    "knob_defense_name",
    "knob_domains",
    "knob_mapping",
    "knob_mapping_names",
    "parse_knob_name",
    "register_knob_mapping",
    "sweep_knob",
    "PipelineResult",
    "evaluate_simulation",
    "run_pipeline",
    "RegistryError",
    "defense_names",
    "make_defense",
    "make_niom_attack",
    "niom_attack_names",
    "register_defense",
    "register_niom_attack",
]
