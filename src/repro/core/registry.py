"""Name-based registries for attacks and defenses.

Benchmarks, the knob, and downstream users refer to attacks/defenses by
name; the registries make the set extensible without touching benchmark
code (register your own, then sweep it alongside the built-ins).
"""

from __future__ import annotations

from typing import Callable

from ..attacks.niom import ClusterNIOM, HMMNIOM, ThresholdNIOM
from ..defenses.base import IdentityDefense, TraceDefense
from ..defenses.battery import NILLDefense, SteppedDefense
from ..defenses.chpr import CHPrTraceDefense
from ..defenses.dp import LaplaceReleaseDefense
from ..defenses.smoothing import (
    CoarseningDefense,
    NoiseInjectionDefense,
    SmoothingDefense,
)

_DEFENSES: dict[str, Callable[[], TraceDefense]] = {}
_NIOM_ATTACKS: dict[str, Callable[[], object]] = {}


class RegistryError(KeyError):
    """Unknown or duplicate registry name."""


def register_defense(name: str, factory: Callable[[], TraceDefense]) -> None:
    """Register a defense factory under a unique name."""
    if name in _DEFENSES:
        raise RegistryError(f"defense {name!r} already registered")
    _DEFENSES[name] = factory


def make_defense(name: str) -> TraceDefense:
    """Build a defense by registry name, or by knob form ``name@setting``.

    The ``@`` form routes through the knob-mapping registry
    (:func:`repro.core.knob.knob_defense`), so sweep cells can carry a
    fully parametrized defense as a plain string — through pickled fleet
    jobs and content-addressed cache keys — with no schema changes.
    """
    if "@" in name:
        # function-level import: knob.py imports this module for names
        from .knob import knob_defense, parse_knob_name

        base, setting = parse_knob_name(name)
        return knob_defense(base, setting)
    if name not in _DEFENSES:
        raise RegistryError(
            f"unknown defense {name!r}; available: {sorted(_DEFENSES)}"
        )
    return _DEFENSES[name]()


def defense_names() -> list[str]:
    return sorted(_DEFENSES)


def register_niom_attack(name: str, factory: Callable[[], object]) -> None:
    """Register a NIOM detector factory under a unique name."""
    if name in _NIOM_ATTACKS:
        raise RegistryError(f"attack {name!r} already registered")
    _NIOM_ATTACKS[name] = factory


def make_niom_attack(name: str):
    if name not in _NIOM_ATTACKS:
        raise RegistryError(
            f"unknown attack {name!r}; available: {sorted(_NIOM_ATTACKS)}"
        )
    return _NIOM_ATTACKS[name]()


def niom_attack_names() -> list[str]:
    return sorted(_NIOM_ATTACKS)


# built-ins
register_defense("identity", lambda: IdentityDefense())
register_defense("chpr", lambda: CHPrTraceDefense())
register_defense("nill", lambda: NILLDefense())
register_defense("stepped", lambda: SteppedDefense())
register_defense("dp-laplace", lambda: LaplaceReleaseDefense())
register_defense("smoothing", lambda: SmoothingDefense())
register_defense("coarsening", lambda: CoarseningDefense())
register_defense("noise", lambda: NoiseInjectionDefense())

register_niom_attack("threshold-15m", lambda: ThresholdNIOM())
register_niom_attack("threshold-60m", lambda: ThresholdNIOM(window_s=3600.0))
register_niom_attack("cluster", lambda: ClusterNIOM(rng=0))
register_niom_attack("hmm", lambda: HMMNIOM(rng=0))
