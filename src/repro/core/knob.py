"""User-controllable privacy: the tunable knob of Sec. III-E.

The paper's closing proposal: "an abstract 'knob' that is controlled by
users and represents their privacy preferences: the knob can be adjusted to
tradeoff the loss of privacy ... with the value or utility offered by the
service".  The existing defenses sit at *discrete* points of that tradeoff;
the knob interpolates between them by scaling a defense's strength with a
single setting in [0, 1].

:class:`PrivacyKnob` maps a knob setting to a configured defense stack and
:func:`sweep_knob` traces the resulting privacy-utility frontier, which is
the ``sec3-frontier`` experiment of DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..defenses.base import DefenseOutcome, IdentityDefense, TraceDefense
from ..defenses.battery import BatteryConfig, NILLDefense, SteppedDefense
from ..defenses.chpr import CHPrTraceDefense
from ..defenses.dp import DPConfig, LaplaceReleaseDefense
from ..defenses.smoothing import (
    CoarseningDefense,
    NoiseInjectionDefense,
    SmoothingDefense,
)
from ..timeseries import BinaryTrace, PowerTrace
from .evaluation import DEFAULT_DETECTORS, TradeoffPoint, evaluate_defense_outcome
from .registry import RegistryError


@dataclass(frozen=True)
class KnobStage:
    """One stage of the knob's defense stack with its activation range.

    The stage is active once the knob exceeds ``from_setting``; its own
    strength parameter ramps linearly from there to setting = 1.
    """

    name: str
    from_setting: float

    def local_strength(self, setting: float) -> float:
        if setting <= self.from_setting:
            return 0.0
        return (setting - self.from_setting) / (1.0 - self.from_setting)


class PrivacyKnob:
    """Maps a user's knob setting in [0, 1] to a defense pipeline.

    The default staging mirrors how aggressively each mechanism degrades
    analytics: first *coarsen* the reporting interval (cheap, mild), then
    *noise* the readings, then *battery-level* the signal (strong).  At
    setting 0 the trace passes through untouched; at 1 everything runs at
    full strength.
    """

    def __init__(
        self,
        battery: BatteryConfig | None = None,
        max_report_period_s: float = 3600.0,
        max_noise_w: float = 400.0,
        base_period_s: float = 60.0,
    ) -> None:
        if not 0 < base_period_s <= max_report_period_s:
            raise ValueError("invalid period configuration")
        self.battery = battery or BatteryConfig()
        self.max_report_period_s = max_report_period_s
        self.max_noise_w = max_noise_w
        self.base_period_s = base_period_s
        self.stages = (
            KnobStage("coarsen", 0.0),
            KnobStage("noise", 0.35),
            KnobStage("battery", 0.65),
        )

    def defenses_for(self, setting: float) -> list[TraceDefense]:
        """The configured defense stack for a knob setting."""
        if not 0.0 <= setting <= 1.0:
            raise ValueError("knob setting must be in [0, 1]")
        stack: list[TraceDefense] = []
        coarsen, noise, battery = self.stages
        s = coarsen.local_strength(setting)
        if s > 0:
            # report period grows geometrically from base to max, snapped to
            # clean divisors of an hour so downstream hourly analytics and
            # further resampling always line up
            ratio = self.max_report_period_s / self.base_period_s
            period = self.base_period_s * ratio**s
            candidates = [
                p
                for p in (60.0, 120.0, 180.0, 300.0, 600.0, 900.0, 1800.0, 3600.0)
                if self.base_period_s <= p <= self.max_report_period_s
                and p % self.base_period_s == 0
            ]
            if candidates:
                period = min(candidates, key=lambda p: abs(p - period))
                if period > self.base_period_s:
                    stack.append(CoarseningDefense(report_period_s=period))
        s = noise.local_strength(setting)
        if s > 0:
            stack.append(NoiseInjectionDefense(std_w=self.max_noise_w * s))
        s = battery.local_strength(setting)
        if s > 0:
            scaled = BatteryConfig(
                capacity_wh=self.battery.capacity_wh * s,
                max_charge_w=self.battery.max_charge_w,
                max_discharge_w=self.battery.max_discharge_w,
                efficiency=self.battery.efficiency,
            )
            stack.append(NILLDefense(battery=scaled))
        return stack

    def apply(
        self,
        true_load: PowerTrace,
        setting: float,
        rng: np.random.Generator | int | None = None,
    ) -> DefenseOutcome:
        """Run the stack; later stages see earlier stages' output."""
        rng = np.random.default_rng(rng)
        visible = true_load
        extra_kwh = 0.0
        comfort = 0.0
        for defense in self.defenses_for(setting):
            outcome = defense.apply(visible, rng)
            visible = outcome.visible
            extra_kwh += outcome.extra_energy_kwh
            comfort = max(comfort, outcome.comfort_violation_fraction)
        reference = (
            true_load
            if abs(visible.period_s - true_load.period_s) < 1e-9
            else true_load.resample(visible.period_s)
        )
        distortion = TraceDefense._distortion(visible, reference)
        return DefenseOutcome(
            visible=visible,
            extra_energy_kwh=extra_kwh,
            comfort_violation_fraction=comfort,
            utility_distortion=distortion,
        )


def sweep_knob(
    knob: PrivacyKnob,
    true_load: PowerTrace,
    occupancy: BinaryTrace,
    settings: np.ndarray | list[float] | None = None,
    rng: np.random.Generator | int | None = None,
    detectors=DEFAULT_DETECTORS,
) -> list[TradeoffPoint]:
    """Trace the privacy-utility frontier across knob settings."""
    rng = np.random.default_rng(rng)
    if settings is None:
        settings = np.linspace(0.0, 1.0, 6)
    points = []
    for setting in settings:
        outcome = knob.apply(true_load, float(setting), rng)
        points.append(
            evaluate_defense_outcome(
                f"knob={setting:.2f}", outcome, true_load, occupancy, detectors
            )
        )
    return points


# ---------------------------------------------------------------------------
# Knob mappings: one dial, every registered defense
# ---------------------------------------------------------------------------
#
# :class:`PrivacyKnob` interpolates through a *fixed* stack; the fleet sweep
# engine instead needs to dial each registered :class:`TraceDefense`
# individually, so a frontier can compare mechanisms at matched settings.
# A knob mapping is a callable ``setting in (0, 1] -> TraceDefense`` that
# scales the mechanism's natural strength parameter.  Setting 0 always means
# :class:`IdentityDefense` (the knob fully open — no protection, no cost),
# which anchors every mechanism's frontier at the same point.
#
# The parametrized defense round-trips through a plain string,
# ``name@setting`` (see :func:`knob_defense_name` / :func:`parse_knob_name`),
# which is what lets sweep cells ride the existing fleet cache and pickled
# job plumbing with no schema changes.
#
# Mappings are namespaced by *domain*: ``"energy"`` dials
# :class:`TraceDefense` instances over metered power (the historical,
# default namespace), while other subsystems — ``"netpriv"`` dials
# :class:`~repro.netpriv.shaping.FlowShaper` instances over flow logs —
# register their own dialable mechanisms without colliding with energy
# names or leaking non-``TraceDefense`` objects into energy sweeps.

_KNOB_MAPPINGS: dict[str, dict[str, Callable[[float], object]]] = {
    "energy": {},
}


def register_knob_mapping(
    name: str,
    mapping: Callable[[float], object],
    domain: str = "energy",
) -> None:
    """Register a ``setting -> mechanism`` mapping under ``domain``.

    The default domain is ``"energy"`` (mappings produce
    :class:`TraceDefense`); other domains may produce whatever their
    sweep engine dials (netpriv registers flow shapers).
    """
    table = _KNOB_MAPPINGS.setdefault(domain, {})
    if name in table:
        raise RegistryError(
            f"knob mapping {name!r} already registered in domain {domain!r}"
        )
    table[name] = mapping


def knob_mapping_names(domain: str = "energy") -> list[str]:
    return sorted(_KNOB_MAPPINGS.get(domain, ()))


def knob_domains() -> list[str]:
    """Every domain with at least one registered mapping."""
    return sorted(d for d, table in _KNOB_MAPPINGS.items() if table)


def knob_mapping(
    name: str, domain: str = "energy"
) -> Callable[[float], object]:
    """Look up one registered mapping (the raw ``setting ->`` callable)."""
    table = _KNOB_MAPPINGS.get(domain, {})
    if name not in table:
        raise RegistryError(
            f"no knob mapping for {name!r} in domain {domain!r}; "
            f"available: {sorted(table)}"
        )
    return table[name]


def knob_defense(name: str, setting: float) -> TraceDefense:
    """Build the named energy defense dialed to a knob setting in [0, 1]."""
    setting = float(setting)
    if not 0.0 <= setting <= 1.0:
        raise ValueError(f"knob setting must be in [0, 1], got {setting!r}")
    if setting == 0.0:
        return IdentityDefense()
    return knob_mapping(name, "energy")(setting)


def knob_defense_name(name: str, setting: float) -> str:
    """Canonical ``name@setting`` string for a dialed defense.

    ``.6g`` keeps the string short and stable, so equal settings always
    produce equal cache keys.
    """
    setting = float(setting)
    if not 0.0 <= setting <= 1.0:
        raise ValueError(f"knob setting must be in [0, 1], got {setting!r}")
    return f"{name}@{format(setting, '.6g')}"


def parse_knob_name(name: str) -> tuple[str, float]:
    """Split ``name@setting`` into its parts, validating both."""
    base, _, raw = name.rpartition("@")
    if not base or not raw:
        raise RegistryError(f"malformed knob defense name {name!r}")
    try:
        setting = float(raw)
    except ValueError:
        raise RegistryError(
            f"malformed knob setting in {name!r}: {raw!r} is not a number"
        ) from None
    if not 0.0 <= setting <= 1.0:
        raise RegistryError(
            f"knob setting in {name!r} must be in [0, 1], got {setting}"
        )
    return base, setting


def _hour_divisor_period(lo_s: float, hi_s: float, s: float) -> float:
    """Geometric interpolation between periods, snapped to hour divisors."""
    period = lo_s * (hi_s / lo_s) ** s
    candidates = [
        p
        for p in (60.0, 120.0, 180.0, 300.0, 600.0, 900.0, 1800.0, 3600.0)
        if lo_s <= p <= hi_s
    ]
    return min(candidates, key=lambda p: abs(p - period))


# Built-in mappings.  Each dials the mechanism's natural strength axis so
# larger settings plausibly buy more privacy; the sweep's monotone check
# (tests/test_sweep.py) is what holds them to that reading.
register_knob_mapping("identity", lambda s: IdentityDefense())
register_knob_mapping(
    # battery capacity is NILL's budget for holding the meter flat; the
    # default BatteryConfig (3 kWh) sits at setting 0.5
    "nill",
    lambda s: NILLDefense(battery=BatteryConfig(capacity_wh=6000.0 * s)),
)
register_knob_mapping(
    "stepped",
    lambda s: SteppedDefense(battery=BatteryConfig(capacity_wh=6000.0 * s)),
)
register_knob_mapping("chpr", lambda s: CHPrTraceDefense(strength=s))
register_knob_mapping(
    # epsilon falls geometrically from 10 (almost no noise) to 0.1 (scale
    # = 20 kW per 15-min release): smaller epsilon = stronger privacy
    "dp-laplace",
    lambda s: LaplaceReleaseDefense(DPConfig(epsilon=10.0 * 0.01**s)),
)
register_knob_mapping(
    "smoothing",
    lambda s: SmoothingDefense(window_s=300.0 * 24.0**s),
)
register_knob_mapping(
    "coarsening",
    lambda s: CoarseningDefense(
        report_period_s=_hour_divisor_period(60.0, 3600.0, s)
    ),
)
register_knob_mapping(
    "noise",
    lambda s: NoiseInjectionDefense(std_w=800.0 * s),
)
